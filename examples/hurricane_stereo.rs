//! Hurricane Frederic analog: the paper's full §5.1 pipeline at reduced
//! scale — stereo pairs -> ASA cloud-top heights -> semi-fluid motion
//! tracking -> comparison against 32 "wind barb" tracers.
//!
//! ```sh
//! cargo run --release --example hurricane_stereo
//! ```

use sma::core::motion::SmaFrames;
use sma::core::sequential::Region;
use sma::core::{track_all_parallel, MotionModel, SmaConfig};
use sma::grid::io::{format_wind_barbs, write_pgm};
use sma::satdata::hurricane_frederic_analog;
use sma::satdata::tracers::{pick_tracers, tracer_points};
use sma::stereo::{Asa, AsaConfig};

fn main() {
    // §5.1's dataset: four stereo pairs. We use the first two timesteps
    // at 96 x 96 (the algorithmics are size-independent; the paper's
    // 512 x 512 is a cost-model question — see the bench binaries).
    let seq = hurricane_frederic_analog(96, 2, 1979);
    println!(
        "scene: {} (stereo, interval {} min)",
        seq.name, seq.interval_minutes
    );

    // --- Stereo analysis (ASA substrate) -----------------------------
    let asa = Asa::new(AsaConfig::default());
    let mut heights = Vec::new();
    for t in 0..2 {
        let pair = seq.stereo_pair(t).expect("stereo sequence");
        let out = asa.run(&pair.left, &pair.right);
        let err = pair
            .disparity_to_height(&out.disparity)
            .rms_diff(&seq.frames[t].height);
        println!(
            "ASA t={t}: warp residual {:.4}, height RMS vs truth {:.3}",
            out.residual, err
        );
        heights.push(pair.disparity_to_height(&out.disparity));
    }

    // --- Semi-fluid motion analysis -----------------------------------
    // Structure of Table 1, scaled to the frame: semi-fluid model with
    // search/template windows shrunk from 13/121 to fit 96 px.
    let cfg = SmaConfig {
        model: MotionModel::SemiFluid,
        nz: 2,
        nzs: 3,
        nzt: 5,
        nss: 1,
        nst: 2,
    };
    let frames = SmaFrames::prepare(
        &seq.frames[0].intensity,
        &seq.frames[1].intensity,
        &heights[0],
        &heights[1],
        &cfg,
    )
    .expect("prepare");
    let margin = cfg.margin() + 2;
    let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
    println!(
        "SMA: tracked {} px, {:.1}% valid",
        result.region.area(),
        100.0 * result.valid_fraction()
    );

    // --- Wind-barb comparison (the paper's accuracy protocol) ---------
    let truth = &seq.truth_flows[0];
    let tracers = pick_tracers(&seq.frames[0].intensity, truth, 32, 0.5, 5, margin, 912);
    let flow = result.flow();
    let stats = flow.compare_at(truth, &tracer_points(&tracers));
    println!("32-tracer comparison: {stats}");
    println!(
        "paper criterion (RMS < 1 px): {}",
        if stats.subpixel() { "PASS" } else { "FAIL" }
    );

    // Wind-barb table for the first eight tracers.
    let rows: Vec<(usize, usize, f32, f32)> = tracers
        .iter()
        .take(8)
        .map(|t| {
            let v = flow.at(t.x, t.y);
            (t.x, t.y, v.u, v.v)
        })
        .collect();
    println!(
        "\nestimated wind barbs (first 8):\n{}",
        format_wind_barbs(&rows)
    );

    // Dump visual artifacts next to the target dir.
    let out = std::path::Path::new("target/hurricane_stereo");
    std::fs::create_dir_all(out).expect("create output dir");
    write_pgm(out.join("intensity_t0.pgm"), &seq.frames[0].intensity).unwrap();
    write_pgm(out.join("asa_height_t0.pgm"), &heights[0]).unwrap();
    write_pgm(out.join("flow_magnitude.pgm"), &flow.magnitude_plane()).unwrap();
    println!("wrote PGM visualizations to {}", out.display());
}
