//! Meteorological wind products from SMA cloud tracking — the paper's
//! motivating application: "Cloud motion vectors from the SMA algorithm
//! can be used to estimate the wind field".
//!
//! Runs semi-fluid tracking on a two-deck layered scene and derives:
//! wind speeds in m/s, divergence/vorticity planes (straight from the
//! per-pixel affine parameters), and the height-resolved wind-layer
//! profile.
//!
//! ```sh
//! cargo run --release --example wind_products
//! ```

use sma::core::analysis::{divergence_plane, vorticity_plane, wind_layers, WindScaling};
use sma::core::motion::SmaFrames;
use sma::core::sequential::Region;
use sma::core::{track_all_parallel, MotionModel, SmaConfig};
use sma::grid::Vec2;
use sma::satdata::layers::{CloudLayer, LayeredScene};

fn main() {
    // A two-deck scene: high deck moving east, low deck moving
    // south-west — the multi-layer situation the SMA model was built for.
    let scene = LayeredScene {
        layers: vec![
            CloudLayer::generate(72, 72, 5, 0.68, 9.0, Vec2::new(1.5, 0.0)),
            CloudLayer::generate(72, 72, 9, 0.45, 3.0, Vec2::new(-1.0, 0.5)),
        ],
        background: 0.1,
    };
    let next = scene.step();
    let (i0, h0_flat) = scene.composite();
    let (i1, h1_flat) = next.composite();
    // Real cloud decks have textured tops; the composited height is
    // piecewise constant (one level per deck), which would leave the
    // surface-normal tracker nothing to grip. Add brightness-correlated
    // relief — the same transform at both timesteps, so it advects with
    // the decks.
    let h0 = h0_flat.zip_map(&i0, |&h, &i| h + 2.0 * i);
    let h1 = h1_flat.zip_map(&i1, |&h, &i| h + 2.0 * i);
    println!("two-deck layered scene, 72x72; high deck E at 1.5 px/fr, low deck SW");

    let cfg = SmaConfig {
        model: MotionModel::SemiFluid,
        nz: 2,
        nzs: 2,
        nzt: 2,
        nss: 1,
        nst: 2,
    };
    let frames = SmaFrames::prepare(&i0, &i1, &h0, &h1, &cfg).expect("prepare");
    let margin = cfg.margin() + 2;
    let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
    println!(
        "tracked {} px, {:.1}% valid\n",
        result.region.area(),
        100.0 * result.valid_fraction()
    );

    // --- Wind speed in physical units ----------------------------------
    // GOES-ish scaling: 1 km pixels, 7.5 minute interval.
    let scaling = WindScaling {
        pixel_km: 1.0,
        interval_minutes: 7.5,
    };
    let speed = scaling.speed_plane(&result.flow());
    let (lo, hi) = speed.min_max();
    println!(
        "wind speed: {:.1}..{:.1} m/s (mean {:.1})",
        lo,
        hi,
        speed.mean()
    );

    // --- Divergence / vorticity from the affine parameters -------------
    let div = divergence_plane(&result);
    let vor = vorticity_plane(&result);
    // Report robust 5th..95th percentile ranges: near-degenerate fits at
    // occlusion boundaries produce a few extreme affine parameters.
    let pct = |g: &sma::grid::Grid<f32>| {
        let mut v: Vec<f32> = g.iter().copied().filter(|x| x.is_finite()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (v[v.len() / 20], v[v.len() - 1 - v.len() / 20])
    };
    let (dlo, dhi) = pct(&div);
    let (vlo, vhi) = pct(&vor);
    println!("divergence (5..95%): [{dlo:+.3}, {dhi:+.3}] /frame; vorticity: [{vlo:+.3}, {vhi:+.3}] /frame");

    // --- Height-resolved wind layers ------------------------------------
    let layers = wind_layers(&result, &h0_flat, &[6.0]);
    println!("\nheight-resolved wind profile:");
    for l in &layers {
        if l.count == 0 {
            continue;
        }
        println!(
            "  band [{:>4.1}, {:>4.1}) : {:>5} px, mean wind ({:+.2}, {:+.2}) px/frame = {:.1} m/s",
            l.h_lo,
            l.h_hi,
            l.count,
            l.mean_wind.u,
            l.mean_wind.v,
            scaling.speed_mps(l.mean_wind)
        );
    }
    // The mean is sensitive to occlusion-boundary outliers (low-deck
    // pixels keep vanishing under the moving high deck); the per-class
    // *median* (the §6 classification post-processing) is the robust
    // layered-wind readout.
    use sma::core::ext::classify::classify_by_height;
    let classes = classify_by_height(&h0_flat, &[6.0]);
    let mut band_u: Vec<Vec<f32>> = vec![Vec::new(); 2];
    let mut band_v: Vec<Vec<f32>> = vec![Vec::new(); 2];
    for (x, y) in result.region.pixels() {
        let e = result.estimates.at(x, y);
        // Valid, on-cloud pixels only (clear sky belongs to no deck).
        if e.valid && h0_flat.at(x, y) > 0.5 {
            let c = classes.at(x, y) as usize;
            band_u[c].push(e.displacement.u);
            band_v[c].push(e.displacement.v);
        }
    }
    let med = |v: &mut Vec<f32>| -> f32 {
        if v.is_empty() {
            return 0.0;
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    println!("\nrobust (median) layered winds over cloudy, trackable pixels:");
    println!(
        "  low  deck: ({:+.2}, {:+.2}) px/frame  [truth (-1.0, +0.5)]",
        med(&mut band_u[0]),
        med(&mut band_v[0])
    );
    println!(
        "  high deck: ({:+.2}, {:+.2}) px/frame  [truth (+1.5, +0.0)]",
        med(&mut band_u[1]),
        med(&mut band_v[1])
    );
    println!("\n(both deck motions separate correctly: the high band reports eastward");
    println!(" drift, the low band the south-westward drift — to the +-0.5 px integer");
    println!(" quantization of the hypothesis/semi-fluid grid. The low deck is the hard");
    println!(" case: its pixels keep vanishing under the moving high deck.)");
}
