//! Ocean-current tracking — one of the application domains the paper's
//! abstract names ("remotely sensed objects such as clouds, atmospheric
//! aerosols and gases, polar sea ice, or ocean currents").
//!
//! Tracks an SST-like texture advected by a field of mesoscale eddies,
//! derives the rotational structure (vorticity straight from the fitted
//! affine parameters), and checks each eddy's sense of rotation against
//! the generator.
//!
//! ```sh
//! cargo run --release --example ocean_currents
//! ```

use sma::core::analysis::vorticity_plane;
use sma::core::motion::SmaFrames;
use sma::core::sequential::Region;
use sma::core::{track_all_parallel, MotionModel, SmaConfig};
use sma::grid::io::ascii_quiver;
use sma::satdata::ocean::{ocean_current_analog, EddyField};

fn main() {
    let size = 96usize;
    let seed = 7u64;
    let seq = ocean_current_analog(size, 2, seed);
    let field = EddyField::generate(size, 4, seed);
    println!(
        "ocean-current analog: {size}x{size}, {} eddies over a ({:+.1}, {:+.1}) px/frame background current",
        field.eddies.len(),
        field.background.u,
        field.background.v
    );

    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let frames = SmaFrames::prepare(
        &seq.frames[0].intensity,
        &seq.frames[1].intensity,
        seq.surface(0),
        seq.surface(1),
        &cfg,
    )
    .expect("prepare");
    let margin = cfg.margin() + 2;
    let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
    let flow = result.flow();
    let pts: Vec<(usize, usize)> = result.region.pixels().collect();
    let stats = flow.compare_at(&seq.truth_flows[0], &pts);
    println!("dense accuracy vs truth: {stats}");
    println!(
        "paper criterion (RMS < 1 px): {}",
        if stats.subpixel() { "PASS" } else { "FAIL" }
    );

    // Eddy senses from the estimated vorticity: average the vorticity
    // plane over each eddy's core and compare the sign with the
    // generator's rotation sense.
    let vor = vorticity_plane(&result);
    println!("\neddy rotation senses (mean vorticity over each core):");
    for (i, e) in field.eddies.iter().enumerate() {
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for (x, y) in result.region.pixels() {
            let dx = x as f32 - e.cx;
            let dy = y as f32 - e.cy;
            if (dx * dx + dy * dy).sqrt() < e.rmax {
                sum += vor.at(x, y) as f64;
                n += 1;
            }
        }
        if n == 0 {
            continue;
        }
        let mean = sum / n as f64;
        let detected = if mean > 0.0 { 1.0 } else { -1.0 };
        println!(
            "  eddy {i}: truth sense {:+.0}, detected {:+.0} (mean vorticity {:+.4}) {}",
            e.sense,
            detected,
            mean,
            if detected == e.sense as f64 {
                "OK"
            } else {
                "MISS"
            }
        );
    }

    println!("\nrecovered flow (every 8th pixel):");
    print!("{}", ascii_quiver(&flow, 8));
}
