//! Tour of the MasPar MP-2 simulator: the PE array, hierarchical data
//! mapping (Fig. 2), X-net read-out schemes (Fig. 3 / §4.2), the 64 KB
//! PE memory budget with §4.3 segmentation, and an SMA run executed
//! layer-by-layer on the simulated machine.
//!
//! ```sh
//! cargo run --release --example maspar_demo
//! ```

use sma::core::maspar_driver::track_on_maspar;
use sma::core::sequential::Region;
use sma::core::{MotionModel, SmaConfig};
use sma::grid::Grid;
use sma::maspar::machine::{MachineConfig, MasPar, ReadoutScheme};
use sma::maspar::mapping::{DataMapping, MappingKind};
use sma::maspar::memory::{MemoryBudget, GODDARD_PE_MEMORY_BYTES};
use sma::maspar::readout::scheme_op_estimate;

fn main() {
    // --- The Goddard machine -----------------------------------------
    let machine = MasPar::goddard_mp2();
    println!(
        "MasPar MP-2: {} PEs ({} x {}), {} KB/PE, X-net {:.1} GB/s, router {:.1} GB/s ({}x slower)",
        machine.array().num_pes(),
        machine.config().nxproc,
        machine.config().nyproc,
        machine.config().pe_memory_bytes / 1024,
        machine.config().cost.xnet_bytes_per_s / 1e9,
        machine.config().cost.router_bytes_per_s / 1e9,
        machine.config().cost.xnet_router_ratio().round()
    );

    // --- Data mapping (Fig. 2, eqs. 12-13) -----------------------------
    let hier = DataMapping::new(MappingKind::Hierarchical, 512, 512, 128, 128);
    let cut = DataMapping::new(MappingKind::CutAndStack, 512, 512, 128, 128);
    println!(
        "\n512x512 on 128x128: xvr={} yvr={} -> {} pixels/PE",
        hier.xvr(),
        hier.yvr(),
        hier.layers()
    );
    // §3.2's argument, measured (5x5 window; exact mean over a 64x64
    // sub-problem to keep the demo fast).
    let h64 = DataMapping::new(MappingKind::Hierarchical, 64, 64, 16, 16);
    let c64 = DataMapping::new(MappingKind::CutAndStack, 64, 64, 16, 16);
    println!(
        "mean X-net hops to fetch a 5x5 window: hierarchical {:.2} vs cut-and-stack {:.2}",
        h64.mean_window_mesh_transfers(2),
        c64.mean_window_mesh_transfers(2)
    );
    let _ = cut;

    // --- Read-out schemes (Fig. 3 / §4.2) ------------------------------
    println!("\nread-out op estimates (per-PE transfer operations):");
    for (label, n) in [
        ("z-template 121x121 (Frederic)", 60usize),
        ("template 15x15 (GOES-9)", 7),
    ] {
        let (snake, raster) = scheme_op_estimate(n, 4, 4);
        println!(
            "  {label}: snake {snake} vs raster {raster} -> raster {}x cheaper",
            (snake as f64 / raster as f64).round()
        );
    }
    println!("  (the paper adopted raster: \"This approach was found to be faster\")");

    // --- PE memory budget (§4.3) ---------------------------------------
    println!("\nPE memory budget at 16 px/PE, 64 KB:");
    for (label, nzs) in [
        ("13x13 search (Frederic)", 6usize),
        ("23x23 search (paper's example)", 11),
    ] {
        let b = MemoryBudget {
            xvr: 4,
            yvr: 4,
            nzs,
            nst: 2,
            nss: 1,
            pe_memory_bytes: GODDARD_PE_MEMORY_BYTES,
        };
        println!(
            "  {label}: template store {:.1} KB unsegmented -> {}",
            b.unsegmented_template_bytes() as f64 / 1024.0,
            if b.unsegmented_fits() {
                "fits (Z = 2Nzs+1, unsegmented — Table 2's setting)".to_string()
            } else {
                format!(
                    "needs segmentation: Z = {} rows, {} chunks",
                    b.max_segment_rows().unwrap(),
                    b.num_segments().unwrap()
                )
            }
        );
    }

    // --- An SMA run on the simulated machine ---------------------------
    println!("\nrunning SMA layer-by-layer on an 8x8-PE machine (24x24 frame)...");
    let before = Grid::from_fn(24, 24, |x, y| {
        let (xf, yf) = (x as f32, y as f32);
        (xf * 0.45).sin() * 2.0 + (yf * 0.35).cos() * 1.5 + (xf * 0.12 + yf * 0.21).sin() * 3.0
    });
    let after = sma::grid::warp::translate(&before, -1.0, 0.0, sma::grid::BorderPolicy::Clamp);
    let cfg = SmaConfig::small_test(MotionModel::SemiFluid);
    let mut small = MasPar::new(MachineConfig {
        nxproc: 8,
        nyproc: 8,
        ..MachineConfig::goddard_mp2()
    });
    let report = track_on_maspar(
        &mut small,
        &before,
        &after,
        &before,
        &after,
        &cfg,
        Region::Interior { margin: 9 },
        ReadoutScheme::Raster,
    )
    .expect("maspar run");
    println!(
        "  {} layers, {} segment(s); read-out: {} plane shifts, {} X-net values",
        report.layers, report.segments, report.readout.plane_shifts, report.readout.xnet_values
    );
    println!(
        "  valid fraction {:.1}%",
        100.0 * report.result.valid_fraction()
    );
    println!("  ledger phases:");
    for (phase, s) in small.ledger().seconds_by_phase(&small.config().cost) {
        println!("    {phase:<20} {:.3} us (modelled MP-2 time)", s * 1e6);
    }
    let est = report.result.estimates.at(12, 12);
    println!(
        "  center pixel estimate: displacement ({}, {}), error {:.2e}",
        est.displacement.u, est.displacement.v, est.error
    );
}
