//! GOES-9 Florida thunderstorm analog (§5.2, Fig. 6): monocular
//! rapid-scan convection tracked with the continuous model over several
//! timesteps, visualized as a coarse quiver field per step.
//!
//! ```sh
//! cargo run --release --example thunderstorm
//! ```

use sma::core::motion::SmaFrames;
use sma::core::sequential::Region;
use sma::core::{track_all_parallel, MotionModel, SmaConfig};
use sma::grid::io::{ascii_quiver, write_pgm};
use sma::satdata::florida_thunderstorm_analog;

fn main() {
    // §5.2: 49 rapid-scan frames; we process 4 timesteps of an 80 x 80
    // analog (Fig. 6 shows "four out of 48 time steps").
    let timesteps = 4usize;
    let seq = florida_thunderstorm_analog(80, timesteps + 1, 1995);
    println!(
        "scene: {} ({} frames, interval {} min, monocular)",
        seq.name,
        seq.len(),
        seq.interval_minutes
    );

    // Table 3's structure (continuous model; template = search) scaled
    // to the frame.
    let cfg = SmaConfig {
        model: MotionModel::Continuous,
        nz: 2,
        nzs: 3,
        nzt: 3,
        nss: 0,
        nst: 2,
    };
    let margin = cfg.margin() + 2;
    let out_dir = std::path::Path::new("target/thunderstorm");
    std::fs::create_dir_all(out_dir).expect("create output dir");

    for t in 0..timesteps {
        // Monocular: intensity is the digital surface (paper §2).
        let frames = SmaFrames::prepare(
            &seq.frames[t].intensity,
            &seq.frames[t + 1].intensity,
            seq.surface(t),
            seq.surface(t + 1),
            &cfg,
        )
        .expect("prepare");
        let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
        let flow = result.flow();
        let pts: Vec<(usize, usize)> = result.region.pixels().collect();
        let stats = flow.compare_at(&seq.truth_flows[t], &pts);
        println!(
            "\n== timestep {t} -> {}: valid {:.1}%, vs truth {stats}",
            t + 1,
            100.0 * result.valid_fraction()
        );
        // Fig. 6 visualizes every 10th pixel; our frames are 6.4x
        // smaller, so sample every 5th for a similar density.
        print!("{}", ascii_quiver(&flow, 5));
        write_pgm(
            out_dir.join(format!("intensity_t{t}.pgm")),
            &seq.frames[t].intensity,
        )
        .unwrap();
        write_pgm(
            out_dir.join(format!("flow_mag_t{t}.pgm")),
            &flow.magnitude_plane(),
        )
        .unwrap();
    }
    println!("\nwrote PGM frames to {}", out_dir.display());
}
