//! Quickstart: generate a small cloud scene, track it with the SMA
//! algorithm, and check the estimate against the generator's ground
//! truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sma::core::motion::SmaFrames;
use sma::core::sequential::Region;
use sma::core::{track_all_parallel, MotionModel, SmaConfig};
use sma::grid::io::ascii_quiver;
use sma::satdata::hurricane_luis_analog;
use sma::satdata::tracers::{pick_tracers, tracer_points};

fn main() {
    // 1. A small monocular hurricane sequence (64 x 64, two frames) with
    //    known per-pixel motion. Rapid-scan style: ~1 px/frame.
    let seq = hurricane_luis_analog(64, 2, 2024);
    let truth = &seq.truth_flows[0];
    println!("scene: {} {}x{}", seq.name, seq.dims().0, seq.dims().1);

    // 2. Configure the SMA. Small windows suit the small frame; the
    //    full-scale presets (SmaConfig::hurricane_frederic() etc.) are
    //    the paper's Tables 1 and 3.
    let cfg = SmaConfig::small_test(MotionModel::Continuous);

    // 3. Prepare frames (surface fitting + geometric variables) and
    //    track. Monocular sequences use intensity as a digital surface,
    //    exactly as the paper's §2 prescribes.
    let frames = SmaFrames::prepare(
        &seq.frames[0].intensity,
        &seq.frames[1].intensity,
        seq.surface(0),
        seq.surface(1),
        &cfg,
    )
    .expect("prepare");
    let margin = cfg.margin() + 2;
    let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
    println!(
        "tracked {} pixels, {:.1}% valid, mean error {:.4}",
        result.region.area(),
        100.0 * result.valid_fraction(),
        result.mean_error()
    );

    // 4. Score against ground truth — dense, and at 32 tracer points
    //    (the paper's manual-wind-barb protocol).
    let flow = result.flow();
    let pts: Vec<(usize, usize)> = result.region.pixels().collect();
    let dense = flow.compare_at(truth, &pts);
    println!("dense   vs truth: {dense}");

    let tracers = pick_tracers(&seq.frames[0].intensity, truth, 32, 0.3, 4, margin, 7);
    let stats = flow.compare_at(truth, &tracer_points(&tracers));
    println!("tracers vs truth: {stats}");
    println!(
        "paper criterion (RMS < 1 px): {}",
        if stats.subpixel() { "PASS" } else { "FAIL" }
    );

    // 5. A coarse look at the recovered motion field.
    println!("\nrecovered flow (every 6th pixel):");
    print!("{}", ascii_quiver(&flow, 6));
}
