//! End-to-end §5.1 pipeline: synthetic GOES stereo pairs -> ASA height
//! maps -> semi-fluid motion analysis -> wind-barb accuracy, asserting
//! the paper's claims (parallel == sequential, RMS < 1 px vs the 32
//! reference vectors).

use sma::core::motion::SmaFrames;
use sma::core::sequential::{track_all_sequential, Region};
use sma::core::{track_all_parallel, MotionModel, SmaConfig};
use sma::satdata::hurricane_frederic_analog;
use sma::satdata::tracers::{pick_tracers, tracer_points};
use sma::stereo::{Asa, AsaConfig};

fn asa_heights(seq: &sma::satdata::SceneSequence) -> Vec<sma::grid::Grid<f32>> {
    let asa = Asa::new(AsaConfig::default());
    (0..2)
        .map(|t| {
            let pair = seq.stereo_pair(t).expect("stereo sequence");
            let out = asa.run(&pair.left, &pair.right);
            pair.disparity_to_height(&out.disparity)
        })
        .collect()
}

#[test]
fn stereo_to_semifluid_tracking_is_subpixel_at_tracers() {
    let seq = hurricane_frederic_analog(96, 2, 1979);
    let heights = asa_heights(&seq);

    // ASA heights must track the generator's truth to ~1.5 km on a
    // 0-10 km field.
    for (t, h) in heights.iter().enumerate() {
        let rms = h.rms_diff(&seq.frames[t].height);
        assert!(rms < 2.0, "ASA height RMS {rms} at t={t}");
    }

    let cfg = SmaConfig {
        model: MotionModel::SemiFluid,
        nz: 2,
        nzs: 3,
        nzt: 5,
        nss: 1,
        nst: 2,
    };
    let frames = SmaFrames::prepare(
        &seq.frames[0].intensity,
        &seq.frames[1].intensity,
        &heights[0],
        &heights[1],
        &cfg,
    )
    .expect("prepare");
    let margin = cfg.margin() + 2;
    let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
    assert!(
        result.valid_fraction() > 0.9,
        "valid {}",
        result.valid_fraction()
    );

    // The paper's protocol: 32 manually-tracked wind barbs; RMS < 1 px.
    let truth = &seq.truth_flows[0];
    let tracers = pick_tracers(&seq.frames[0].intensity, truth, 32, 0.5, 5, margin, 912);
    assert_eq!(tracers.len(), 32, "scene must support 32 tracers");
    let stats = result.flow().compare_at(truth, &tracer_points(&tracers));
    assert!(
        stats.subpixel(),
        "RMS {} px >= 1 px against the 32 reference vectors",
        stats.rms_endpoint
    );
}

#[test]
fn parallel_equals_sequential_on_real_scene() {
    // §5.1: "The parallel algorithm obtained the same result as the
    // sequential implementation" — asserted on satellite-analog data,
    // not just synthetic waves.
    let seq = hurricane_frederic_analog(64, 2, 7);
    let cfg = SmaConfig {
        model: MotionModel::SemiFluid,
        nz: 2,
        nzs: 2,
        nzt: 3,
        nss: 1,
        nst: 2,
    };
    let frames = SmaFrames::prepare(
        &seq.frames[0].intensity,
        &seq.frames[1].intensity,
        seq.surface(0),
        seq.surface(1),
        &cfg,
    )
    .expect("prepare");
    let region = Region::Interior {
        margin: cfg.margin() + 2,
    };
    let s = track_all_sequential(&frames, &cfg, region).expect("track");
    let p = track_all_parallel(&frames, &cfg, region).expect("track");
    for (x, y) in s.region.pixels() {
        assert_eq!(s.estimates.at(x, y), p.estimates.at(x, y), "at ({x},{y})");
    }
}
