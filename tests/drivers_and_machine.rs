//! Cross-crate driver equivalence and machine-level checks on satellite
//! analog data: sequential == parallel == segmented == MasPar, plus the
//! ledger/memory behavior of the machine run.

use sma::core::maspar_driver::track_on_maspar;
use sma::core::motion::SmaFrames;
use sma::core::precompute::track_all_segmented;
use sma::core::sequential::{track_all_sequential, Region};
use sma::core::{MotionModel, SmaConfig};
use sma::maspar::machine::{MachineConfig, MasPar, ReadoutScheme};
use sma::satdata::hurricane_luis_analog;

fn scene_frames(cfg: &SmaConfig) -> (sma::satdata::SceneSequence, SmaFrames) {
    let seq = hurricane_luis_analog(48, 2, 99);
    let frames = SmaFrames::prepare(
        &seq.frames[0].intensity,
        &seq.frames[1].intensity,
        seq.surface(0),
        seq.surface(1),
        cfg,
    )
    .expect("prepare");
    (seq, frames)
}

#[test]
fn all_four_drivers_agree() {
    let cfg = SmaConfig::small_test(MotionModel::SemiFluid);
    let (seq_data, frames) = scene_frames(&cfg);
    let region = Region::Interior {
        margin: cfg.margin() + 4,
    };

    let reference = track_all_sequential(&frames, &cfg, region).expect("track");
    let parallel = sma::core::track_all_parallel(&frames, &cfg, region).expect("track");
    let segmented = track_all_segmented(&frames, &cfg, region, 2).expect("track");

    let mut machine = MasPar::new(MachineConfig {
        nxproc: 8,
        nyproc: 8,
        ..MachineConfig::goddard_mp2()
    });
    let maspar = track_on_maspar(
        &mut machine,
        &seq_data.frames[0].intensity,
        &seq_data.frames[1].intensity,
        seq_data.surface(0),
        seq_data.surface(1),
        &cfg,
        region,
        ReadoutScheme::Raster,
    )
    .expect("maspar run");

    for (x, y) in reference.region.pixels() {
        let r = reference.estimates.at(x, y);
        assert_eq!(
            r,
            parallel.estimates.at(x, y),
            "parallel differs at ({x},{y})"
        );
        assert_eq!(
            r,
            segmented.estimates.at(x, y),
            "segmented differs at ({x},{y})"
        );
        assert_eq!(
            r,
            maspar.result.estimates.at(x, y),
            "maspar differs at ({x},{y})"
        );
    }
}

#[test]
fn readout_schemes_give_identical_results() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let (seq_data, _) = scene_frames(&cfg);
    let region = Region::Interior {
        margin: cfg.margin() + 4,
    };
    let run = |scheme| {
        let mut machine = MasPar::new(MachineConfig {
            nxproc: 8,
            nyproc: 8,
            ..MachineConfig::goddard_mp2()
        });
        track_on_maspar(
            &mut machine,
            &seq_data.frames[0].intensity,
            &seq_data.frames[1].intensity,
            seq_data.surface(0),
            seq_data.surface(1),
            &cfg,
            region,
            scheme,
        )
        .expect("maspar run")
    };
    let snake = run(ReadoutScheme::Snake);
    let raster = run(ReadoutScheme::Raster);
    for (x, y) in snake.result.region.pixels() {
        assert_eq!(
            snake.result.estimates.at(x, y),
            raster.result.estimates.at(x, y)
        );
    }
    // §4.2's cost asymmetry: snake pays memory-queue moves.
    assert!(snake.readout.mem_moves > 0);
    assert_eq!(raster.readout.mem_moves, 0);
}

#[test]
fn machine_ledger_reflects_frame_traffic() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let (seq_data, _) = scene_frames(&cfg);
    let mut machine = MasPar::new(MachineConfig {
        nxproc: 8,
        nyproc: 8,
        ..MachineConfig::goddard_mp2()
    });
    let _ = track_on_maspar(
        &mut machine,
        &seq_data.frames[0].intensity,
        &seq_data.frames[1].intensity,
        seq_data.surface(0),
        seq_data.surface(1),
        &cfg,
        Region::Interior {
            margin: cfg.margin() + 4,
        },
        ReadoutScheme::Raster,
    )
    .expect("maspar run");
    let load = machine.ledger().phase("Load frames").expect("load charged");
    assert_eq!(load.mem_bytes_direct, 4.0 * 48.0 * 48.0 * 4.0);
    assert!(machine.total_seconds() > 0.0);
}
