//! Accuracy on the monocular rapid-scan analogs (Luis, Florida): dense
//! sub-pixel RMS against the generator's ground truth — a stronger
//! version of the paper's 32-point validation.

use sma::core::motion::SmaFrames;
use sma::core::sequential::Region;
use sma::core::{track_all_parallel, MotionModel, SmaConfig};
use sma::satdata::{florida_thunderstorm_analog, hurricane_luis_analog};

#[test]
fn luis_analog_dense_subpixel() {
    let seq = hurricane_luis_analog(64, 2, 2024);
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let frames = SmaFrames::prepare(
        &seq.frames[0].intensity,
        &seq.frames[1].intensity,
        seq.surface(0),
        seq.surface(1),
        &cfg,
    )
    .expect("prepare");
    let margin = cfg.margin() + 2;
    let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
    assert!(result.valid_fraction() > 0.95);
    let pts: Vec<(usize, usize)> = result.region.pixels().collect();
    let stats = result.flow().compare_at(&seq.truth_flows[0], &pts);
    assert!(
        stats.count > 1000,
        "need a dense sample, got {}",
        stats.count
    );
    assert!(stats.subpixel(), "dense RMS {} px", stats.rms_endpoint);
}

#[test]
fn florida_analog_tracks_multiple_timesteps() {
    // Fig. 6's format: consecutive timesteps, each tracked densely.
    let seq = florida_thunderstorm_analog(64, 4, 1995);
    let cfg = SmaConfig {
        model: MotionModel::Continuous,
        nz: 2,
        nzs: 3,
        nzt: 3,
        nss: 0,
        nst: 2,
    };
    let margin = cfg.margin() + 2;
    for t in 0..3 {
        let frames = SmaFrames::prepare(
            &seq.frames[t].intensity,
            &seq.frames[t + 1].intensity,
            seq.surface(t),
            seq.surface(t + 1),
            &cfg,
        )
        .expect("prepare");
        let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
        let pts: Vec<(usize, usize)> = result.region.pixels().collect();
        let stats = result.flow().compare_at(&seq.truth_flows[t], &pts);
        assert!(
            stats.rms_endpoint < 1.0,
            "timestep {t}: dense RMS {} px",
            stats.rms_endpoint
        );
    }
}

#[test]
fn semifluid_beats_continuous_on_multilayer_decks() {
    // The SMA model's raison d'etre: independently moving cloud decks
    // fragment the correspondence field; the semi-fluid template mapping
    // should cope at least as well as the continuous one at deck
    // boundaries. We compare mean endpoint error over all pixels.
    use sma::grid::Vec2;
    use sma::satdata::layers::{CloudLayer, LayeredScene};

    let scene = LayeredScene {
        layers: vec![
            CloudLayer::generate(64, 64, 5, 0.55, 10.0, Vec2::new(1.0, 0.0)),
            CloudLayer::generate(64, 64, 9, 0.40, 5.0, Vec2::new(-1.0, 0.0)),
        ],
        background: 0.1,
    };
    let next = scene.step();
    let (i0, h0) = scene.composite();
    let (i1, h1) = next.composite();
    let truth = scene.visible_flow();

    let run = |model: MotionModel| {
        let cfg = SmaConfig::small_test(model);
        let frames = SmaFrames::prepare(&i0, &i1, &h0, &h1, &cfg).expect("prepare");
        let margin = cfg.margin() + 2;
        let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
        let pts: Vec<(usize, usize)> = result
            .region
            .pixels()
            .filter(|&(x, y)| truth.at(x, y).magnitude() > 0.1)
            .collect();
        result.flow().compare_at(&truth, &pts)
    };
    let semi = run(MotionModel::SemiFluid);
    let cont = run(MotionModel::Continuous);
    assert!(
        semi.mean_endpoint <= cont.mean_endpoint * 1.1,
        "semi-fluid ({}) should not lose to continuous ({}) on fragmented motion",
        semi.mean_endpoint,
        cont.mean_endpoint
    );
}
