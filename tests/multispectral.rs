//! Multispectral integration: the synthetic IR channel resolves matches
//! the visible channel cannot — the §6 "multispectral information"
//! extension wired to the satdata generator.

use sma::core::ext::multispectral::{semifluid_correspondence_ms, ChannelDiscriminants};
use sma::core::template_map::semifluid_correspondence;
use sma::grid::{BorderPolicy, Grid};
use sma::satdata::hurricane_frederic_analog;
use sma::satdata::multispectral::{ir_from_height, ir_sequence, IrParams};
use sma::surface::GeomField;

/// Discriminant plane of an image with the paper's 5x5 patch window.
fn disc(img: &Grid<f32>) -> Grid<f32> {
    GeomField::compute(img, 2, BorderPolicy::Clamp).discriminant_plane()
}

#[test]
fn ir_channel_advects_with_scene() {
    let seq = hurricane_frederic_analog(64, 2, 77);
    let irs = ir_sequence(&seq, IrParams::default());
    // The IR frames connect through the truth flow just as heights do:
    // advecting IR(t) by the flow approximates IR(t+1) over the interior.
    let predicted = sma::satdata::advect::advect(&irs[0], &seq.truth_flows[0], BorderPolicy::Clamp);
    let whole = predicted.rms_diff(&irs[1]);
    // The IR texture term is static (emissivity), so allow its amplitude.
    assert!(whole < 0.1, "IR advection residual {whole}");
}

#[test]
fn visible_plus_ir_beats_visible_alone_on_flat_albedo() {
    // Construct a case where the visible channel is uninformative (flat
    // albedo cloud sheet) but heights are structured: monochannel
    // semi-fluid matching cannot find the true shift, the IR channel can.
    let heights0 = Grid::from_fn(48, 48, |x, y| {
        ((x as f32 * 0.5).sin() + (y as f32 * 0.4).cos()) * 2.0 + 5.0
    });
    let heights1 = sma::grid::warp::translate(&heights0, -1.0, -1.0, BorderPolicy::Clamp);
    let vis0 = Grid::filled(48, 48, 0.8f32); // featureless bright deck
    let vis1 = vis0.clone();
    let ir0 = ir_from_height(
        &heights0,
        IrParams {
            texture_amp: 0.0,
            ..IrParams::default()
        },
    );
    let ir1 = ir_from_height(
        &heights1,
        IrParams {
            texture_amp: 0.0,
            ..IrParams::default()
        },
    );

    let (pos_vis, score_vis) =
        semifluid_correspondence(&disc(&vis0), &disc(&vis1), 24, 24, 0, 0, 1, 2);
    // Flat visible: all candidates tie at zero, the row-major tie-break
    // wins — not the true (+1, +1).
    assert_eq!(score_vis, 0.0);
    assert_eq!(pos_vis, (23, 23));

    let channels = vec![
        ChannelDiscriminants {
            before: disc(&vis0),
            after: disc(&vis1),
            weight: 1.0,
        },
        ChannelDiscriminants {
            before: disc(&ir0),
            after: disc(&ir1),
            weight: 1.0,
        },
    ];
    let (pos_ms, _) = semifluid_correspondence_ms(&channels, 24, 24, 0, 0, 1, 2);
    assert_eq!(
        pos_ms,
        (25, 25),
        "IR channel must resolve the true (+1,+1) shift"
    );
}

#[test]
fn ir_separates_equal_brightness_decks_in_scene() {
    let seq = hurricane_frederic_analog(64, 2, 9);
    let ir = ir_from_height(&seq.frames[0].height, IrParams::default());
    // Correlation between IR and height must be strongly positive.
    let h = &seq.frames[0].height;
    let (mh, mi) = (h.mean(), ir.mean());
    let mut cov = 0.0f64;
    let mut vh = 0.0f64;
    let mut vi = 0.0f64;
    for y in 0..64 {
        for x in 0..64 {
            let a = (h.at(x, y) - mh) as f64;
            let b = (ir.at(x, y) - mi) as f64;
            cov += a * b;
            vh += a * a;
            vi += b * b;
        }
    }
    let corr = cov / (vh * vi).sqrt();
    assert!(corr > 0.9, "IR/height correlation {corr}");
}
