//! The paper's quantitative anchors, asserted through the public facade:
//! table rows, memory example, speed-ups, operation counts. These are
//! the claims EXPERIMENTS.md reports.

use sma::core::timing::{paper, Mp2Rates, SgiRates, SmaWorkload};
use sma::core::SmaConfig;
use sma::maspar::cost::Mp2CostModel;
use sma::maspar::mapping::{DataMapping, MappingKind};
use sma::maspar::memory::{MemoryBudget, GODDARD_PE_MEMORY_BYTES};
use sma::maspar::readout::scheme_op_estimate;

#[test]
fn table2_total_is_9_298_hours() {
    let cfg = SmaConfig::hurricane_frederic();
    let w = SmaWorkload::from_config(&cfg, 512, 512);
    let total = Mp2Rates::default().breakdown(&w).total();
    assert!((total - paper::TABLE2_TOTAL_S).abs() < 0.1);
    assert!((total / 3600.0 - 9.298).abs() < 0.01);
}

#[test]
fn table4_predicted_from_table2_calibration() {
    let cfg = SmaConfig::goes9_florida();
    let w = SmaWorkload::from_config(&cfg, 512, 512);
    let total = Mp2Rates::default().breakdown(&w).total();
    let rel = (total - paper::TABLE4_TOTAL_S).abs() / paper::TABLE4_TOTAL_S;
    assert!(rel < 0.10, "Table 4 total off by {:.1}%", rel * 100.0);
}

#[test]
fn headline_speedups() {
    let mp2 = Mp2Rates::default();
    let sgi = SgiRates::default();

    let fred = SmaConfig::hurricane_frederic();
    let wf = SmaWorkload::from_config(&fred, 512, 512);
    let s_fred = sgi.seconds(&wf, fred.model) / mp2.breakdown(&wf).total();
    assert!(
        s_fred > 1000.0 && s_fred < 1100.0,
        "Frederic speedup {s_fred} (paper 1025)"
    );

    let goes = SmaConfig::goes9_florida();
    let wg = SmaWorkload::from_config(&goes, 512, 512);
    let s_goes = sgi.seconds(&wg, goes.model) / mp2.breakdown(&wg).total();
    assert!(
        s_goes > 150.0 && s_goes < 230.0,
        "GOES-9 speedup {s_goes} (paper 193)"
    );

    let luis = SmaConfig::hurricane_luis();
    let wl = SmaWorkload::from_config(&luis, 512, 512);
    let s_luis = sgi.seconds(&wl, luis.model) / mp2.breakdown(&wl).total();
    assert!(s_luis > 100.0, "Luis speedup {s_luis} (paper: over 150)");

    // Ordering shape: semi-fluid gains most, Luis least windows => least
    // total work but similar gain class to GOES-9.
    assert!(s_fred > s_goes);
}

#[test]
fn memory_example_67_7_kb() {
    // "a relatively small search area of 23 x 23 and with 16 pixel
    // elements stored per PE would still require 67.7 KB per PE".
    let b = MemoryBudget {
        xvr: 4,
        yvr: 4,
        nzs: 11,
        nst: 2,
        nss: 1,
        pe_memory_bytes: GODDARD_PE_MEMORY_BYTES,
    };
    assert_eq!(b.unsegmented_template_bytes(), 67_712); // 67.7 decimal KB
    assert!(!b.unsegmented_fits());
    assert!(b.num_segments().unwrap() > 1);
}

#[test]
fn xnet_is_18x_router() {
    // "So the X-net bandwidth is 18 times higher than router
    // communication."
    let m = Mp2CostModel::goddard_mp2();
    let ratio = m.xnet_router_ratio();
    assert!((ratio - 18.0).abs() < 0.4, "ratio {ratio}");
}

#[test]
fn mapping_example_16_pixels_per_pe() {
    // "to map a 512 x 512 image onto a 128 x 128 PE array would require
    // storing 16 pixels per PE".
    let m = DataMapping::new(MappingKind::Hierarchical, 512, 512, 128, 128);
    assert_eq!(m.layers(), 16);
}

#[test]
fn raster_readout_beats_snake_for_frederic_template() {
    // §4.2's conclusion for the 121 x 121 z-template at 16 px/PE.
    let (snake, raster) = scheme_op_estimate(60, 4, 4);
    assert!(raster < snake, "raster {raster} must beat snake {snake}");
}

#[test]
fn per_pixel_operation_counts() {
    // §3's computational-burden paragraph, verbatim numbers.
    let cfg = SmaConfig::hurricane_frederic();
    assert_eq!(cfg.hypotheses_per_pixel(), 169);
    assert_eq!(cfg.terms_per_hypothesis(), 14_641);
    let w = SmaWorkload::from_config(&cfg, 512, 512);
    assert_eq!(w.pixels, 262_144); // "dense motion field for 262144 pixels"
    assert_eq!(w.surface_fit_ges, 1_048_576); // "4 x 512 x 512 = 1048576"
}

#[test]
fn fig4_projection_consistency() {
    // Projecting the Fig. 4 121x121 per-pixel time over the frame must
    // land on the ~397-day §5.1 projection.
    let cfg = SmaConfig::hurricane_frederic();
    let days = SgiRates::default().per_pixel_seconds(&cfg, 60) * 512.0 * 512.0 / 86_400.0;
    assert!(
        (days - paper::FREDERIC_SEQUENTIAL_DAYS).abs() < 5.0,
        "{days} days"
    );
}

#[test]
fn luis_490_frame_disk_traffic_is_negligible() {
    // "The high throughput of MPDA was exploited in running the SMA
    // algorithm on a dense sequence of 490 frames of GOES-9 data":
    // 490 frames of f32 at 30 MB/s is seconds, vs hours of compute.
    let m = Mp2CostModel::goddard_mp2();
    let io = sma::maspar::cost::OpCounts {
        disk_bytes: 490.0 * 512.0 * 512.0 * 4.0,
        ..Default::default()
    };
    let io_s = m.seconds(&io);
    let cfg = SmaConfig::hurricane_luis();
    let w = SmaWorkload::from_config(&cfg, 512, 512);
    let compute_s = Mp2Rates::default().breakdown(&w).total() * 489.0;
    assert!(io_s < 60.0);
    assert!(io_s / compute_s < 0.001);
}
