//! Panic-freedom gate for the library hot paths.
//!
//! The robustness issue replaced panicking paths in the core pipeline
//! with the typed `SmaError` model; this grep-style gate keeps them
//! out. It scans the *library* (non-test, non-`src/bin`) code of the
//! pipeline, streaming, and serving crates and fails if an `unwrap()`
//! or `panic!` token reappears.
//! `expect(...)` and `assert!` remain allowed: they document
//! impossible states rather than swallow fallible ones.
//!
//! The scan is intentionally simple: per file, everything from the
//! first `#[cfg(test)]` on is ignored (in this codebase unit tests sit
//! in a trailing `mod tests`), block comments and `//` line tails are
//! stripped, and the remainder must not contain the forbidden tokens.

use std::path::{Path, PathBuf};

const GATED_SRC_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/grid/src",
    "crates/stereo/src",
    "crates/maspar/src",
    "crates/stream/src",
    "crates/serve/src",
];

const FORBIDDEN: &[&str] = &["unwrap()", "panic!"];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("gated source dir exists") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            // `src/bin` holds report binaries, not library hot paths:
            // a CLI may panic on bad usage, the pipeline may not.
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Library portion of a source file with comments removed: everything
/// before the first `#[cfg(test)]`, minus `/* */` blocks and `//` tails.
fn library_code(text: &str) -> String {
    let lib = text.split("#[cfg(test)]").next().unwrap_or("");
    let mut out = String::with_capacity(lib.len());
    let mut rest = lib;
    // Strip block comments (no nesting in this codebase).
    while let Some(start) = rest.find("/*") {
        out.push_str(&rest[..start]);
        match rest[start + 2..].find("*/") {
            Some(end) => rest = &rest[start + 2 + end + 2..],
            None => {
                rest = "";
                break;
            }
        }
    }
    out.push_str(rest);
    out.lines()
        .map(|line| line.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn library_hot_paths_stay_panic_free() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for dir in GATED_SRC_DIRS {
        let mut files = Vec::new();
        rust_sources(&repo.join(dir), &mut files);
        assert!(!files.is_empty(), "{dir} should contain Rust sources");
        for path in files {
            let text = std::fs::read_to_string(&path).expect("readable source file");
            let code = library_code(&text);
            for (i, line) in code.lines().enumerate() {
                for tok in FORBIDDEN {
                    if line.contains(tok) {
                        violations.push(format!(
                            "{}:{}: forbidden `{tok}`: {}",
                            path.strip_prefix(repo).unwrap_or(&path).display(),
                            i + 1,
                            line.trim()
                        ));
                    }
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "panic-prone tokens in library hot paths (use the SmaError model \
         or an expect with an invariant message instead):\n{}",
        violations.join("\n")
    );
}
