//! Cross-crate tests of the §6 extensions on satellite-analog scenes.

use sma::core::ext::classify::{classify_and_clean, classify_by_height};
use sma::core::ext::hierarchy::track_hierarchical;
use sma::core::ext::regularize::{fill_invalid, vector_median_filter};
use sma::core::motion::SmaFrames;
use sma::core::sequential::Region;
use sma::core::{track_all_parallel, MotionModel, SmaConfig};
use sma::grid::{Grid, Vec2};
use sma::satdata::hurricane_luis_analog;
use sma::stereo::coupled::{refine_disparity_with_motion, temporal_consistency};

#[test]
fn hierarchical_tracking_on_hurricane_scene() {
    // Speed the vortex up beyond the flat search window; the hierarchy
    // must still land sub-pixel over a dense interior sample.
    let seq = hurricane_luis_analog(96, 2, 5);
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    // Scale the scene's truth up 3x by resampling frame t+1 from a
    // 3x-advected generator run: simplest is three generator steps.
    let seq3 = hurricane_luis_analog(96, 4, 5);
    let flow3 = {
        // Truth over three steps ~ 3x the static per-step field for this
        // slowly varying vortex.
        let f = &seq3.truth_flows[0];
        sma::grid::FlowField::from_fn(96, 96, |x, y| f.at(x, y) * 3.0)
    };
    let hier = track_hierarchical(
        &seq3.frames[0].intensity,
        &seq3.frames[3].intensity,
        seq3.surface(0),
        seq3.surface(3),
        &cfg,
        3,
    )
    .expect("track");
    let mut err = 0.0f32;
    let mut n = 0;
    for y in 30..66 {
        for x in 30..66 {
            err += (hier.at(x, y) - flow3.at(x, y)).magnitude();
            n += 1;
        }
    }
    err /= n as f32;
    assert!(
        err < 1.0,
        "hierarchical mean error {err} px over 3-step motion"
    );
    drop(seq);
}

#[test]
fn median_filter_cleans_sma_output() {
    let seq = hurricane_luis_analog(64, 2, 11);
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let frames = SmaFrames::prepare(
        &seq.frames[0].intensity,
        &seq.frames[1].intensity,
        seq.surface(0),
        seq.surface(1),
        &cfg,
    )
    .expect("prepare");
    let margin = cfg.margin() + 2;
    let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
    let mut flow = result.flow();
    // Inject impulse outliers, then clean.
    for k in 0..6 {
        flow.set(20 + 4 * k, 25, Vec2::new(9.0, -9.0));
    }
    let cleaned = vector_median_filter(&flow, 1);
    let truth = &seq.truth_flows[0];
    let pts: Vec<(usize, usize)> = result.region.pixels().collect();
    let before = flow.compare_at(truth, &pts);
    let after = cleaned.compare_at(truth, &pts);
    assert!(
        after.rms_endpoint < before.rms_endpoint,
        "{} vs {}",
        after.rms_endpoint,
        before.rms_endpoint
    );
    assert!(after.subpixel());
}

#[test]
fn fill_invalid_completes_dense_field() {
    let seq = hurricane_luis_analog(64, 2, 3);
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let frames = SmaFrames::prepare(
        &seq.frames[0].intensity,
        &seq.frames[1].intensity,
        seq.surface(0),
        seq.surface(1),
        &cfg,
    )
    .expect("prepare");
    let margin = cfg.margin() + 2;
    let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
    let valid = result.estimates.map(|e| e.valid);
    let (filled, ok) = fill_invalid(&result.flow(), &valid, 64);
    // The whole frame (including margins) becomes valid.
    assert!(ok.iter().all(|&v| v), "field not fully filled");
    assert_eq!(filled.dims(), (64, 64));
}

#[test]
fn classification_respects_layer_membership_on_heights() {
    let heights = Grid::from_fn(32, 32, |_, y| if y < 16 { 3.0f32 } else { 9.0 });
    let classes = classify_by_height(&heights, &[6.0]);
    let flow = sma::grid::FlowField::from_fn(32, 32, |_, y| {
        if y < 16 {
            Vec2::new(1.0, 0.0)
        } else {
            Vec2::new(-1.0, 0.0)
        }
    });
    let (clean, snapped) = classify_and_clean(&flow, &classes, 2, 0.5);
    assert_eq!(snapped, 0, "coherent decks need no snapping");
    assert_eq!(clean.at(5, 5), Vec2::new(1.0, 0.0));
    assert_eq!(clean.at(5, 20), Vec2::new(-1.0, 0.0));
}

#[test]
fn coupled_stereo_improves_on_scene_heights() {
    // Heights advect with the truth flow; corrupt the t+1 estimate and
    // verify the motion-coupled fusion recovers.
    let seq = hurricane_luis_analog(64, 2, 21);
    let d0 = seq.surface(0).clone();
    let d1 = seq.surface(1).clone();
    let flow = &seq.truth_flows[0];
    let noisy = Grid::from_fn(64, 64, |x, y| {
        d1.at(x, y) + if (x + y) % 2 == 0 { 0.05 } else { -0.05 }
    });
    let fused = refine_disparity_with_motion(&d0, &noisy, flow, 0.5);
    assert!(fused.rms_diff(&d1) < noisy.rms_diff(&d1));
    // And the consistency metric prefers the true flow over a wrong one.
    let right = temporal_consistency(&d0, &d1, flow);
    let wrong_flow = sma::grid::FlowField::uniform(64, 64, Vec2::new(3.0, -3.0));
    let wrong = temporal_consistency(&d0, &d1, &wrong_flow);
    assert!(right < wrong);
}
