//! The paper's other application domains (abstract: "polar sea ice, or
//! ocean currents"): SMA tracking on the ocean-eddy and sea-ice analogs.

use sma::core::ext::classify::{classify_and_clean, classify_by_height};
use sma::core::motion::SmaFrames;
use sma::core::sequential::Region;
use sma::core::{track_all_parallel, MotionModel, SmaConfig};
use sma::satdata::ocean::{ocean_current_analog, sea_ice_analog, IceField};

#[test]
fn ocean_eddies_track_subpixel() {
    let seq = ocean_current_analog(64, 2, 8);
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let frames = SmaFrames::prepare(
        &seq.frames[0].intensity,
        &seq.frames[1].intensity,
        seq.surface(0),
        seq.surface(1),
        &cfg,
    )
    .expect("prepare");
    let margin = cfg.margin() + 2;
    let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
    assert!(result.valid_fraction() > 0.95);
    let pts: Vec<(usize, usize)> = result.region.pixels().collect();
    let stats = result.flow().compare_at(&seq.truth_flows[0], &pts);
    assert!(
        stats.subpixel(),
        "ocean dense RMS {} px",
        stats.rms_endpoint
    );
}

#[test]
fn sea_ice_floes_track_with_semifluid() {
    // Floes are rigid but independent — the fragmented-motion case. Track
    // with the semi-fluid model and score only on-floe pixels (open water
    // is textureless and legitimately untrackable).
    let seq = sea_ice_analog(72, 2, 3);
    let cfg = SmaConfig::small_test(MotionModel::SemiFluid);
    let frames = SmaFrames::prepare(
        &seq.frames[0].intensity,
        &seq.frames[1].intensity,
        seq.surface(0),
        seq.surface(1),
        &cfg,
    )
    .expect("prepare");
    let margin = cfg.margin() + 2;
    let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
    let truth = &seq.truth_flows[0];
    // Score well inside floes (margin from floe edges: truth is nonzero
    // and the pixel stays on the same floe through the step).
    let pts: Vec<(usize, usize)> = result
        .region
        .pixels()
        .filter(|&(x, y)| {
            truth.at(x, y).magnitude() > 0.3 && seq.frames[0].intensity.at(x, y) > 0.5
        })
        .collect();
    assert!(
        pts.len() > 100,
        "need enough on-floe pixels, got {}",
        pts.len()
    );
    let stats = result.flow().compare_at(truth, &pts);
    // This is deliberately a hard case: floes drift by *fractional*
    // amounts on an integer hypothesis grid (quantization alone costs up
    // to ~0.7 px), frame t+1 is bilinearly resampled (slightly blurred
    // vs frame t), and every floe edge is a hard discontinuity. Locking
    // each floe to its own drift within the quantization cell means
    // RMS well under the 2 px search radius and mean near 1 px.
    assert!(
        stats.rms_endpoint < 1.5,
        "sea-ice RMS {} px",
        stats.rms_endpoint
    );
    assert!(
        stats.mean_endpoint < 1.2,
        "sea-ice mean {} px",
        stats.mean_endpoint
    );
    // Direction sanity: the mean estimated flow over each floe's pixels
    // correlates positively with its drift.
    let mut dot = 0.0f32;
    for &(x, y) in &pts {
        dot += result.flow().at(x, y).dot(&truth.at(x, y));
    }
    assert!(dot > 0.0, "estimated flow anti-correlates with floe drifts");
}

#[test]
fn floe_classification_cleans_per_floe() {
    // Classify by brightness (each floe has its own brightness level in
    // the generator) and verify class cleaning keeps floes independent.
    let field = IceField::generate(64, 3, 12);
    let img = field.render(64, 0.0, 12);
    let flow = field.visible_flow(64, 0.0);
    // Water = class 0, ice = class 1.
    let classes = classify_by_height(&img, &[0.4]);
    let (cleaned, _) = classify_and_clean(&flow, &classes, 2, 10.0);
    // With a huge tolerance nothing snaps; structure is preserved.
    for ((x, y), v) in cleaned.enumerate() {
        assert_eq!(v, flow.at(x, y));
    }
}
