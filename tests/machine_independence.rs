//! Machine-size independence: the SMA result must be identical on any
//! PE-array shape — the data mapping changes which PE computes which
//! pixel and what the communication costs, never the numbers. (The
//! paper's algorithm is deterministic SIMD; this is the simulator-level
//! statement of that.)

use sma::core::maspar_driver::track_on_maspar;
use sma::core::sequential::Region;
use sma::core::{MotionModel, SmaConfig};
use sma::maspar::machine::{MachineConfig, MasPar, ReadoutScheme};
use sma::satdata::hurricane_luis_analog;

fn run_on(nproc: usize, scheme: ReadoutScheme) -> sma::core::sequential::SmaResult {
    let seq = hurricane_luis_analog(48, 2, 64);
    let cfg = SmaConfig::small_test(MotionModel::SemiFluid);
    let mut machine = MasPar::new(MachineConfig {
        nxproc: nproc,
        nyproc: nproc,
        ..MachineConfig::goddard_mp2()
    });
    track_on_maspar(
        &mut machine,
        &seq.frames[0].intensity,
        &seq.frames[1].intensity,
        seq.surface(0),
        seq.surface(1),
        &cfg,
        Region::Interior {
            margin: cfg.margin() + 4,
        },
        scheme,
    )
    .expect("maspar run")
    .result
}

#[test]
fn results_identical_across_pe_array_sizes() {
    let small = run_on(4, ReadoutScheme::Raster);
    let medium = run_on(8, ReadoutScheme::Raster);
    let large = run_on(16, ReadoutScheme::Raster);
    for (x, y) in small.region.pixels() {
        let a = small.estimates.at(x, y);
        assert_eq!(a, medium.estimates.at(x, y), "4 vs 8 PEs at ({x},{y})");
        assert_eq!(a, large.estimates.at(x, y), "4 vs 16 PEs at ({x},{y})");
    }
}

#[test]
fn ledger_costs_depend_on_machine_but_results_do_not() {
    let seq = hurricane_luis_analog(48, 2, 64);
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let run = |nproc: usize| {
        let mut machine = MasPar::new(MachineConfig {
            nxproc: nproc,
            nyproc: nproc,
            ..MachineConfig::goddard_mp2()
        });
        let report = track_on_maspar(
            &mut machine,
            &seq.frames[0].intensity,
            &seq.frames[1].intensity,
            seq.surface(0),
            seq.surface(1),
            &cfg,
            Region::Interior {
                margin: cfg.margin() + 4,
            },
            ReadoutScheme::Raster,
        )
        .expect("maspar run");
        (report, machine.total_seconds())
    };
    let (r4, _t4) = run(4);
    let (r16, _t16) = run(16);
    // Results equal.
    for (x, y) in r4.result.region.pixels() {
        assert_eq!(r4.result.estimates.at(x, y), r16.result.estimates.at(x, y));
    }
    // More PEs => fewer pixels per PE => fewer memory layers.
    assert!(r4.layers > r16.layers, "{} vs {}", r4.layers, r16.layers);
}

#[test]
fn all_three_readout_schemes_agree() {
    let raster = run_on(8, ReadoutScheme::Raster);
    let snake = run_on(8, ReadoutScheme::Snake);
    let router = run_on(8, ReadoutScheme::Router);
    for (x, y) in raster.region.pixels() {
        let a = raster.estimates.at(x, y);
        assert_eq!(a, snake.estimates.at(x, y), "snake differs at ({x},{y})");
        assert_eq!(a, router.estimates.at(x, y), "router differs at ({x},{y})");
    }
}
