//! # sma-bench
//!
//! The benchmark harness of the reproduction:
//!
//! * **table/figure binaries** (`src/bin/`) regenerate every table and
//!   figure of the paper's evaluation — run e.g.
//!   `cargo run -p sma-bench --bin table2_frederic_timing`;
//! * **criterion benches** (`benches/`) measure the real kernels on the
//!   host — `cargo bench -p sma-bench`.
//!
//! This library holds the fixtures the two share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sma_core::motion::SmaFrames;
use sma_core::SmaConfig;
use sma_grid::warp::translate;
use sma_grid::{BorderPolicy, Grid};

/// A smooth, textured benchmark surface with rich normal variation —
/// the standard fixture the benches and motion tests share.
pub fn wavy(w: usize, h: usize) -> Grid<f32> {
    Grid::from_fn(w, h, |x, y| {
        let (xf, yf) = (x as f32, y as f32);
        (xf * 0.45).sin() * 2.0 + (yf * 0.35).cos() * 1.5 + (xf * 0.12 + yf * 0.21).sin() * 3.0
    })
}

/// Prepared SMA frames for a scene translated by `(dx, dy)`.
pub fn shifted_frames(w: usize, h: usize, dx: f32, dy: f32, cfg: &SmaConfig) -> SmaFrames {
    let before = wavy(w, h);
    let after = translate(&before, -dx, -dy, BorderPolicy::Clamp);
    SmaFrames::prepare(&before, &after, &before, &after, cfg)
        .expect("benchmark fixture frames are well-formed")
}

/// Format seconds the way the paper's tables do, with a human-scale
/// suffix for the big entries.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 3600.0 {
        format!("{s:>14.3}  ({:.3} h)", s / 3600.0)
    } else if s >= 60.0 {
        format!("{s:>14.3}  ({:.2} min)", s / 60.0)
    } else {
        format!("{s:>14.6}")
    }
}

/// Print a `modelled vs paper` comparison row (seconds, fixed width).
pub fn print_row(name: &str, modelled: f64, paper: f64) {
    let rel = if paper != 0.0 {
        100.0 * (modelled - paper) / paper
    } else {
        0.0
    };
    println!("  {name:<34} {modelled:>14.6} {paper:>14.6} {rel:>+7.1}%");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(wavy(16, 16), wavy(16, 16));
    }

    #[test]
    fn seconds_formatting() {
        assert!(fmt_seconds(2.5).contains("2.5"));
        assert!(fmt_seconds(120.0).contains("min"));
        assert!(fmt_seconds(7200.0).contains("h)"));
    }
}
