//! Regenerate **Table 1** (Hurricane Frederic neighborhood sizes) and
//! **Table 3** (GOES-9 neighborhood sizes).
//!
//! ```sh
//! cargo run -p sma-bench --bin table1_3_configs
//! ```

use sma_core::{MotionModel, SmaConfig};

fn print_config(title: &str, rows: &[(&str, String, usize)]) {
    println!("\n{title}");
    println!(
        "  {:<24} {:<12} {:>22}",
        "Neighborhood Type", "Variable", "Window Size in Pixels"
    );
    for (name, var, side) in rows {
        println!("  {name:<24} {var:<12} {side:>11} x {side}");
    }
}

fn main() {
    // Table 1: Hurricane Frederic stereo time sequence (M x N = 512x512).
    let f = SmaConfig::hurricane_frederic();
    assert_eq!(f.model, MotionModel::SemiFluid);
    print_config(
        "Table 1 — neighborhood sizes, Hurricane Frederic (512 x 512, semi-fluid model)",
        &[
            ("Surface-fitting", format!("Nz  = {}", f.nz), 2 * f.nz + 1),
            ("z-Search area", format!("Nzs = {}", f.nzs), 2 * f.nzs + 1),
            ("z-Template", format!("NzT = {}", f.nzt), 2 * f.nzt + 1),
            (
                "Semi-fluid search",
                format!("Nss = {}", f.nss),
                2 * f.nss + 1,
            ),
            (
                "Semi-fluid template",
                format!("NsT = {}", f.nst),
                2 * f.nst + 1,
            ),
        ],
    );
    println!(
        "  per-pixel counts: {} hypotheses x {} template error terms; {} semi-fluid candidates x {} parameters",
        f.hypotheses_per_pixel(),
        f.terms_per_hypothesis(),
        f.semifluid_search_window().area(),
        f.semifluid_template_window().area()
    );

    // Table 3: GOES-9 datasets (M x N = 512x512, continuous model).
    let g = SmaConfig::goes9_florida();
    assert_eq!(g.model, MotionModel::Continuous);
    print_config(
        "Table 3 — neighborhood sizes, GOES-9 datasets (512 x 512, continuous model)",
        &[
            ("Search area", format!("Nzs = {}", g.nzs), 2 * g.nzs + 1),
            ("Template", format!("NzT = {}", g.nzt), 2 * g.nzt + 1),
            ("Surface-patch", format!("Nz  = {}", g.nz), 2 * g.nz + 1),
        ],
    );

    // §5's Luis configuration, for completeness.
    let l = SmaConfig::hurricane_luis();
    print_config(
        "§5 — Hurricane Luis run configuration (490 frames, continuous model)",
        &[
            ("z-Template", format!("NzT = {}", l.nzt), 2 * l.nzt + 1),
            ("z-Search", format!("Nzs = {}", l.nzs), 2 * l.nzs + 1),
            ("Surface-patch", format!("Nz  = {}", l.nz), 2 * l.nz + 1),
        ],
    );
}
