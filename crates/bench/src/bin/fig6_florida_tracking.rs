//! Regenerate **Fig. 6** — "Cloud tracking results for GOES-9 Florida
//! thunderstorm rapid scan imagery showing four timesteps" — on the
//! synthetic Florida analog: dense continuous-model flow fields at four
//! timesteps, visualized every Nth pixel over cloudy regions (the paper
//! shows "every 10th pixel and over cloudy regions"), scored against
//! the generator's ground truth.
//!
//! ```sh
//! cargo run --release -p sma-bench --bin fig6_florida_tracking
//! ```

use sma_core::motion::SmaFrames;
use sma_core::sequential::Region;
use sma_core::{track_all_parallel, MotionModel, SmaConfig};
use sma_grid::io::ascii_quiver;
use sma_grid::{FlowField, Vec2};
use sma_satdata::florida_thunderstorm_analog;

fn main() {
    // Fig. 6 shows 4 of 48 steps; we generate 9 frames and show steps
    // 0, 2, 4, 6 (about the same relative spacing).
    let seq = florida_thunderstorm_analog(96, 9, 1995);
    let cfg = SmaConfig {
        model: MotionModel::Continuous,
        nz: 2,
        nzs: 3,
        nzt: 3,
        nss: 0,
        nst: 2,
    };
    let margin = cfg.margin() + 2;

    println!("Fig. 6 — GOES-9 Florida thunderstorm cloud tracking (synthetic analog)");
    println!(
        "  {} frames at {} min; continuous model; dense flow at every pixel,",
        seq.len(),
        seq.interval_minutes
    );
    println!("  visualized every 6th pixel over cloudy regions (paper: every 10th)\n");

    for &t in &[0usize, 2, 4, 6] {
        let frames = SmaFrames::prepare(
            &seq.frames[t].intensity,
            &seq.frames[t + 1].intensity,
            seq.surface(t),
            seq.surface(t + 1),
            &cfg,
        )
        .expect("prepare");
        let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
        let flow = result.flow();

        // Mask to cloudy regions like the paper's visualization.
        let cloudy = FlowField::from_fn(96, 96, |x, y| {
            if seq.frames[t].intensity.at(x, y) > 0.45 {
                flow.at(x, y)
            } else {
                Vec2::ZERO
            }
        });
        let pts: Vec<(usize, usize)> = result
            .region
            .pixels()
            .filter(|&(x, y)| seq.frames[t].intensity.at(x, y) > 0.45)
            .collect();
        let stats = flow.compare_at(&seq.truth_flows[t], &pts);
        println!(
            "== timestep {t} (t+{} min): cloudy-pixel accuracy {stats}",
            t as f32 * seq.interval_minutes
        );
        print!("{}", ascii_quiver(&cloudy, 6));
        println!();
    }
    println!("shape check: steering flow dominates clear-sky-adjacent cloud; divergent");
    println!("outflow rings the convective cores (the '>' field bends around cells).");
}
