//! Spatial telemetry atlas report: run the nastiest scene we know —
//! a period-2 near-tie pattern with non-finite pokes — through all
//! three driver families plus the streaming engine with the atlas
//! armed, render every channel as an ASCII heatmap, and export the
//! planes as `METRICS_atlas.json`.
//!
//! Usage: `trace_report [--small] [--out PATH]`
//!
//! * `--small` — 28 x 28 frames and a 3-frame sequence (the CI smoke
//!   tier) instead of 64 x 64 and 6 frames;
//! * `--out PATH` — write the metrics document to `PATH` instead of
//!   `METRICS_atlas.json`.
//!
//! The flight recorder is armed for the whole run; the recorded forest
//! is structurally validated in-process (balanced `B`/`E`, monotone
//! timestamps, a second thread from the stream prepare-ahead worker)
//! and written to the `SMA_TRACE` path when that variable is set.
//!
//! Exits nonzero unless every acceptance gate holds: the near-tie,
//! border-fallback, quarantine and all three dispatch channels must be
//! nonzero, the near-tie plane must agree with the scalar re-route
//! counters, and the streaming cache must record at least one hit.

use sma_core::fastpath::track_all_integral;
use sma_core::motion::SmaFrames;
use sma_core::sequential::Region;
use sma_core::{track_all_sequential, track_all_simd, MotionModel, SmaConfig};
use sma_grid::Grid;
use sma_obs::atlas::{self, AtlasChannel};
use sma_obs::json::MetricsDoc;
use sma_obs::trace;
use sma_stream::{FrameSource, StreamEngine};

/// The near-tie scene: period-2 in x (the +1 / -1 shift hypotheses
/// agree up to rounding), mildly modulated in y, shifted by one pixel
/// between frames, with non-finite pokes the quarantine must repair.
fn tie_scene(side: usize) -> (Grid<f32>, Grid<f32>) {
    let mut before = Grid::from_fn(side, side, |x, y| {
        (x as f32 * std::f32::consts::PI).cos() * (1.0 + 0.2 * (y as f32 * 0.37).sin())
            + 0.4 * (y as f32 * 0.23).cos()
    });
    // Non-finite pokes, interior and border.
    before.set(5, 5, f32::NAN);
    before.set(side / 2, side / 2, f32::INFINITY);
    before.set(side - 2, 1, f32::NEG_INFINITY);
    let after = Grid::from_fn(side, side, |x, y| {
        let xs = (x as isize - 1).clamp(0, side as isize - 1) as usize;
        before.at(xs, y)
    });
    (before, after)
}

fn counter(name: &str) -> u64 {
    sma_obs::metrics::snapshot().counter(name)
}

struct Gate {
    name: String,
    ok: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("METRICS_atlas.json", |s| s.as_str());

    if std::env::var("SMA_OBS").is_err() {
        sma_obs::set_level(sma_obs::ObsLevel::Summary);
    }
    trace::set_recording(true);

    let side = if small { 28 } else { 64 };
    let seq_frames = if small { 3 } else { 6 };
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    println!(
        "trace_report: {side}x{side} near-tie scene, {seq_frames}-frame sequence ({})",
        if small { "small" } else { "full" },
    );

    atlas::arm(side, side, 8);

    let near_tie0 = counter("fastpath.near_tie_pixels") + counter("simd.near_tie_pixels");
    let border0 =
        counter("fastpath.border_fallback_pixels") + counter("simd.border_fallback_pixels");

    // Phase 1: the three driver families over the full frame. The
    // border ring falls back to the exact kernel, the period-2 interior
    // re-routes near-ties, and the quarantined pokes land in the
    // quarantine plane during preparation.
    let (before, after) = tie_scene(side);
    let frames = {
        let _s = sma_obs::span("trace_report_prepare");
        SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare")
    };
    let seq = track_all_sequential(&frames, &cfg, Region::Full).expect("sequential");
    let fast = track_all_integral(&frames, &cfg, Region::Full).expect("fastpath");
    let simd = track_all_simd(&frames, &cfg, Region::Full).expect("simd");
    for (x, y) in seq.region.pixels() {
        let s = seq.estimates.at(x, y);
        for (name, r) in [("fastpath", &fast), ("simd", &simd)] {
            let f = r.estimates.at(x, y);
            assert_eq!(s.valid, f.valid, "{name} validity diverged at ({x},{y})");
            assert_eq!(
                s.displacement, f.displacement,
                "{name} displacement diverged at ({x},{y})"
            );
        }
    }

    let near_tie_delta =
        counter("fastpath.near_tie_pixels") + counter("simd.near_tie_pixels") - near_tie0;
    let border_delta = counter("fastpath.border_fallback_pixels")
        + counter("simd.border_fallback_pixels")
        - border0;

    // Phase 2: the streaming engine over a short shifting sequence, so
    // the per-frame cache hit/miss series has real traffic. Pipelining
    // is forced on: the prepare-ahead worker is the second trace thread.
    let seq_side = if small { 28 } else { 40 };
    let pattern: Vec<Grid<f32>> = (0..seq_frames)
        .map(|t| {
            Grid::from_fn(seq_side, seq_side, |x, y| {
                let xs = (x as isize - t as isize).clamp(0, seq_side as isize - 1) as usize;
                ((xs as f32 * 0.45).sin() * 2.0 + (y as f32 * 0.35).cos() * 1.5)
                    + (xs as f32 * 0.12 + y as f32 * 0.21).sin() * 3.0
            })
        })
        .collect();
    let sources: Vec<FrameSource> = pattern
        .iter()
        .map(|g| FrameSource {
            intensity: g,
            surface: g,
        })
        .collect();
    let mut engine = StreamEngine::with_goddard_budget(sources, cfg).with_pipelining(true);
    let region = Region::Interior {
        margin: cfg.margin(),
    };
    engine
        .run(|_, pair| track_all_integral(pair, &cfg, region).map(|_| ()))
        .expect("stream run");
    let cache = engine.cache_stats();
    println!(
        "stream cache: {} hits, {} misses, {} evictions (hit rate {:.2})",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.hit_rate()
    );

    // The atlas, rendered and exported.
    let snap = atlas::snapshot().expect("atlas armed");
    println!();
    for ch in AtlasChannel::ALL {
        println!("{}", snap.heatmap(ch));
    }
    let frames_with_hits = snap
        .cache_frames
        .iter()
        .filter(|(hits, _)| *hits > 0)
        .count();
    println!(
        "cache series: {} frame slots, {} with hits",
        snap.cache_frames.len(),
        frames_with_hits
    );

    let mut doc = MetricsDoc::new("trace_report");
    snap.export_into(&mut doc);
    doc.set_counter("stream.cache_hits", cache.hits);
    doc.set_counter("stream.cache_misses", cache.misses);
    doc.set_counter("stream.cache_evictions", cache.evictions);
    std::fs::write(out_path, doc.to_json()).expect("write metrics document");
    println!("\nwrote {out_path}");

    // The flight recorder: validate in-process, then export if asked.
    let json = trace::chrome_json();
    let check = match trace::validate_chrome_json(&json) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("trace_report: recorded trace is structurally invalid: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "trace: {} events, {} spans, {} threads, depth {}, {} dropped",
        check.events,
        check.spans,
        check.threads,
        check.max_depth,
        trace::events_dropped()
    );
    match trace::export_to_env() {
        Ok(Some(path)) => println!("trace: wrote {path}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("trace_report: trace export failed: {e}");
            std::process::exit(1);
        }
    }
    println!("\nper-stage latency (recorded spans):");
    for s in trace::latency_summary() {
        println!(
            "  {:<44} {:>7} p50 {:>8}us p95 {:>8}us p99 {:>8}us max {:>8}us",
            s.path, s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us
        );
    }

    // Acceptance gates.
    let gates = vec![
        Gate {
            name: format!(
                "near-tie plane total {} == scalar re-route counters {near_tie_delta} (nonzero)",
                snap.total(AtlasChannel::NearTie)
            ),
            ok: snap.total(AtlasChannel::NearTie) == near_tie_delta && near_tie_delta > 0,
        },
        Gate {
            name: format!(
                "border-fallback plane total {} == scalar counters {border_delta} (nonzero)",
                snap.total(AtlasChannel::BorderFallback)
            ),
            ok: snap.total(AtlasChannel::BorderFallback) == border_delta && border_delta > 0,
        },
        Gate {
            name: format!(
                "quarantine plane nonzero ({})",
                snap.total(AtlasChannel::Quarantine)
            ),
            ok: snap.total(AtlasChannel::Quarantine) > 0,
        },
        Gate {
            name: format!(
                "all three dispatch planes nonzero (exact {}, integral {}, simd {})",
                snap.total(AtlasChannel::DispatchExact),
                snap.total(AtlasChannel::DispatchIntegral),
                snap.total(AtlasChannel::DispatchSimd)
            ),
            ok: snap.total(AtlasChannel::DispatchExact) > 0
                && snap.total(AtlasChannel::DispatchIntegral) > 0
                && snap.total(AtlasChannel::DispatchSimd) > 0,
        },
        Gate {
            name: format!("streaming cache recorded hits ({})", cache.hits),
            ok: cache.hits > 0 && frames_with_hits > 0,
        },
        Gate {
            name: format!(
                "trace captured spans on >= 2 threads ({} spans, {} threads)",
                check.spans, check.threads
            ),
            ok: check.spans > 0 && check.threads >= 2,
        },
    ];
    println!("\nacceptance gates:");
    let mut failed = false;
    for g in &gates {
        println!("  [{}] {}", if g.ok { "OK" } else { "FAIL" }, g.name);
        failed |= !g.ok;
    }
    atlas::disarm();
    if failed {
        eprintln!("trace_report: acceptance gates FAILED");
        std::process::exit(1);
    }
    println!("trace_report: all gates hold OK");
}
