//! Hot-path wall-clock report: exact kernels vs the integral-image fast
//! path vs the SIMD lane-kernel drivers, emitted as `BENCH_hotpath.json`
//! (plus a stdout table).
//!
//! The medium configuration is the acceptance scenario: a 64 x 64 frame
//! with a 21 x 21 template and 9 x 9 search, where the O(T^2) per-sample
//! accumulation pays 441 multiply-add rows per hypothesis, the
//! moment-plane path pays four corner lookups per moment, and the SIMD
//! path additionally amortizes the 6 x 6 factorization per pixel and
//! hoists the gradient divisions out of the offset loop. The large
//! configuration (96 x 96, 31 x 31 template, 11 x 11 search) exercises
//! the same kernels at a realistic satellite-window scale.
//!
//! Usage: `hotpath_report [--small]`
//!
//! * `--small` — run only the small scenario with relaxed acceptance
//!   thresholds (the CI smoke tier; the full run is the publishable
//!   report).

use sma_bench::shifted_frames;
use sma_core::fastpath::{track_all_integral, track_all_integral_parallel};
use sma_core::motion::SmaFrames;
use sma_core::sequential::Region;
use sma_core::{
    track_all_parallel, track_all_planner, track_all_sequential, track_all_simd,
    track_all_simd_parallel, MotionModel, SmaConfig,
};
use std::hint::black_box;
use std::time::Instant;

/// Best-of-reps wall-clock seconds for one driver invocation.
fn time_best(mut f: impl FnMut()) -> f64 {
    // Warm-up run (page-in, allocator steady state).
    f();
    let mut best = f64::INFINITY;
    let mut reps = 0usize;
    let mut spent = 0.0f64;
    while reps < 3 || (spent < 0.2 && reps < 50) {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        reps += 1;
    }
    best
}

struct Scenario {
    name: &'static str,
    side: usize,
    nzt: usize,
    nzs: usize,
}

struct Row {
    name: &'static str,
    frame: usize,
    template_side: usize,
    search_side: usize,
    exact_seq: f64,
    exact_par: f64,
    integral_seq: f64,
    integral_par: f64,
    simd_seq: f64,
    simd_par: f64,
    planner: f64,
}

impl Row {
    /// Fast-path speedup within the parallel drivers. The single source
    /// for every place the ratio appears (table, JSON, metrics,
    /// acceptance gate) so they can never disagree.
    fn speedup_parallel(&self) -> f64 {
        self.exact_par / self.integral_par
    }

    /// Fast-path speedup within the sequential drivers. Distinct from
    /// [`Row::speedup_parallel`] — at two decimal places the pair has
    /// rounded to the same value on some hosts, which is coincidence,
    /// not a shared formula; the JSON carries four decimals so the two
    /// ratios stay visibly independent.
    fn speedup_sequential(&self) -> f64 {
        self.exact_seq / self.integral_seq
    }

    /// SIMD-family speedup over the scalar integral baseline, parallel
    /// driver against parallel driver (the acceptance ratio).
    fn speedup_simd(&self) -> f64 {
        self.integral_par / self.simd_par
    }

    /// The fastest static driver's time on this scenario — the bar the
    /// adaptive planner is gated against.
    fn best_static(&self) -> f64 {
        [
            self.exact_seq,
            self.exact_par,
            self.integral_seq,
            self.integral_par,
            self.simd_seq,
            self.simd_par,
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min)
    }

    /// Adaptive planner vs the best static driver. The planner's
    /// interior plan resolves to the fastest admitted family and a
    /// uniform plan collapses to one wholesale driver call, so this
    /// ratio should sit at ~1.0 — the gate allows a small slice of
    /// timer jitter below parity, nothing structural.
    fn speedup_planner(&self) -> f64 {
        self.best_static() / self.planner
    }
}

fn config_for(s: &Scenario) -> SmaConfig {
    SmaConfig {
        nzt: s.nzt,
        nzs: s.nzs,
        ..SmaConfig::small_test(MotionModel::Continuous)
    }
}

fn run_scenario(s: &Scenario) -> Row {
    let cfg = config_for(s);
    let frames: SmaFrames = shifted_frames(s.side, s.side, 1.0, 0.0, &cfg);
    let region = Region::Interior {
        margin: cfg.margin(),
    };
    let exact_seq = time_best(|| {
        black_box(track_all_sequential(black_box(&frames), &cfg, region)).expect("track");
    });
    let exact_par = time_best(|| {
        black_box(track_all_parallel(black_box(&frames), &cfg, region)).expect("track");
    });
    let integral_seq = time_best(|| {
        black_box(track_all_integral(black_box(&frames), &cfg, region)).expect("track");
    });
    let integral_par = time_best(|| {
        black_box(track_all_integral_parallel(
            black_box(&frames),
            &cfg,
            region,
        ))
        .expect("track");
    });
    let simd_seq = time_best(|| {
        black_box(track_all_simd(black_box(&frames), &cfg, region)).expect("track");
    });
    let simd_par = time_best(|| {
        black_box(track_all_simd_parallel(black_box(&frames), &cfg, region)).expect("track");
    });
    let planner = time_best(|| {
        black_box(track_all_planner(black_box(&frames), &cfg, region)).expect("track");
    });
    Row {
        name: s.name,
        frame: s.side,
        template_side: 2 * s.nzt + 1,
        search_side: 2 * s.nzs + 1,
        exact_seq,
        exact_par,
        integral_seq,
        integral_par,
        simd_seq,
        simd_par,
        planner,
    }
}

/// One counted pass per driver family on the gate scenario, recorded at
/// `Summary` level, returning the span table as `(path, calls, seconds)`
/// rows — the per-kernel timing breakdown for the JSON document. Runs
/// after the timed section so the instrumentation never perturbs the
/// wall-clock numbers.
fn kernel_breakdown(s: &Scenario) -> Vec<(String, u64, f64)> {
    let cfg = config_for(s);
    let frames = shifted_frames(s.side, s.side, 1.0, 0.0, &cfg);
    let region = Region::Interior {
        margin: cfg.margin(),
    };
    let prev = sma_obs::level();
    sma_obs::set_level(sma_obs::ObsLevel::Summary);
    sma_obs::span::reset();
    black_box(track_all_sequential(&frames, &cfg, region)).expect("track");
    black_box(track_all_integral(&frames, &cfg, region)).expect("track");
    black_box(track_all_simd(&frames, &cfg, region)).expect("track");
    let rows = sma_obs::span::snapshot()
        .into_iter()
        .map(|r| (r.path, r.calls, r.total.as_secs_f64()))
        .collect();
    sma_obs::set_level(prev);
    rows
}

fn main() {
    let small_only = std::env::args().skip(1).any(|a| a == "--small");
    let scenarios: &[Scenario] = if small_only {
        &[Scenario {
            name: "small_t7",
            side: 40,
            nzt: 3,
            nzs: 2,
        }]
    } else {
        &[
            Scenario {
                name: "small_t7",
                side: 40,
                nzt: 3,
                nzs: 2,
            },
            Scenario {
                name: "medium_t21",
                side: 64,
                nzt: 10,
                nzs: 4,
            },
            Scenario {
                name: "large_t31",
                side: 96,
                nzt: 15,
                nzs: 5,
            },
        ]
    };

    println!("SMA hot path: exact vs moment-plane integral vs SIMD lane kernels vs planner");
    println!(
        "  {:<12} {:>7} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>8} {:>8} {:>8}",
        "scenario",
        "frame",
        "template",
        "exact_seq",
        "exact_par",
        "int_seq",
        "int_par",
        "simd_seq",
        "simd_par",
        "planner",
        "int_x",
        "simd_x",
        "pln_x"
    );

    let mut rows = Vec::new();
    for s in scenarios {
        let r = run_scenario(s);
        println!(
            "  {:<12} {:>4}^2 {:>6}^2 {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s {:>7.1}x {:>7.1}x {:>7.2}x",
            r.name,
            r.frame,
            r.template_side,
            r.exact_seq,
            r.exact_par,
            r.integral_seq,
            r.integral_par,
            r.simd_seq,
            r.simd_par,
            r.planner,
            r.speedup_parallel(),
            r.speedup_simd(),
            r.speedup_planner()
        );
        rows.push(r);
    }

    // Per-kernel span breakdown on the gate scenario (the last one:
    // medium/large in full mode, small in smoke mode).
    let gate_scenario = if small_only {
        &scenarios[0]
    } else {
        &scenarios[1]
    };
    let kernels = kernel_breakdown(gate_scenario);

    // Hand-formatted JSON (no serde in the workspace).
    let mut json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"unit\": \"seconds\",\n  \"mode\": \"{}\",\n  \"scenarios\": [\n",
        if small_only { "small" } else { "full" }
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"frame\": {},\n",
                "      \"template_side\": {},\n",
                "      \"search_side\": {},\n",
                "      \"exact_sequential\": {:.6},\n",
                "      \"exact_parallel\": {:.6},\n",
                "      \"integral_sequential\": {:.6},\n",
                "      \"integral_parallel\": {:.6},\n",
                "      \"simd_sequential\": {:.6},\n",
                "      \"simd_parallel\": {:.6},\n",
                "      \"planner\": {:.6},\n",
                "      \"speedup_integral_vs_exact_parallel\": {:.4},\n",
                "      \"speedup_integral_vs_exact_sequential\": {:.4},\n",
                "      \"speedup_simd_vs_integral_parallel\": {:.4},\n",
                "      \"speedup_planner_vs_best_static\": {:.4}\n",
                "    }}{}\n"
            ),
            r.name,
            r.frame,
            r.template_side,
            r.search_side,
            r.exact_seq,
            r.exact_par,
            r.integral_seq,
            r.integral_par,
            r.simd_seq,
            r.simd_par,
            r.planner,
            r.speedup_parallel(),
            r.speedup_sequential(),
            r.speedup_simd(),
            r.speedup_planner(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"kernel_breakdown_scenario\": \"{}\",\n  \"kernels\": [\n",
        gate_scenario.name
    ));
    for (i, (path, calls, secs)) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"path\": \"{path}\", \"calls\": {calls}, \"seconds\": {secs:.6} }}{}\n",
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("\nwrote BENCH_hotpath.json");

    // The timing rows above are the report's only artifact:
    // `BENCH_hotpath.json` holds the per-scenario wall-clock numbers,
    // and `METRICS_hotpath.json` (counters + gauges) is owned by
    // `obs_report` — one canonical schema per file, no near-duplicate
    // `METRICS_hotpath_report.json`.

    // Acceptance gates. Full mode: the integral fast path must clear
    // 10x over the exact kernels on medium, and the SIMD family must
    // clear 3x over the scalar integral baseline on medium. Smoke mode
    // (--small): the same two ratios on the small scenario with relaxed
    // thresholds (the small frame spends proportionally more time in
    // fixed setup, and CI runners are noisy).
    // The planner gate is a parity bar, not a speedup bar: on these
    // uniform interior scenarios the plan collapses to one wholesale
    // call into the fastest admitted driver, so "never slower than the
    // best static driver" means a ratio of ~1.0. The thresholds sit a
    // few percent below 1.0 only to absorb best-of-reps timer jitter —
    // any structural slowdown (a planner that re-plans per pixel, or
    // mosaics a uniform region) lands far below them.
    let (gate_name, int_need, simd_need, planner_need) = if small_only {
        ("small_t7", 3.0, 1.2, 0.9)
    } else {
        ("medium_t21", 10.0, 3.0, 0.95)
    };
    let gate = rows.iter().find(|r| r.name == gate_name).expect("gate row");
    let mut ok = true;
    let int_x = gate.speedup_parallel();
    let simd_x = gate.speedup_simd();
    let planner_x = gate.speedup_planner();
    for (label, got, need) in [
        ("integral vs exact (parallel)", int_x, int_need),
        ("simd vs integral (parallel)", simd_x, simd_need),
        ("planner vs best static", planner_x, planner_need),
    ] {
        if got >= need {
            println!("acceptance: {gate_name} {label} = {got:.1}x (>= {need}x) OK");
        } else {
            println!("acceptance: {gate_name} {label} = {got:.1}x (< {need}x) FAIL");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
