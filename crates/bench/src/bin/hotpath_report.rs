//! Hot-path wall-clock report: exact kernels vs the integral-image fast
//! path, emitted as `BENCH_hotpath.json` (plus a stdout table).
//!
//! The medium configuration is the acceptance scenario for the fast
//! path: a 64 x 64 frame with a 21 x 21 template and 9 x 9 search,
//! where the O(T^2) per-sample accumulation pays 441 multiply-add rows
//! per hypothesis and the moment-plane path pays four corner lookups
//! per moment.

use sma_bench::shifted_frames;
use sma_core::fastpath::{track_all_integral, track_all_integral_parallel};
use sma_core::motion::SmaFrames;
use sma_core::sequential::Region;
use sma_core::{track_all_parallel, track_all_sequential, MotionModel, SmaConfig};
use sma_obs::json::MetricsDoc;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-reps wall-clock seconds for one driver invocation.
fn time_best(mut f: impl FnMut()) -> f64 {
    // Warm-up run (page-in, allocator steady state).
    f();
    let mut best = f64::INFINITY;
    let mut reps = 0usize;
    let mut spent = 0.0f64;
    while reps < 3 || (spent < 0.2 && reps < 50) {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        reps += 1;
    }
    best
}

struct Scenario {
    name: &'static str,
    side: usize,
    nzt: usize,
    nzs: usize,
}

struct Row {
    name: &'static str,
    frame: usize,
    template_side: usize,
    search_side: usize,
    exact_seq: f64,
    exact_par: f64,
    integral_seq: f64,
    integral_par: f64,
}

impl Row {
    /// Fast-path speedup within the parallel drivers. The single source
    /// for every place the ratio appears (table, JSON, metrics,
    /// acceptance gate) so they can never disagree.
    fn speedup_parallel(&self) -> f64 {
        self.exact_par / self.integral_par
    }

    /// Fast-path speedup within the sequential drivers. Distinct from
    /// [`Row::speedup_parallel`] — at two decimal places the pair has
    /// rounded to the same value on some hosts, which is coincidence,
    /// not a shared formula; the JSON carries four decimals so the two
    /// ratios stay visibly independent.
    fn speedup_sequential(&self) -> f64 {
        self.exact_seq / self.integral_seq
    }
}

fn run_scenario(s: &Scenario) -> Row {
    let cfg = SmaConfig {
        nzt: s.nzt,
        nzs: s.nzs,
        ..SmaConfig::small_test(MotionModel::Continuous)
    };
    let frames: SmaFrames = shifted_frames(s.side, s.side, 1.0, 0.0, &cfg);
    let region = Region::Interior {
        margin: cfg.margin(),
    };
    let exact_seq = time_best(|| {
        black_box(track_all_sequential(black_box(&frames), &cfg, region)).expect("track");
    });
    let exact_par = time_best(|| {
        black_box(track_all_parallel(black_box(&frames), &cfg, region)).expect("track");
    });
    let integral_seq = time_best(|| {
        black_box(track_all_integral(black_box(&frames), &cfg, region)).expect("track");
    });
    let integral_par = time_best(|| {
        black_box(track_all_integral_parallel(
            black_box(&frames),
            &cfg,
            region,
        ))
        .expect("track");
    });
    Row {
        name: s.name,
        frame: s.side,
        template_side: 2 * s.nzt + 1,
        search_side: 2 * s.nzs + 1,
        exact_seq,
        exact_par,
        integral_seq,
        integral_par,
    }
}

fn main() {
    let scenarios = [
        Scenario {
            name: "small_t7",
            side: 40,
            nzt: 3,
            nzs: 2,
        },
        Scenario {
            name: "medium_t21",
            side: 64,
            nzt: 10,
            nzs: 4,
        },
    ];

    println!("SMA hot path: exact kernels vs moment-plane integral images");
    println!(
        "  {:<12} {:>7} {:>9} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "scenario", "frame", "template", "exact_seq", "exact_par", "int_seq", "int_par", "speedup"
    );

    let mut rows = Vec::new();
    for s in &scenarios {
        let r = run_scenario(s);
        let speedup = r.speedup_parallel();
        println!(
            "  {:<12} {:>4}^2 {:>6}^2 {:>11.4}s {:>11.4}s {:>11.4}s {:>11.4}s {:>8.1}x",
            r.name,
            r.frame,
            r.template_side,
            r.exact_seq,
            r.exact_par,
            r.integral_seq,
            r.integral_par,
            speedup
        );
        rows.push(r);
    }

    // Hand-formatted JSON (no serde in the workspace).
    let mut json = String::from(
        "{\n  \"bench\": \"hotpath\",\n  \"unit\": \"seconds\",\n  \"scenarios\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"frame\": {},\n",
                "      \"template_side\": {},\n",
                "      \"search_side\": {},\n",
                "      \"exact_sequential\": {:.6},\n",
                "      \"exact_parallel\": {:.6},\n",
                "      \"integral_sequential\": {:.6},\n",
                "      \"integral_parallel\": {:.6},\n",
                "      \"speedup_integral_vs_exact_parallel\": {:.4},\n",
                "      \"speedup_integral_vs_exact_sequential\": {:.4}\n",
                "    }}{}\n"
            ),
            r.name,
            r.frame,
            r.template_side,
            r.search_side,
            r.exact_seq,
            r.exact_par,
            r.integral_seq,
            r.integral_par,
            r.speedup_parallel(),
            r.speedup_sequential(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("\nwrote BENCH_hotpath.json");

    // Shared metrics document: one *counted* pass per driver on the
    // medium scenario (timing above ran at the ambient SMA_OBS level —
    // off by default — so the wall-clock numbers are unperturbed).
    if std::env::var("SMA_OBS").is_err() {
        sma_obs::set_level(sma_obs::ObsLevel::Summary);
    }
    {
        let s = &scenarios[1];
        let cfg = SmaConfig {
            nzt: s.nzt,
            nzs: s.nzs,
            ..SmaConfig::small_test(MotionModel::Continuous)
        };
        let frames = shifted_frames(s.side, s.side, 1.0, 0.0, &cfg);
        let region = Region::Interior {
            margin: cfg.margin(),
        };
        black_box(track_all_sequential(&frames, &cfg, region)).expect("track");
        black_box(track_all_integral(&frames, &cfg, region)).expect("track");
    }
    let mut doc = MetricsDoc::capture("hotpath_report");
    for r in &rows {
        doc.set_gauge(
            &format!("hotpath.{}.exact_sequential_s", r.name),
            r.exact_seq,
        );
        doc.set_gauge(&format!("hotpath.{}.exact_parallel_s", r.name), r.exact_par);
        doc.set_gauge(
            &format!("hotpath.{}.integral_sequential_s", r.name),
            r.integral_seq,
        );
        doc.set_gauge(
            &format!("hotpath.{}.integral_parallel_s", r.name),
            r.integral_par,
        );
    }
    std::fs::write("METRICS_hotpath_report.json", doc.to_json())
        .expect("write METRICS_hotpath_report.json");
    println!("wrote METRICS_hotpath_report.json");

    // Acceptance: the fast path must clear 10x on the medium scenario.
    let medium = rows.iter().find(|r| r.name == "medium_t21").unwrap();
    let speedup = medium.speedup_parallel();
    if speedup >= 10.0 {
        println!("acceptance: medium_t21 integral vs exact (parallel) = {speedup:.1}x (>= 10x) OK");
    } else {
        println!(
            "acceptance: medium_t21 integral vs exact (parallel) = {speedup:.1}x (< 10x) FAIL"
        );
        std::process::exit(1);
    }
}
