//! Hot-path wall-clock report: exact kernels vs the integral-image fast
//! path vs the SIMD lane-kernel drivers vs the pruned-search family,
//! emitted as `BENCH_hotpath.json` (plus a stdout table).
//!
//! The medium configuration is the acceptance scenario: a 64 x 64 frame
//! with a 21 x 21 template and 9 x 9 search, where the O(T^2) per-sample
//! accumulation pays 441 multiply-add rows per hypothesis, the
//! moment-plane path pays four corner lookups per moment, and the SIMD
//! path additionally amortizes the 6 x 6 factorization per pixel and
//! hoists the gradient divisions out of the offset loop. The pruned
//! driver then orders the hypothesis sweep from a decimated-lattice seed
//! and rejects most candidates against an admissible lower bound before
//! their offset moment planes are ever built. The large configuration
//! (96 x 96, 31 x 31 template, 11 x 11 search) exercises the same
//! kernels at a realistic satellite-window scale — and gives the pruned
//! driver a 121-hypothesis sweep to cut down.
//!
//! Timing methodology: within a scenario all drivers are measured
//! **interleaved round-robin** — each round runs every driver once and
//! each driver reports its best-of-rounds. Measuring drivers
//! back-to-back in blocks lets slow environmental drift (thermal
//! throttling, frequency steps, cache pressure from a neighbouring job)
//! land on whichever driver happens to run in the last block; the
//! planner, always measured last, once read ~0.87x against the best
//! static driver on the large scenario from block order alone.
//! Round-robin spreads any drift evenly across all drivers.
//!
//! Usage: `hotpath_report [--small]`
//!
//! * `--small` — run only the small scenario with relaxed acceptance
//!   thresholds (the CI smoke tier; the full run is the publishable
//!   report).

use sma_bench::shifted_frames;
use sma_core::fastpath::{track_all_integral, track_all_integral_parallel};
use sma_core::motion::SmaFrames;
use sma_core::sequential::Region;
use sma_core::{
    track_all_parallel, track_all_planner, track_all_pruned, track_all_pruned_parallel,
    track_all_sequential, track_all_simd, track_all_simd_parallel, MotionModel, SmaConfig,
};
use std::hint::black_box;
use std::time::Instant;

/// Invocations per driver per round. A burst keeps the second and
/// third runs warm (branch predictors trained, caches resident on that
/// driver's working set) so the per-burst minimum measures the driver's
/// steady state, while the round-robin rotation between bursts spreads
/// environmental drift across all drivers.
const BURST: usize = 3;

/// Best-of-rounds wall-clock seconds for a set of drivers, measured
/// interleaved: each round invokes every still-sampling driver
/// [`BURST`] times back-to-back, so environmental drift is shared
/// instead of charged to the last block (see module docs) while each
/// sample still reflects a warmed driver. Per driver the sampling
/// budget matches the old per-driver loop: at least 3 invocations, then
/// until 0.2 s of accumulated time or 50 invocations.
fn time_interleaved(drivers: &mut [Box<dyn FnMut() + '_>]) -> Vec<f64> {
    // Warm-up round (page-in, allocator steady state).
    for f in drivers.iter_mut() {
        f();
    }
    let n = drivers.len();
    let mut best = vec![f64::INFINITY; n];
    let mut spent = vec![0.0f64; n];
    let mut reps = vec![0usize; n];
    loop {
        let sampling: Vec<bool> = (0..n)
            .map(|i| reps[i] < 3 || (spent[i] < 0.2 && reps[i] < 50))
            .collect();
        if !sampling.iter().any(|&s| s) {
            break;
        }
        for (i, f) in drivers.iter_mut().enumerate() {
            if !sampling[i] {
                continue;
            }
            for _ in 0..BURST {
                let t = Instant::now();
                f();
                let dt = t.elapsed().as_secs_f64();
                best[i] = best[i].min(dt);
                spent[i] += dt;
                reps[i] += 1;
            }
        }
    }
    best
}

struct Scenario {
    name: &'static str,
    side: usize,
    nzt: usize,
    nzs: usize,
}

struct Row {
    name: &'static str,
    frame: usize,
    template_side: usize,
    search_side: usize,
    exact_seq: f64,
    exact_par: f64,
    integral_seq: f64,
    integral_par: f64,
    simd_seq: f64,
    simd_par: f64,
    pruned_seq: f64,
    pruned_par: f64,
    planner: f64,
}

impl Row {
    /// Fast-path speedup within the parallel drivers. The single source
    /// for every place the ratio appears (table, JSON, metrics,
    /// acceptance gate) so they can never disagree.
    fn speedup_parallel(&self) -> f64 {
        self.exact_par / self.integral_par
    }

    /// Fast-path speedup within the sequential drivers. Distinct from
    /// [`Row::speedup_parallel`] — at two decimal places the pair has
    /// rounded to the same value on some hosts, which is coincidence,
    /// not a shared formula; the JSON carries four decimals so the two
    /// ratios stay visibly independent.
    fn speedup_sequential(&self) -> f64 {
        self.exact_seq / self.integral_seq
    }

    /// SIMD-family speedup over the scalar integral baseline,
    /// sequential driver against sequential driver (the acceptance
    /// ratio). The sequential pair is the clean family comparison: the
    /// "parallel" drivers run through the vendored sequential rayon
    /// shim, whose per-chunk dispatch adds a fixed overhead that lands
    /// much harder on the cheap SIMD rows than on the integral rows —
    /// gating on the parallel pair measured that shim asymmetry, not
    /// the lane kernels.
    fn speedup_simd(&self) -> f64 {
        self.integral_seq / self.simd_seq
    }

    /// The same family ratio over the parallel pair, carried in the
    /// JSON for the sentinel to tolerance-track (the shim dispatch
    /// overhead should stay roughly constant; a collapse here means the
    /// parallel wrappers themselves regressed).
    fn speedup_simd_parallel(&self) -> f64 {
        self.integral_par / self.simd_par
    }

    /// Pruned-search speedup over the exhaustive SIMD sweep, sequential
    /// against sequential (the pruned family's acceptance ratio: same
    /// kernels, bit-identical output, fewer candidate evaluations and
    /// fewer offset-plane builds).
    fn speedup_pruned(&self) -> f64 {
        self.simd_seq / self.pruned_seq
    }

    /// The fastest static driver's time on this scenario — the bar the
    /// adaptive planner is gated against.
    fn best_static(&self) -> f64 {
        [
            self.exact_seq,
            self.exact_par,
            self.integral_seq,
            self.integral_par,
            self.simd_seq,
            self.simd_par,
            self.pruned_seq,
            self.pruned_par,
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min)
    }

    /// Adaptive planner vs the best static driver. The planner's
    /// interior plan resolves to the fastest admitted family and a
    /// uniform plan collapses to one wholesale driver call, so this
    /// ratio should sit at ~1.0 — the gate allows a small slice of
    /// timer jitter below parity, nothing structural.
    fn speedup_planner(&self) -> f64 {
        self.best_static() / self.planner
    }
}

fn config_for(s: &Scenario) -> SmaConfig {
    SmaConfig {
        nzt: s.nzt,
        nzs: s.nzs,
        ..SmaConfig::small_test(MotionModel::Continuous)
    }
}

fn run_scenario(s: &Scenario) -> Row {
    let cfg = config_for(s);
    let frames: SmaFrames = shifted_frames(s.side, s.side, 1.0, 0.0, &cfg);
    let region = Region::Interior {
        margin: cfg.margin(),
    };
    // One closure per driver, all measured round-robin (see module
    // docs). Order here is only the Row field order, not a measurement
    // order — every round touches every driver.
    let mut drivers: Vec<Box<dyn FnMut() + '_>> = vec![
        Box::new(|| {
            black_box(track_all_sequential(black_box(&frames), &cfg, region)).expect("track");
        }),
        Box::new(|| {
            black_box(track_all_parallel(black_box(&frames), &cfg, region)).expect("track");
        }),
        Box::new(|| {
            black_box(track_all_integral(black_box(&frames), &cfg, region)).expect("track");
        }),
        Box::new(|| {
            black_box(track_all_integral_parallel(
                black_box(&frames),
                &cfg,
                region,
            ))
            .expect("track");
        }),
        Box::new(|| {
            black_box(track_all_simd(black_box(&frames), &cfg, region)).expect("track");
        }),
        Box::new(|| {
            black_box(track_all_simd_parallel(black_box(&frames), &cfg, region)).expect("track");
        }),
        Box::new(|| {
            black_box(track_all_pruned(black_box(&frames), &cfg, region)).expect("track");
        }),
        Box::new(|| {
            black_box(track_all_pruned_parallel(black_box(&frames), &cfg, region)).expect("track");
        }),
        Box::new(|| {
            black_box(track_all_planner(black_box(&frames), &cfg, region)).expect("track");
        }),
    ];
    let t = time_interleaved(&mut drivers);
    drop(drivers);
    Row {
        name: s.name,
        frame: s.side,
        template_side: 2 * s.nzt + 1,
        search_side: 2 * s.nzs + 1,
        exact_seq: t[0],
        exact_par: t[1],
        integral_seq: t[2],
        integral_par: t[3],
        simd_seq: t[4],
        simd_par: t[5],
        pruned_seq: t[6],
        pruned_par: t[7],
        planner: t[8],
    }
}

/// One counted pass per driver family on the gate scenario, recorded at
/// `Summary` level, returning the span table as `(path, calls, seconds)`
/// rows — the per-kernel timing breakdown for the JSON document. Runs
/// after the timed section so the instrumentation never perturbs the
/// wall-clock numbers.
fn kernel_breakdown(s: &Scenario) -> Vec<(String, u64, f64)> {
    let cfg = config_for(s);
    let frames = shifted_frames(s.side, s.side, 1.0, 0.0, &cfg);
    let region = Region::Interior {
        margin: cfg.margin(),
    };
    let prev = sma_obs::level();
    sma_obs::set_level(sma_obs::ObsLevel::Summary);
    sma_obs::span::reset();
    black_box(track_all_sequential(&frames, &cfg, region)).expect("track");
    black_box(track_all_integral(&frames, &cfg, region)).expect("track");
    black_box(track_all_simd(&frames, &cfg, region)).expect("track");
    black_box(track_all_pruned(&frames, &cfg, region)).expect("track");
    let rows = sma_obs::span::snapshot()
        .into_iter()
        .map(|r| (r.path, r.calls, r.total.as_secs_f64()))
        .collect();
    sma_obs::set_level(prev);
    rows
}

/// Prune-rate counters from one pruned run on the gate scenario:
/// candidates skipped against the admissible bound, raw bound rejects,
/// offset planes actually built, and interior pixels swept — the
/// non-vacuity evidence behind the speedup headline, carried in the
/// JSON document so a regression to "prunes nothing" is visible even
/// when wall-clock noise masks it.
fn prune_counters(s: &Scenario) -> [(&'static str, u64); 4] {
    let cfg = config_for(s);
    let frames = shifted_frames(s.side, s.side, 1.0, 0.0, &cfg);
    let region = Region::Interior {
        margin: cfg.margin(),
    };
    let prev = sma_obs::level();
    sma_obs::set_level(sma_obs::ObsLevel::Summary);
    let names = [
        "prune.candidates_skipped",
        "prune.bound_rejects",
        "pruned.offset_planes_built",
        "pruned.interior_pixels",
    ];
    let before: Vec<u64> = {
        let snap = sma_obs::metrics::snapshot();
        names.iter().map(|n| snap.counter(n)).collect()
    };
    black_box(track_all_pruned(&frames, &cfg, region)).expect("track");
    let snap = sma_obs::metrics::snapshot();
    let mut out = [("", 0u64); 4];
    for (i, n) in names.iter().enumerate() {
        out[i] = (*n, snap.counter(n).saturating_sub(before[i]));
    }
    sma_obs::set_level(prev);
    out
}

fn main() {
    let small_only = std::env::args().skip(1).any(|a| a == "--small");
    let scenarios: &[Scenario] = if small_only {
        &[Scenario {
            name: "small_t7",
            side: 40,
            nzt: 3,
            nzs: 2,
        }]
    } else {
        &[
            Scenario {
                name: "small_t7",
                side: 40,
                nzt: 3,
                nzs: 2,
            },
            Scenario {
                name: "medium_t21",
                side: 64,
                nzt: 10,
                nzs: 4,
            },
            Scenario {
                name: "large_t31",
                side: 96,
                nzt: 15,
                nzs: 5,
            },
        ]
    };

    println!("SMA hot path: exact vs integral vs SIMD lane kernels vs pruned search vs planner");
    println!(
        "  {:<12} {:>7} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>8} {:>8} {:>8} {:>8}",
        "scenario",
        "frame",
        "template",
        "exact_seq",
        "exact_par",
        "int_seq",
        "int_par",
        "simd_seq",
        "simd_par",
        "prune_seq",
        "prune_par",
        "planner",
        "int_x",
        "simd_x",
        "prune_x",
        "pln_x"
    );

    let mut rows = Vec::new();
    for s in scenarios {
        let r = run_scenario(s);
        println!(
            "  {:<12} {:>4}^2 {:>6}^2 {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s {:>10.4}s {:>7.1}x {:>7.1}x {:>7.2}x {:>7.2}x",
            r.name,
            r.frame,
            r.template_side,
            r.exact_seq,
            r.exact_par,
            r.integral_seq,
            r.integral_par,
            r.simd_seq,
            r.simd_par,
            r.pruned_seq,
            r.pruned_par,
            r.planner,
            r.speedup_parallel(),
            r.speedup_simd(),
            r.speedup_pruned(),
            r.speedup_planner()
        );
        rows.push(r);
    }

    // Per-kernel span breakdown and prune-rate counters on the gate
    // scenario (medium in full mode, small in smoke mode).
    let gate_scenario = if small_only {
        &scenarios[0]
    } else {
        &scenarios[1]
    };
    let kernels = kernel_breakdown(gate_scenario);
    let prune = prune_counters(gate_scenario);

    // Hand-formatted JSON (no serde in the workspace).
    let mut json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"unit\": \"seconds\",\n  \"mode\": \"{}\",\n  \"scenarios\": [\n",
        if small_only { "small" } else { "full" }
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"frame\": {},\n",
                "      \"template_side\": {},\n",
                "      \"search_side\": {},\n",
                "      \"exact_sequential\": {:.6},\n",
                "      \"exact_parallel\": {:.6},\n",
                "      \"integral_sequential\": {:.6},\n",
                "      \"integral_parallel\": {:.6},\n",
                "      \"simd_sequential\": {:.6},\n",
                "      \"simd_parallel\": {:.6},\n",
                "      \"pruned_sequential\": {:.6},\n",
                "      \"pruned_parallel\": {:.6},\n",
                "      \"planner\": {:.6},\n",
                "      \"speedup_integral_vs_exact_parallel\": {:.4},\n",
                "      \"speedup_integral_vs_exact_sequential\": {:.4},\n",
                "      \"speedup_simd_vs_integral_sequential\": {:.4},\n",
                "      \"speedup_simd_vs_integral_parallel\": {:.4},\n",
                "      \"speedup_pruned_vs_simd_sequential\": {:.4},\n",
                "      \"speedup_planner_vs_best_static\": {:.4}\n",
                "    }}{}\n"
            ),
            r.name,
            r.frame,
            r.template_side,
            r.search_side,
            r.exact_seq,
            r.exact_par,
            r.integral_seq,
            r.integral_par,
            r.simd_seq,
            r.simd_par,
            r.pruned_seq,
            r.pruned_par,
            r.planner,
            r.speedup_parallel(),
            r.speedup_sequential(),
            r.speedup_simd(),
            r.speedup_simd_parallel(),
            r.speedup_pruned(),
            r.speedup_planner(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"kernel_breakdown_scenario\": \"{}\",\n  \"kernels\": [\n",
        gate_scenario.name
    ));
    for (i, (path, calls, secs)) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"path\": \"{path}\", \"calls\": {calls}, \"seconds\": {secs:.6} }}{}\n",
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"prune\": {\n");
    for (i, (name, value)) in prune.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {value}{}\n",
            if i + 1 < prune.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("\nwrote BENCH_hotpath.json");

    // The timing rows above are the report's only artifact:
    // `BENCH_hotpath.json` holds the per-scenario wall-clock numbers,
    // and `METRICS_hotpath.json` (counters + gauges) is owned by
    // `obs_report` — one canonical schema per file, no near-duplicate
    // `METRICS_hotpath_report.json`.

    // Acceptance gates. Full mode: the integral fast path must clear
    // 10x over the exact kernels on medium, the SIMD family must clear
    // 3x over the scalar integral baseline on medium (sequential pair —
    // see [`Row::speedup_simd`] for why the parallel pair is not the
    // gate basis), and the pruned search must clear 1.5x over the
    // exhaustive SIMD sweep on medium and 2x on large — the larger
    // sweep (121 hypotheses vs 81) gives the bound more to reject, so
    // the bar rises with the scenario.
    // Smoke mode (--small): relaxed thresholds on the small scenario
    // (the small frame spends proportionally more time in fixed setup
    // and CI runners are noisy); its 5 x 5 sweep is also below the
    // pruning cutover that makes the screen worthwhile, so the pruned
    // gate there is a no-regression parity bar, not a speedup bar.
    // The planner gate is a parity bar on every gated scenario: on
    // these uniform interior scenarios the plan collapses to one
    // wholesale call into the fastest admitted driver, so "never slower
    // than the best static driver" means a ratio of ~1.0. The
    // thresholds sit a few percent below 1.0 only to absorb
    // best-of-rounds timer jitter — any structural slowdown (a planner
    // that re-plans per pixel, or mosaics a uniform region) lands far
    // below them. The large-scenario planner gate pins the ratio where
    // a block-ordered measurement once under-read the planner at
    // ~0.87x; round-robin interleaving keeps it honest.
    let mut checks: Vec<(&str, &str, f64, f64)> = Vec::new();
    if small_only {
        let g = &rows[0];
        checks.push((
            "small_t7",
            "integral vs exact (parallel)",
            g.speedup_parallel(),
            3.0,
        ));
        checks.push((
            "small_t7",
            "simd vs integral (sequential)",
            g.speedup_simd(),
            1.2,
        ));
        checks.push((
            "small_t7",
            "pruned vs simd (sequential)",
            g.speedup_pruned(),
            0.8,
        ));
        checks.push((
            "small_t7",
            "planner vs best static",
            g.speedup_planner(),
            0.9,
        ));
    } else {
        let medium = rows
            .iter()
            .find(|r| r.name == "medium_t21")
            .expect("medium row");
        let large = rows
            .iter()
            .find(|r| r.name == "large_t31")
            .expect("large row");
        checks.push((
            "medium_t21",
            "integral vs exact (parallel)",
            medium.speedup_parallel(),
            10.0,
        ));
        checks.push((
            "medium_t21",
            "simd vs integral (sequential)",
            medium.speedup_simd(),
            3.0,
        ));
        checks.push((
            "medium_t21",
            "pruned vs simd (sequential)",
            medium.speedup_pruned(),
            1.5,
        ));
        checks.push((
            "large_t31",
            "pruned vs simd (sequential)",
            large.speedup_pruned(),
            2.0,
        ));
        checks.push((
            "medium_t21",
            "planner vs best static",
            medium.speedup_planner(),
            0.95,
        ));
        checks.push((
            "large_t31",
            "planner vs best static",
            large.speedup_planner(),
            0.9,
        ));
    }
    let mut ok = true;
    for (scenario, label, got, need) in checks {
        if got >= need {
            println!("acceptance: {scenario} {label} = {got:.2}x (>= {need}x) OK");
        } else {
            println!("acceptance: {scenario} {label} = {got:.2}x (< {need}x) FAIL");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
