//! The §5 Hurricane Luis *dense sequence* experiment, executed: a long
//! monocular rapid-scan sequence tracked pair by pair (scaled to 64 x 64
//! and 24 frames so it runs in seconds), with frames staged through the
//! simulated MPDA exactly as the 490-frame GOES-9 run was.
//!
//! ```sh
//! cargo run --release -p sma-bench --bin luis_sequence_run
//! ```

use maspar_sim::mpda::{Mpda, MpdaConfig};
use sma_core::motion::SmaFrames;
use sma_core::sequential::Region;
use sma_core::{track_all_parallel, MotionModel, SmaConfig};
use sma_satdata::hurricane_luis_analog;

fn main() {
    let frames_count = 24usize;
    let size = 64usize;
    let seq = hurricane_luis_analog(size, frames_count, 1995);
    println!(
        "Luis dense-sequence run: {} frames of {size}x{size} at {} min (scaled from 490 x 512^2)",
        seq.len(),
        seq.interval_minutes
    );

    // Stage all frames through the MPDA, as the real run did.
    let mut mpda = Mpda::new(MpdaConfig::goddard());
    for (t, f) in seq.frames.iter().enumerate() {
        mpda.write(&format!("luis_t{t}"), &f.intensity);
    }
    println!(
        "staged {} frames on the MPDA: {:.4} s of disk time at 30 MB/s",
        mpda.num_frames(),
        mpda.io_seconds()
    );

    // Track every consecutive pair (continuous model, like the paper's
    // Luis run), reading frames back from the MPDA.
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let margin = cfg.margin() + 2;
    let mut worst_rms = 0.0f32;
    let mut sum_rms = 0.0f32;
    let started = std::time::Instant::now();
    for t in 0..seq.len() - 1 {
        let before = mpda.read(&format!("luis_t{t}")).expect("staged frame");
        let after = mpda
            .read(&format!("luis_t{}", t + 1))
            .expect("staged frame");
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let result = track_all_parallel(&frames, &cfg, Region::Interior { margin }).expect("track");
        let pts: Vec<(usize, usize)> = result.region.pixels().collect();
        let stats = result.flow().compare_at(&seq.truth_flows[t], &pts);
        sum_rms += stats.rms_endpoint;
        worst_rms = worst_rms.max(stats.rms_endpoint);
        if t % 6 == 0 {
            println!(
                "  pair {t:>2}: rms {:.3} px, {:.1}% valid",
                stats.rms_endpoint,
                100.0 * result.valid_fraction()
            );
        }
    }
    let pairs = (seq.len() - 1) as f32;
    println!(
        "tracked {} pairs in {:.1} s host time: mean RMS {:.3} px, worst {:.3} px (criterion < 1 px: {})",
        pairs as usize,
        started.elapsed().as_secs_f64(),
        sum_rms / pairs,
        worst_rms,
        if worst_rms < 1.0 { "PASS" } else { "FAIL" }
    );
    println!(
        "total MPDA traffic after read-back: {:.4} s ({} reads + {} writes charged)",
        mpda.io_seconds(),
        2 * (seq.len() - 1),
        seq.len()
    );
}
