//! Bench sentinel: diff the current `BENCH_hotpath.json` /
//! `BENCH_stream.json` / `BENCH_serve.json` against the committed
//! baselines and fail on regression.
//!
//! Usage: `bench_sentinel [--tolerance R] [--hotpath FILE]
//! [--stream FILE] [--serve FILE] [--baseline-hotpath FILE]
//! [--baseline-stream FILE] [--baseline-serve FILE]`
//!
//! The serve pair is optional: `serve_report` lives in a different CI
//! job than the hotpath/stream reports, so a missing current
//! `BENCH_serve.json` is skipped with a note rather than failed —
//! but if the current file exists the baseline must too.
//!
//! Wall-clock seconds are machine-dependent, so the sentinel never
//! compares them. It compares the *speedup ratios* each report derives
//! (integral-vs-exact, SIMD-vs-integral, streaming-vs-naive): ratios of
//! two timings taken seconds apart on the same host divide out the
//! host, leaving only genuine structural regressions plus scheduler
//! noise. A scenario regresses when its current ratio falls below
//! `baseline * (1 - tolerance)`; the default tolerance of 0.35 sits
//! well above observed run-to-run jitter and well below the 3 x / 10 x
//! structural margins the reports gate on. Deterministic fields —
//! streaming cache hit/miss/eviction counts and the `bit_identical`
//! flag — are compared exactly: they do not jitter, so any drift is a
//! behaviour change, not noise.
//!
//! Scenarios present only in the baseline fail the run (coverage must
//! not silently shrink); scenarios present only in the current file are
//! reported and accepted (new coverage needs a `--bless`-style baseline
//! refresh, which is just copying the file).

use sma_obs::json::{parse, JsonValue};

/// Relative shrink a speedup ratio may show before the sentinel fails.
const DEFAULT_TOLERANCE: f64 = 0.35;

/// One scenario's comparable numbers.
struct Scenario {
    name: String,
    /// `(field, value)` speedup ratios, tolerance-compared.
    ratios: Vec<(String, f64)>,
    /// `(field, value)` deterministic counts, exact-compared.
    exact: Vec<(String, f64)>,
}

fn load(path: &str) -> Result<Vec<Scenario>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read ({e})"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: not valid JSON ({e})"))?;
    let scenarios = match doc.get("scenarios") {
        Some(JsonValue::Arr(s)) => s,
        _ => return Err(format!("{path}: missing scenarios array")),
    };
    let mut out = Vec::new();
    for (i, sc) in scenarios.iter().enumerate() {
        let obj = match sc {
            JsonValue::Obj(fields) => fields,
            _ => return Err(format!("{path}: scenario {i} is not an object")),
        };
        let name = sc
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}: scenario {i} has no name"))?
            .to_string();
        let mut ratios = Vec::new();
        let mut exact = Vec::new();
        for (field, value) in obj {
            if field.starts_with("speedup_") {
                let v = value
                    .as_f64()
                    .ok_or_else(|| format!("{path}: {name}.{field} is not a number"))?;
                ratios.push((field.clone(), v));
            } else if matches!(
                field.as_str(),
                "cache_hits" | "cache_misses" | "cache_evictions"
            ) {
                let v = value
                    .as_f64()
                    .ok_or_else(|| format!("{path}: {name}.{field} is not a number"))?;
                exact.push((field.clone(), v));
            } else if field == "bit_identical" {
                let v = match value {
                    JsonValue::Bool(b) => f64::from(*b),
                    _ => return Err(format!("{path}: {name}.{field} is not a bool")),
                };
                exact.push((field.clone(), v));
            }
        }
        if ratios.is_empty() {
            return Err(format!("{path}: scenario {name} has no speedup_* field"));
        }
        out.push(Scenario {
            name,
            ratios,
            exact,
        });
    }
    if out.is_empty() {
        return Err(format!("{path}: no scenarios"));
    }
    Ok(out)
}

/// Compare one current file against its baseline; returns failure lines.
fn compare(label: &str, current: &[Scenario], baseline: &[Scenario], tol: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!(
                "{label}: scenario {:?} present in baseline but missing from current run",
                base.name
            ));
            continue;
        };
        for (field, base_v) in &base.ratios {
            let Some((_, cur_v)) = cur.ratios.iter().find(|(f, _)| f == field) else {
                failures.push(format!(
                    "{label}: {}.{field} missing from current run",
                    base.name
                ));
                continue;
            };
            let floor = base_v * (1.0 - tol);
            let verdict = if *cur_v < floor { "REGRESSED" } else { "ok" };
            println!(
                "  {label} {:<12} {:<40} base {:>8.4} cur {:>8.4} floor {:>8.4} {verdict}",
                base.name, field, base_v, cur_v, floor
            );
            if *cur_v < floor {
                failures.push(format!(
                    "{label}: {}.{field} regressed: {cur_v:.4} < floor {floor:.4} \
                     (baseline {base_v:.4}, tolerance {tol})",
                    base.name
                ));
            }
        }
        for (field, base_v) in &base.exact {
            let Some((_, cur_v)) = cur.exact.iter().find(|(f, _)| f == field) else {
                failures.push(format!(
                    "{label}: {}.{field} missing from current run",
                    base.name
                ));
                continue;
            };
            if cur_v != base_v {
                failures.push(format!(
                    "{label}: {}.{field} changed exactly-compared value: \
                     baseline {base_v} vs current {cur_v}",
                    base.name
                ));
            }
        }
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            println!(
                "  {label} {:<12} new scenario (not in baseline) — accepted",
                cur.name
            );
        }
    }
    failures
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tol = match flag_value(&args, "--tolerance") {
        None => DEFAULT_TOLERANCE,
        Some(s) => match s.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!("bench_sentinel: --tolerance expects a number in [0, 1), got {s:?}");
                std::process::exit(2);
            }
        },
    };
    let pairs = [
        (
            "hotpath",
            flag_value(&args, "--hotpath").unwrap_or("BENCH_hotpath.json"),
            flag_value(&args, "--baseline-hotpath").unwrap_or("baselines/BENCH_hotpath.json"),
            false,
        ),
        (
            "stream",
            flag_value(&args, "--stream").unwrap_or("BENCH_stream.json"),
            flag_value(&args, "--baseline-stream").unwrap_or("baselines/BENCH_stream.json"),
            false,
        ),
        (
            "serve",
            flag_value(&args, "--serve").unwrap_or("BENCH_serve.json"),
            flag_value(&args, "--baseline-serve").unwrap_or("baselines/BENCH_serve.json"),
            true,
        ),
    ];

    println!("bench_sentinel: tolerance {tol} (ratios may shrink this fraction)");
    let mut failures: Vec<String> = Vec::new();
    let mut skipped: Vec<&str> = Vec::new();
    for (label, cur_path, base_path, optional) in pairs {
        if optional && !std::path::Path::new(cur_path).exists() {
            // Loud on purpose: an optional pair that silently vanished
            // would let a report-wiring regression masquerade as green.
            println!("SKIPPED {label}: {cur_path} absent (produced by a separate job)");
            skipped.push(label);
            continue;
        }
        let current = match load(cur_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench_sentinel: {e}");
                std::process::exit(2);
            }
        };
        let baseline = match load(base_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench_sentinel: {e}");
                std::process::exit(2);
            }
        };
        println!("{label}: {cur_path} vs {base_path}");
        failures.extend(compare(label, &current, &baseline, tol));
    }

    if !failures.is_empty() {
        eprintln!("\nbench_sentinel: {} regression(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if skipped.is_empty() {
        println!("\nbench_sentinel: no regressions OK (0 pairs skipped)");
    } else {
        println!(
            "\nbench_sentinel: no regressions OK ({} pair(s) skipped: {})",
            skipped.len(),
            skipped.join(", ")
        );
    }
}
