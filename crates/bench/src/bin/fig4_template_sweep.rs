//! Regenerate **Fig. 4** — "Time to compute a single pixel
//! correspondence for varying z-Template sizes" (sequential, 11 x 11 to
//! 131 x 131) — twice:
//!
//! * the **SGI R8000/90 model** curve (the paper's machine), and
//! * a **measured host curve**: our actual sequential implementation
//!   timed per pixel at each template size (different absolute scale,
//!   same quadratic-in-edge shape).
//!
//! The binary also reproduces §5.1's consistency remark: projecting the
//! 121 x 121 per-pixel time over 512 x 512 pixels gives ~397 days,
//! while a naive Fig. 4 reading "gives a slight underestimate ... due
//! to the nonlinear scalability factor in the timing dependence on the
//! z-Search window parameter".
//!
//! ```sh
//! cargo run --release -p sma-bench --bin fig4_template_sweep
//! ```

use std::time::Instant;

use sma_bench::shifted_frames;
use sma_core::motion::evaluate_hypothesis;
use sma_core::timing::SgiRates;
use sma_core::{MotionModel, SmaConfig};
use sma_obs::json::MetricsDoc;

fn main() {
    let cfg_base = SmaConfig::hurricane_frederic();
    let rates = SgiRates::default();

    println!("Fig. 4 — sequential time per pixel correspondence vs z-Template size");
    println!("  (13 x 13 z-search; semi-fluid model)\n");
    println!(
        "  {:>10} {:>18} {:>22}",
        "template", "SGI model (s/px)", "host measured (ms/px)"
    );

    // The paper sweeps 11x11 .. 131x131. The SGI model covers the full
    // range; host measurement uses a reduced hypothesis count per pixel
    // (timing one hypothesis and scaling by 169) to keep the sweep fast.
    let host_frames = shifted_frames(
        168,
        168,
        1.0,
        0.0,
        &SmaConfig {
            nz: 2,
            ..SmaConfig::small_test(MotionModel::SemiFluid)
        },
    );
    let mut doc = MetricsDoc::new("fig4_template_sweep");
    for nzt in [5usize, 10, 15, 20, 30, 40, 50, 60, 65] {
        let side = 2 * nzt + 1;
        let model_s = rates.per_pixel_seconds(&cfg_base, nzt);

        // Host measurement: one hypothesis evaluation at this template
        // size, center pixel, scaled to the 169-hypothesis pixel cost.
        let cfg = SmaConfig {
            nzt,
            nzs: 6,
            ..SmaConfig::hurricane_frederic()
        };
        let reps = if nzt <= 20 { 5 } else { 2 };
        let t0 = Instant::now();
        for _ in 0..reps {
            let est = evaluate_hypothesis(&host_frames, &cfg, 84, 84, 1, 0);
            assert!(est.is_some());
        }
        let per_hyp = t0.elapsed().as_secs_f64() / reps as f64;
        let host_ms = per_hyp * 169.0 * 1e3;

        println!("  {side:>6} x {side:<3} {model_s:>18.3} {host_ms:>22.1}");
        doc.set_gauge(&format!("fig4.t{side}.sgi_model_s_per_px"), model_s);
        doc.set_gauge(&format!("fig4.t{side}.host_measured_ms_per_px"), host_ms);
    }

    // §5.1's projection consistency check.
    let t121 = rates.per_pixel_seconds(&cfg_base, 60);
    let days_from_fig4 = t121 * 512.0 * 512.0 / 86_400.0;
    println!(
        "\n  projecting the 121 x 121 point over 512 x 512 pixels: {days_from_fig4:.1} days \
         (paper: 397.34 days total, 313 days from its Fig. 4 reading)"
    );
    // Quadratic-shape check: doubling the edge ~quadruples the time.
    let r = rates.per_pixel_seconds(&cfg_base, 30) / rates.per_pixel_seconds(&cfg_base, 15);
    println!("  shape: t(61x61)/t(31x31) = {r:.2} (quadratic in edge => ~3.9)");

    doc.set_gauge("fig4.projected_days_over_512sq", days_from_fig4);
    doc.set_gauge("fig4.quadratic_shape_ratio", r);
    std::fs::write("METRICS_fig4.json", doc.to_json()).expect("write METRICS_fig4.json");
    println!("\nwrote METRICS_fig4.json");
}
