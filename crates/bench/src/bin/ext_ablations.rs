//! Ablation report for the §6 extensions: what each future-work feature
//! buys, measured on controlled scenes.
//!
//! ```sh
//! cargo run --release -p sma-bench --bin ext_ablations
//! ```

use sma_bench::wavy;
use sma_core::ext::classify::{classify_and_clean, classify_by_height};
use sma_core::ext::hierarchy::track_hierarchical;
use sma_core::ext::regularize::vector_median_filter;
use sma_core::ext::robust::{track_pixel_robust, RobustParams};
use sma_core::motion::{track_pixel, SmaFrames};
use sma_core::{MotionModel, SmaConfig};
use sma_grid::warp::translate;
use sma_grid::{BorderPolicy, FlowField, Grid, Vec2};
use sma_stereo::coupled::refine_disparity_with_motion;

fn main() {
    println!("§6 extension ablations\n");

    // --- Robust estimation under corruption ---------------------------
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let before = wavy(30, 30);
    let mut corrupted = before.clone();
    for y in 10..13 {
        for x in 10..13 {
            corrupted.set(x, y, corrupted.at(x, y) + 25.0);
        }
    }
    let frames =
        SmaFrames::prepare(&before, &corrupted, &before, &corrupted, &cfg).expect("prepare");
    // Compare at the true (zero) hypothesis so the metric isolates the
    // Step-2 estimator rather than the hypothesis search.
    let plain = sma_core::motion::evaluate_hypothesis(&frames, &cfg, 15, 15, 0, 0).unwrap();
    let robust = sma_core::ext::robust::evaluate_hypothesis_robust(
        &frames,
        &cfg,
        RobustParams::default(),
        15,
        15,
        0,
        0,
    )
    .unwrap();
    let mag = |p: [f64; 6]| p.iter().map(|v| v.abs()).sum::<f64>();
    println!("robust estimation (occluding block, truth = zero deformation):");
    println!("  plain LSQ |params|  = {:.4}", mag(plain.0.params()));
    println!(
        "  Huber IRLS |params| = {:.4}  (smaller = closer to truth)",
        mag(robust.0.params())
    );
    let _ = track_pixel_robust; // the tracker variant is exercised in unit tests
    let _ = track_pixel;

    // --- Hierarchical (adaptive search) vs flat -----------------------
    let b = wavy(72, 72);
    let a = translate(&b, -5.0, 0.0, BorderPolicy::Clamp);
    let flat = track_hierarchical(&b, &a, &b, &a, &cfg, 1).expect("track");
    let hier = track_hierarchical(&b, &a, &b, &a, &cfg, 3).expect("track");
    let score = |f: &FlowField| {
        let mut e = 0.0f32;
        let mut n = 0;
        for y in 24..48 {
            for x in 24..48 {
                e += (f.at(x, y) - Vec2::new(5.0, 0.0)).magnitude();
                n += 1;
            }
        }
        e / n as f32
    };
    println!("\nadaptive hierarchical search (5 px motion, +-2 px search window):");
    println!(
        "  flat (1 level):  mean error {:.3} px (search cannot reach the motion)",
        score(&flat)
    );
    println!("  hierarchy (3):   mean error {:.3} px", score(&hier));

    // --- Vector median post-processing ---------------------------------
    let mut noisy = FlowField::uniform(20, 20, Vec2::new(1.0, 0.0));
    for k in 0..8 {
        noisy.set(2 + 2 * k, 3 + k, Vec2::new(-6.0, 7.0));
    }
    let cleaned = vector_median_filter(&noisy, 1);
    let truth = FlowField::uniform(20, 20, Vec2::new(1.0, 0.0));
    println!("\nvector median filter (8 impulse outliers on a uniform field):");
    println!("  before: RMS {:.3} px", noisy.compare(&truth).rms_endpoint);
    println!(
        "  after:  RMS {:.3} px",
        cleaned.compare(&truth).rms_endpoint
    );

    // --- Cloud-classification cleaning ---------------------------------
    let heights = Grid::from_fn(20, 20, |x, _| if x < 10 { 2.0f32 } else { 8.0 });
    let classes = classify_by_height(&heights, &[5.0]);
    let mut layered = FlowField::from_fn(20, 20, |x, _| {
        if x < 10 {
            Vec2::new(1.5, 0.0)
        } else {
            Vec2::new(-1.5, 0.5)
        }
    });
    layered.set(4, 4, Vec2::new(-1.5, 0.5)); // deck-0 pixel stuck on deck-1 motion
    layered.set(14, 7, Vec2::new(1.5, 0.0)); // and vice versa
    let (fixed, snapped) = classify_and_clean(&layered, &classes, 2, 1.0);
    println!("\ncloud-classification post-processing (two decks, 2 cross-assigned pixels):");
    println!("  snapped {snapped} outliers to their class medians");
    println!("  deck-0 outlier now {:?}", fixed.at(4, 4));

    // --- Coupled stereo-motion ------------------------------------------
    let d0 = Grid::from_fn(48, 48, |x, y| {
        ((x as f32 * 0.3).sin() + (y as f32 * 0.2).cos()) * 2.0 + 4.0
    });
    let flow = FlowField::uniform(48, 48, Vec2::new(2.0, 0.0));
    let neg = FlowField::from_fn(48, 48, |x, y| -flow.at(x, y));
    let d1_true = sma_grid::warp::warp_by_flow(&d0, &neg, BorderPolicy::Clamp);
    let d1_noisy = Grid::from_fn(48, 48, |x, y| {
        d1_true.at(x, y) + if (x * 7 + y * 13) % 2 == 0 { 0.5 } else { -0.5 }
    });
    let fused = refine_disparity_with_motion(&d0, &d1_noisy, &flow, 0.5);
    println!("\ncoupled stereo-motion (alpha = 0.5 temporal prior):");
    println!(
        "  per-frame stereo RMS vs truth: {:.3}",
        d1_noisy.rms_diff(&d1_true)
    );
    println!(
        "  motion-coupled RMS vs truth:   {:.3}",
        fused.rms_diff(&d1_true)
    );
}
