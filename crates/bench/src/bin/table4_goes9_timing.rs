//! Regenerate **Table 4** — per-timestep timing of the GOES-9 Florida
//! thunderstorm run (continuous model) — as a *prediction* from the
//! Table 2-calibrated rates, plus the 193x run-time gain.
//!
//! This is the transfer validation: nothing here was fitted to Table 4;
//! the same per-operation rates that close Table 2 must land within
//! ~10% on a different model (continuous vs semi-fluid) and different
//! windows (15 x 15 vs 13 x 13 / 121 x 121).
//!
//! ```sh
//! cargo run -p sma-bench --bin table4_goes9_timing
//! ```

use sma_bench::print_row;
use sma_core::timing::{paper, Mp2Rates, SgiRates, SmaWorkload};
use sma_core::SmaConfig;
use sma_obs::json::MetricsDoc;

fn main() {
    let cfg = SmaConfig::goes9_florida();
    let workload = SmaWorkload::from_config(&cfg, 512, 512);
    println!("Table 4 — timing analysis for one timestep of GOES-9 Florida thunderstorm images");
    println!("  (512 x 512, continuous model Fcont, 15 x 15 search and template)\n");
    println!(
        "  workload: {} surface-fit GEs, {:.3e} hypothesis error terms (no semi-fluid phase)",
        workload.surface_fit_ges, workload.hyp_terms as f64
    );

    let b = Mp2Rates::default().breakdown(&workload);
    let surface_geom = b.phase("Surface fit") + b.phase("Compute geometric variables");
    println!(
        "\n  {:<34} {:>14} {:>14} {:>8}",
        "Subroutine", "predicted (s)", "paper (s)", "rel"
    );
    print_row(
        "Surface fit & geometric variables",
        surface_geom,
        paper::TABLE4_SURFACE_GEOM_S,
    );
    print_row(
        "Hypothesis matching",
        b.phase("Hypothesis matching"),
        paper::TABLE4_HYPOTHESIS_S,
    );
    print_row("Total", b.total(), paper::TABLE4_TOTAL_S);

    let seq = SgiRates::default().seconds(&workload, cfg.model);
    let speedup = seq / b.total();
    println!(
        "\n  parallel total: {:.3} min (paper: 12.854 min)",
        b.total() / 60.0
    );
    println!(
        "  sequential (SGI model): {:.2} h (paper: {} h)",
        seq / 3600.0,
        paper::GOES9_SEQUENTIAL_HOURS
    );
    println!(
        "  run-time gain: {speedup:.0}x (paper: {:.0}x)",
        paper::GOES9_SPEEDUP
    );
    println!(
        "\n  shape check vs Frederic: the gain here is much smaller than 1025x because\n  \
         \"the semi-fluid template mapping of (9), where the parallel implementation\n  \
         was optimized most[,] is not needed for the continuous non-rigid motion model\"."
    );

    // Shared metrics document: the analytic workload counts and the
    // predicted phase seconds of this table.
    let mut doc = MetricsDoc::capture("table4_goes9_timing");
    doc.set_counter("workload.surface_fit_ges", workload.surface_fit_ges);
    doc.set_counter("workload.hyp_ges", workload.hyp_ges);
    doc.set_counter("workload.hyp_terms", workload.hyp_terms);
    doc.set_gauge("table4.surface_fit_and_geom_predicted_s", surface_geom);
    doc.set_gauge(
        "table4.hypothesis_matching_predicted_s",
        b.phase("Hypothesis matching"),
    );
    doc.set_gauge("table4.total_predicted_s", b.total());
    doc.set_gauge("table4.sequential_model_s", seq);
    doc.set_gauge("table4.speedup", speedup);
    std::fs::write("METRICS_table4.json", doc.to_json()).expect("write METRICS_table4.json");
    println!("\nwrote METRICS_table4.json");
}
