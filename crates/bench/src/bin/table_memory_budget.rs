//! Regenerate the **§4.3 PE-memory analysis**: the 64 KB/PE budget, the
//! 67.7 KB counter-example that forces segmentation, and the
//! segmentation decision (`Z` rows per chunk, number of chunks) across
//! search-area sizes.
//!
//! ```sh
//! cargo run -p sma-bench --bin table_memory_budget
//! ```

use maspar_sim::memory::{MemoryBudget, GODDARD_PE_MEMORY_BYTES};

fn main() {
    println!("§4.3 — PE memory budget (64 KB/PE, 512 x 512 on 128 x 128 => 16 px/PE)\n");
    println!(
        "  {:>8} {:>14} {:>12} {:>10} {:>8} {:>8}",
        "search", "mappings (KB)", "total (KB)", "fits?", "Z rows", "chunks"
    );
    for nzs in [4usize, 6, 8, 11, 15, 20, 31] {
        let b = MemoryBudget {
            xvr: 4,
            yvr: 4,
            nzs,
            nst: 2,
            nss: 1,
            pe_memory_bytes: GODDARD_PE_MEMORY_BYTES,
        };
        let side = 2 * nzs + 1;
        let mappings_kb = b.unsegmented_template_bytes() as f64 / 1024.0;
        let total_kb = b.total_bytes(side) as f64 / 1024.0;
        match b.max_segment_rows() {
            Some(z) => println!(
                "  {side:>3}x{side:<4} {mappings_kb:>14.1} {total_kb:>12.1} {:>10} {z:>8} {:>8}",
                if b.unsegmented_fits() { "yes" } else { "no" },
                b.num_segments().unwrap()
            ),
            None => println!(
                "  {side:>3}x{side:<4} {mappings_kb:>14.1} {total_kb:>12.1} {:>10} {:>8} {:>8}",
                "no", "-", "impossible"
            ),
        }
    }

    println!("\n  paper anchors reproduced:");
    let frederic = MemoryBudget {
        xvr: 4,
        yvr: 4,
        nzs: 6,
        nst: 2,
        nss: 1,
        pe_memory_bytes: GODDARD_PE_MEMORY_BYTES,
    };
    println!(
        "   - Frederic 13x13 search: {:.1} KB of mappings, unsegmented run fits (Table 2's Z = 13)",
        frederic.unsegmented_template_bytes() as f64 / 1024.0
    );
    let example = MemoryBudget {
        xvr: 4,
        yvr: 4,
        nzs: 11,
        nst: 2,
        nss: 1,
        pe_memory_bytes: GODDARD_PE_MEMORY_BYTES,
    };
    println!(
        "   - 23x23 example: \"two floating pointing numbers ... would still require 67.7 KB per PE\"\n     \
         => {} bytes = 67.7 decimal-KB ({:.1} KiB) > 64 KiB, so the store is segmented by hypothesis rows",
        example.unsegmented_template_bytes(),
        example.unsegmented_template_bytes() as f64 / 1024.0
    );
    assert_eq!(example.unsegmented_template_bytes(), 67_712);
}
