//! Regenerate the machine figures:
//!
//! * **Fig. 1** — the 128 x 128 PE array with 8-way X-net mesh and
//!   toroidal connections: connectivity and distance properties;
//! * **Fig. 2** — the 2-D hierarchical data mapping (the paper's own
//!   4 x 4 on 2 x 2 example), vs cut-and-stack;
//! * **Fig. 3** — the snake read-out path, and the §4.2 snake-vs-raster
//!   comparison that made the implementation adopt raster.
//!
//! ```sh
//! cargo run -p sma-bench --bin fig123_machine
//! ```

use maspar_sim::array::{PeArray, PluralVar};
use maspar_sim::mapping::{DataMapping, MappingKind};
use maspar_sim::readout::{scheme_op_estimate, snake_path};
use maspar_sim::xnet::{mesh_distance, xnet_fetch, ALL_DIRECTIONS};

fn main() {
    // --- Fig. 1 --------------------------------------------------------
    println!("Fig. 1 — PE array and X-net mesh");
    let pe = PeArray::goddard_mp2();
    println!(
        "  {} PEs as (ixproc, iyproc) in {} x {}; each PE has {} X-net neighbors",
        pe.num_pes(),
        pe.nxproc(),
        pe.nyproc(),
        ALL_DIRECTIONS.len()
    );
    // Toroidal wrap demonstration: one fetch moves edge data across.
    let v = PluralVar::from_fn(128, 128, |x, y| (x, y));
    let w = xnet_fetch(&v, maspar_sim::xnet::Direction::West);
    assert_eq!(w.get(0, 5), (127, 5));
    println!("  toroidal: PE (0, 5) fetching West reads PE (127, 5) — wrap verified");
    println!(
        "  mesh distances (Chebyshev on the torus): (0,0)->(3,1): {}, (0,0)->(127,0): {}, (0,0)->(64,64): {}",
        mesh_distance((0, 0), (3, 1), 128, 128),
        mesh_distance((0, 0), (127, 0), 128, 128),
        mesh_distance((0, 0), (64, 64), 128, 128)
    );

    // --- Fig. 2 --------------------------------------------------------
    println!("\nFig. 2 — 2-D hierarchical data mapping (paper example: 4 x 4 on 2 x 2)");
    let m = DataMapping::new(MappingKind::Hierarchical, 4, 4, 2, 2);
    println!(
        "  xvr = {}, yvr = {}, {} layers per PE",
        m.xvr(),
        m.yvr(),
        m.layers()
    );
    println!("  pixel -> (ixproc, iyproc, mem):");
    for y in 0..4 {
        let row: Vec<String> = (0..4)
            .map(|x| {
                let (ix, iy, mem) = m.to_pe(x, y);
                format!("({ix},{iy},L{mem})")
            })
            .collect();
        println!("    y={y}:  {}", row.join("  "));
    }
    let big = DataMapping::new(MappingKind::Hierarchical, 512, 512, 128, 128);
    println!(
        "  512 x 512 on 128 x 128: {} pixels per PE (eq. 12/13); inverse verified bijective",
        big.layers()
    );
    // The §3.2 comparison, measured exactly on a reduced instance.
    let h = DataMapping::new(MappingKind::Hierarchical, 64, 64, 16, 16);
    let c = DataMapping::new(MappingKind::CutAndStack, 64, 64, 16, 16);
    println!(
        "  mean X-net hops to gather a 5x5 window: hierarchical {:.2} vs cut-and-stack {:.2} ({:.1}x fewer)",
        h.mean_window_mesh_transfers(2),
        c.mean_window_mesh_transfers(2),
        c.mean_window_mesh_transfers(2) / h.mean_window_mesh_transfers(2)
    );

    // --- Fig. 3 --------------------------------------------------------
    println!("\nFig. 3 — snake-like read-out path (n = 1 example; 3 x 3 window):");
    let path = snake_path(1);
    let arrows: Vec<String> = path
        .iter()
        .map(|&(dx, dy)| format!("({dx:+},{dy:+})"))
        .collect();
    println!("  {}", arrows.join(" -> "));
    println!("  {} offsets, every step a single mesh shift", path.len());

    println!("\n§4.2 — snake vs raster-scan bounding-box read-out (per-PE transfer ops):");
    println!(
        "  {:>18} {:>12} {:>12} {:>8}",
        "window / folding", "snake", "raster", "ratio"
    );
    for (label, n, xvr) in [
        ("121x121, 16 px/PE", 60usize, 4usize),
        ("15x15, 16 px/PE", 7, 4),
        ("5x5, 16 px/PE", 2, 4),
        ("121x121, 4 px/PE", 60, 2),
    ] {
        let (snake, raster) = scheme_op_estimate(n, xvr, xvr);
        println!(
            "  {label:>18} {snake:>12} {raster:>12} {:>7.1}x",
            snake as f64 / raster as f64
        );
    }
    println!("  (\"This approach [raster] was found to be faster and was thus incorporated\")");

    // §3.1's X-net-vs-router decision, in modelled seconds: one full
    // 121x121 window sweep of a 512x512 f32 plane on the Goddard machine.
    use maspar_sim::cost::{Mp2CostModel, OpCounts};
    let model = Mp2CostModel::goddard_mp2();
    let pes = 16384.0;
    let (snake, raster) = scheme_op_estimate(60, 4, 4);
    let xnet_raster = OpCounts {
        xnet_bytes: raster as f64 * 4.0 * pes,
        ..Default::default()
    };
    let xnet_snake = OpCounts {
        xnet_bytes: snake as f64 * 4.0 * pes,
        ..Default::default()
    };
    // Router: every off-PE window pixel fetched point-to-point; with
    // xvr = 4, a 121x121 window has ~99% off-PE pixels.
    let router_vals = (121.0f64 * 121.0) * 0.99 * 16.0; // per PE, all layers
    let router = OpCounts {
        router_bytes: router_vals * 4.0 * pes,
        ..Default::default()
    };
    println!("\n§3.1 — modelled whole-sweep times for the Frederic z-template fetch:");
    println!(
        "  raster over X-net: {:>8.3} s",
        model.seconds(&xnet_raster)
    );
    println!("  snake over X-net:  {:>8.3} s", model.seconds(&xnet_snake));
    println!(
        "  router p2p:        {:>8.3} s  ({}x the raster X-net sweep)",
        model.seconds(&router),
        (model.seconds(&router) / model.seconds(&xnet_raster)).round()
    );
    println!("  (\"Exploiting the X-net bandwidth was important to the successful");
    println!("   implementation of the SMA algorithm\")");
}
