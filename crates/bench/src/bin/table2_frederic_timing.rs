//! Regenerate **Table 2** — the per-subroutine timing of one Hurricane
//! Frederic image pair on the MP-2 — plus the §5.1 headline numbers
//! (397-day sequential projection, 1025x speed-up).
//!
//! The MP-2 rates are calibrated on this table (see
//! `sma_core::timing::Mp2Rates` for the provenance of each constant),
//! so the Table 2 rows close essentially exactly; the *validation* is
//! Table 4 and the Luis run, which the same rates predict without
//! re-calibration (see their binaries).
//!
//! ```sh
//! cargo run -p sma-bench --bin table2_frederic_timing
//! ```

use sma_bench::print_row;
use sma_core::timing::{paper, Mp2Rates, SgiRates, SmaWorkload};
use sma_core::SmaConfig;
use sma_obs::json::MetricsDoc;

fn main() {
    let cfg = SmaConfig::hurricane_frederic();
    let workload = SmaWorkload::from_config(&cfg, 512, 512);
    println!("Table 2 — timing analysis for a single Hurricane Frederic image pair");
    println!("  (512 x 512, semi-fluid model, unsegmented: Z = 2Nzs+1 = 13)\n");
    println!(
        "  workload: {} surface-fit GEs, {} semi-fluid mappings, {:.3e} hypothesis error terms",
        workload.surface_fit_ges, workload.semifluid_mappings, workload.hyp_terms as f64
    );

    let b = Mp2Rates::default().breakdown(&workload);
    println!(
        "\n  {:<34} {:>14} {:>14} {:>8}",
        "Subroutine", "modelled (s)", "paper (s)", "rel"
    );
    print_row(
        "Surface fit",
        b.phase("Surface fit"),
        paper::TABLE2_SURFACE_FIT_S,
    );
    print_row(
        "Compute geometric variables",
        b.phase("Compute geometric variables"),
        paper::TABLE2_GEOM_VARS_S,
    );
    print_row(
        "Semi-fluid mapping",
        b.phase("Semi-fluid mapping"),
        paper::TABLE2_SEMIFLUID_S,
    );
    print_row(
        "Hypothesis matching",
        b.phase("Hypothesis matching"),
        paper::TABLE2_HYPOTHESIS_S,
    );
    print_row("Total", b.total(), paper::TABLE2_TOTAL_S);

    let seq = SgiRates::default().seconds(&workload, cfg.model);
    let speedup = seq / b.total();
    println!(
        "\n  sequential (SGI R8000/90 model): {:.2} days (paper: {} days projected)",
        seq / 86_400.0,
        paper::FREDERIC_SEQUENTIAL_DAYS
    );
    println!(
        "  parallel total: {:.3} h (paper: 9.298 h)",
        b.total() / 3600.0
    );
    println!(
        "  speed-up: {speedup:.0}x (paper: {:.0}x — \"over three orders of magnitude\")",
        paper::FREDERIC_SPEEDUP
    );
    println!(
        "  hypothesis matching share of total: {:.2}% (shape check: dominates everything)",
        100.0 * b.phase("Hypothesis matching") / b.total()
    );

    // Shared metrics document: the analytic workload counts and the
    // modelled phase seconds of this table.
    let mut doc = MetricsDoc::capture("table2_frederic_timing");
    doc.set_counter("workload.surface_fit_ges", workload.surface_fit_ges);
    doc.set_counter("workload.semifluid_mappings", workload.semifluid_mappings);
    doc.set_counter("workload.hyp_ges", workload.hyp_ges);
    doc.set_counter("workload.hyp_terms", workload.hyp_terms);
    for p in &b.phases {
        doc.set_gauge(&format!("table2.{}.modelled_s", p.name), p.seconds);
    }
    doc.set_gauge("table2.total_modelled_s", b.total());
    doc.set_gauge("table2.sequential_model_s", seq);
    doc.set_gauge("table2.speedup", speedup);
    std::fs::write("METRICS_table2.json", doc.to_json()).expect("write METRICS_table2.json");
    println!("\nwrote METRICS_table2.json");
}
