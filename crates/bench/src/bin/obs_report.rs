//! End-to-end observability report: run a medium SMA workload through
//! every pipeline layer, print the nested span tree, validate the
//! recorded counters against the analytic operation counts of
//! [`sma_core::timing::SmaWorkload`], and emit the shared
//! `METRICS_hotpath.json` document.
//!
//! Usage: `obs_report [--small] [--out PATH] [--faults [SEED:RATE]]`
//!
//! * `--small` — run the reduced CI workload (32 x 32 frames) instead of
//!   the 64 x 64 medium one;
//! * `--out PATH` — write the metrics document to `PATH` instead of
//!   `METRICS_hotpath.json`;
//! * `--faults [SEED:RATE]` — arm the deterministic fault harness
//!   (default `42:0.02`), punch input dropouts into the frames, print
//!   the fault ledger, and validate the `injected == recovered +
//!   degraded` invariant. The cross-driver equivalence assertions stay
//!   live: degraded fast-path pixels re-route through the exact kernel,
//!   so an armed run must still agree with the sequential reference.
//!
//! If `SMA_OBS` is unset the level defaults to `summary` so the report
//! is useful out of the box; set `SMA_OBS=spans` or `trace` for live
//! span printing. With `SMA_TRACE=PATH` the flight recorder captures
//! the whole run — all eleven driver variants — and the report writes a
//! Chrome trace-event JSON to `PATH` (open in Perfetto), validates its
//! structure, and prints per-stage p50/p95/p99 latency.
//! Exits nonzero if any counter disagrees with the
//! analytic model or the measured per-PE memory high-water exceeds the
//! §4.3 [`MemoryBudget`](maspar_sim::memory::MemoryBudget) prediction.

use maspar_sim::machine::{MachineConfig, MasPar, ReadoutScheme};
use sma_bench::wavy;
use sma_core::fastpath::{
    track_all_integral, track_all_integral_parallel, track_all_integral_segmented,
};
use sma_core::maspar_driver::track_on_maspar;
use sma_core::motion::SmaFrames;
use sma_core::precompute::track_all_segmented;
use sma_core::sequential::Region;
use sma_core::timing::SmaWorkload;
use sma_core::{
    track_all_parallel, track_all_pruned, track_all_pruned_parallel, track_all_sequential,
    track_all_simd, track_all_simd_parallel, MotionModel, SmaConfig,
};
use sma_grid::pyramid::Pyramid;
use sma_grid::warp::translate;
use sma_grid::BorderPolicy;
use sma_obs::json::MetricsDoc;
use sma_satdata::dropout::apply_dropouts;
use sma_stereo::hierarchical::MatchParams;
use sma_stereo::match_hierarchical;

/// One analytic-count check: recorded delta vs expected value.
struct Check {
    name: &'static str,
    got: u64,
    want: u64,
}

impl Check {
    fn ok(&self) -> bool {
        self.got == self.want
    }
}

fn counter(name: &str) -> u64 {
    sma_obs::metrics::snapshot().counter(name)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("METRICS_hotpath.json", |s| s.as_str());
    let faults: Option<(u64, f64)> = args.iter().position(|a| a == "--faults").map(|i| match args
        .get(i + 1)
        .filter(|s| !s.starts_with("--"))
    {
        None => (42, 0.02),
        Some(spec) => match spec
            .split_once(':')
            .and_then(|(s, r)| Some((s.parse::<u64>().ok()?, r.parse::<f64>().ok()?)))
        {
            Some(parsed) => parsed,
            None => {
                eprintln!("obs_report: --faults expects SEED:RATE, got {spec:?}");
                std::process::exit(2);
            }
        },
    });
    if let Some((seed, rate)) = faults {
        sma_fault::install(seed, rate);
        sma_fault::reset_ledger();
        println!("fault harness armed: seed {seed}, rate {rate}");
    }

    // Default to summary so the report observes something even when the
    // caller did not set SMA_OBS; an explicit SMA_OBS always wins.
    if std::env::var("SMA_OBS").is_err() {
        sma_obs::set_level(sma_obs::ObsLevel::Summary);
    }

    let side = if small { 32 } else { 64 };
    let cfg = if small {
        SmaConfig::small_test(MotionModel::Continuous)
    } else {
        SmaConfig {
            nzs: 3,
            nzt: 4,
            ..SmaConfig::small_test(MotionModel::Continuous)
        }
    };
    let workload = SmaWorkload::from_config(&cfg, side, side);
    println!(
        "obs_report: {side}x{side} frame, {} hypotheses x {} terms per pixel ({})",
        cfg.hypotheses_per_pixel(),
        cfg.terms_per_hypothesis(),
        if small { "small" } else { "medium" },
    );

    let mut checks: Vec<Check> = Vec::new();
    {
        let _pipeline = sma_obs::span("pipeline");

        // Phase: generate the frame pair.
        let (before, after) = {
            let _s = sma_obs::span("generate");
            let b = wavy(side, side);
            let a = translate(&b, -1.0, 0.0, BorderPolicy::Clamp);
            // Disarmed this is an exact copy; armed it punches the
            // deterministic dropout pattern the quarantine must absorb.
            (apply_dropouts(&b, 0), apply_dropouts(&a, 1))
        };

        // Phase: pyramid + hierarchical stereo (spans recorded inside).
        let _pyr = Pyramid::build(&before, 3);
        let _disparity = match_hierarchical(&before, &after, MatchParams::default());

        // Phase: surface fits (4 geometry passes inside prepare).
        let fits_before = counter("surface.patch_fits");
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        checks.push(Check {
            name: "surface.patch_fits delta == surface_fit_ges",
            got: counter("surface.patch_fits") - fits_before,
            want: workload.surface_fit_ges,
        });

        // Phase: hypothesis matching, sequential over the full frame —
        // the run the analytic model counts exactly.
        let hyp0 = counter("sma.hypotheses_evaluated");
        let ge0 = counter("sma.ge_solves");
        let terms0 = counter("sma.template_terms");
        let seq = track_all_sequential(&frames, &cfg, Region::Full).expect("sequential");
        checks.push(Check {
            name: "sma.hypotheses_evaluated delta == hyp_ges",
            got: counter("sma.hypotheses_evaluated") - hyp0,
            want: workload.hyp_ges,
        });
        checks.push(Check {
            name: "sma.ge_solves delta == hyp_ges",
            got: counter("sma.ge_solves") - ge0,
            want: workload.hyp_ges,
        });
        checks.push(Check {
            name: "sma.template_terms delta == hyp_terms",
            got: counter("sma.template_terms") - terms0,
            want: workload.hyp_terms,
        });

        // Phase: every remaining driver variant on the interior (their
        // counters and spans feed the report and the flight recorder;
        // only the sequential Full run feeds the analytic checks). The
        // exact family owes the reference bit identity; the integral and
        // SIMD families reassociate floating-point sums, so they are
        // numerically (not bit-) identical: same winner, same
        // displacement.
        let region = Region::Interior {
            margin: cfg.margin(),
        };
        let exact_runs = [
            ("parallel", track_all_parallel(&frames, &cfg, region)),
            ("segmented", track_all_segmented(&frames, &cfg, region, 2)),
        ];
        let integral_runs = [
            ("fastpath", track_all_integral(&frames, &cfg, region)),
            (
                "fastpath_par",
                track_all_integral_parallel(&frames, &cfg, region),
            ),
            (
                "fastpath_seg",
                track_all_integral_segmented(&frames, &cfg, region, 2),
            ),
            ("fastpath_simd_seq", track_all_simd(&frames, &cfg, region)),
            (
                "fastpath_simd_par",
                track_all_simd_parallel(&frames, &cfg, region),
            ),
            (
                "fastpath_pruned_seq",
                track_all_pruned(&frames, &cfg, region),
            ),
            (
                "fastpath_pruned_par",
                track_all_pruned_parallel(&frames, &cfg, region),
            ),
        ];
        let bounds = region.bounds(side, side).expect("non-empty interior");
        for (name, run) in &exact_runs {
            let r = run.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
            for (x, y) in bounds.pixels() {
                assert_eq!(
                    seq.estimates.at(x, y),
                    r.estimates.at(x, y),
                    "{name} driver diverged at ({x},{y})"
                );
            }
        }
        for (name, run) in &integral_runs {
            let r = run.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
            for (x, y) in bounds.pixels() {
                let (s, f) = (seq.estimates.at(x, y), r.estimates.at(x, y));
                assert_eq!(s.valid, f.valid, "{name} validity diverged at ({x},{y})");
                assert_eq!(
                    s.displacement, f.displacement,
                    "{name} displacement diverged at ({x},{y})"
                );
            }
        }

        // Phase: the simulated MP-2 run, with its §4.3 budget check.
        let mut machine = MasPar::new(MachineConfig {
            nxproc: 8,
            nyproc: 8,
            ..MachineConfig::goddard_mp2()
        });
        let report = track_on_maspar(
            &mut machine,
            &before,
            &after,
            &before,
            &after,
            &cfg,
            region,
            ReadoutScheme::Raster,
        )
        .expect("maspar run");
        let z = report
            .memory
            .max_segment_rows()
            .expect("configuration fits PE memory");
        checks.push(Check {
            name: "maspar.pe_bytes_high_water <= budget total_bytes",
            // Encode the inequality as an equality on its truth value so
            // every check prints uniformly.
            got: u64::from(report.pe_bytes_high_water <= report.memory.total_bytes(z)),
            want: 1,
        });
    }

    // The fault ledger: every injected fault must have resolved to
    // recovered or degraded by the time the pipeline finishes.
    let fault_snap = faults.map(|_| sma_fault::ledger());
    if let Some(snap) = &fault_snap {
        println!("\nfault ledger:");
        println!(
            "  injected {:>8}   recovered {:>8}   degraded {:>8}",
            snap.injected, snap.recovered, snap.degraded
        );
        println!(
            "  natural degradations {:>8}   quarantined pixels {:>8}",
            snap.degraded_natural, snap.quarantined_pixels
        );
        for (site, n) in snap.by_site() {
            if n > 0 {
                println!("    {site:<14} {n:>8}");
            }
        }
        checks.push(Check {
            name: "fault ledger balanced (injected == recovered + degraded)",
            got: u64::from(snap.balanced()),
            want: 1,
        });
        checks.push(Check {
            name: "armed run injected at least one fault",
            got: u64::from(snap.injected > 0 || faults.is_some_and(|(_, r)| r == 0.0)),
            want: 1,
        });
    }

    // The span tree and metric tables.
    println!();
    print!(
        "{}",
        sma_obs::report::render(&sma_obs::span::snapshot(), &sma_obs::metrics::snapshot())
    );

    // Counter validation against the analytic workload model.
    println!("\nanalytic-count validation:");
    let mut failed = false;
    for c in &checks {
        let verdict = if c.ok() { "OK" } else { "MISMATCH" };
        println!(
            "  {:<55} got {:>12} want {:>12} {}",
            c.name, c.got, c.want, verdict
        );
        failed |= !c.ok();
    }

    // The shared metrics document.
    let mut doc = MetricsDoc::capture("obs_report");
    doc.set_gauge("workload.pixels", workload.pixels as f64);
    doc.set_gauge("workload.hyp_ges", workload.hyp_ges as f64);
    doc.set_gauge("workload.hyp_terms", workload.hyp_terms as f64);
    if let (Some((seed, rate)), Some(snap)) = (faults, &fault_snap) {
        doc.set_gauge("fault.seed", seed as f64);
        doc.set_gauge("fault.rate", rate);
        doc.set_gauge("fault.injected", snap.injected as f64);
        doc.set_gauge("fault.recovered", snap.recovered as f64);
        doc.set_gauge("fault.degraded", snap.degraded as f64);
        doc.set_gauge("fault.degraded_natural", snap.degraded_natural as f64);
        doc.set_gauge("fault.quarantined_pixels", snap.quarantined_pixels as f64);
    }
    std::fs::write(out_path, doc.to_json()).expect("write metrics document");
    println!("\nwrote {out_path}");

    // Flight-recorder export: with SMA_TRACE=PATH set the whole run was
    // recorded; render the Chrome trace, self-validate its structure,
    // and print the per-stage latency distribution.
    let lat = sma_obs::trace::latency_summary();
    match sma_obs::trace::export_to_env() {
        Ok(None) => {}
        Ok(Some(path)) => {
            let json = std::fs::read_to_string(&path).expect("re-read exported trace");
            match sma_obs::trace::validate_chrome_json(&json) {
                Ok(check) => println!(
                    "trace: wrote {path} ({} events, {} spans, {} threads, depth {}, {} dropped)",
                    check.events,
                    check.spans,
                    check.threads,
                    check.max_depth,
                    sma_obs::trace::events_dropped(),
                ),
                Err(e) => {
                    eprintln!("obs_report: exported trace is structurally invalid: {e}");
                    std::process::exit(1);
                }
            }
            println!("\nper-stage latency (recorded spans):");
            println!(
                "  {:<44} {:>7} {:>10} {:>10} {:>10} {:>10}",
                "path", "count", "p50_us", "p95_us", "p99_us", "max_us"
            );
            for s in &lat {
                println!(
                    "  {:<44} {:>7} {:>10} {:>10} {:>10} {:>10}",
                    s.path, s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us
                );
            }
        }
        Err(e) => {
            eprintln!("obs_report: trace export failed: {e}");
            std::process::exit(1);
        }
    }

    if failed {
        eprintln!("obs_report: counter validation FAILED");
        std::process::exit(1);
    }
    println!("obs_report: all counters match the analytic model OK");
}
