//! Regenerate the **§5 Hurricane Luis headline**: 490 rapid-scan frames,
//! 11 x 11 z-template / 9 x 9 z-search, continuous model — "approximately
//! 6.0 min per pair of images resulting in a speed-up of over 150" —
//! as a prediction from the Table 2-calibrated rates, including the
//! MPDA disk traffic for the dense 490-frame sequence.
//!
//! ```sh
//! cargo run -p sma-bench --bin table_luis_speedup
//! ```

use maspar_sim::cost::{Mp2CostModel, OpCounts};
use sma_core::timing::{paper, Mp2Rates, SgiRates, SmaWorkload};
use sma_core::SmaConfig;

fn main() {
    let cfg = SmaConfig::hurricane_luis();
    let workload = SmaWorkload::from_config(&cfg, 512, 512);
    println!("§5 — Hurricane Luis dense sequence (490 frames, continuous model)");
    println!("  z-template 11 x 11, z-search 9 x 9, 512 x 512 GOES-9 rapid-scan\n");

    let b = Mp2Rates::default().breakdown(&workload);
    let seq = SgiRates::default().seconds(&workload, cfg.model);
    let speedup = seq / b.total();

    println!("  per image pair:");
    println!(
        "    parallel (MP-2 model):   {:.2} min (paper: ~{} min)",
        b.total() / 60.0,
        paper::LUIS_PARALLEL_MINUTES
    );
    println!("    sequential (SGI model):  {:.2} h", seq / 3600.0);
    println!(
        "    speed-up:                {speedup:.0}x (paper: over {})",
        paper::LUIS_SPEEDUP_FLOOR
    );
    assert!(speedup > 100.0, "shape check: speed-up must be >> 100");

    // The full 490-frame run: 489 pairs, plus the MPDA disk traffic the
    // paper highlights ("The high throughput of MPDA was exploited in
    // running the SMA algorithm on a dense sequence of 490 frames").
    let pairs = 489.0;
    let compute_s = b.total() * pairs;
    let frame_bytes = 512.0 * 512.0 * 4.0;
    let disk = OpCounts {
        disk_bytes: 490.0 * frame_bytes,
        ..Default::default()
    };
    let disk_s = Mp2CostModel::goddard_mp2().seconds(&disk);
    println!("\n  full sequence (489 pairs):");
    println!("    compute:                 {:.2} h", compute_s / 3600.0);
    println!("    MPDA disk I/O (490 frames @ 30 MB/s): {disk_s:.1} s");
    println!(
        "    I/O share:               {:.4}% (disk is nowhere near the bottleneck)",
        100.0 * disk_s / (compute_s + disk_s)
    );
}
