//! Fig. 4 as a criterion bench: real host time of one hypothesis
//! evaluation as the z-template grows (the figure's x-axis). The
//! quadratic-in-edge shape is what must reproduce; absolute values are
//! host-specific (the paper's are SGI R8000/90 seconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sma_bench::shifted_frames;
use sma_core::motion::evaluate_hypothesis;
use sma_core::{MotionModel, SmaConfig};
use std::hint::black_box;

fn bench_template_scaling(c: &mut Criterion) {
    let base = SmaConfig::small_test(MotionModel::SemiFluid);
    let frames = shifted_frames(120, 120, 1.0, 0.0, &base);
    let mut g = c.benchmark_group("fig4_hypothesis_by_template");
    g.sample_size(10);
    for nzt in [5usize, 10, 20, 40] {
        let cfg = SmaConfig {
            nzt,
            nzs: 2,
            ..base
        };
        g.bench_with_input(BenchmarkId::from_parameter(2 * nzt + 1), &cfg, |b, cfg| {
            b.iter(|| black_box(evaluate_hypothesis(black_box(&frames), cfg, 60, 60, 1, 0)))
        });
    }
    g.finish();
}

fn bench_model_gap(c: &mut Criterion) {
    // Continuous vs semi-fluid per-hypothesis cost at a fixed template:
    // the sequential-rate ratio behind the paper's 397-day vs 41-hour
    // projections.
    let mut g = c.benchmark_group("fig4_model_gap_21x21");
    g.sample_size(10);
    for (name, model) in [
        ("continuous", MotionModel::Continuous),
        ("semifluid", MotionModel::SemiFluid),
    ] {
        let cfg = SmaConfig {
            nzt: 10,
            nzs: 2,
            ..SmaConfig::small_test(model)
        };
        let frames = shifted_frames(80, 80, 1.0, 0.0, &cfg);
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(evaluate_hypothesis(black_box(&frames), cfg, 40, 40, 1, 0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_template_scaling, bench_model_gap);
criterion_main!(benches);
