//! The integral-image fast path against the exact kernels: the
//! O(1)-per-hypothesis moment-plane assembly vs the O(T^2) per-sample
//! accumulation, at a small and a medium template size. The
//! `hotpath_report` binary emits the same comparison as JSON with
//! speedup ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sma_bench::shifted_frames;
use sma_core::fastpath::{track_all_integral, track_all_integral_parallel};
use sma_core::sequential::Region;
use sma_core::{track_all_parallel, track_all_sequential, MotionModel, SmaConfig};
use std::hint::black_box;

fn bench_fastpath(c: &mut Criterion) {
    // (label, frame side, nzt, nzs): small keeps the exact path cheap
    // enough for tight sampling; medium is where O(T^2) vs O(1) bites.
    for (label, side, nzt, nzs) in [
        ("small_t7", 40usize, 3usize, 2usize),
        ("medium_t21", 64, 10, 4),
    ] {
        let cfg = SmaConfig {
            nzt,
            nzs,
            ..SmaConfig::small_test(MotionModel::Continuous)
        };
        let frames = shifted_frames(side, side, 1.0, 0.0, &cfg);
        let region = Region::Interior {
            margin: cfg.margin(),
        };
        let mut g = c.benchmark_group(format!("sma_fastpath_{label}"));
        g.sample_size(10);
        g.bench_function(BenchmarkId::new("exact_sequential", side), |b| {
            b.iter(|| black_box(track_all_sequential(black_box(&frames), &cfg, region)))
        });
        g.bench_function(BenchmarkId::new("exact_parallel", side), |b| {
            b.iter(|| black_box(track_all_parallel(black_box(&frames), &cfg, region)))
        });
        g.bench_function(BenchmarkId::new("integral_sequential", side), |b| {
            b.iter(|| black_box(track_all_integral(black_box(&frames), &cfg, region)))
        });
        g.bench_function(BenchmarkId::new("integral_parallel", side), |b| {
            b.iter(|| {
                black_box(track_all_integral_parallel(
                    black_box(&frames),
                    &cfg,
                    region,
                ))
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_fastpath);
criterion_main!(benches);
