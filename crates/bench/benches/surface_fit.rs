//! Surface-patch fitting: the paper-faithful per-pixel Gaussian
//! elimination vs the precomputed-moment-matrix fast path (an ablation
//! on the paper's choice to pay the full elimination per pixel), plus
//! sequential vs Rayon whole-frame fitting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sma_bench::wavy;
use sma_grid::BorderPolicy;
use sma_surface::fit::{fit_all_par, fit_all_seq};
use sma_surface::{fit_patch_ge, FitContext};
use std::hint::black_box;

fn bench_single_fit(c: &mut Criterion) {
    let z = wavy(64, 64);
    let ctx = FitContext::new(2);
    let mut g = c.benchmark_group("surface_fit_single_5x5");
    g.bench_function("gaussian_elimination", |b| {
        b.iter(|| black_box(fit_patch_ge(black_box(&z), 32, 32, 2, BorderPolicy::Clamp).unwrap()))
    });
    g.bench_function("precomputed_moments", |b| {
        b.iter(|| black_box(ctx.fit(black_box(&z), 32, 32, BorderPolicy::Clamp)))
    });
    g.finish();
}

fn bench_window_sizes(c: &mut Criterion) {
    let z = wavy(96, 96);
    let mut g = c.benchmark_group("surface_fit_by_window");
    for n in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(2 * n + 1), &n, |b, &n| {
            b.iter(|| {
                black_box(fit_patch_ge(black_box(&z), 48, 48, n, BorderPolicy::Clamp).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_whole_frame(c: &mut Criterion) {
    let z = wavy(128, 128);
    let mut g = c.benchmark_group("surface_fit_frame_128");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(fit_all_seq(black_box(&z), 2, BorderPolicy::Clamp)))
    });
    g.bench_function("rayon", |b| {
        b.iter(|| black_box(fit_all_par(black_box(&z), 2, BorderPolicy::Clamp)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_single_fit,
    bench_window_sizes,
    bench_whole_frame
);
criterion_main!(benches);
