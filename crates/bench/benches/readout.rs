//! §4.2's comparison, executed: snake read-out vs raster-scan
//! bounding-box read-out on a folded image (the paper found raster
//! faster and adopted it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maspar_sim::mapping::{DataMapping, FoldedImage, MappingKind};
use maspar_sim::readout::{fetch_window_raster, fetch_window_snake};
use sma_bench::wavy;
use std::hint::black_box;

fn folded(w: usize, np: usize) -> FoldedImage {
    let img = wavy(w, w);
    FoldedImage::fold(
        &img,
        DataMapping::new(MappingKind::Hierarchical, w, w, np, np),
    )
}

fn bench_schemes(c: &mut Criterion) {
    let f = folded(32, 8); // 4x4 px per PE, like the paper's folding
    let mut g = c.benchmark_group("readout_32px_n2");
    g.bench_function("snake", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            let stats = fetch_window_snake(black_box(&f), 2, |_, _, _, _, v| acc += v);
            black_box((acc, stats))
        })
    });
    g.bench_function("raster", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            let stats = fetch_window_raster(black_box(&f), 2, |_, _, _, _, v| acc += v);
            black_box((acc, stats))
        })
    });
    g.finish();
}

fn bench_window_scaling(c: &mut Criterion) {
    let f = folded(48, 8);
    let mut g = c.benchmark_group("readout_snake_by_window");
    g.sample_size(10);
    for n in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(2 * n + 1), &n, |b, &n| {
            b.iter(|| {
                let mut acc = 0.0f32;
                fetch_window_snake(black_box(&f), n, |_, _, _, _, v| acc += v);
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schemes, bench_window_scaling);
criterion_main!(benches);
