//! The ASA stereo substrate: NCC scoring, 1-D disparity search, and the
//! full hierarchical coarse-to-fine run on a synthetic hurricane pair.

use criterion::{criterion_group, criterion_main, Criterion};
use sma_satdata::hurricane_frederic_analog;
use sma_stereo::hierarchical::{match_hierarchical, MatchParams};
use sma_stereo::ncc::{best_disparity, ncc_score};
use std::hint::black_box;

fn bench_ncc(c: &mut Criterion) {
    let seq = hurricane_frederic_analog(96, 2, 7);
    let pair = seq.stereo_pair(0).unwrap();
    let mut g = c.benchmark_group("ncc");
    g.bench_function("score_7x7", |b| {
        b.iter(|| black_box(ncc_score(black_box(&pair.left), &pair.right, 48, 48, 2, 3)))
    });
    g.bench_function("search_pm8", |b| {
        b.iter(|| {
            black_box(best_disparity(
                black_box(&pair.left),
                &pair.right,
                48,
                48,
                0,
                8,
                3,
            ))
        })
    });
    g.finish();
}

fn bench_hierarchical(c: &mut Criterion) {
    let seq = hurricane_frederic_analog(96, 2, 7);
    let pair = seq.stereo_pair(0).unwrap();
    let mut g = c.benchmark_group("asa_full");
    g.sample_size(10);
    g.bench_function("hierarchical_96", |b| {
        b.iter(|| {
            black_box(match_hierarchical(
                black_box(&pair.left),
                &pair.right,
                MatchParams::default(),
            ))
        })
    });
    g.bench_function("single_level_96", |b| {
        b.iter(|| {
            black_box(match_hierarchical(
                black_box(&pair.left),
                &pair.right,
                MatchParams {
                    levels: 1,
                    coarse_range: 8,
                    ..MatchParams::default()
                },
            ))
        })
    });
    g.finish();
}

fn bench_ncc_fast(c: &mut Criterion) {
    use sma_stereo::ncc_fast::NccPrecomp;
    let seq = hurricane_frederic_analog(96, 2, 7);
    let pair = seq.stereo_pair(0).unwrap();
    let mut g = c.benchmark_group("ncc_fast_path");
    g.bench_function("precompute_pm8_n3", |b| {
        b.iter(|| {
            black_box(NccPrecomp::build(
                black_box(&pair.left),
                &pair.right,
                -8,
                8,
                3,
            ))
        })
    });
    let pre = NccPrecomp::build(&pair.left, &pair.right, -8, 8, 3);
    g.bench_function("score_via_tables", |b| {
        b.iter(|| black_box(pre.score(48, 48, 2)))
    });
    g.bench_function("score_reference", |b| {
        b.iter(|| black_box(ncc_score(black_box(&pair.left), &pair.right, 48, 48, 2, 3)))
    });
    g.bench_function("best_via_tables", |b| {
        b.iter(|| black_box(pre.best(48, 48)))
    });
    g.finish();
}

criterion_group!(benches, bench_ncc, bench_hierarchical, bench_ncc_fast);
criterion_main!(benches);
