//! §3.2's data-mapping ablation: fold/unfold cost and the
//! window-fetch mesh-transfer counts of hierarchical vs cut-and-stack.

use criterion::{criterion_group, criterion_main, Criterion};
use maspar_sim::mapping::{DataMapping, FoldedImage, MappingKind};
use sma_bench::wavy;
use std::hint::black_box;

fn bench_fold_unfold(c: &mut Criterion) {
    let img = wavy(128, 128);
    let h = DataMapping::new(MappingKind::Hierarchical, 128, 128, 16, 16);
    let cs = DataMapping::new(MappingKind::CutAndStack, 128, 128, 16, 16);
    let mut g = c.benchmark_group("fold_unfold_128");
    g.bench_function("hierarchical_fold", |b| {
        b.iter(|| black_box(FoldedImage::fold(black_box(&img), h)))
    });
    g.bench_function("cut_and_stack_fold", |b| {
        b.iter(|| black_box(FoldedImage::fold(black_box(&img), cs)))
    });
    let folded = FoldedImage::fold(&img, h);
    g.bench_function("hierarchical_unfold", |b| {
        b.iter(|| black_box(folded.unfold()))
    });
    g.finish();
}

fn bench_window_transfers(c: &mut Criterion) {
    let h = DataMapping::new(MappingKind::Hierarchical, 64, 64, 16, 16);
    let cs = DataMapping::new(MappingKind::CutAndStack, 64, 64, 16, 16);
    let mut g = c.benchmark_group("window_mesh_transfers_5x5");
    g.sample_size(10);
    g.bench_function("hierarchical", |b| {
        b.iter(|| black_box(h.mean_window_mesh_transfers(2)))
    });
    g.bench_function("cut_and_stack", |b| {
        b.iter(|| black_box(cs.mean_window_mesh_transfers(2)))
    });
    g.finish();
}

criterion_group!(benches, bench_fold_unfold, bench_window_transfers);
criterion_main!(benches);
