//! The SMA drivers head to head on a small frame: sequential baseline vs
//! Rayon-parallel vs the §4.1/§4.3 precomputed-and-segmented scheme, and
//! the continuous vs semi-fluid model cost gap (the paper's Table 2 vs
//! Table 4 story in miniature).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sma_bench::shifted_frames;
use sma_core::precompute::track_all_segmented;
use sma_core::sequential::Region;
use sma_core::{track_all_parallel, track_all_sequential, MotionModel, SmaConfig};
use std::hint::black_box;

fn bench_drivers(c: &mut Criterion) {
    let cfg = SmaConfig::small_test(MotionModel::SemiFluid);
    let frames = shifted_frames(26, 26, 1.0, 0.0, &cfg);
    let region = Region::Interior { margin: 9 };
    let mut g = c.benchmark_group("sma_drivers_semifluid_26");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(track_all_sequential(black_box(&frames), &cfg, region)))
    });
    g.bench_function("rayon_parallel", |b| {
        b.iter(|| black_box(track_all_parallel(black_box(&frames), &cfg, region)))
    });
    g.bench_function("segmented_z2", |b| {
        b.iter(|| black_box(track_all_segmented(black_box(&frames), &cfg, region, 2)))
    });
    g.bench_function("segmented_unchunked", |b| {
        b.iter(|| black_box(track_all_segmented(black_box(&frames), &cfg, region, 5)))
    });
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("sma_model_cost");
    g.sample_size(10);
    for (name, model) in [
        ("continuous", MotionModel::Continuous),
        ("semifluid", MotionModel::SemiFluid),
    ] {
        let cfg = SmaConfig::small_test(model);
        let frames = shifted_frames(26, 26, 1.0, 0.0, &cfg);
        let region = Region::Interior { margin: 9 };
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| black_box(track_all_parallel(black_box(&frames), &cfg, region)))
        });
    }
    g.finish();
}

fn bench_search_scaling(c: &mut Criterion) {
    // Hypothesis-count scaling: time ~ (2 nzs + 1)^2 (the paper's
    // "nonlinear scalability factor in the timing dependence on the
    // z-Search window parameter").
    let mut g = c.benchmark_group("sma_search_scaling");
    g.sample_size(10);
    for nzs in [1usize, 2, 3] {
        let cfg = SmaConfig {
            nzs,
            ..SmaConfig::small_test(MotionModel::Continuous)
        };
        let frames = shifted_frames(30, 30, 1.0, 0.0, &cfg);
        let region = Region::Interior {
            margin: cfg.margin() + 2,
        };
        g.bench_with_input(BenchmarkId::from_parameter(2 * nzs + 1), &(), |b, _| {
            b.iter(|| black_box(track_all_parallel(black_box(&frames), &cfg, region)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_drivers, bench_models, bench_search_scaling);
criterion_main!(benches);
