//! The paper's hottest scalar kernel: 6 x 6 Gaussian elimination ("over
//! one million separate Gaussian-eliminations" per frame pair). Compares
//! the fixed-size `solve6` against the general N x N path and sweeps N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sma_linalg::gauss::{solve, solve6};
use sma_linalg::SMat;
use std::hint::black_box;

fn dominant(n: usize) -> (SMat, Vec<f64>) {
    let mut m = SMat::zeros(n);
    for r in 0..n {
        for c in 0..n {
            m.set(r, c, ((r * n + c) as f64 * 0.37).sin());
        }
        m.add(r, r, n as f64 + 2.0);
    }
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
    (m, b)
}

fn bench_solve6(c: &mut Criterion) {
    let (m, b) = dominant(6);
    let mut a6 = [0.0f64; 36];
    a6.copy_from_slice(m.as_slice());
    let mut b6 = [0.0f64; 6];
    b6.copy_from_slice(&b);

    let mut g = c.benchmark_group("gauss6");
    g.bench_function("solve6_fixed", |bch| {
        bch.iter(|| {
            let mut a = black_box(a6);
            let mut rhs = black_box(b6);
            solve6(&mut a, &mut rhs).unwrap();
            black_box(rhs)
        })
    });
    g.bench_function("solve_general_n6", |bch| {
        bch.iter(|| black_box(solve(black_box(&m), black_box(&b)).unwrap()))
    });
    g.finish();
}

fn bench_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("gauss_by_n");
    for n in [2usize, 4, 6, 8] {
        let (m, b) = dominant(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(solve(black_box(&m), black_box(&b)).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_solve6, bench_sizes);
criterion_main!(benches);
