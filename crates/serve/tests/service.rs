//! Service behaviour: admission, fair-share placement, the degrade
//! ladder, shedding, deadlines and circuit breaking.

use std::sync::Arc;

use sma_core::{FrameArtifacts, MotionModel, SmaConfig, SmaError};
use sma_grid::Grid;
use sma_satdata::florida_thunderstorm_analog;
use sma_serve::{
    BreakerState, DegradeLevel, FramePlanes, PairStatus, ServeConfig, SmaService, TenantSeq,
};

fn cfg() -> SmaConfig {
    SmaConfig::small_test(MotionModel::Continuous)
}

fn fb(size: usize) -> usize {
    FrameArtifacts::estimate_bytes(size, size)
}

/// A tenant over a real satdata sequence (used by tests that run).
fn scene_tenant(name: &str, size: usize, frames: usize, seed: u64) -> TenantSeq {
    TenantSeq::from_scene(
        name,
        &florida_thunderstorm_analog(size, frames, seed),
        cfg(),
    )
}

/// A tenant over flat frames (admission-only tests: never runs).
fn flat_tenant(name: &str, size: usize, frames: usize) -> TenantSeq {
    let planes = (0..frames)
        .map(|t| {
            let g = Arc::new(Grid::from_fn(size, size, |x, y| {
                (x as f32 * 0.31 + y as f32 * 0.17 + t as f32).sin()
            }));
            FramePlanes {
                intensity: Arc::clone(&g),
                surface: g,
            }
        })
        .collect();
    TenantSeq::new(name, planes, cfg())
}

/// Frames that alternate dimensions, so every adjacent pair fails
/// assembly with a shape mismatch — the poisoned tenant.
fn poisoned_tenant(name: &str, frames: usize) -> TenantSeq {
    let planes = (0..frames)
        .map(|t| {
            let size = if t % 2 == 0 { 40 } else { 24 };
            let g = Arc::new(Grid::from_fn(size, size, |x, y| {
                (x as f32 * 0.3).sin() + (y as f32 * 0.2).cos()
            }));
            FramePlanes {
                intensity: Arc::clone(&g),
                surface: g,
            }
        })
        .collect();
    TenantSeq::new(name, planes, cfg())
}

#[test]
fn admission_rejects_past_queue_capacity() {
    let mut scfg = ServeConfig::new(100 * fb(40));
    scfg.queue_capacity_pairs = 3;
    let mut svc = SmaService::new(scfg);
    svc.submit(flat_tenant("a", 40, 3)).expect("2 pairs fit");
    let err = svc.submit(flat_tenant("b", 40, 3)).expect_err("4 > 3");
    match err {
        SmaError::Overloaded {
            queued_pairs,
            queue_capacity,
            ..
        } => {
            assert_eq!((queued_pairs, queue_capacity), (2, 3));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let s = svc.ledger_snapshot();
    assert_eq!((s.admitted, s.rejected), (1, 1));
}

#[test]
fn admission_rejects_when_fair_share_cannot_hold_a_frame() {
    // Budget holds one tenant at 1.5 frame-sets; a second tenant would
    // shrink everyone to 0.75 sets — below the thrash floor.
    let mut svc = SmaService::new(ServeConfig::new(3 * fb(40) / 2));
    let id = svc.submit(flat_tenant("a", 40, 3)).expect("fits alone");
    let (shard, level, shed) = svc.placement(id).expect("placed");
    assert_eq!(shard, 3 * fb(40) / 2);
    // 2 frame-sets needed, 1.5 available: one rung down, no shed.
    assert_eq!(level, DegradeLevel::Integral);
    assert!(!shed);
    let err = svc.submit(flat_tenant("b", 40, 3)).expect_err("too small");
    match err {
        SmaError::Overloaded {
            needed_bytes,
            available_bytes,
            ..
        } => {
            assert_eq!(needed_bytes, fb(40));
            assert_eq!(available_bytes, 3 * fb(40) / 4);
            assert!(available_bytes < needed_bytes);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
}

#[test]
fn fair_shares_only_shrink_and_degrade_with_oversubscription() {
    // One big tenant (64px = 4x the bytes of 32px) sharing with small
    // ones: every admission shrinks all shards to the new fair share
    // and re-derives the ladder placement deterministically.
    let budget = 4 * fb(64);
    let mut svc = SmaService::new(ServeConfig::new(budget));
    let big = svc.submit(flat_tenant("big", 64, 3)).expect("big");
    assert_eq!(
        svc.placement(big).expect("big placed"),
        (budget, DegradeLevel::Simd, false)
    );
    for i in 0..7 {
        svc.submit(flat_tenant(&format!("s{i}"), 32, 3))
            .expect("small");
    }
    // 8 tenants: fair = budget/8 = 2*fb(32) = fb(64)/2. Big needs
    // 2*fb(64): 4x oversubscribed exactly — bottom rung, not yet shed.
    let (shard, level, shed) = svc.placement(big).expect("big placed");
    assert_eq!(shard, budget / 8);
    assert_eq!(level, DegradeLevel::TranslationOnly);
    assert!(!shed);
    // Ninth tenant pushes the big one past 4x: alternate pairs shed.
    svc.submit(flat_tenant("s7", 32, 3)).expect("small");
    let (_, level, shed) = svc.placement(big).expect("big placed");
    assert_eq!(level, DegradeLevel::TranslationOnly);
    assert!(shed);
    // The small tenants ride at one rung down (their 2 sets vs 8/9
    // of 2 sets).
    let (_, level, shed) = svc.placement(1).expect("small placed");
    assert_eq!(level, DegradeLevel::Integral);
    assert!(!shed);
}

#[test]
fn unsaturated_tenants_complete_every_pair_at_base() {
    let mut svc = SmaService::new(ServeConfig::new(20 * fb(40)));
    svc.submit(scene_tenant("a", 40, 3, 5)).expect("a");
    svc.submit(scene_tenant("b", 40, 3, 9)).expect("b");
    let out = svc.run();
    assert_eq!(out.tenants.len(), 2);
    for report in &out.tenants {
        assert_eq!(report.outcomes.len(), 2);
        for o in &report.outcomes {
            assert_eq!(o.status, PairStatus::Ok, "tenant {}", report.name);
            assert_eq!(o.level, Some(DegradeLevel::Simd));
            assert_eq!(o.attempts, 1);
        }
        assert!(report.results.iter().all(Option::is_some));
    }
    let l = out.ledger;
    assert_eq!(l.pairs_completed, 4);
    assert_eq!(l.shed_requested, 0);
    assert!(l.balanced(), "{l:?}");
    assert_eq!(l.budget_breaches, 0);
    assert_eq!(out.host_resident_bytes, 0, "shards cleared");
    assert!(out.host_high_water_bytes <= out.host_budget_bytes);
    assert!(out.host_high_water_bytes > 0, "the cache was used");
}

#[test]
fn saturated_tenants_degrade_down_the_ladder_and_balance() {
    // Two tenants on a 3-set budget: fair = 1.5 sets each, one rung
    // down for both.
    let mut svc = SmaService::new(ServeConfig::new(3 * fb(40)));
    svc.submit(scene_tenant("a", 40, 3, 5)).expect("a");
    svc.submit(scene_tenant("b", 40, 3, 9)).expect("b");
    let out = svc.run();
    for report in &out.tenants {
        assert_eq!(report.level, DegradeLevel::Integral);
        for o in &report.outcomes {
            assert_eq!(o.status, PairStatus::Degraded);
            assert_eq!(o.level, Some(DegradeLevel::Integral));
        }
        assert!(report.results.iter().all(Option::is_some));
    }
    let l = out.ledger;
    assert_eq!(l.shed_requested, 4);
    assert_eq!(l.frames_degraded, 4);
    assert_eq!(l.pairs_dropped_shed, 0);
    assert!(l.balanced(), "{l:?}");
    assert_eq!(l.budget_breaches, 0);
}

#[test]
fn shed_tenant_drops_alternate_pairs_before_any_base_work() {
    // 1 big (64px) + 8 small (32px) tenants on a 4-big-set budget:
    // the ninth admission pushes the big tenant past 4x — alternate
    // pairs shed, the rest at the bottom rung.
    let budget = 4 * fb(64);
    let mut svc = SmaService::new(ServeConfig::new(budget));
    let big = svc.submit(scene_tenant("big", 64, 3, 3)).expect("big");
    for i in 0..8 {
        svc.submit(scene_tenant(&format!("s{i}"), 32, 3, 20 + i as u64))
            .expect("small");
    }
    let (_, level, shed) = svc.placement(big).expect("placed");
    assert_eq!(level, DegradeLevel::TranslationOnly);
    assert!(shed);
    let out = svc.run();
    let big_report = &out.tenants[big];
    assert!(big_report.shed);
    assert_eq!(big_report.outcomes[0].status, PairStatus::Degraded);
    assert_eq!(
        big_report.outcomes[0].level,
        Some(DegradeLevel::TranslationOnly)
    );
    assert_eq!(big_report.outcomes[1].status, PairStatus::DroppedShed);
    assert!(big_report.results[0].is_some());
    assert!(big_report.results[1].is_none());
    let l = out.ledger;
    // Big: 1 degraded + 1 dropped; 8 small x 2 pairs degraded.
    assert_eq!(l.shed_requested, 18);
    assert_eq!(l.frames_degraded, 17);
    assert_eq!(l.pairs_dropped_shed, 1);
    assert!(l.balanced(), "{l:?}");
    assert_eq!(l.budget_breaches, 0);
}

#[test]
fn zero_deadline_walks_the_ladder_then_drops() {
    // deadline_ms = Some(0) pre-cancels every attempt synchronously:
    // each pair ladders Simd -> Integral -> TranslationOnly and is then
    // shed — the deterministic deadline path.
    let mut scfg = ServeConfig::new(10 * fb(40));
    scfg.deadline_ms = Some(0);
    let mut svc = SmaService::new(scfg);
    svc.submit(scene_tenant("a", 40, 3, 5)).expect("a");
    let out = svc.run();
    let report = &out.tenants[0];
    for o in &report.outcomes {
        assert_eq!(o.status, PairStatus::DroppedShed);
        assert_eq!(o.level, Some(DegradeLevel::TranslationOnly));
        assert_eq!(o.attempts, 3, "one attempt per rung");
    }
    assert!(report.results.iter().all(Option::is_none));
    let l = out.ledger;
    assert_eq!(l.deadline_cancelled, 6);
    assert_eq!(l.pairs_completed, 0);
    assert_eq!(l.shed_requested, 2);
    assert_eq!(l.pairs_dropped_shed, 2);
    assert!(l.balanced(), "{l:?}");
}

#[test]
fn live_watchdog_terminates_and_balances() {
    // A 1 ms deadline on real work: some attempts are cancelled by the
    // actual watchdog thread, some complete. Whatever interleaving
    // happens, the service terminates, the ledger balances, and every
    // pair lands in a pressure outcome (never Failed: deadline overruns
    // are not faults).
    let mut scfg = ServeConfig::new(10 * fb(40));
    scfg.deadline_ms = Some(1);
    let mut svc = SmaService::new(scfg);
    svc.submit(scene_tenant("a", 40, 4, 5)).expect("a");
    svc.submit(scene_tenant("b", 40, 4, 9)).expect("b");
    let out = svc.run();
    for report in &out.tenants {
        assert_eq!(report.outcomes.len(), 3);
        for o in &report.outcomes {
            assert!(
                matches!(
                    o.status,
                    PairStatus::Ok | PairStatus::Degraded | PairStatus::DroppedShed
                ),
                "unexpected outcome {o:?}"
            );
        }
    }
    assert!(out.ledger.balanced(), "{:?}", out.ledger);
    assert_eq!(out.ledger.frames_failed, 0);
}

#[test]
fn poisoned_tenant_is_circuit_broken_without_touching_its_neighbour() {
    let mut scfg = ServeConfig::new(20 * fb(40));
    scfg.circuit_k = 3;
    scfg.circuit_cooldown_polls = 2;
    let mut svc = SmaService::new(scfg);
    let clean = svc.submit(scene_tenant("clean", 40, 3, 5)).expect("clean");
    let poison = svc.submit(poisoned_tenant("poison", 6)).expect("poison");
    let out = svc.run();

    let p = &out.tenants[poison];
    assert_eq!(p.outcomes.len(), 5);
    for o in &p.outcomes[..3] {
        match &o.status {
            PairStatus::Failed(SmaError::Grid(_)) => {}
            other => panic!("expected shape-mismatch failure, got {other:?}"),
        }
    }
    for o in &p.outcomes[3..] {
        assert_eq!(o.status, PairStatus::CircuitSkipped);
    }
    assert!(p.results.iter().all(Option::is_none));

    let c = &out.tenants[clean];
    for o in &c.outcomes {
        assert_eq!(o.status, PairStatus::Ok, "clean tenant perturbed");
    }
    assert!(c.results.iter().all(Option::is_some));

    let l = out.ledger;
    assert_eq!(l.frames_failed, 3);
    assert_eq!(l.circuit_skipped, 2);
    assert_eq!(l.shed_requested, 0);
    assert!(l.balanced(), "{l:?}");
    // The breaker state machine itself is unit-tested; here we only
    // confirm the names exist in the public surface.
    assert_ne!(BreakerState::Open, BreakerState::Closed);
}
