//! The standing tenant-isolation test.
//!
//! Eight tenants share one service under an armed fault sweep. One of
//! them is deliberately poisoned (alternating frame shapes, so every
//! pair fails non-transiently) and must be circuit-broken; every other
//! tenant's result stream must be **bit-identical** to a solo
//! `sma-stream` replay of the same sequence — the isolation contract
//! the service layer is built around. The fault ledger and the service
//! ledger must both balance, and the host byte budget must never be
//! breached.
//!
//! Determinism under the armed sweep rests on three properties pinned
//! here: keyed injection (a fault's decision depends only on
//! `(site, key, seed, rate)`, never on thread timing), transient
//! retries re-running pure functions at the same level, and per-tenant
//! shards (no cross-tenant cache keys).

use std::sync::Arc;

use sma_core::sequential::Region;
use sma_core::{track_all_simd, MotionModel, SmaConfig};
use sma_satdata::florida_thunderstorm_analog;
use sma_serve::{PairStatus, ServeConfig, SmaService, TenantSeq};
use sma_stream::{FrameSource, StreamEngine};

fn cfg() -> SmaConfig {
    SmaConfig::small_test(MotionModel::Continuous)
}

fn poisoned_tenant(name: &str, frames: usize) -> TenantSeq {
    let planes = (0..frames)
        .map(|t| {
            let size = if t % 2 == 0 { 40 } else { 32 };
            let g = Arc::new(sma_grid::Grid::from_fn(size, size, |x, y| {
                (x as f32 * 0.3).sin() + (y as f32 * 0.2).cos()
            }));
            sma_serve::FramePlanes {
                intensity: Arc::clone(&g),
                surface: g,
            }
        })
        .collect();
    TenantSeq::new(name, planes, cfg())
}

#[test]
fn tenants_bit_identical_to_solo_replay_under_armed_fault_storm() {
    // Global fault state: serialize against every other armed test.
    let _x = sma_fault::exclusive();
    sma_fault::install(0x5EA7_B017, 0.05);
    sma_fault::reset_ledger();

    let cfg = cfg();
    let poison_id = 3usize;
    let mut scfg = ServeConfig::new(16 * sma_core::FrameArtifacts::estimate_bytes(40, 40));
    scfg.workers = 3;
    // Transients (worker death, spurious deadline firings) at 5% per
    // attempt: a generous retry budget keeps the chance of exhausting
    // it negligible, and the fixed seed makes the run reproducible.
    scfg.max_retries = 4;
    scfg.circuit_k = 3;
    scfg.circuit_cooldown_polls = 2;

    let mut svc = SmaService::new(scfg);
    let mut sequences = Vec::new();
    for i in 0..8usize {
        if i == poison_id {
            sequences.push(None);
            svc.submit(poisoned_tenant("poison", 6))
                .expect("poisoned admitted");
        } else {
            let seq = florida_thunderstorm_analog(40, 3, 100 + i as u64);
            svc.submit(TenantSeq::from_scene(format!("t{i}"), &seq, cfg))
                .expect("clean admitted");
            sequences.push(Some(seq));
        }
    }
    // 16 frame-sets over 8 tenants: fair share = 2 sets, everyone at
    // the base level — the clean tenants' outputs carry no degradation.
    for i in 0..8 {
        let (_, level, shed) = svc.placement(i).expect("placed");
        assert_eq!(level, sma_serve::DegradeLevel::Simd);
        assert!(!shed);
    }
    let shard_bytes = svc.placement(0).expect("placed").0;
    let out = svc.run();

    // The poisoned tenant was quarantined...
    let p = &out.tenants[poison_id];
    assert!(p.count("failed") >= 3, "outcomes {:?}", p.outcomes);
    assert!(p.count("skipped") >= 1, "outcomes {:?}", p.outcomes);
    assert!(p.results.iter().all(Option::is_none));
    assert!(p
        .outcomes
        .iter()
        .all(|o| matches!(o.status, PairStatus::Failed(_) | PairStatus::CircuitSkipped)));

    // ...while every clean tenant's stream is bit-identical to a solo
    // replay through the streaming engine, still under the same armed
    // installation (keyed core-level faults fire identically).
    for (i, seq) in sequences.iter().enumerate() {
        let Some(seq) = seq else { continue };
        let frames: Vec<FrameSource<'_>> = (0..seq.len())
            .map(|t| FrameSource {
                intensity: &seq.frames[t].intensity,
                surface: seq.surface(t),
            })
            .collect();
        let region = Region::Interior {
            margin: cfg.margin(),
        };
        let mut engine = StreamEngine::new(frames, cfg, shard_bytes).with_pipelining(false);
        let solo = engine
            .run(|_, pair| track_all_simd(pair, &cfg, region))
            .expect("solo replay");
        let report = &out.tenants[i];
        assert_eq!(report.results.len(), solo.len());
        for (t, (served, solo)) in report.results.iter().zip(&solo).enumerate() {
            let served = served.as_ref().expect("clean tenant result");
            assert_eq!(served.region, solo.region);
            for (x, y) in served.region.pixels() {
                assert_eq!(
                    served.estimates.at(x, y),
                    solo.estimates.at(x, y),
                    "tenant {i} pair {t} diverged at ({x},{y})"
                );
            }
        }
        for o in &report.outcomes {
            assert_eq!(o.status, PairStatus::Ok, "tenant {i} saw {o:?}");
        }
    }

    // Both ledgers balance; the host budget was never breached.
    assert!(out.ledger.balanced(), "{:?}", out.ledger);
    assert_eq!(out.ledger.budget_breaches, 0);
    assert!(out.host_high_water_bytes <= out.host_budget_bytes);
    assert_eq!(out.host_resident_bytes, 0);
    let fl = sma_fault::ledger();
    assert!(fl.balanced(), "fault ledger unbalanced: {fl:?}");
    // The sweep must actually have fired — a vacuous pass (0 injections)
    // would mean the seed/rate stopped exercising the recovery paths.
    assert!(fl.injected > 0, "fault sweep fired nothing: {fl:?}");
    assert!(
        out.ledger.retries > 0,
        "no transient retries under the sweep: {:?}",
        out.ledger
    );
    sma_fault::clear();
}
