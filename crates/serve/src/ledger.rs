//! Service-level accounting with a decision/outcome balance invariant.
//!
//! Every load-shedding *decision* (running a pair below the base level,
//! or dropping it) must be balanced by exactly one shedding *outcome*:
//!
//! ```text
//! shed_requested == frames_degraded + pairs_dropped_shed
//! ```
//!
//! `shed_requested` counts on the decision side — once per pair, the
//! moment the scheduler or the deadline ladder commits the pair to a
//! sub-base fate. The outcome side counts where the pair actually
//! landed: completed below base ([`ServeLedger::frames_degraded`]) or
//! produced no result ([`ServeLedger::pairs_dropped_shed`]). Failures
//! and circuit skips live *outside* the invariant — they are fault
//! outcomes, not shedding outcomes — mirroring how the fault crate's
//! own ledger balances `injected == recovered + degraded`.

use std::sync::atomic::{AtomicU64, Ordering};

static ADMITTED: sma_obs::Counter = sma_obs::Counter::new("serve.tenants_admitted");
static REJECTED: sma_obs::Counter = sma_obs::Counter::new("serve.tenants_rejected");
static PAIRS_COMPLETED: sma_obs::Counter = sma_obs::Counter::new("serve.pairs_completed");
static SHED_REQUESTED: sma_obs::Counter = sma_obs::Counter::new("serve.shed_requested");
static FRAMES_DEGRADED: sma_obs::Counter = sma_obs::Counter::new("serve.frames_degraded");
static PAIRS_DROPPED: sma_obs::Counter = sma_obs::Counter::new("serve.pairs_dropped_shed");
static FRAMES_FAILED: sma_obs::Counter = sma_obs::Counter::new("serve.frames_failed");
static CIRCUIT_SKIPPED: sma_obs::Counter = sma_obs::Counter::new("serve.circuit_skipped");
static DEADLINE_CANCELLED: sma_obs::Counter = sma_obs::Counter::new("serve.deadline_cancelled");
static RETRIES: sma_obs::Counter = sma_obs::Counter::new("serve.retries");
static BUDGET_BREACHES: sma_obs::Counter = sma_obs::Counter::new("serve.budget_breaches");

macro_rules! ledger_fields {
    ($($(#[$doc:meta])* $field:ident => $obs:ident),* $(,)?) => {
        /// Atomic service counters (one instance per service, plus
        /// process-wide `serve.*` obs mirrors).
        #[derive(Debug, Default)]
        pub struct ServeLedger {
            $($(#[$doc])* $field: AtomicU64,)*
        }

        /// Point-in-time copy of a [`ServeLedger`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct ServeLedgerSnapshot {
            $($(#[$doc])* pub $field: u64,)*
        }

        impl ServeLedger {
            $(
                /// Increment this counter (and its obs mirror).
                pub fn $field(&self, n: u64) {
                    self.$field.fetch_add(n, Ordering::Relaxed);
                    $obs.add(n);
                }
            )*

            /// The current totals.
            pub fn snapshot(&self) -> ServeLedgerSnapshot {
                ServeLedgerSnapshot {
                    $($field: self.$field.load(Ordering::Relaxed),)*
                }
            }
        }
    };
}

ledger_fields! {
    /// Tenants admitted by the byte/queue model.
    admitted => ADMITTED,
    /// Tenants refused with `Overloaded`.
    rejected => REJECTED,
    /// Pairs that produced a result (at any level).
    pairs_completed => PAIRS_COMPLETED,
    /// Shedding decisions: pairs committed to run below base or be
    /// dropped (once per pair).
    shed_requested => SHED_REQUESTED,
    /// Shed-flagged pairs that completed below the base level.
    frames_degraded => FRAMES_DEGRADED,
    /// Shed-flagged pairs that produced no result.
    pairs_dropped_shed => PAIRS_DROPPED,
    /// Pairs that failed with a non-transient error (outside the
    /// shedding invariant).
    frames_failed => FRAMES_FAILED,
    /// Pairs skipped because the tenant's circuit was open.
    circuit_skipped => CIRCUIT_SKIPPED,
    /// Watchdog cancellations (real deadline overruns, not injected).
    deadline_cancelled => DEADLINE_CANCELLED,
    /// Retry attempts beyond each pair's first.
    retries => RETRIES,
    /// Observations of the host meter above the host budget (the
    /// zero-breach acceptance gate).
    budget_breaches => BUDGET_BREACHES,
}

impl ServeLedgerSnapshot {
    /// The decision/outcome balance invariant (see module docs).
    pub fn balanced(&self) -> bool {
        self.shed_requested == self.frames_degraded + self.pairs_dropped_shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments_and_balance() {
        let l = ServeLedger::default();
        l.admitted(2);
        l.shed_requested(3);
        l.frames_degraded(2);
        l.pairs_dropped_shed(1);
        l.frames_failed(5);
        let s = l.snapshot();
        assert_eq!(s.admitted, 2);
        assert!(s.balanced(), "{s:?}");
        l.shed_requested(1);
        assert!(!l.snapshot().balanced());
    }
}
