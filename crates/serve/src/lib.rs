//! # sma-serve
//!
//! Multi-tenant SMA service: N tenant sequences multiplexed over a
//! fixed worker pool, with every tenant's artifact cache a shard of one
//! host-level byte budget (the paper's §4.3 aggregate per-PE slack,
//! generalised from [`maspar_sim::memory::MemoryBudget::pe_slack_bytes`]
//! via [`sma_stream::goddard_cache_budget`]).
//!
//! The robustness surface:
//!
//! * **Admission control** ([`service::SmaService::submit`]) — a
//!   sequence is admitted only if the byte model (fair share holds at
//!   least one frame-artifact set, costed by
//!   [`sma_core::FrameArtifacts::estimate_bytes`] without preparing
//!   anything) and the queue-depth model say it fits; otherwise the
//!   typed [`sma_fault::SmaError::Overloaded`].
//! * **Backpressure + load shedding** ([`degrade`]) — a saturated
//!   tenant's frames step down the driver ladder
//!   (SIMD → integral → translation-only Fcont) before any frame is
//!   dropped, and every shed/degrade decision is balance-checked in the
//!   service ledger ([`ledger::ServeLedgerSnapshot::balanced`]).
//! * **Per-frame deadlines** — a watchdog cancels work past its budget
//!   through the cooperative [`sma_core::cancel`] points; transient
//!   faults (injected worker death, injected deadline overrun) are
//!   retried with bounded exponential backoff.
//! * **Tenant isolation** ([`breaker`]) — a poisoned or fault-storming
//!   tenant is circuit-broken (quarantined after K consecutive
//!   failures, half-open probe recovery) without perturbing other
//!   tenants: each tenant's result stream is bit-identical to a solo
//!   [`sma_stream::StreamEngine`] replay, pinned by a standing test and
//!   a conformance angle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod config;
pub mod degrade;
pub mod ledger;
pub mod service;
pub mod tenant;

pub use breaker::{BreakerState, CircuitBreaker};
pub use config::ServeConfig;
pub use degrade::{level_for_pressure, DegradeLevel};
pub use ledger::{ServeLedger, ServeLedgerSnapshot};
pub use service::{ServeOutcome, SmaService, TENANT_SCOPE};
pub use tenant::{FrameOutcome, FramePlanes, PairStatus, TenantReport, TenantSeq};
