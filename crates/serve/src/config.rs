//! Service configuration.

use crate::degrade::DegradeLevel;

/// Tuning knobs of one [`SmaService`](crate::service::SmaService).
///
/// The only required figure is the host cache budget — everything else
/// has conservative defaults sized for the test corpus. The budget is
/// the §4.3-derived aggregate slack (normally
/// [`sma_stream::goddard_cache_budget`]); every admitted tenant's cache
/// shard is a fair share of it, and admission refuses sequences the
/// share cannot hold.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads processing frame pairs.
    pub workers: usize,
    /// Host-level artifact-cache budget in bytes, split fair-share
    /// across admitted tenants.
    pub host_budget_bytes: usize,
    /// Upper bound on the total frame pairs queued across tenants;
    /// admission past it returns
    /// [`SmaError::Overloaded`](sma_core::SmaError::Overloaded).
    pub queue_capacity_pairs: usize,
    /// Per-frame wall-clock budget. `None` disables the watchdog;
    /// `Some(0)` cancels every attempt synchronously (the deterministic
    /// configuration the deadline tests use).
    pub deadline_ms: Option<u64>,
    /// Retry budget for *transient* faults (injected worker death,
    /// injected deadline overrun) per pair.
    pub max_retries: u32,
    /// First retry backoff in milliseconds; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Consecutive non-transient failures before a tenant's circuit
    /// opens.
    pub circuit_k: u32,
    /// Scheduling polls a tenant's open circuit skips before the
    /// half-open probe. Measured in polls, not wall-clock, so breaker
    /// traces are deterministic.
    pub circuit_cooldown_polls: u32,
    /// Driver level unsaturated tenants run at (top of the degrade
    /// ladder).
    pub base_level: DegradeLevel,
}

impl ServeConfig {
    /// Defaults around the given host cache budget.
    pub fn new(host_budget_bytes: usize) -> Self {
        Self {
            workers: 2,
            host_budget_bytes,
            queue_capacity_pairs: 256,
            deadline_ms: None,
            max_retries: 2,
            backoff_base_ms: 1,
            backoff_cap_ms: 8,
            circuit_k: 3,
            circuit_cooldown_polls: 4,
            base_level: DegradeLevel::Simd,
        }
    }

    /// The backoff before retry number `attempt` (1-based):
    /// `base * 2^(attempt-1)` capped at `backoff_cap_ms`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(16);
        self.backoff_base_ms
            .saturating_mul(1u64 << exp)
            .min(self.backoff_cap_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = ServeConfig::new(1 << 20);
        assert_eq!(cfg.backoff_ms(1), 1);
        assert_eq!(cfg.backoff_ms(2), 2);
        assert_eq!(cfg.backoff_ms(3), 4);
        assert_eq!(cfg.backoff_ms(4), 8);
        assert_eq!(cfg.backoff_ms(9), 8, "capped");
    }
}
