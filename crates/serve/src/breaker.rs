//! Per-tenant circuit breaking.
//!
//! A tenant whose pairs keep failing non-transiently (poisoned frames,
//! a fault storm past the retry budget) is quarantined so its failures
//! stop consuming worker time: after `k` consecutive failures the
//! circuit *opens* and the scheduler skips the tenant's pairs. After a
//! cooldown — measured in scheduling polls, not wall-clock, so breaker
//! traces are deterministic — the circuit goes *half-open*: exactly one
//! probe pair runs. Success closes the circuit; failure reopens it for
//! a full cooldown.

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy; failures are being counted.
    Closed,
    /// Quarantined; polls are skipped while the cooldown drains.
    Open,
    /// Cooldown drained; the next poll is the probe.
    HalfOpen,
}

/// One tenant's circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    k: u32,
    cooldown_polls: u32,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
}

impl CircuitBreaker {
    /// A closed breaker opening after `k` consecutive failures, with
    /// `cooldown_polls` skipped polls before the half-open probe.
    pub fn new(k: u32, cooldown_polls: u32) -> Self {
        Self {
            k: k.max(1),
            cooldown_polls,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Consecutive non-transient failures seen while closed (reported
    /// in [`SmaError::CircuitOpen`](sma_fault::SmaError::CircuitOpen)).
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Scheduler poll: may this tenant's next pair run now? `false`
    /// means skip the pair (circuit open); each skip drains one
    /// cooldown tick, and the poll after the last tick is the half-open
    /// probe.
    pub fn poll(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.cooldown_left > 0 {
                    self.cooldown_left -= 1;
                }
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                }
                false
            }
        }
    }

    /// A pair completed: close the circuit and clear the failure run.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// A pair failed non-transiently. A half-open probe failure reopens
    /// immediately; a closed breaker opens at `k` consecutive failures.
    pub fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.cooldown_left = self.cooldown_polls;
            }
            BreakerState::Closed => {
                if self.consecutive_failures >= self.k {
                    self.state = BreakerState::Open;
                    self.cooldown_left = self.cooldown_polls;
                }
            }
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_k_failures_and_probes_after_cooldown() {
        let mut b = CircuitBreaker::new(3, 2);
        for _ in 0..2 {
            assert!(b.poll());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.poll());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Two skipped polls drain the cooldown.
        assert!(!b.poll());
        assert!(!b.poll());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe runs and succeeds: closed again.
        assert!(b.poll());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn failed_probe_reopens_for_a_full_cooldown() {
        let mut b = CircuitBreaker::new(1, 1);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.poll());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.poll());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.poll());
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }
}
