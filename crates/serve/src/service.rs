//! The multi-tenant service: admission, scheduling, deadlines,
//! isolation.
//!
//! [`SmaService`] multiplexes N tenant sequences over a fixed worker
//! pool. Each admitted tenant owns a [`SharedArtifactCache`] shard of
//! one host-level byte budget (the §4.3-derived aggregate slack), with
//! fair shares recomputed — only ever *downward* — as tenants are
//! admitted, so a tenant's shard size, degrade level and shed decision
//! are pure functions of the admission sequence, never of scheduling.
//!
//! Per-tenant output is bit-identical to a solo
//! [`sma_stream::StreamEngine`] replay of the same sequence because the
//! service assembles pairs through the same code path
//! ([`sma_stream::cached_frame_artifacts`] +
//! [`SmaFrames::from_artifacts`]) and plans with the same
//! [`crate::degrade::DegradeLevel::knobs`], which the execution planner
//! resolves to the same drivers a solo run uses. Scheduling
//! interleavings move *when* a pair runs, never *what* it computes;
//! retries recompute pure functions; and a fault-stormed tenant is
//! quarantined by its own circuit breaker without touching any other
//! tenant's shard or results. The standing isolation test pins exactly
//! this.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use sma_core::cancel::CancelToken;
use sma_core::sequential::SmaResult;
use sma_core::{SmaError, SmaFrames};
use sma_fault::{FaultSite, FaultToken, MasParError};
use sma_stream::{ArtifactCache, SharedArtifactCache, UsageMeter};
use std::sync::Arc;

use crate::breaker::CircuitBreaker;
use crate::config::ServeConfig;
use crate::degrade::{level_for_pressure, DegradeLevel};
use crate::ledger::{ServeLedger, ServeLedgerSnapshot};
use crate::tenant::{FrameOutcome, PairStatus, TenantReport, TenantSeq};

/// Scope string of the per-tenant counters in
/// [`sma_obs::scoped`] (`serve.tenant.<id>.<field>`).
pub const TENANT_SCOPE: &str = "serve.tenant";

fn lock_or_recover<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One admitted tenant and its placement.
struct TenantEntry {
    seq: TenantSeq,
    shard: SharedArtifactCache,
    shard_bytes: usize,
    level: DegradeLevel,
    shed: bool,
}

/// What the service produced once every admitted tenant drained.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-tenant reports, in admission order.
    pub tenants: Vec<TenantReport>,
    /// Final service ledger.
    pub ledger: ServeLedgerSnapshot,
    /// The configured host cache budget.
    pub host_budget_bytes: usize,
    /// Peak cross-shard resident bytes (must never exceed the budget).
    pub host_high_water_bytes: usize,
    /// Resident bytes after all shards cleared (0 when nothing leaked).
    pub host_resident_bytes: usize,
}

/// The multi-tenant SMA service. Submit tenants up front (admission
/// control runs at [`SmaService::submit`]), then [`SmaService::run`]
/// drains every admitted sequence over the worker pool.
pub struct SmaService {
    cfg: ServeConfig,
    meter: Arc<UsageMeter>,
    ledger: ServeLedger,
    tenants: Vec<TenantEntry>,
    queued_pairs: usize,
}

impl SmaService {
    /// An empty service with the given configuration.
    pub fn new(cfg: ServeConfig) -> Self {
        Self {
            cfg,
            meter: UsageMeter::new(),
            ledger: ServeLedger::default(),
            tenants: Vec::new(),
            queued_pairs: 0,
        }
    }

    /// Tenants admitted so far.
    pub fn admitted(&self) -> usize {
        self.tenants.len()
    }

    /// The current ledger totals.
    pub fn ledger_snapshot(&self) -> ServeLedgerSnapshot {
        self.ledger.snapshot()
    }

    /// The admitted tenant's placement: `(shard budget bytes, degrade
    /// level, shed)`. `None` for an unknown id.
    pub fn placement(&self, tenant: usize) -> Option<(usize, DegradeLevel, bool)> {
        self.tenants
            .get(tenant)
            .map(|e| (e.shard_bytes, e.level, e.shed))
    }

    /// Admit `seq` if the byte and queue models say it fits.
    ///
    /// The byte model: after admission every tenant's fair share is
    /// `host_budget / n`; the share must hold at least one
    /// frame-artifact set ([`TenantSeq::frame_bytes`], a pure function
    /// of the frame dimensions) or every tenant would thrash. The queue
    /// model bounds total queued pairs. Admission *shrinks* existing
    /// shards to the new fair share and re-derives their degrade
    /// levels; shares never grow back, so placements are deterministic
    /// in the admission sequence alone.
    ///
    /// # Errors
    /// [`SmaError::Overloaded`] when either model rejects the sequence.
    pub fn submit(&mut self, seq: TenantSeq) -> Result<usize, SmaError> {
        let pairs = seq.num_pairs();
        let frame_bytes = seq.frame_bytes().max(1);
        let fair = self.cfg.host_budget_bytes / (self.tenants.len() + 1);
        if self.queued_pairs + pairs > self.cfg.queue_capacity_pairs || fair < frame_bytes {
            self.ledger.rejected(1);
            return Err(SmaError::Overloaded {
                needed_bytes: frame_bytes,
                available_bytes: fair,
                queued_pairs: self.queued_pairs,
                queue_capacity: self.cfg.queue_capacity_pairs,
            });
        }
        for e in &mut self.tenants {
            e.shard_bytes = fair;
            e.shard.lock().resize_budget(fair);
            let needed = 2 * e.seq.frame_bytes().max(1);
            (e.level, e.shed) = level_for_pressure(self.cfg.base_level, needed, fair);
        }
        let shard =
            SharedArtifactCache::new(ArtifactCache::new(fair).with_meter(Arc::clone(&self.meter)));
        let (level, shed) = level_for_pressure(self.cfg.base_level, 2 * frame_bytes, fair);
        let id = self.tenants.len();
        self.tenants.push(TenantEntry {
            seq,
            shard,
            shard_bytes: fair,
            level,
            shed,
        });
        self.queued_pairs += pairs;
        self.ledger.admitted(1);
        Ok(id)
    }

    /// Drain every admitted tenant over `workers` threads and return
    /// the per-tenant reports plus the final ledger. Consumes the
    /// service; its shards are cleared (bytes returned to the host
    /// meter) as tenants finish.
    pub fn run(self) -> ServeOutcome {
        let SmaService {
            cfg,
            meter,
            ledger,
            tenants,
            ..
        } = self;
        let n = tenants.len();
        let sched = Mutex::new(Sched::new(&tenants, &cfg));
        let cvar = Condvar::new();
        let watchdog = Watchdog::default();
        let use_watchdog = matches!(cfg.deadline_ms, Some(ms) if ms > 0);
        std::thread::scope(|scope| {
            let wd = &watchdog;
            if use_watchdog {
                scope.spawn(move || wd.run());
            }
            for _ in 0..cfg.workers.max(1) {
                scope.spawn(|| {
                    worker_loop(&cfg, &tenants, &sched, &cvar, &ledger, &watchdog, &meter);
                });
            }
            // Workers exit when every pair is accounted for; stop the
            // watchdog afterwards so its loop can exit too. The scope
            // joins everything.
            scope.spawn(|| {
                let mut s = lock_or_recover(&sched);
                while s.remaining > 0 {
                    s = cvar.wait(s).unwrap_or_else(|e| e.into_inner());
                }
                drop(s);
                watchdog.stop();
            });
        });
        let sched = sched.into_inner().unwrap_or_else(|e| e.into_inner());
        let mut reports = Vec::with_capacity(n);
        for (i, e) in tenants.into_iter().enumerate() {
            e.shard.lock().clear();
            reports.push(TenantReport {
                tenant: i,
                name: e.seq.name,
                results: sched.results[i].iter().map(Clone::clone).collect(),
                outcomes: sched.outcomes[i].iter().flatten().cloned().collect(),
                shard_bytes: e.shard_bytes,
                level: e.level,
                shed: e.shed,
            });
        }
        ServeOutcome {
            tenants: reports,
            ledger: ledger.snapshot(),
            host_budget_bytes: cfg.host_budget_bytes,
            host_high_water_bytes: meter.high_water_bytes(),
            host_resident_bytes: meter.resident_bytes(),
        }
    }
}

/// Shared scheduler state: one in-flight pair per tenant, round-robin
/// across tenants so no sequence starves.
struct Sched {
    next_pair: Vec<usize>,
    in_flight: Vec<bool>,
    breakers: Vec<CircuitBreaker>,
    results: Vec<Vec<Option<SmaResult>>>,
    outcomes: Vec<Vec<Option<FrameOutcome>>>,
    remaining: usize,
    rr: usize,
}

impl Sched {
    fn new(tenants: &[TenantEntry], cfg: &ServeConfig) -> Self {
        let remaining = tenants.iter().map(|e| e.seq.num_pairs()).sum();
        Self {
            next_pair: vec![0; tenants.len()],
            in_flight: vec![false; tenants.len()],
            breakers: tenants
                .iter()
                .map(|_| CircuitBreaker::new(cfg.circuit_k, cfg.circuit_cooldown_polls))
                .collect(),
            results: tenants
                .iter()
                .map(|e| vec![None; e.seq.num_pairs()])
                .collect(),
            outcomes: tenants
                .iter()
                .map(|e| vec![None; e.seq.num_pairs()])
                .collect(),
            remaining,
            rr: 0,
        }
    }
}

fn record_scoped(tenant: usize, status: &PairStatus, attempts: u32, latency_ms: u64) {
    let field = match status {
        PairStatus::Ok => "pairs_ok",
        PairStatus::Degraded => "pairs_degraded",
        PairStatus::DroppedShed => "pairs_dropped",
        PairStatus::Failed(_) => "pairs_failed",
        PairStatus::CircuitSkipped => "circuit_skipped",
    };
    sma_obs::scoped::incr(TENANT_SCOPE, tenant, field);
    if attempts > 1 {
        sma_obs::scoped::add(TENANT_SCOPE, tenant, "retries", (attempts - 1) as u64);
    }
    sma_obs::scoped::set_max(TENANT_SCOPE, tenant, "latency_ms_max", latency_ms);
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    cfg: &ServeConfig,
    tenants: &[TenantEntry],
    sched: &Mutex<Sched>,
    cvar: &Condvar,
    ledger: &ServeLedger,
    watchdog: &Watchdog,
    meter: &UsageMeter,
) {
    let n = tenants.len();
    loop {
        // Claim phase: find a tenant with a runnable pair, consuming
        // circuit skips and shed drops inline (they need no worker
        // time).
        let (tenant, pair) = {
            let mut s = lock_or_recover(sched);
            'claim: loop {
                if s.remaining == 0 {
                    cvar.notify_all();
                    return;
                }
                let mut progressed = false;
                let mut found = None;
                for k in 0..n {
                    let i = (s.rr + k) % n;
                    if s.in_flight[i] || s.next_pair[i] >= tenants[i].seq.num_pairs() {
                        continue;
                    }
                    if !s.breakers[i].poll() {
                        consume(
                            &mut s,
                            tenants,
                            i,
                            None,
                            PairStatus::CircuitSkipped,
                            None,
                            0,
                            0,
                        );
                        ledger.circuit_skipped(1);
                        record_scoped(i, &PairStatus::CircuitSkipped, 0, 0);
                        progressed = true;
                        continue;
                    }
                    if tenants[i].shed && s.next_pair[i] % 2 == 1 {
                        // Load shedding: past 4x oversubscription the
                        // bottom rung cannot absorb the recompute
                        // traffic, so alternate pairs are dropped —
                        // decision and outcome counted together.
                        ledger.shed_requested(1);
                        ledger.pairs_dropped_shed(1);
                        consume(
                            &mut s,
                            tenants,
                            i,
                            None,
                            PairStatus::DroppedShed,
                            None,
                            0,
                            0,
                        );
                        record_scoped(i, &PairStatus::DroppedShed, 0, 0);
                        progressed = true;
                        continue;
                    }
                    found = Some(i);
                    break;
                }
                if let Some(i) = found {
                    let pair = s.next_pair[i];
                    s.in_flight[i] = true;
                    s.rr = (i + 1) % n;
                    break 'claim (i, pair);
                }
                if progressed {
                    continue;
                }
                s = cvar.wait(s).unwrap_or_else(|e| e.into_inner());
            }
        };

        let entry = &tenants[tenant];
        let (status, level, attempts, latency_ms, result) =
            process_pair(cfg, entry, tenant, pair, watchdog, ledger);
        record_scoped(tenant, &status, attempts, latency_ms);
        {
            let mut s = lock_or_recover(sched);
            s.in_flight[tenant] = false;
            match &status {
                PairStatus::Ok | PairStatus::Degraded => s.breakers[tenant].record_success(),
                PairStatus::Failed(_) => s.breakers[tenant].record_failure(),
                PairStatus::DroppedShed | PairStatus::CircuitSkipped => {}
            }
            consume(
                &mut s, tenants, tenant, result, status, level, attempts, latency_ms,
            );
            if meter.resident_bytes() > cfg.host_budget_bytes {
                ledger.budget_breaches(1);
            }
            cvar.notify_all();
        }
    }
}

/// Record the outcome of tenant `i`'s next pair and advance its cursor;
/// clears the tenant's shard when its last pair lands.
#[allow(clippy::too_many_arguments)]
fn consume(
    s: &mut Sched,
    tenants: &[TenantEntry],
    i: usize,
    result: Option<SmaResult>,
    status: PairStatus,
    level: Option<DegradeLevel>,
    attempts: u32,
    latency_ms: u64,
) {
    let pair = s.next_pair[i];
    s.results[i][pair] = result;
    s.outcomes[i][pair] = Some(FrameOutcome {
        pair,
        status,
        level,
        attempts,
        latency_ms,
    });
    s.next_pair[i] += 1;
    s.remaining -= 1;
    if s.next_pair[i] >= tenants[i].seq.num_pairs() {
        tenants[i].shard.lock().clear();
    }
}

/// Run one pair to a terminal status: `(status, final level, attempts,
/// latency ms, result)`.
///
/// Fault interplay, chosen so clean tenants stay bit-identical to a
/// solo replay even under armed sweeps:
/// * injected `WorkerDeath` — the attempt dies before any work; the
///   pool retries the *same* pair at the *same* level (pure recompute,
///   bit-identical on recovery) with bounded exponential backoff.
/// * injected `DeadlineOverrun` — a spurious watchdog firing: the
///   attempt's token is pre-cancelled, the driver aborts at its next
///   checkpoint, and the retry runs at the same level.
/// * a *real* watchdog cancellation — the pair cannot meet its budget
///   at this level, so it steps down the degrade ladder (fresh
///   attempt); past the bottom rung it is shed.
fn process_pair(
    cfg: &ServeConfig,
    entry: &TenantEntry,
    tenant: usize,
    pair: usize,
    watchdog: &Watchdog,
    ledger: &ServeLedger,
) -> (
    PairStatus,
    Option<DegradeLevel>,
    u32,
    u64,
    Option<SmaResult>,
) {
    let started = Instant::now();
    let base = cfg.base_level;
    let mut level = entry.level;
    let mut shed_flagged = false;
    if level.depth() > base.depth() {
        ledger.shed_requested(1);
        shed_flagged = true;
    }
    let mut attempts: u32 = 0;
    let mut transient_retries: u32 = 0;
    let mut pending: Vec<FaultToken> = Vec::new();
    let key = |attempt: u32| sma_fault::key3(tenant as u64, pair as u64, attempt as u64);
    loop {
        attempts += 1;
        if let Some(tok) = sma_fault::inject(FaultSite::WorkerDeath, key(attempts)) {
            // The worker processing this attempt died; the pool
            // replaces it and the pair is retried from scratch.
            pending.push(tok);
            if transient_retries >= cfg.max_retries {
                ledger.frames_failed(1);
                if shed_flagged {
                    ledger.pairs_dropped_shed(1);
                }
                let err = SmaError::MasPar(MasParError::SegmentFailed {
                    layer: tenant,
                    segment: pair,
                    attempts,
                });
                return (
                    PairStatus::Failed(err),
                    Some(level),
                    attempts,
                    ms(started),
                    None,
                );
            }
            transient_retries += 1;
            ledger.retries(1);
            std::thread::sleep(Duration::from_millis(cfg.backoff_ms(transient_retries)));
            continue;
        }

        let token = CancelToken::new();
        let injected_overrun = sma_fault::inject(FaultSite::DeadlineOverrun, key(attempts));
        let injected = injected_overrun.is_some();
        if let Some(tok) = injected_overrun {
            pending.push(tok);
            let b = cfg.deadline_ms.unwrap_or(0);
            token.cancel(b, b);
        } else if cfg.deadline_ms == Some(0) {
            token.cancel(0, 0);
        }
        let slot = match cfg.deadline_ms {
            Some(budget) if budget > 0 && !injected => {
                Some(watchdog.register(token.clone(), budget))
            }
            _ => None,
        };
        let outcome = {
            let _guard = sma_core::cancel::install(token.clone());
            run_attempt(entry, pair, level)
        };
        if let Some(slot) = slot {
            watchdog.deregister(slot);
        }
        match outcome {
            Ok(result) => {
                for tok in pending.drain(..) {
                    tok.recovered();
                }
                ledger.pairs_completed(1);
                let status = if level.depth() > base.depth() {
                    ledger.frames_degraded(1);
                    PairStatus::Degraded
                } else {
                    PairStatus::Ok
                };
                return (status, Some(level), attempts, ms(started), Some(result));
            }
            Err(SmaError::DeadlineExceeded { .. }) if injected => {
                // Spurious (injected) firing: transient, retried at the
                // same level so recovery is bit-identical.
                if transient_retries >= cfg.max_retries {
                    ledger.frames_failed(1);
                    if shed_flagged {
                        ledger.pairs_dropped_shed(1);
                    }
                    return (
                        PairStatus::Failed(token.error()),
                        Some(level),
                        attempts,
                        ms(started),
                        None,
                    );
                }
                transient_retries += 1;
                ledger.retries(1);
                std::thread::sleep(Duration::from_millis(cfg.backoff_ms(transient_retries)));
            }
            Err(SmaError::DeadlineExceeded { .. }) => {
                // Real overrun: this level cannot meet the budget.
                ledger.deadline_cancelled(1);
                match level.lower() {
                    Some(lower) => {
                        if !shed_flagged {
                            ledger.shed_requested(1);
                            shed_flagged = true;
                        }
                        level = lower;
                    }
                    None => {
                        if !shed_flagged {
                            ledger.shed_requested(1);
                        }
                        ledger.pairs_dropped_shed(1);
                        return (
                            PairStatus::DroppedShed,
                            Some(level),
                            attempts,
                            ms(started),
                            None,
                        );
                    }
                }
            }
            Err(e) => {
                // Non-transient (poisoned frames, config): fail fast,
                // feeding the tenant's circuit breaker.
                ledger.frames_failed(1);
                if shed_flagged {
                    ledger.pairs_dropped_shed(1);
                }
                return (
                    PairStatus::Failed(e),
                    Some(level),
                    attempts,
                    ms(started),
                    None,
                );
            }
        }
    }
}

/// One attempt: assemble the pair through the tenant's shard (the same
/// [`sma_stream::cached_frame_artifacts`] path the streaming engine
/// uses) and run the level's driver.
fn run_attempt(
    entry: &TenantEntry,
    pair: usize,
    level: DegradeLevel,
) -> Result<SmaResult, SmaError> {
    let seq = &entry.seq;
    let before = entry.shard.frame_artifacts(
        pair,
        &seq.frames[pair].intensity,
        &seq.frames[pair].surface,
        &seq.cfg,
    )?;
    let after = entry.shard.frame_artifacts(
        pair + 1,
        &seq.frames[pair + 1].intensity,
        &seq.frames[pair + 1].surface,
        &seq.cfg,
    )?;
    let frames = SmaFrames::from_artifacts(&before, &after)?;
    level.run(&frames, &seq.cfg, seq.region)
}

fn ms(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// One registered attempt the watchdog is timing.
struct DeadlineSlot {
    token: CancelToken,
    deadline: Instant,
    start: Instant,
    budget_ms: u64,
}

/// The deadline watchdog: a registry of `(token, deadline)` slots
/// scanned by one thread that cancels overdue attempts.
#[derive(Default)]
struct Watchdog {
    slots: Mutex<Vec<Option<DeadlineSlot>>>,
    cvar: Condvar,
    stopped: AtomicBool,
}

impl Watchdog {
    fn register(&self, token: CancelToken, budget_ms: u64) -> usize {
        let mut slots = lock_or_recover(&self.slots);
        let start = Instant::now();
        let deadline = start + Duration::from_millis(budget_ms);
        let entry = Some(DeadlineSlot {
            token,
            deadline,
            start,
            budget_ms,
        });
        let idx = match slots.iter().position(Option::is_none) {
            Some(i) => {
                slots[i] = entry;
                i
            }
            None => {
                slots.push(entry);
                slots.len() - 1
            }
        };
        self.cvar.notify_all();
        idx
    }

    fn deregister(&self, slot: usize) {
        lock_or_recover(&self.slots)[slot] = None;
    }

    fn stop(&self) {
        self.stopped.store(true, Ordering::Release);
        self.cvar.notify_all();
    }

    fn run(&self) {
        let mut slots = lock_or_recover(&self.slots);
        loop {
            if self.stopped.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            let mut nearest: Option<Instant> = None;
            for s in slots.iter_mut() {
                if let Some(slot) = s {
                    if slot.deadline <= now {
                        let elapsed =
                            u64::try_from(slot.start.elapsed().as_millis()).unwrap_or(u64::MAX);
                        slot.token.cancel(elapsed, slot.budget_ms);
                        *s = None;
                    } else if nearest.is_none_or(|n| slot.deadline < n) {
                        nearest = Some(slot.deadline);
                    }
                }
            }
            let timeout = nearest
                .map(|d| d.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(20));
            let (guard, _) = self
                .cvar
                .wait_timeout(slots, timeout)
                .unwrap_or_else(|e| e.into_inner());
            slots = guard;
        }
    }
}
