//! The load-shedding degrade ladder.
//!
//! A saturated tenant's frames step down the ladder before any frame is
//! dropped: the SIMD lane kernels first give way to the integral fast
//! path (bit-identical output, less lane bookkeeping, same memory),
//! then to the translation-only Fcont driver (a strict subset of the
//! hypothesis space — cheaper by the affine-refinement factor,
//! comparable but not bit-identical output). Only past the bottom rung
//! are pairs shed outright.
//!
//! Since the adaptive planner landed, a rung no longer hand-picks a
//! driver enum: each level maps to a set of [`PlannerKnobs`] (top rung
//! allows the SIMD family, one down forbids it, the bottom forces
//! translation-only) and every attempt goes through
//! [`sma_core::plan::track_all_planner_with`]. The planner resolves
//! those knobs to the same drivers the ladder used to call directly, so
//! output bits per rung are unchanged — but budget-driven segmentation
//! and border handling now come along for free.
//!
//! Pressure is *byte* pressure: the tenant's fair-share cache shard
//! relative to what a resident pair needs. That signal is fixed at
//! admission time — a pure function of the admission sequence, not of
//! scheduling — so a tenant's degrade level (and therefore its output
//! bits) is reproducible run to run.

use sma_core::plan::track_all_planner_with;
use sma_core::sequential::Region;
use sma_core::sequential::SmaResult;
use sma_core::{PlannerKnobs, SmaConfig, SmaError, SmaFrames};

/// One rung of the degrade ladder, top first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeLevel {
    /// Full-speed SIMD lane kernels ([`sma_core::track_all_simd`]).
    Simd,
    /// Integral-image fast path ([`sma_core::track_all_integral`]) —
    /// bit-identical to SIMD, cheaper per hypothesis.
    Integral,
    /// Translation-only Fcont ([`sma_core::track_all_translation_only`])
    /// — the shedding fallback; comparable, not bit-identical.
    TranslationOnly,
}

impl DegradeLevel {
    /// Ladder position, 0 at the top.
    pub fn depth(self) -> u8 {
        match self {
            DegradeLevel::Simd => 0,
            DegradeLevel::Integral => 1,
            DegradeLevel::TranslationOnly => 2,
        }
    }

    /// The next rung down, `None` at the bottom.
    pub fn lower(self) -> Option<Self> {
        match self {
            DegradeLevel::Simd => Some(DegradeLevel::Integral),
            DegradeLevel::Integral => Some(DegradeLevel::TranslationOnly),
            DegradeLevel::TranslationOnly => None,
        }
    }

    /// Stable name for reports and counters.
    pub fn name(self) -> &'static str {
        match self {
            DegradeLevel::Simd => "simd",
            DegradeLevel::Integral => "integral",
            DegradeLevel::TranslationOnly => "translation_only",
        }
    }

    /// The planner knobs this rung targets. Worker threads run one pair
    /// each, so every rung plans the sequential (non-Rayon) variants —
    /// the same drivers the ladder called directly before the planner
    /// existed, keeping per-rung output bits unchanged.
    pub fn knobs(self) -> PlannerKnobs {
        let base = PlannerKnobs {
            parallel: false,
            ..PlannerKnobs::default()
        };
        match self {
            DegradeLevel::Simd => base,
            DegradeLevel::Integral => PlannerKnobs {
                allow_simd: false,
                ..base
            },
            DegradeLevel::TranslationOnly => PlannerKnobs {
                translation_only: true,
                ..base
            },
        }
    }

    /// Run this rung's plan.
    ///
    /// # Errors
    /// Propagates the planner's error, including
    /// [`SmaError::DeadlineExceeded`] from a cancellation point.
    pub fn run(
        self,
        frames: &SmaFrames,
        cfg: &SmaConfig,
        region: Region,
    ) -> Result<SmaResult, SmaError> {
        track_all_planner_with(frames, cfg, region, self.knobs())
    }
}

/// The level (and shed decision) byte pressure dictates, starting from
/// `base`. `needed_bytes` is a resident pair (two frame-artifact sets);
/// `shard_bytes` is the tenant's fair share. One rung down per doubling
/// of oversubscription; past 4x even the bottom rung cannot keep up
/// with the recompute traffic, so alternate pairs are shed.
pub fn level_for_pressure(
    base: DegradeLevel,
    needed_bytes: usize,
    shard_bytes: usize,
) -> (DegradeLevel, bool) {
    let steps = if shard_bytes >= needed_bytes {
        0
    } else if 2 * shard_bytes >= needed_bytes {
        1
    } else {
        2
    };
    let mut level = base;
    for _ in 0..steps {
        level = level.lower().unwrap_or(level);
    }
    let shed = 4 * shard_bytes < needed_bytes;
    (level, shed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_steps_down_and_bottoms_out() {
        assert_eq!(DegradeLevel::Simd.lower(), Some(DegradeLevel::Integral));
        assert_eq!(
            DegradeLevel::Integral.lower(),
            Some(DegradeLevel::TranslationOnly)
        );
        assert_eq!(DegradeLevel::TranslationOnly.lower(), None);
        assert!(DegradeLevel::Simd.depth() < DegradeLevel::TranslationOnly.depth());
    }

    #[test]
    fn pressure_maps_to_rungs() {
        let base = DegradeLevel::Simd;
        assert_eq!(
            level_for_pressure(base, 100, 100),
            (DegradeLevel::Simd, false)
        );
        assert_eq!(
            level_for_pressure(base, 100, 60),
            (DegradeLevel::Integral, false)
        );
        assert_eq!(
            level_for_pressure(base, 100, 40),
            (DegradeLevel::TranslationOnly, false)
        );
        assert_eq!(
            level_for_pressure(base, 100, 20),
            (DegradeLevel::TranslationOnly, true)
        );
    }

    #[test]
    fn rungs_map_to_planner_knobs() {
        // Top rung: SIMD family allowed, sequential execution.
        let top = DegradeLevel::Simd.knobs();
        assert!(top.allow_simd && top.allow_integral);
        assert!(!top.translation_only && !top.parallel);
        // One down: SIMD forbidden, integral family still allowed.
        let mid = DegradeLevel::Integral.knobs();
        assert!(!mid.allow_simd && mid.allow_integral);
        assert!(!mid.translation_only);
        // Bottom: translation-only shedding mode.
        assert!(DegradeLevel::TranslationOnly.knobs().translation_only);
    }

    #[test]
    fn degraded_base_saturates_at_bottom() {
        let (level, shed) = level_for_pressure(DegradeLevel::TranslationOnly, 100, 40);
        assert_eq!(level, DegradeLevel::TranslationOnly);
        assert!(!shed);
    }
}
