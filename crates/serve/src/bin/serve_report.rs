//! Multi-tenant service throughput report: `BENCH_serve.json` (plus
//! `METRICS_serve.json` and a stdout table) at 1 / 8 / 64 concurrent
//! sequences.
//!
//! Each scenario admits N florida-analog tenants into one service and
//! measures the worker pool against a single-worker serial drain of the
//! same admission sequence (`speedup_pool_vs_serial` divides out the
//! host). An untimed pass replays every tenant solo through
//! `sma-stream` and checks bit-identity — the isolation contract the
//! serve layer guarantees — and collects per-pair latencies for the
//! p50/p99 columns.
//!
//! Acceptance gates (exit 1 on failure):
//! * every tenant in every scenario is bit-identical to its solo replay;
//! * zero host-budget breaches and high water within the budget;
//! * the service ledger balances (`shed_requested ==
//!   frames_degraded + pairs_dropped_shed`) in every scenario.
//!
//! `--small` shrinks frames for CI. `--soak` switches to the fault-armed
//! soak: repeated 8-tenant rounds (arm with `SMA_FAULTS=<seed>:<rate>`),
//! every round re-checked for ledger balance and zero cross-tenant
//! divergence, scoped per-tenant counters exported to
//! `METRICS_serve.json`.

use std::time::Instant;

use sma_core::sequential::{Region, SmaResult};
use sma_core::{track_all_simd, MotionModel, SmaConfig};
use sma_obs::json::MetricsDoc;
use sma_satdata::{florida_thunderstorm_analog, SceneSequence};
use sma_serve::{PairStatus, ServeConfig, ServeOutcome, SmaService, TenantSeq};
use sma_stream::{sequence_frames, StreamEngine};

/// Best-of-reps wall-clock seconds (see `stream_report`: best-of-N
/// converges on the noise-free minimum on shared hosts).
fn time_best(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    let mut reps = 0usize;
    let mut spent = 0.0f64;
    while reps < 3 || (spent < 1.0 && reps < 10) {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        reps += 1;
    }
    best
}

/// Percentile (nearest-rank) over per-pair latencies, milliseconds.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct Fleet {
    sequences: Vec<SceneSequence>,
    cfg: SmaConfig,
    serve_cfg: ServeConfig,
}

impl Fleet {
    /// N analog tenants sized so every fair share holds a resident pair
    /// (two artifact sets): everyone runs at the base SIMD level, no
    /// shedding, which is what the bit-identity check needs.
    fn new(tenants: usize, side: usize, frames: usize, workers: usize) -> Self {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let frame_bytes = sma_core::FrameArtifacts::estimate_bytes(side, side);
        let mut serve_cfg = ServeConfig::new(2 * frame_bytes * tenants);
        serve_cfg.workers = workers;
        serve_cfg.max_retries = 4;
        let sequences = (0..tenants)
            .map(|i| florida_thunderstorm_analog(side, frames, 1000 + i as u64))
            .collect();
        Self {
            sequences,
            cfg,
            serve_cfg,
        }
    }

    fn build(&self) -> SmaService {
        let mut svc = SmaService::new(self.serve_cfg);
        for (i, seq) in self.sequences.iter().enumerate() {
            svc.submit(TenantSeq::from_scene(format!("t{i}"), seq, self.cfg))
                .expect("tenant admitted");
        }
        svc
    }

    /// Solo replay of tenant `i` through the streaming engine at the
    /// service's fair-share budget — the reference stream the served
    /// results must match bit for bit.
    fn solo(&self, i: usize, shard_bytes: usize) -> Vec<SmaResult> {
        let region = Region::Interior {
            margin: self.cfg.margin(),
        };
        let cfg = self.cfg;
        let mut engine = StreamEngine::new(sequence_frames(&self.sequences[i]), cfg, shard_bytes)
            .with_pipelining(false);
        engine
            .run(|_, frames| track_all_simd(frames, &cfg, region))
            .expect("solo replay")
    }
}

/// Check every tenant of `out` against its solo replay; returns false
/// (and prints the first divergence) when any pixel differs.
fn bit_identical(fleet: &Fleet, out: &ServeOutcome) -> bool {
    for report in &out.tenants {
        let solo = fleet.solo(report.tenant, report.shard_bytes);
        if report.results.len() != solo.len() {
            println!("  tenant {} pair-count mismatch", report.tenant);
            return false;
        }
        for (t, (served, solo)) in report.results.iter().zip(&solo).enumerate() {
            let Some(served) = served.as_ref() else {
                println!("  tenant {} pair {t} produced no result", report.tenant);
                return false;
            };
            if served.estimates != solo.estimates {
                println!(
                    "  tenant {} pair {t} DIVERGED from solo replay",
                    report.tenant
                );
                return false;
            }
        }
    }
    true
}

struct Row {
    name: String,
    tenants: usize,
    frames: usize,
    frame_side: usize,
    pairs_total: usize,
    serial_s: f64,
    pool_s: f64,
    pool_workers: usize,
    frames_per_sec: f64,
    p50_ms: u64,
    p99_ms: u64,
    budget_bytes: usize,
    high_water_bytes: usize,
    breaches: u64,
    balanced: bool,
    bit_identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_s / self.pool_s
    }
}

fn run_scenario(tenants: usize, side: usize, frames: usize, pool_workers: usize) -> Row {
    let pool = Fleet::new(tenants, side, frames, pool_workers);
    let serial = Fleet::new(tenants, side, frames, 1);

    // Correctness + latency pass (untimed).
    let out = pool.build().run();
    let mut latencies: Vec<u64> = out
        .tenants
        .iter()
        .flat_map(|t| t.outcomes.iter().map(|o| o.latency_ms))
        .collect();
    latencies.sort_unstable();
    let all_ok = out
        .tenants
        .iter()
        .all(|t| t.outcomes.iter().all(|o| o.status == PairStatus::Ok));
    let identical = all_ok && bit_identical(&pool, &out);

    let serial_s = time_best(|| {
        serial.build().run();
    });
    let pool_s = time_best(|| {
        pool.build().run();
    });
    let pairs_total = tenants * (frames - 1);

    Row {
        name: format!("t{tenants}"),
        tenants,
        frames,
        frame_side: side,
        pairs_total,
        serial_s,
        pool_s,
        pool_workers,
        frames_per_sec: pairs_total as f64 / pool_s,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        budget_bytes: out.host_budget_bytes,
        high_water_bytes: out.host_high_water_bytes,
        breaches: out.ledger.budget_breaches,
        balanced: out.ledger.balanced(),
        bit_identical: identical,
    }
}

/// The fault-armed soak: repeated 8-tenant rounds, each re-checked for
/// ledger balance, budget discipline, and zero cross-tenant divergence.
/// Returns the number of violations.
fn soak(side: usize, frames: usize, rounds: usize, workers: usize) -> usize {
    if !sma_fault::enabled() {
        println!("soak: SMA_FAULTS not armed — running clean (arm with SMA_FAULTS=<seed>:<rate>)");
    }
    sma_fault::reset_ledger();
    let fleet = Fleet::new(8, side, frames, workers);
    let mut violations = 0usize;
    for round in 0..rounds {
        let out = fleet.build().run();
        let identical = bit_identical(&fleet, &out);
        let clean = out.ledger.balanced()
            && out.ledger.budget_breaches == 0
            && out.host_high_water_bytes <= out.host_budget_bytes
            && out.host_resident_bytes == 0
            && identical;
        println!(
            "  round {round}: completed {} retries {} deadline_cancelled {} \
             high_water {}/{} divergence {} {}",
            out.ledger.pairs_completed,
            out.ledger.retries,
            out.ledger.deadline_cancelled,
            out.host_high_water_bytes,
            out.host_budget_bytes,
            if identical { "none" } else { "DETECTED" },
            if clean { "OK" } else { "FAIL" }
        );
        if !clean {
            violations += 1;
        }
    }
    let fl = sma_fault::ledger();
    println!(
        "  fault ledger: injected {} recovered {} degraded {} balanced {}",
        fl.injected,
        fl.recovered,
        fl.degraded,
        fl.balanced()
    );
    if !fl.balanced() {
        violations += 1;
    }
    violations
}

fn write_metrics(rows: &[Row], side: usize, frames: usize) {
    // Counted 8-tenant replay for the scoped per-tenant counters (the
    // timed passes ran at the ambient SMA_OBS level — off by default —
    // so wall-clocks are unperturbed).
    if std::env::var("SMA_OBS").is_err() {
        sma_obs::set_level(sma_obs::ObsLevel::Summary);
    }
    Fleet::new(8, side, frames, 2).build().run();
    let mut doc = MetricsDoc::capture("serve_report");
    sma_obs::scoped::export_into(&mut doc);
    for r in rows {
        doc.set_gauge(
            &format!("serve.{}.frames_per_sec", r.name),
            r.frames_per_sec,
        );
        doc.set_gauge(&format!("serve.{}.latency_p99_ms", r.name), r.p99_ms as f64);
        doc.set_gauge(
            &format!("serve.{}.speedup_pool_vs_serial", r.name),
            r.speedup(),
        );
        doc.set_gauge(
            &format!("serve.{}.host_high_water_bytes", r.name),
            r.high_water_bytes as f64,
        );
    }
    std::fs::write("METRICS_serve.json", doc.to_json()).expect("write METRICS_serve.json");
    println!("wrote METRICS_serve.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let (side, frames) = if small { (32, 4) } else { (40, 4) };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8);

    if args.iter().any(|a| a == "--soak") {
        let rounds = if small { 2 } else { 4 };
        println!("SMA serve soak: 8 tenants x {rounds} rounds, {workers} workers");
        let violations = soak(side, frames, rounds, workers);
        write_metrics(&[], side, frames);
        if violations > 0 {
            println!("soak: {violations} violation(s) FAIL");
            std::process::exit(1);
        }
        println!("soak: clean OK");
        return;
    }

    println!("SMA multi-tenant service: worker pool vs serial drain, {workers} workers");
    println!(
        "  {:<6} {:>7} {:>6} {:>10} {:>10} {:>8} {:>10} {:>8} {:>8}",
        "fleet", "tenants", "pairs", "serial", "pool", "speedup", "pairs/s", "p50", "p99"
    );
    let mut rows = Vec::new();
    for tenants in [1usize, 8, 64] {
        let r = run_scenario(tenants, side, frames, workers);
        println!(
            "  {:<6} {:>7} {:>6} {:>9.4}s {:>9.4}s {:>7.2}x {:>10.1} {:>6}ms {:>6}ms",
            r.name,
            r.tenants,
            r.pairs_total,
            r.serial_s,
            r.pool_s,
            r.speedup(),
            r.frames_per_sec,
            r.p50_ms,
            r.p99_ms,
        );
        rows.push(r);
    }

    // Hand-formatted JSON (no serde in the workspace). The sentinel
    // tolerance-compares the speedup_* ratio and exact-compares
    // bit_identical; wall-clocks and latencies are informational.
    let mut json =
        String::from("{\n  \"bench\": \"serve\",\n  \"unit\": \"seconds\",\n  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"tenants\": {},\n",
                "      \"frames_per_tenant\": {},\n",
                "      \"frame_side\": {},\n",
                "      \"pairs_total\": {},\n",
                "      \"serial_seconds\": {:.6},\n",
                "      \"pool_seconds\": {:.6},\n",
                "      \"pool_workers\": {},\n",
                "      \"speedup_pool_vs_serial\": {:.4},\n",
                "      \"frames_per_sec\": {:.1},\n",
                "      \"latency_p50_ms\": {},\n",
                "      \"latency_p99_ms\": {},\n",
                "      \"host_budget_bytes\": {},\n",
                "      \"host_high_water_bytes\": {},\n",
                "      \"budget_breaches\": {},\n",
                "      \"bit_identical\": {}\n",
                "    }}{}\n"
            ),
            r.name,
            r.tenants,
            r.frames,
            r.frame_side,
            r.pairs_total,
            r.serial_s,
            r.pool_s,
            r.pool_workers,
            r.speedup(),
            r.frames_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.budget_bytes,
            r.high_water_bytes,
            r.breaches,
            r.bit_identical,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    write_metrics(&rows, side, frames);

    // Acceptance gates.
    let mut failed = false;
    for r in &rows {
        if !r.bit_identical {
            println!("acceptance: {} diverged from solo replays FAIL", r.name);
            failed = true;
        }
        if r.breaches > 0 || r.high_water_bytes > r.budget_bytes {
            println!(
                "acceptance: {} breached the host budget ({} breaches, high water {}/{}) FAIL",
                r.name, r.breaches, r.high_water_bytes, r.budget_bytes
            );
            failed = true;
        }
        if !r.balanced {
            println!("acceptance: {} service ledger unbalanced FAIL", r.name);
            failed = true;
        }
    }
    if !failed {
        println!(
            "acceptance: {} scenarios bit-identical, zero budget breaches, ledgers balanced OK",
            rows.len()
        );
    }
    if failed {
        std::process::exit(1);
    }
}
