//! Tenant sequences and per-pair outcomes.

use std::sync::Arc;

use sma_core::sequential::Region;
use sma_core::sequential::SmaResult;
use sma_core::{FrameArtifacts, SmaConfig, SmaError};
use sma_grid::Grid;
use sma_satdata::SceneSequence;

use crate::degrade::DegradeLevel;

/// One frame's owned input planes, `Arc`-shared so worker threads can
/// hold them without copying.
#[derive(Debug, Clone)]
pub struct FramePlanes {
    /// Intensity image.
    pub intensity: Arc<Grid<f32>>,
    /// Surface input (height map for stereo sequences, the intensity
    /// itself for monocular ones).
    pub surface: Arc<Grid<f32>>,
}

/// One tenant's sequence: the unit of admission.
#[derive(Debug, Clone)]
pub struct TenantSeq {
    /// Display name carried into reports and counters.
    pub name: String,
    /// Frames in order; pair `t` is `(t, t+1)`.
    pub frames: Vec<FramePlanes>,
    /// Tracking configuration.
    pub cfg: SmaConfig,
    /// Region tracked per pair.
    pub region: Region,
}

impl TenantSeq {
    /// A tenant over explicit frames.
    pub fn new(name: impl Into<String>, frames: Vec<FramePlanes>, cfg: SmaConfig) -> Self {
        let region = Region::Interior {
            margin: cfg.margin(),
        };
        Self {
            name: name.into(),
            frames,
            cfg,
            region,
        }
    }

    /// A tenant over a satdata [`SceneSequence`] (planes are copied
    /// into `Arc`s once).
    pub fn from_scene(name: impl Into<String>, seq: &SceneSequence, cfg: SmaConfig) -> Self {
        let frames = (0..seq.len())
            .map(|t| FramePlanes {
                intensity: Arc::new(seq.frames[t].intensity.clone()),
                surface: Arc::new(seq.surface(t).clone()),
            })
            .collect();
        Self::new(name, frames, cfg)
    }

    /// Number of adjacent pairs (frames - 1; 0 for a degenerate
    /// sequence).
    pub fn num_pairs(&self) -> usize {
        self.frames.len().saturating_sub(1)
    }

    /// Dimensions of frame 0 (the admission model's sizing frame).
    pub fn dims(&self) -> (usize, usize) {
        self.frames.first().map_or((0, 0), |f| f.intensity.dims())
    }

    /// Bytes one frame-artifact set will occupy, from
    /// [`FrameArtifacts::estimate_bytes`] — a pure function of the
    /// dimensions, so admission can cost the sequence before preparing
    /// anything.
    pub fn frame_bytes(&self) -> usize {
        let (w, h) = self.dims();
        FrameArtifacts::estimate_bytes(w, h)
    }
}

/// How one pair ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairStatus {
    /// Completed at the base level.
    Ok,
    /// Completed below the base level (pressure or deadline ladder).
    Degraded,
    /// Shed: no result, by backpressure or deadline exhaustion.
    DroppedShed,
    /// Failed with a non-transient error.
    Failed(SmaError),
    /// Skipped while the tenant's circuit was open.
    CircuitSkipped,
}

/// Per-pair record in a [`TenantReport`].
#[derive(Debug, Clone)]
pub struct FrameOutcome {
    /// Pair index `t` (frames `t`, `t+1`).
    pub pair: usize,
    /// Terminal status.
    pub status: PairStatus,
    /// Level the final attempt ran at (`None` when nothing ran).
    pub level: Option<DegradeLevel>,
    /// Attempts consumed (1 = no retries).
    pub attempts: u32,
    /// Wall-clock latency of the pair, milliseconds.
    pub latency_ms: u64,
}

/// Everything the service produced for one tenant.
#[derive(Debug)]
pub struct TenantReport {
    /// Tenant id (admission order).
    pub tenant: usize,
    /// Tenant name.
    pub name: String,
    /// Per-pair results, `None` where no result was produced.
    pub results: Vec<Option<SmaResult>>,
    /// Per-pair outcome records, in pair order.
    pub outcomes: Vec<FrameOutcome>,
    /// The shard budget the tenant ended with.
    pub shard_bytes: usize,
    /// Level its pressure model assigned.
    pub level: DegradeLevel,
    /// Whether alternate pairs were shed.
    pub shed: bool,
}

impl TenantReport {
    /// Count of outcomes with the given coarse status name (see
    /// [`PairStatus`]): `"ok"`, `"degraded"`, `"dropped"`, `"failed"`,
    /// `"skipped"`.
    pub fn count(&self, status: &str) -> usize {
        self.outcomes
            .iter()
            .filter(|o| {
                matches!(
                    (&o.status, status),
                    (PairStatus::Ok, "ok")
                        | (PairStatus::Degraded, "degraded")
                        | (PairStatus::DroppedShed, "dropped")
                        | (PairStatus::Failed(_), "failed")
                        | (PairStatus::CircuitSkipped, "skipped")
                )
            })
            .count()
    }
}
