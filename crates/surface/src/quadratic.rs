//! The 6-coefficient quadratic surface patch.

use sma_linalg::Vec3;

/// A quadratic patch in pixel-local coordinates `(u, v)` centered on the
/// pixel of interest:
///
/// ```text
/// z(u, v) = c_xx u^2 + c_yy v^2 + c_xy u v + c_x u + c_y v + c_0
/// ```
///
/// The six coefficients are exactly the unknowns of the paper's per-pixel
/// 6 x 6 least-squares solve. All local differential quantities the SMA
/// error functional needs fall out analytically at the patch center:
/// gradient `(z_x, z_y) = (c_x, c_y)`, Hessian entries
/// `z_xx = 2 c_xx`, `z_yy = 2 c_yy`, `z_xy = c_xy`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuadraticPatch {
    /// Coefficient of `u^2`.
    pub cxx: f64,
    /// Coefficient of `v^2`.
    pub cyy: f64,
    /// Coefficient of `u v`.
    pub cxy: f64,
    /// Coefficient of `u`.
    pub cx: f64,
    /// Coefficient of `v`.
    pub cy: f64,
    /// Constant term (patch height at the center pixel).
    pub c0: f64,
}

impl QuadraticPatch {
    /// Construct from the solver's coefficient vector in the fixed basis
    /// order `[u^2, v^2, uv, u, v, 1]`.
    pub fn from_coeffs(c: &[f64; 6]) -> Self {
        Self {
            cxx: c[0],
            cyy: c[1],
            cxy: c[2],
            cx: c[3],
            cy: c[4],
            c0: c[5],
        }
    }

    /// The coefficient vector in basis order `[u^2, v^2, uv, u, v, 1]`.
    pub fn coeffs(&self) -> [f64; 6] {
        [self.cxx, self.cyy, self.cxy, self.cx, self.cy, self.c0]
    }

    /// Evaluate the patch at local offset `(u, v)`.
    #[inline]
    pub fn eval(&self, u: f64, v: f64) -> f64 {
        self.cxx * u * u + self.cyy * v * v + self.cxy * u * v + self.cx * u + self.cy * v + self.c0
    }

    /// First derivatives `(z_x, z_y)` at local offset `(u, v)`.
    #[inline]
    pub fn gradient_at(&self, u: f64, v: f64) -> (f64, f64) {
        (
            2.0 * self.cxx * u + self.cxy * v + self.cx,
            2.0 * self.cyy * v + self.cxy * u + self.cy,
        )
    }

    /// Gradient at the patch center: `(c_x, c_y)`.
    #[inline]
    pub fn gradient(&self) -> (f64, f64) {
        (self.cx, self.cy)
    }

    /// Second derivatives `(z_xx, z_yy, z_xy)` (constant over the patch).
    #[inline]
    pub fn hessian(&self) -> (f64, f64, f64) {
        (2.0 * self.cxx, 2.0 * self.cyy, self.cxy)
    }

    /// Unit surface normal `[n_i, n_j, n_k]` at the patch center.
    #[inline]
    pub fn unit_normal(&self) -> Vec3 {
        Vec3::unit_normal_from_gradient(self.cx, self.cy)
    }

    /// First-fundamental-form coefficient `E = 1 + z_x^2` (paper's
    /// `E = 1 + (dz/dx)^2`).
    #[inline]
    pub fn e_coeff(&self) -> f64 {
        1.0 + self.cx * self.cx
    }

    /// First-fundamental-form coefficient `G = 1 + z_y^2`.
    #[inline]
    pub fn g_coeff(&self) -> f64 {
        1.0 + self.cy * self.cy
    }

    /// Discriminant of the quadratic form, `D = z_xx z_yy - z_xy^2`
    /// (4 c_xx c_yy - c_xy^2). This is the quantity the semi-fluid
    /// template mapping matches before/after motion (eqs. 10–11): it
    /// measures the local shape class (elliptic / parabolic / hyperbolic)
    /// of the intensity surface and is invariant to translation and to
    /// adding any linear ramp.
    #[inline]
    pub fn discriminant(&self) -> f64 {
        let (zxx, zyy, zxy) = self.hessian();
        zxx * zyy - zxy * zxy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patch() -> QuadraticPatch {
        QuadraticPatch {
            cxx: 0.5,
            cyy: -0.25,
            cxy: 0.1,
            cx: 2.0,
            cy: -1.0,
            c0: 3.0,
        }
    }

    #[test]
    fn eval_matches_polynomial() {
        let p = patch();
        let (u, v) = (1.5, -2.0);
        let expect = 0.5 * u * u - 0.25 * v * v + 0.1 * u * v + 2.0 * u - 1.0 * v + 3.0;
        assert!((p.eval(u, v) - expect).abs() < 1e-12);
        assert_eq!(p.eval(0.0, 0.0), 3.0);
    }

    #[test]
    fn coeff_round_trip() {
        let p = patch();
        assert_eq!(QuadraticPatch::from_coeffs(&p.coeffs()), p);
    }

    #[test]
    fn gradient_analytic_vs_numeric() {
        let p = patch();
        let h = 1e-6;
        for &(u, v) in &[(0.0, 0.0), (1.0, 2.0), (-0.5, 0.7)] {
            let (gx, gy) = p.gradient_at(u, v);
            let nx = (p.eval(u + h, v) - p.eval(u - h, v)) / (2.0 * h);
            let ny = (p.eval(u, v + h) - p.eval(u, v - h)) / (2.0 * h);
            assert!((gx - nx).abs() < 1e-5);
            assert!((gy - ny).abs() < 1e-5);
        }
        assert_eq!(p.gradient(), (2.0, -1.0));
    }

    #[test]
    fn hessian_constant() {
        let p = patch();
        assert_eq!(p.hessian(), (1.0, -0.5, 0.1));
    }

    #[test]
    fn fundamental_form_coefficients() {
        let p = patch();
        assert!((p.e_coeff() - 5.0).abs() < 1e-12); // 1 + 2^2
        assert!((p.g_coeff() - 2.0).abs() < 1e-12); // 1 + 1^2
    }

    #[test]
    fn discriminant_classifies_shape() {
        // Bowl (elliptic): positive discriminant.
        let bowl = QuadraticPatch {
            cxx: 1.0,
            cyy: 1.0,
            ..Default::default()
        };
        assert!(bowl.discriminant() > 0.0);
        // Saddle (hyperbolic): negative.
        let saddle = QuadraticPatch {
            cxx: 1.0,
            cyy: -1.0,
            ..Default::default()
        };
        assert!(saddle.discriminant() < 0.0);
        // Cylinder (parabolic): zero.
        let cyl = QuadraticPatch {
            cxx: 1.0,
            cyy: 0.0,
            ..Default::default()
        };
        assert_eq!(cyl.discriminant(), 0.0);
    }

    #[test]
    fn discriminant_invariant_to_linear_ramp() {
        let p = patch();
        let ramped = QuadraticPatch {
            cx: p.cx + 5.0,
            cy: p.cy - 3.0,
            c0: p.c0 + 10.0,
            ..p
        };
        assert_eq!(p.discriminant(), ramped.discriminant());
    }

    #[test]
    fn normal_of_flat_patch_is_up() {
        let flat = QuadraticPatch {
            c0: 7.0,
            ..Default::default()
        };
        let n = flat.unit_normal();
        assert!((n.k - 1.0).abs() < 1e-12);
    }
}
