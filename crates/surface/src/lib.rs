//! # sma-surface
//!
//! Local differential geometry of digital surfaces — the geometric layer
//! between raw `z(x, y)` (or intensity) grids and the SMA motion models.
//!
//! Paper §2.2 Step 2: "Each z(t_m) and z(t_{m+1}) pixel within the
//! neighborhoods ... is fitted with a continuous quadratic surface patch
//! centered at that pixel. Least squares surface fitting using a
//! surface-patch neighborhood of (2Nz+1) x (2Nz+1) pixels centered around
//! the pixel of interest leads to solving a 6 x 6 matrix using the
//! Gaussian-elimination method. These quadratic surface patches are then
//! used to compute the unit normals in the surface maps at each pixel."
//!
//! This crate implements:
//!
//! * [`QuadraticPatch`] — the 6-coefficient local model
//!   `z = c_xx x^2 + c_yy y^2 + c_xy xy + c_x x + c_y y + c_0` and its
//!   analytic derivatives;
//! * [`fit`] — per-pixel least-squares patch fitting, both the faithful
//!   Gaussian-elimination path and a precomputed-moment fast path (the
//!   window moments are position-independent, an optimization the MP-2
//!   implementation also exploits by batching);
//! * [`geometry`] — per-pixel geometric variables: unit normal
//!   `[n_i, n_j, n_k]`, first-fundamental-form coefficients
//!   `E = 1 + z_x^2`, `G = 1 + z_y^2`, and the surface discriminant
//!   `D = z_xx z_yy - z_xy^2` used by the semi-fluid template mapping
//!   (eqs. 10–11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod geometry;
pub mod quadratic;

pub use fit::{fit_patch, fit_patch_ge, FitContext};
pub use geometry::{GeomField, GeomVars};
pub use quadratic::QuadraticPatch;
