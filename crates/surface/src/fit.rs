//! Least-squares quadratic patch fitting.
//!
//! Two functionally identical paths:
//!
//! * [`fit_patch_ge`] — the paper-faithful kernel: build the 6 x 6 normal
//!   equations for the window and solve with Gaussian elimination. This
//!   is the per-pixel cost the paper counts ("over one million separate
//!   Gaussian-eliminations").
//! * [`FitContext`] + [`fit_patch`] — exploits the fact that for a fixed
//!   window geometry the normal matrix `A^T A` is a constant *moment
//!   matrix* (it depends only on the window offsets, not on pixel
//!   position or data). Its inverse is precomputed once, so the per-pixel
//!   work collapses to accumulating `A^T b` and one 6 x 6 mat-vec. The
//!   benches quantify what this saves — an ablation on the paper's choice
//!   to pay the full elimination per pixel.

use sma_grid::{BorderPolicy, Grid};
use sma_linalg::gauss::solve6;
use sma_linalg::{SMat, SolveError};

use crate::quadratic::QuadraticPatch;

/// The fixed monomial basis row for local offset `(u, v)`:
/// `[u^2, v^2, uv, u, v, 1]`.
#[inline]
fn basis(u: f64, v: f64) -> [f64; 6] {
    [u * u, v * v, u * v, u, v, 1.0]
}

/// Fit a quadratic patch to the `(2n+1) x (2n+1)` window of `z` centered
/// at `(x, y)`, building and solving the 6 x 6 system by Gaussian
/// elimination (the paper's kernel). Border pixels are resolved with
/// `policy`.
///
/// Returns [`SolveError::Singular`] only if the window is degenerate,
/// which cannot happen for `n >= 1` with distinct offsets — but the
/// signature keeps the error explicit because callers in the SMA driver
/// treat singular fits as untrackable pixels.
pub fn fit_patch_ge(
    z: &Grid<f32>,
    x: usize,
    y: usize,
    n: usize,
    policy: BorderPolicy,
) -> Result<QuadraticPatch, SolveError> {
    // A^T A is symmetric: accumulate the upper triangle only (21 of 36
    // entries) and mirror before the solve — same sums, ~40% fewer
    // multiply-adds in the hot window loop.
    let mut ata = [0.0f64; 36];
    let mut atb = [0.0f64; 6];
    let ni = n as isize;
    for dv in -ni..=ni {
        for du in -ni..=ni {
            let row = basis(du as f64, dv as f64);
            let zv = z.at_clamped(x as isize + du, y as isize + dv, policy) as f64;
            for r in 0..6 {
                for c in r..6 {
                    ata[r * 6 + c] += row[r] * row[c];
                }
                atb[r] += row[r] * zv;
            }
        }
    }
    for r in 0..6 {
        for c in (r + 1)..6 {
            ata[c * 6 + r] = ata[r * 6 + c];
        }
    }
    solve6(&mut ata, &mut atb)?;
    Ok(QuadraticPatch::from_coeffs(&atb))
}

/// Precomputed solver for a fixed window half-width: the inverse of the
/// window's moment matrix.
#[derive(Debug, Clone)]
pub struct FitContext {
    n: usize,
    /// Row-major inverse of the 6x6 moment matrix.
    inv: [f64; 36],
}

impl FitContext {
    /// Precompute the inverse moment matrix for windows of half-width `n`.
    ///
    /// # Panics
    /// Panics if `n == 0` — a single-pixel window cannot determine six
    /// coefficients.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "surface fit window must be at least 3x3 (n >= 1)");
        match Self::try_new(n) {
            Ok(ctx) => ctx,
            // The moment matrix of a (2n+1)^2 window with n >= 1 is
            // always nonsingular, so this arm is unreachable; keep the
            // checked constructor for callers that propagate instead.
            Err(e) => unreachable!("window moment matrix is nonsingular: {e}"),
        }
    }

    /// Checked variant of [`FitContext::new`]: returns the solver error
    /// instead of panicking if `n == 0` or the moment matrix could not
    /// be inverted.
    pub fn try_new(n: usize) -> Result<Self, SolveError> {
        if n == 0 {
            return Err(SolveError::Singular);
        }
        // Accumulate the moment matrix M = sum over offsets of row row^T.
        let mut m = SMat::zeros(6);
        let ni = n as isize;
        for dv in -ni..=ni {
            for du in -ni..=ni {
                let row = basis(du as f64, dv as f64);
                for r in 0..6 {
                    for c in 0..6 {
                        m.add(r, c, row[r] * row[c]);
                    }
                }
            }
        }
        // Invert by solving against the six unit vectors.
        let mut inv = [0.0f64; 36];
        for col in 0..6 {
            let mut e = vec![0.0f64; 6];
            e[col] = 1.0;
            let x = sma_linalg::gauss::solve(&m, &e)?;
            for r in 0..6 {
                inv[r * 6 + col] = x[r];
            }
        }
        Ok(Self { n, inv })
    }

    /// Window half-width this context was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fit the patch at `(x, y)` using the precomputed inverse: only the
    /// `A^T b` accumulation and a 6 x 6 mat-vec per pixel.
    pub fn fit(&self, z: &Grid<f32>, x: usize, y: usize, policy: BorderPolicy) -> QuadraticPatch {
        let mut atb = [0.0f64; 6];
        let ni = self.n as isize;
        for dv in -ni..=ni {
            for du in -ni..=ni {
                let row = basis(du as f64, dv as f64);
                let zv = z.at_clamped(x as isize + du, y as isize + dv, policy) as f64;
                for r in 0..6 {
                    atb[r] += row[r] * zv;
                }
            }
        }
        let mut c = [0.0f64; 6];
        for (r, cr) in c.iter_mut().enumerate() {
            for (k, &bk) in atb.iter().enumerate() {
                *cr += self.inv[r * 6 + k] * bk;
            }
        }
        QuadraticPatch::from_coeffs(&c)
    }
}

/// Fit a patch with a fresh context (convenience; prefer reusing a
/// [`FitContext`] in loops).
pub fn fit_patch(
    z: &Grid<f32>,
    x: usize,
    y: usize,
    n: usize,
    policy: BorderPolicy,
) -> QuadraticPatch {
    FitContext::new(n).fit(z, x, y, policy)
}

/// Fit a patch at every pixel, sequentially.
pub fn fit_all_seq(z: &Grid<f32>, n: usize, policy: BorderPolicy) -> Grid<QuadraticPatch> {
    let ctx = FitContext::new(n);
    Grid::from_fn(z.width(), z.height(), |x, y| ctx.fit(z, x, y, policy))
}

/// Fit a patch at every pixel using Rayon data parallelism over rows.
pub fn fit_all_par(z: &Grid<f32>, n: usize, policy: BorderPolicy) -> Grid<QuadraticPatch> {
    use rayon::prelude::*;
    let ctx = FitContext::new(n);
    let (w, h) = z.dims();
    let rows: Vec<Vec<QuadraticPatch>> = (0..h)
        .into_par_iter()
        .map(|y| (0..w).map(|x| ctx.fit(z, x, y, policy)).collect())
        .collect();
    Grid::from_vec(w, h, rows.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sample an exact quadratic onto a grid (global coordinates).
    fn quad_grid(w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| {
            let (xf, yf) = (x as f32, y as f32);
            0.05 * xf * xf - 0.02 * yf * yf + 0.01 * xf * yf + 0.3 * xf - 0.7 * yf + 5.0
        })
    }

    #[test]
    fn exact_quadratic_recovered_interior() {
        let z = quad_grid(16, 16);
        // At pixel (8, 8) the local expansion of the global quadratic has
        // gradient (2*0.05*8 + 0.01*8 + 0.3, -2*0.02*8 + 0.01*8 - 0.7).
        let p = fit_patch_ge(&z, 8, 8, 2, BorderPolicy::Clamp).unwrap();
        let gx_true = 2.0 * 0.05 * 8.0 + 0.01 * 8.0 + 0.3;
        let gy_true = -2.0 * 0.02 * 8.0 + 0.01 * 8.0 - 0.7;
        let (gx, gy) = p.gradient();
        assert!((gx - gx_true).abs() < 1e-4, "{gx} vs {gx_true}");
        assert!((gy - gy_true).abs() < 1e-4, "{gy} vs {gy_true}");
        let (zxx, zyy, zxy) = p.hessian();
        assert!((zxx - 0.1).abs() < 1e-4);
        assert!((zyy + 0.04).abs() < 1e-4);
        assert!((zxy - 0.01).abs() < 1e-4);
        assert!((p.eval(0.0, 0.0) - z.at(8, 8) as f64).abs() < 1e-3);
    }

    #[test]
    fn context_path_matches_ge_path() {
        let z = quad_grid(20, 20);
        let ctx = FitContext::new(2);
        for &(x, y) in &[(5, 5), (10, 3), (17, 17), (0, 0), (19, 0)] {
            let a = fit_patch_ge(&z, x, y, 2, BorderPolicy::Reflect).unwrap();
            let b = ctx.fit(&z, x, y, BorderPolicy::Reflect);
            for (ca, cb) in a.coeffs().iter().zip(b.coeffs().iter()) {
                assert!((ca - cb).abs() < 1e-8, "{ca} vs {cb} at ({x},{y})");
            }
        }
    }

    #[test]
    fn flat_surface_fits_flat() {
        let z = Grid::filled(10, 10, 4.0f32);
        let p = fit_patch_ge(&z, 5, 5, 2, BorderPolicy::Clamp).unwrap();
        assert!(p.gradient().0.abs() < 1e-9);
        assert!(p.gradient().1.abs() < 1e-9);
        assert!((p.c0 - 4.0).abs() < 1e-9);
        assert!(p.discriminant().abs() < 1e-9);
    }

    #[test]
    fn paper_5x5_window() {
        // Table 1: surface fitting uses Nz = 2, i.e. 5x5 windows.
        let z = quad_grid(12, 12);
        let ctx = FitContext::new(2);
        assert_eq!(ctx.n(), 2);
        let p = ctx.fit(&z, 6, 6, BorderPolicy::Clamp);
        assert!((p.hessian().0 - 0.1).abs() < 1e-4);
    }

    #[test]
    fn noisy_fit_smooths() {
        // Deterministic +-0.5 checker noise on a plane: balanced noise
        // cancels in the symmetric window.
        let z = Grid::from_fn(16, 16, |x, y| {
            let noise = if (x + y) % 2 == 0 { 0.5 } else { -0.5 };
            2.0 * x as f32 + noise
        });
        let p = fit_patch_ge(&z, 8, 8, 2, BorderPolicy::Clamp).unwrap();
        assert!((p.gradient().0 - 2.0).abs() < 0.1);
        assert!(p.gradient().1.abs() < 0.1);
    }

    #[test]
    fn fit_all_par_equals_seq() {
        let z = quad_grid(24, 18);
        let s = fit_all_seq(&z, 2, BorderPolicy::Reflect);
        let p = fit_all_par(&z, 2, BorderPolicy::Reflect);
        assert_eq!(s.dims(), p.dims());
        for ((c, a), b) in s.enumerate().zip(p.iter()) {
            for (ca, cb) in a.coeffs().iter().zip(b.coeffs().iter()) {
                assert!((ca - cb).abs() < 1e-12, "mismatch at {c:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 3x3")]
    fn degenerate_window_rejected() {
        let _ = FitContext::new(0);
    }
}
