//! Per-pixel geometric variables.
//!
//! The SMA error functional (eqs. 4–5) consumes, at every pixel of both
//! frames:
//!
//! * the unit normal components `[n_i, n_j, n_k]`,
//! * the first-fundamental-form coefficients `E = 1 + z_x^2`,
//!   `G = 1 + z_y^2`,
//! * the gradient `(z_x, z_y)` itself (the `dz/dx`, `dz/dy` factors),
//!
//! and the semi-fluid mapping additionally needs the discriminant `D`
//! of the *intensity* surface. The paper computes these once per frame
//! ("Local surface patches are fit for each pixel in both the intensity
//! and surface images at both time steps") — the "Compute geometric
//! variables" row of Table 2. [`GeomField::compute`] is that pass.

use rayon::prelude::*;
use sma_grid::{BorderPolicy, Grid};
use sma_linalg::Vec3;

use crate::fit::FitContext;

/// One per pixel per [`GeomField`] pass; `SmaFrames::prepare` runs four
/// passes (geometry and discriminant, before and after), so a full
/// prepare contributes exactly `4 * w * h` — the `surface_fit_ges` row
/// of the analytic workload model.
static PATCH_FITS: sma_obs::Counter = sma_obs::Counter::new("surface.patch_fits");

/// The per-pixel geometric variables extracted from a fitted quadratic
/// patch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeomVars {
    /// Unit-normal component `n_i` (x).
    pub ni: f64,
    /// Unit-normal component `n_j` (y).
    pub nj: f64,
    /// Unit-normal component `n_k` (z, out of surface).
    pub nk: f64,
    /// First-fundamental-form coefficient `E = 1 + z_x^2`.
    pub e: f64,
    /// First-fundamental-form coefficient `G = 1 + z_y^2`.
    pub g: f64,
    /// Surface gradient `z_x` at the pixel.
    pub zx: f64,
    /// Surface gradient `z_y` at the pixel.
    pub zy: f64,
    /// Discriminant `D = z_xx z_yy - z_xy^2` of the local patch.
    pub d: f64,
}

impl Default for GeomVars {
    /// The geometric variables of a flat horizontal surface.
    fn default() -> Self {
        Self {
            ni: 0.0,
            nj: 0.0,
            nk: 1.0,
            e: 1.0,
            g: 1.0,
            zx: 0.0,
            zy: 0.0,
            d: 0.0,
        }
    }
}

impl GeomVars {
    /// Unit normal as a vector.
    pub fn normal(&self) -> Vec3 {
        Vec3::new(self.ni, self.nj, self.nk)
    }
}

/// Dense plane of geometric variables for one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct GeomField {
    vars: Grid<GeomVars>,
}

impl GeomField {
    /// Compute geometric variables at every pixel of `z` by fitting
    /// `(2n+1) x (2n+1)` quadratic patches (sequentially).
    pub fn compute(z: &Grid<f32>, n: usize, policy: BorderPolicy) -> Self {
        let _span = sma_obs::span("geom_field");
        PATCH_FITS.add((z.width() * z.height()) as u64);
        let ctx = FitContext::new(n);
        let vars = Grid::from_fn(z.width(), z.height(), |x, y| {
            Self::vars_from_patch(&ctx, z, x, y, policy)
        });
        Self { vars }
    }

    /// Compute geometric variables in parallel over rows (Rayon). The
    /// result is bit-identical to [`GeomField::compute`]: per-pixel work
    /// is independent, matching the SIMD formulation where every PE fits
    /// its own patch in lockstep.
    pub fn compute_par(z: &Grid<f32>, n: usize, policy: BorderPolicy) -> Self {
        let _span = sma_obs::span("geom_field");
        PATCH_FITS.add((z.width() * z.height()) as u64);
        let ctx = FitContext::new(n);
        let (w, h) = z.dims();
        let rows: Vec<Vec<GeomVars>> = (0..h)
            .into_par_iter()
            .map(|y| {
                (0..w)
                    .map(|x| Self::vars_from_patch(&ctx, z, x, y, policy))
                    .collect()
            })
            .collect();
        Self {
            vars: Grid::from_vec(w, h, rows.into_iter().flatten().collect()),
        }
    }

    fn vars_from_patch(
        ctx: &FitContext,
        z: &Grid<f32>,
        x: usize,
        y: usize,
        policy: BorderPolicy,
    ) -> GeomVars {
        let p = ctx.fit(z, x, y, policy);
        // Non-finite data that escaped the input quarantine yields a
        // non-finite fit; degrade that pixel to flat-surface geometry
        // (the exact values a constant patch produces) rather than let
        // NaN normals poison every window the pixel participates in.
        if !p.coeffs().iter().all(|c| c.is_finite()) {
            sma_fault::note_natural_degradation();
            return GeomVars::default();
        }
        let n = p.unit_normal();
        GeomVars {
            ni: n.i,
            nj: n.j,
            nk: n.k,
            e: p.e_coeff(),
            g: p.g_coeff(),
            zx: p.cx,
            zy: p.cy,
            d: p.discriminant(),
        }
    }

    /// Field dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        self.vars.dims()
    }

    /// Geometric variables at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> GeomVars {
        self.vars.at(x, y)
    }

    /// Geometric variables at signed coordinates, clamping to the border.
    #[inline]
    pub fn at_clamped(&self, x: isize, y: isize) -> GeomVars {
        let (w, h) = self.vars.dims();
        let cx = x.clamp(0, w as isize - 1) as usize;
        let cy = y.clamp(0, h as isize - 1) as usize;
        self.vars.at(cx, cy)
    }

    /// Underlying grid of variables.
    pub fn as_grid(&self) -> &Grid<GeomVars> {
        &self.vars
    }

    /// Extract the discriminant plane (used by the semi-fluid mapping).
    pub fn discriminant_plane(&self) -> Grid<f32> {
        self.vars.map(|v| v.d as f32)
    }

    /// Extract the `n_k` plane.
    pub fn nk_plane(&self) -> Grid<f32> {
        self.vars.map(|v| v.nk as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_surface_all_defaults() {
        let z = Grid::filled(12, 12, 3.0f32);
        let f = GeomField::compute(&z, 2, BorderPolicy::Clamp);
        let v = f.at(6, 6);
        assert!((v.nk - 1.0).abs() < 1e-9);
        assert!(v.ni.abs() < 1e-9 && v.nj.abs() < 1e-9);
        assert!((v.e - 1.0).abs() < 1e-9);
        assert!((v.g - 1.0).abs() < 1e-9);
        assert!(v.d.abs() < 1e-9);
    }

    #[test]
    fn ramp_surface_tilts_normal() {
        // z = x: normal = (-1, 0, 1)/sqrt(2), E = 2, G = 1.
        let z = Grid::from_fn(16, 16, |x, _| x as f32);
        let f = GeomField::compute(&z, 2, BorderPolicy::Clamp);
        let v = f.at(8, 8);
        let s = 1.0 / 2.0f64.sqrt();
        assert!((v.ni + s).abs() < 1e-6);
        assert!((v.nk - s).abs() < 1e-6);
        assert!((v.e - 2.0).abs() < 1e-6);
        assert!((v.g - 1.0).abs() < 1e-6);
        assert!((v.zx - 1.0).abs() < 1e-6);
    }

    #[test]
    fn paraboloid_has_positive_discriminant() {
        let z = Grid::from_fn(16, 16, |x, y| {
            let (u, v) = (x as f32 - 8.0, y as f32 - 8.0);
            0.1 * (u * u + v * v)
        });
        let f = GeomField::compute(&z, 2, BorderPolicy::Clamp);
        let v = f.at(8, 8);
        // zxx = zyy = 0.2, zxy = 0 -> D = 0.04.
        assert!((v.d - 0.04).abs() < 1e-4);
        // Normal at the apex points straight up.
        assert!((v.nk - 1.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_equals_sequential() {
        let z = Grid::from_fn(20, 20, |x, y| ((x * 13 + y * 7) % 23) as f32);
        let s = GeomField::compute(&z, 2, BorderPolicy::Reflect);
        let p = GeomField::compute_par(&z, 2, BorderPolicy::Reflect);
        for y in 0..20 {
            for x in 0..20 {
                assert_eq!(s.at(x, y), p.at(x, y), "at ({x},{y})");
            }
        }
    }

    #[test]
    fn clamped_access_at_borders() {
        let z = Grid::from_fn(8, 8, |x, _| x as f32);
        let f = GeomField::compute(&z, 2, BorderPolicy::Clamp);
        assert_eq!(f.at_clamped(-3, 4), f.at(0, 4));
        assert_eq!(f.at_clamped(12, 4), f.at(7, 4));
    }

    #[test]
    fn normal_vector_is_unit() {
        let z = Grid::from_fn(16, 16, |x, y| {
            (x as f32 * 0.7).sin() * 3.0 + (y as f32 * 0.5).cos()
        });
        let f = GeomField::compute(&z, 2, BorderPolicy::Reflect);
        for y in 0..16 {
            for x in 0..16 {
                let n = f.at(x, y).normal();
                assert!(
                    (n.norm() - 1.0).abs() < 1e-9,
                    "non-unit normal at ({x},{y})"
                );
            }
        }
    }
}
