//! Property tests: the surface fit must recover exact quadratics, respect
//! symmetries and produce unit normals everywhere.

use proptest::prelude::*;
use sma_grid::{BorderPolicy, Grid};
use sma_surface::{fit_patch_ge, FitContext, GeomField, QuadraticPatch};

/// Sample an arbitrary global quadratic onto a grid.
fn quad_grid(w: usize, h: usize, c: &[f64; 6]) -> Grid<f32> {
    Grid::from_fn(w, h, |x, y| {
        let (u, v) = (x as f64, y as f64);
        (c[0] * u * u + c[1] * v * v + c[2] * u * v + c[3] * u + c[4] * v + c[5]) as f32
    })
}

proptest! {
    /// Fitting an exact quadratic recovers its local expansion: the
    /// Hessian is position-independent and must match the global one.
    #[test]
    fn exact_quadratic_hessian_recovered(
        cxx in -0.05f64..0.05, cyy in -0.05f64..0.05, cxy in -0.05f64..0.05,
        cx in -1.0f64..1.0, cy in -1.0f64..1.0, c0 in -10.0f64..10.0,
        n in 1usize..4
    ) {
        let coeffs = [cxx, cyy, cxy, cx, cy, c0];
        let z = quad_grid(24, 24, &coeffs);
        let p = fit_patch_ge(&z, 12, 12, n, BorderPolicy::Clamp).unwrap();
        let (zxx, zyy, zxy) = p.hessian();
        // f32 sampling of the grid limits achievable precision.
        prop_assert!((zxx - 2.0 * cxx).abs() < 1e-3);
        prop_assert!((zyy - 2.0 * cyy).abs() < 1e-3);
        prop_assert!((zxy - cxy).abs() < 1e-3);
    }

    /// The gradient of the local fit matches the analytic gradient of the
    /// global quadratic at the fit center.
    #[test]
    fn exact_quadratic_gradient_recovered(
        cxx in -0.02f64..0.02, cyy in -0.02f64..0.02,
        cx in -1.0f64..1.0, cy in -1.0f64..1.0,
        px in 4usize..20, py in 4usize..20
    ) {
        let coeffs = [cxx, cyy, 0.0, cx, cy, 0.0];
        let z = quad_grid(24, 24, &coeffs);
        let p = fit_patch_ge(&z, px, py, 2, BorderPolicy::Clamp).unwrap();
        let gx_true = 2.0 * cxx * px as f64 + cx;
        let gy_true = 2.0 * cyy * py as f64 + cy;
        prop_assert!((p.gradient().0 - gx_true).abs() < 2e-3);
        prop_assert!((p.gradient().1 - gy_true).abs() < 2e-3);
    }

    /// Fast (precomputed-moment) and faithful (Gaussian-elimination) fit
    /// paths agree on arbitrary data, at every pixel including borders.
    #[test]
    fn fit_paths_agree(seed in 0u64..500, n in 1usize..4) {
        let z = Grid::from_fn(16, 16, |x, y| {
            (((x * 31 + y * 17) as u64 ^ seed).wrapping_mul(2654435761) % 256) as f32
        });
        let ctx = FitContext::new(n);
        for &(x, y) in &[(0usize, 0usize), (8, 8), (15, 15), (0, 8), (15, 0)] {
            let a = fit_patch_ge(&z, x, y, n, BorderPolicy::Reflect).unwrap();
            let b = ctx.fit(&z, x, y, BorderPolicy::Reflect);
            for (ca, cb) in a.coeffs().iter().zip(b.coeffs().iter()) {
                prop_assert!((ca - cb).abs() < 1e-6 * (1.0 + ca.abs()));
            }
        }
    }

    /// Adding a constant to the surface shifts only c0; the geometry
    /// (normal, E, G, discriminant) is translation invariant.
    #[test]
    fn geometry_invariant_to_height_offset(offset in -100.0f32..100.0, seed in 0u64..200) {
        let z = Grid::from_fn(12, 12, |x, y| {
            (((x * 13 + y * 29) as u64 ^ seed) % 32) as f32 * 0.25
        });
        let z_off = z.map(|v| v + offset);
        let a = GeomField::compute(&z, 2, BorderPolicy::Reflect);
        let b = GeomField::compute(&z_off, 2, BorderPolicy::Reflect);
        for y in 0..12 {
            for x in 0..12 {
                let (va, vb) = (a.at(x, y), b.at(x, y));
                prop_assert!((va.ni - vb.ni).abs() < 1e-5);
                prop_assert!((va.e - vb.e).abs() < 1e-4);
                prop_assert!((va.d - vb.d).abs() < 1e-4);
            }
        }
    }

    /// Mirroring the surface in x negates z_x and n_i but preserves E, G
    /// and D at mirrored positions.
    #[test]
    fn geometry_mirror_symmetry(seed in 0u64..200) {
        let w = 13usize;
        let z = Grid::from_fn(w, 9, |x, y| {
            (((x * 7 + y * 11) as u64 ^ seed) % 16) as f32
        });
        let zm = Grid::from_fn(w, 9, |x, y| z.at(w - 1 - x, y));
        let a = GeomField::compute(&z, 2, BorderPolicy::Reflect);
        let b = GeomField::compute(&zm, 2, BorderPolicy::Reflect);
        for y in 0..9 {
            for x in 0..w {
                let (va, vb) = (a.at(x, y), b.at(w - 1 - x, y));
                prop_assert!((va.zx + vb.zx).abs() < 1e-6);
                prop_assert!((va.ni + vb.ni).abs() < 1e-6);
                prop_assert!((va.e - vb.e).abs() < 1e-6);
                prop_assert!((va.g - vb.g).abs() < 1e-6);
                prop_assert!((va.d - vb.d).abs() < 1e-6);
            }
        }
    }

    /// Patch evaluation agrees with its own gradient by finite differences
    /// at arbitrary offsets (internal consistency of QuadraticPatch).
    #[test]
    fn patch_gradient_consistent(
        cxx in -1.0f64..1.0, cyy in -1.0f64..1.0, cxy in -1.0f64..1.0,
        cx in -2.0f64..2.0, cy in -2.0f64..2.0,
        u in -3.0f64..3.0, v in -3.0f64..3.0
    ) {
        let p = QuadraticPatch { cxx, cyy, cxy, cx, cy, c0: 0.0 };
        let h = 1e-5;
        let (gx, gy) = p.gradient_at(u, v);
        let nx = (p.eval(u + h, v) - p.eval(u - h, v)) / (2.0 * h);
        let ny = (p.eval(u, v + h) - p.eval(u, v - h)) / (2.0 * h);
        prop_assert!((gx - nx).abs() < 1e-6 * (1.0 + gx.abs()));
        prop_assert!((gy - ny).abs() < 1e-6 * (1.0 + gy.abs()));
    }
}
