//! Property tests for the synthetic scene generators: determinism,
//! physical invariants of the flow models, advection conservation, and
//! stereo-synthesis consistency.

use proptest::prelude::*;
use sma_grid::{BorderPolicy, FlowField, Grid, Vec2};
use sma_satdata::advect::advect;
use sma_satdata::convection::{ConvectiveCell, ThunderstormScene};
use sma_satdata::stereo_synth::synthesize_stereo_pair;
use sma_satdata::texture::{cloud_mask, cloud_texture, coverage, TextureParams};
use sma_satdata::tracers::pick_tracers;
use sma_satdata::{florida_thunderstorm_analog, hurricane_frederic_analog, RankineVortex};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed => same scene; different seed => different scene.
    #[test]
    fn generators_deterministic(seed in 0u64..1000) {
        let a = hurricane_frederic_analog(48, 2, seed);
        let b = hurricane_frederic_analog(48, 2, seed);
        prop_assert_eq!(&a.frames[1].intensity, &b.frames[1].intensity);
        let c = hurricane_frederic_analog(48, 2, seed ^ 0xFFFF);
        prop_assert!(a.frames[0].intensity != c.frames[0].intensity);
    }

    /// Rankine tangential speed is maximal exactly at rmax and decays on
    /// both sides; velocity magnitude never exceeds vmax * (1 + inflow).
    #[test]
    fn rankine_speed_profile(
        vmax in 0.5f32..5.0,
        rmax in 4.0f32..20.0,
        inflow in 0.0f32..0.5,
        r in 0.1f32..60.0
    ) {
        let v = RankineVortex { cx: 0.0, cy: 0.0, vmax, rmax, inflow, sense: 1.0 };
        let s = v.tangential_speed(r);
        prop_assert!(s <= vmax + 1e-5);
        prop_assert!(s >= 0.0);
        let speed = v.velocity(r, 0.0).magnitude();
        prop_assert!(speed <= vmax * (1.0 + inflow) + 1e-4);
        // The peak sits at rmax: every radius is bounded by it.
        prop_assert!(v.tangential_speed(r) <= v.tangential_speed(rmax) + 1e-6);
    }

    /// The vortex flow field is divergence-free away from the eye when
    /// inflow is zero (pure rotation): numerically check the discrete
    /// divergence is small relative to the speed scale.
    #[test]
    fn pure_rotation_is_nearly_divergence_free(vmax in 1.0f32..3.0) {
        let v = RankineVortex { cx: 24.0, cy: 24.0, vmax, rmax: 8.0, inflow: 0.0, sense: 1.0 };
        let f = v.flow_field(48, 48);
        for &(x, y) in &[(36usize, 24usize), (24, 10), (32, 32)] {
            let dudx = (f.at(x + 1, y).u - f.at(x - 1, y).u) / 2.0;
            let dvdy = (f.at(x, y + 1).v - f.at(x, y - 1).v) / 2.0;
            prop_assert!((dudx + dvdy).abs() < 0.05 * vmax,
                "divergence {} at ({x},{y})", dudx + dvdy);
        }
    }

    /// Convective outflow has positive divergence at the core region.
    #[test]
    fn convection_diverges_at_core(outflow in 0.5f32..3.0, radius in 4.0f32..10.0) {
        let c = ConvectiveCell { cx: 24.0, cy: 24.0, radius, outflow, amplitude: 0.5, growth: 1.0 };
        let scene = ThunderstormScene { steering: Vec2::ZERO, cells: vec![c] };
        let f = scene.flow_field(48, 48);
        let (x, y) = (24usize, 24usize);
        let dudx = (f.at(x + 1, y).u - f.at(x - 1, y).u) / 2.0;
        let dvdy = (f.at(x, y + 1).v - f.at(x, y - 1).v) / 2.0;
        prop_assert!(dudx + dvdy > 0.0, "core divergence {}", dudx + dvdy);
    }

    /// Advection by any flow preserves the value range (bilinear warp is
    /// a convex combination).
    #[test]
    fn advection_preserves_range(seed in 0u64..300, u in -2.0f32..2.0, v in -2.0f32..2.0) {
        let img = cloud_texture(32, 32, seed, TextureParams::default());
        let flow = FlowField::uniform(32, 32, Vec2::new(u, v));
        let out = advect(&img, &flow, BorderPolicy::Clamp);
        let (lo, hi) = img.min_max();
        let (olo, ohi) = out.min_max();
        prop_assert!(olo >= lo - 1e-4 && ohi <= hi + 1e-4);
    }

    /// Stereo synthesis with zero gain gives identical views for any
    /// height field; with positive gain the disparity is proportional to
    /// height everywhere.
    #[test]
    fn stereo_gain_scaling(gain in 0.1f32..2.0, seed in 0u64..300) {
        let tex = cloud_texture(24, 24, seed, TextureParams::default());
        let height = cloud_texture(24, 24, seed ^ 1, TextureParams::default())
            .map(|&t| t * 5.0);
        let zero = synthesize_stereo_pair(&tex, &height, 0.0);
        prop_assert!(zero.left.max_abs_diff(&zero.right) < 1e-6);
        let pair = synthesize_stereo_pair(&tex, &height, gain);
        for y in 0..24 {
            for x in 0..24 {
                prop_assert!((pair.true_disparity.at(x, y) - gain * height.at(x, y)).abs() < 1e-5);
            }
        }
    }

    /// Tracers always respect threshold, margin and mutual separation.
    #[test]
    fn tracer_constraints(seed in 0u64..500, sep in 2usize..8, margin in 2usize..8) {
        let seq = florida_thunderstorm_analog(48, 2, seed);
        let t = pick_tracers(&seq.frames[0].intensity, &seq.truth_flows[0], 16, 0.4, sep, margin, seed);
        for (i, a) in t.iter().enumerate() {
            prop_assert!(a.x >= margin && a.x < 48 - margin);
            prop_assert!(a.y >= margin && a.y < 48 - margin);
            prop_assert!(seq.frames[0].intensity.at(a.x, a.y) >= 0.4);
            for b in &t[i + 1..] {
                let d2 = (a.x as isize - b.x as isize).pow(2) + (a.y as isize - b.y as isize).pow(2);
                prop_assert!(d2 >= (sep * sep) as isize);
            }
        }
    }

    /// Mask coverage is monotone in the threshold.
    #[test]
    fn coverage_monotone_in_threshold(seed in 0u64..300) {
        let tex = cloud_texture(40, 40, seed, TextureParams::default());
        let mut prev = f32::INFINITY;
        for t in [0.2f32, 0.4, 0.6, 0.8] {
            let c = coverage(&cloud_mask(&tex, t, 0.1));
            prop_assert!(c <= prev + 1e-6);
            prev = c;
        }
    }

    /// Sequence truth flows connect frames: advecting frame t by the
    /// truth flow approximates frame t+1 (the generator's construction,
    /// checked from the outside).
    #[test]
    fn truth_flow_connects_frames(seed in 0u64..100) {
        let seq = hurricane_frederic_analog(48, 2, seed);
        let predicted = advect(&seq.frames[0].intensity, &seq.truth_flows[0], BorderPolicy::Clamp);
        let err = predicted.rms_diff(&seq.frames[1].intensity);
        prop_assert!(err < 1e-5, "advection mismatch {err}");
    }

    /// Frame dimensions and counts are as requested.
    #[test]
    fn sequence_shape(frames in 2usize..6, size in 32usize..64) {
        let seq = florida_thunderstorm_analog(size, frames, 3);
        prop_assert_eq!(seq.len(), frames);
        prop_assert_eq!(seq.truth_flows.len(), frames - 1);
        prop_assert_eq!(seq.dims(), (size, size));
        let g: &Grid<f32> = seq.surface(0);
        prop_assert_eq!(g.dims(), (size, size));
    }
}
