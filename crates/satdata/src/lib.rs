//! # sma-satdata
//!
//! Synthetic GOES-like satellite cloud scenes with ground-truth motion.
//!
//! The paper evaluates on three proprietary NASA datasets:
//!
//! * **Hurricane Frederic** — GOES-6/7 stereoscopic visible imagery,
//!   Sept 12 1979, four 512 x 512 pairs at ~7.5 min intervals (§5.1);
//! * **Hurricane Luis** — GOES-9 rapid-scan, 490 frames, ~1.5 min
//!   interval, monocular (§5);
//! * **Florida thunderstorm** — GOES-9 rapid-scan, 49 frames, ~1 min
//!   interval, monocular (§5.2).
//!
//! Those tapes are not available, so this crate synthesizes the closest
//! controllable equivalents (see DESIGN.md, substitution table): fractal
//! cloud texture advected by analytic flow fields — a Rankine vortex for
//! the hurricanes, growing convective cells with divergent outflow for
//! the thunderstorm, and independently moving multi-layer decks for the
//! multilayer-cloud scenario the SMA model is designed for. Every
//! sequence carries its exact generating flow as ground truth, which is
//! *stronger* than the paper's reference (32 manually tracked wind
//! barbs): we can score dense RMS error, not just 32 points — and also
//! sample 32 tracer points to mirror the paper's protocol exactly.
//!
//! Stereo pairs are synthesized from the intensity + height fields by
//! parallax warping ([`stereo_synth`]), giving the ASA substrate a
//! disparity signal whose ground truth is the height field itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advect;
pub mod convection;
pub mod dataset;
pub mod dropout;
pub mod layers;
pub mod multispectral;
pub mod noise;
pub mod ocean;
pub mod stereo_synth;
pub mod texture;
pub mod tracers;
pub mod vortex;

pub use dataset::{
    florida_thunderstorm_analog, hurricane_frederic_analog, hurricane_luis_analog, Frame,
    SceneSequence,
};
pub use stereo_synth::{synthesize_stereo_pair, StereoPair};
pub use tracers::pick_tracers;
pub use vortex::RankineVortex;
