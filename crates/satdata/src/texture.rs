//! Cloud texture and cloud-deck masks.
//!
//! Visible-channel cloud imagery is bright, lumpy and multi-scale; the
//! fractal-noise texture here reproduces those statistics well enough for
//! correlation matching and surface fitting to behave as they do on real
//! GOES frames (plenty of local structure, smooth large-scale envelope).

use sma_grid::Grid;

use crate::noise::ValueNoise;

/// Parameters of the fractal cloud texture.
#[derive(Debug, Clone, Copy)]
pub struct TextureParams {
    /// Base spatial frequency in cycles per pixel (typical 0.02–0.08;
    /// lower = larger cloud blobs).
    pub base_freq: f32,
    /// Number of fBm octaves (4–6 gives realistic multiscale lumpiness).
    pub octaves: usize,
    /// Per-octave amplitude decay (0.4–0.6).
    pub gain: f32,
}

impl Default for TextureParams {
    fn default() -> Self {
        Self {
            base_freq: 0.04,
            octaves: 5,
            gain: 0.5,
        }
    }
}

/// Generate a `[0, 1]` fractal cloud texture, contrast-stretched so the
/// full unit range is used (raw fBm concentrates near 0.5).
pub fn cloud_texture(width: usize, height: usize, seed: u64, params: TextureParams) -> Grid<f32> {
    let noise = ValueNoise::new(seed);
    let raw = Grid::from_fn(width, height, |x, y| {
        noise.fbm(
            x as f32 * params.base_freq,
            y as f32 * params.base_freq,
            params.octaves,
            params.gain,
        )
    });
    raw.normalized(0.0, 1.0)
}

/// Soft-threshold a texture into a cloud deck: values below `threshold`
/// become clear sky (0), values above ramp smoothly to full opacity over
/// `softness`.
pub fn cloud_mask(texture: &Grid<f32>, threshold: f32, softness: f32) -> Grid<f32> {
    assert!(softness > 0.0, "mask softness must be positive");
    texture.map(|&v| ((v - threshold) / softness).clamp(0.0, 1.0))
}

/// Coverage fraction: share of pixels with mask above 0.5.
pub fn coverage(mask: &Grid<f32>) -> f32 {
    if mask.is_empty() {
        return 0.0;
    }
    mask.iter().filter(|&&v| v > 0.5).count() as f32 / mask.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn texture_in_unit_range_and_deterministic() {
        let a = cloud_texture(32, 32, 11, TextureParams::default());
        let b = cloud_texture(32, 32, 11, TextureParams::default());
        assert_eq!(a, b);
        let (lo, hi) = a.min_max();
        assert!(lo >= 0.0 && hi <= 1.0);
        assert!(
            hi - lo > 0.2,
            "texture should have contrast, got span {}",
            hi - lo
        );
    }

    #[test]
    fn texture_is_smooth_at_pixel_scale() {
        let t = cloud_texture(64, 64, 3, TextureParams::default());
        // Neighboring pixels differ far less than the global span.
        let mut max_step = 0.0f32;
        for y in 0..64 {
            for x in 1..64 {
                max_step = max_step.max((t.at(x, y) - t.at(x - 1, y)).abs());
            }
        }
        let (lo, hi) = t.min_max();
        assert!(max_step < 0.5 * (hi - lo));
    }

    #[test]
    fn mask_thresholds() {
        let t = Grid::from_vec(3, 1, vec![0.1, 0.5, 0.9]);
        let m = cloud_mask(&t, 0.4, 0.2);
        assert_eq!(m.at(0, 0), 0.0);
        assert!((m.at(1, 0) - 0.5).abs() < 1e-6);
        assert_eq!(m.at(2, 0), 1.0);
    }

    #[test]
    fn coverage_counts_cloudy_fraction() {
        let m = Grid::from_vec(4, 1, vec![0.0, 0.6, 0.7, 0.2]);
        assert!((coverage(&m) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lower_threshold_gives_more_coverage() {
        let t = cloud_texture(48, 48, 8, TextureParams::default());
        let lo = coverage(&cloud_mask(&t, 0.3, 0.1));
        let hi = coverage(&cloud_mask(&t, 0.7, 0.1));
        assert!(lo > hi);
    }
}
