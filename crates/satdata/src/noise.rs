//! Seeded value noise and fractal (fBm) octaves.
//!
//! The cloud texture generator needs smooth, band-limited, *reproducible*
//! random fields. We use classic value noise: a lattice of hashed random
//! values, bilinearly interpolated with a smoothstep fade, summed over
//! octaves.

/// Deterministic lattice value noise with fractal octave summation.
#[derive(Debug, Clone)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    /// Create a noise source from a seed; equal seeds give equal fields.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Hash a lattice point to a value in `[0, 1)`.
    ///
    /// SplitMix64-style finalizer over the packed coordinates — cheap,
    /// stateless, and well distributed (each lattice point is independent
    /// of its neighbors, which is what value noise needs).
    fn lattice(&self, ix: i64, iy: i64) -> f32 {
        let mut h = self
            .seed
            .wrapping_add(0x9e3779b97f4a7c15)
            .wrapping_add((ix as u64).wrapping_mul(0xbf58476d1ce4e5b9))
            .wrapping_add((iy as u64).wrapping_mul(0x94d049bb133111eb));
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58476d1ce4e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d049bb133111eb);
        h ^= h >> 31;
        (h >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Single-octave smooth noise at continuous coordinates, in `[0, 1)`.
    pub fn sample(&self, x: f32, y: f32) -> f32 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = smoothstep(x - x0);
        let fy = smoothstep(y - y0);
        let (ix, iy) = (x0 as i64, y0 as i64);
        let v00 = self.lattice(ix, iy);
        let v10 = self.lattice(ix + 1, iy);
        let v01 = self.lattice(ix, iy + 1);
        let v11 = self.lattice(ix + 1, iy + 1);
        let top = v00 + fx * (v10 - v00);
        let bot = v01 + fx * (v11 - v01);
        top + fy * (bot - top)
    }

    /// Fractal Brownian motion: `octaves` octaves with lacunarity 2 and
    /// persistence `gain`, normalized to `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `octaves == 0`.
    pub fn fbm(&self, x: f32, y: f32, octaves: usize, gain: f32) -> f32 {
        assert!(octaves > 0, "fbm needs at least one octave");
        let mut amp = 1.0f32;
        let mut freq = 1.0f32;
        let mut sum = 0.0f32;
        let mut norm = 0.0f32;
        for oct in 0..octaves {
            // Offset octaves so their lattices don't align.
            let off = oct as f32 * 37.31;
            sum += amp * self.sample(x * freq + off, y * freq - off);
            norm += amp;
            amp *= gain;
            freq *= 2.0;
        }
        sum / norm
    }
}

/// Cubic smoothstep fade `3t^2 - 2t^3` for interpolation weights.
#[inline]
fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = ValueNoise::new(42);
        let b = ValueNoise::new(42);
        for i in 0..20 {
            let (x, y) = (i as f32 * 0.7, i as f32 * 1.3);
            assert_eq!(a.sample(x, y), b.sample(x, y));
            assert_eq!(a.fbm(x, y, 4, 0.5), b.fbm(x, y, 4, 0.5));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ValueNoise::new(1);
        let b = ValueNoise::new(2);
        let differs = (0..50).any(|i| {
            let (x, y) = (i as f32 * 0.31, i as f32 * 0.77);
            (a.sample(x, y) - b.sample(x, y)).abs() > 1e-6
        });
        assert!(differs);
    }

    #[test]
    fn range_is_unit_interval() {
        let n = ValueNoise::new(7);
        for i in 0..40 {
            for j in 0..40 {
                let v = n.fbm(i as f32 * 0.23, j as f32 * 0.31, 5, 0.5);
                assert!((0.0..=1.0).contains(&v), "fbm out of range: {v}");
                let s = n.sample(i as f32 * 0.23, j as f32 * 0.31);
                assert!((0.0..1.0).contains(&s), "sample out of range: {s}");
            }
        }
    }

    #[test]
    fn continuity_across_lattice_cells() {
        let n = ValueNoise::new(3);
        // Values just either side of a lattice line must nearly agree.
        let a = n.sample(4.9999, 2.5);
        let b = n.sample(5.0001, 2.5);
        assert!((a - b).abs() < 1e-3);
    }

    #[test]
    fn interpolates_lattice_values_at_integers() {
        let n = ValueNoise::new(9);
        // At integer coordinates, sample == lattice value (fade weights 0).
        let v = n.sample(3.0, 4.0);
        let again = n.sample(3.0, 4.0);
        assert_eq!(v, again);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn fbm_has_more_detail_than_single_octave() {
        // Total variation along a line is larger with more octaves.
        let n = ValueNoise::new(5);
        let tv = |oct: usize| -> f32 {
            let mut sum = 0.0;
            let mut prev = n.fbm(0.0, 0.5, oct, 0.5);
            for i in 1..200 {
                let v = n.fbm(i as f32 * 0.05, 0.5, oct, 0.5);
                sum += (v - prev).abs();
                prev = v;
            }
            sum
        };
        assert!(tv(5) > tv(1));
    }

    #[test]
    #[should_panic(expected = "at least one octave")]
    fn zero_octaves_rejected() {
        let _ = ValueNoise::new(0).fbm(0.0, 0.0, 0, 0.5);
    }
}
