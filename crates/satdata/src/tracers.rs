//! Tracer-point selection — the "manual wind barb" protocol.
//!
//! The paper validates against "32 particles (pixels)" tracked manually
//! by an expert meteorologist, "treated as the reference or true
//! estimate". We reproduce that protocol: pick well-separated, cloudy,
//! textured pixels and read their true displacement from the generating
//! flow. The selection is deterministic given the seed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sma_grid::{FlowField, Grid, Vec2};

/// A tracer point with its ground-truth displacement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tracer {
    /// Pixel x.
    pub x: usize,
    /// Pixel y.
    pub y: usize,
    /// True displacement over one frame interval.
    pub truth: Vec2,
}

/// Pick up to `count` tracer points that are (a) cloudy — intensity above
/// `min_intensity`, (b) at least `min_separation` pixels apart, and
/// (c) at least `margin` pixels from the border (so every SMA window fits).
/// Truth displacements are read from `flow`.
///
/// Returns fewer than `count` tracers if the scene cannot support them —
/// callers should check, mirroring how a meteorologist only marks wind
/// barbs on trackable cloud features.
pub fn pick_tracers(
    intensity: &Grid<f32>,
    flow: &FlowField,
    count: usize,
    min_intensity: f32,
    min_separation: usize,
    margin: usize,
    seed: u64,
) -> Vec<Tracer> {
    assert_eq!(intensity.dims(), flow.dims(), "tracer shape mismatch");
    let (w, h) = intensity.dims();
    if w <= 2 * margin || h <= 2 * margin {
        return Vec::new();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut tracers: Vec<Tracer> = Vec::with_capacity(count);
    let sep2 = (min_separation * min_separation) as isize;
    // Bounded rejection sampling: deterministic and cheap; 200 attempts
    // per requested tracer is ample for realistic coverage.
    let max_attempts = count * 200;
    for _ in 0..max_attempts {
        if tracers.len() >= count {
            break;
        }
        let x = rng.gen_range(margin..w - margin);
        let y = rng.gen_range(margin..h - margin);
        if intensity.at(x, y) < min_intensity {
            continue;
        }
        let far_enough = tracers.iter().all(|t| {
            let dx = t.x as isize - x as isize;
            let dy = t.y as isize - y as isize;
            dx * dx + dy * dy >= sep2
        });
        if !far_enough {
            continue;
        }
        tracers.push(Tracer {
            x,
            y,
            truth: flow.at(x, y),
        });
    }
    tracers
}

/// The pixel coordinates of a tracer set (for [`FlowField::compare_at`]).
pub fn tracer_points(tracers: &[Tracer]) -> Vec<(usize, usize)> {
    tracers.iter().map(|t| (t.x, t.y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloudy_scene() -> (Grid<f32>, FlowField) {
        let intensity = Grid::from_fn(
            64,
            64,
            |x, y| if (x / 8 + y / 8) % 2 == 0 { 0.9 } else { 0.1 },
        );
        let flow = FlowField::from_fn(64, 64, |x, _| Vec2::new(x as f32 * 0.01, 1.0));
        (intensity, flow)
    }

    #[test]
    fn respects_cloud_threshold() {
        let (i, f) = cloudy_scene();
        let t = pick_tracers(&i, &f, 32, 0.5, 4, 3, 7);
        assert!(!t.is_empty());
        for tr in &t {
            assert!(
                i.at(tr.x, tr.y) >= 0.5,
                "tracer on clear sky at ({},{})",
                tr.x,
                tr.y
            );
        }
    }

    #[test]
    fn respects_separation_and_margin() {
        let (i, f) = cloudy_scene();
        let t = pick_tracers(&i, &f, 20, 0.5, 8, 5, 7);
        for (a_idx, a) in t.iter().enumerate() {
            assert!(a.x >= 5 && a.x < 59 && a.y >= 5 && a.y < 59);
            for b in &t[a_idx + 1..] {
                let d2 =
                    (a.x as isize - b.x as isize).pow(2) + (a.y as isize - b.y as isize).pow(2);
                assert!(d2 >= 64, "tracers too close: {a:?} {b:?}");
            }
        }
    }

    #[test]
    fn truth_comes_from_flow() {
        let (i, f) = cloudy_scene();
        let t = pick_tracers(&i, &f, 10, 0.5, 4, 3, 7);
        for tr in &t {
            assert_eq!(tr.truth, f.at(tr.x, tr.y));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (i, f) = cloudy_scene();
        let a = pick_tracers(&i, &f, 32, 0.5, 4, 3, 42);
        let b = pick_tracers(&i, &f, 32, 0.5, 4, 3, 42);
        assert_eq!(a, b);
        let c = pick_tracers(&i, &f, 32, 0.5, 4, 3, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_protocol_32_points() {
        let (i, f) = cloudy_scene();
        let t = pick_tracers(&i, &f, 32, 0.5, 4, 3, 1);
        assert_eq!(t.len(), 32);
        assert_eq!(tracer_points(&t).len(), 32);
    }

    #[test]
    fn impossible_request_returns_fewer() {
        // All-dark scene: nothing is cloudy.
        let dark = Grid::filled(32, 32, 0.0f32);
        let f = FlowField::zeros(32, 32);
        let t = pick_tracers(&dark, &f, 32, 0.5, 4, 3, 1);
        assert!(t.is_empty());
        // Tiny scene with huge margin.
        let (i, f) = cloudy_scene();
        let t2 = pick_tracers(&i, &f, 32, 0.5, 4, 40, 1);
        assert!(t2.is_empty());
    }
}
