//! Stereo pair synthesis from intensity + height.
//!
//! Two geostationary satellites separated by a large baseline (GOES-6/7
//! subtended "an angle of about 135 degrees with respect to the center of
//! the Earth") see a cloud at height `z` displaced horizontally between
//! the two views by a parallax disparity proportional to `z` (after
//! rectification the displacement is along scan lines). We synthesize the
//! right view from the left view and the height map with the linear model
//! `d(x, y) = gain * z(x, y)`, which preserves exactly the property the
//! ASA substrate needs: disparity *is* height, so ASA's recovered heights
//! can be scored against the generator's truth.

use sma_grid::warp::sample_bilinear;
use sma_grid::{BorderPolicy, Grid};

/// A rectified stereo pair with its generating truth.
#[derive(Debug, Clone)]
pub struct StereoPair {
    /// Left (reference) view.
    pub left: Grid<f32>,
    /// Right view, displaced by parallax.
    pub right: Grid<f32>,
    /// The true disparity plane used to synthesize `right`.
    pub true_disparity: Grid<f32>,
    /// Pixels of disparity per unit height (the viewing-geometry gain).
    pub gain: f32,
}

/// Synthesize a rectified stereo pair with the convention that a feature
/// at `left(x, y)` appears at `right(x + d, y)`: the right view is
/// resampled as `right(x, y) = left(x - d, y)` with `d = gain * height`.
/// A correlation matcher searching `right(x + d)` against the `left(x)`
/// template therefore recovers `+d` — the same convention `sma-stereo`
/// uses.
///
/// The warp is a backward resampling of the left view, so occlusion
/// effects at steep height discontinuities are approximated by stretching
/// (adequate for cloud decks, which the paper's correlation matcher also
/// blurs across).
///
/// # Panics
/// Panics if shapes differ or `gain` is not finite.
pub fn synthesize_stereo_pair(left: &Grid<f32>, height: &Grid<f32>, gain: f32) -> StereoPair {
    assert_eq!(left.dims(), height.dims(), "stereo synth shape mismatch");
    assert!(gain.is_finite(), "gain must be finite");
    let disparity = height.map(|&z| gain * z);
    let right = Grid::from_fn(left.width(), left.height(), |x, y| {
        sample_bilinear(
            left,
            x as f32 - disparity.at(x, y),
            y as f32,
            BorderPolicy::Clamp,
        )
    });
    StereoPair {
        left: left.clone(),
        right,
        true_disparity: disparity,
        gain,
    }
}

impl StereoPair {
    /// Convert a disparity estimate back to heights with this pair's gain.
    ///
    /// # Panics
    /// Panics if `gain == 0`.
    pub fn disparity_to_height(&self, disparity: &Grid<f32>) -> Grid<f32> {
        assert!(self.gain != 0.0, "zero-gain pair cannot invert disparity");
        disparity.map(|&d| d / self.gain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_scene_gives_identical_views() {
        let left = Grid::from_fn(32, 32, |x, y| ((x * 7 + y * 3) % 13) as f32);
        let height = Grid::filled(32, 32, 0.0f32);
        let pair = synthesize_stereo_pair(&left, &height, 0.5);
        assert!(pair.left.max_abs_diff(&pair.right) < 1e-5);
        assert_eq!(pair.true_disparity.min_max(), (0.0, 0.0));
    }

    #[test]
    fn uniform_height_shifts_uniformly() {
        let left = Grid::from_fn(32, 32, |x, y| (x + y) as f32);
        let height = Grid::filled(32, 32, 4.0f32);
        let pair = synthesize_stereo_pair(&left, &height, 0.5);
        // d = 2: right(x, y) = left(x - 2, y), i.e. the cloud feature at
        // left(x) shows up at right(x + 2).
        for y in 0..32 {
            for x in 2..32 {
                assert!((pair.right.at(x, y) - pair.left.at(x - 2, y)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn disparity_is_gain_times_height() {
        let left = Grid::filled(16, 16, 1.0f32);
        let height = Grid::from_fn(16, 16, |x, _| x as f32 * 0.5);
        let pair = synthesize_stereo_pair(&left, &height, 0.8);
        for y in 0..16 {
            for x in 0..16 {
                assert!((pair.true_disparity.at(x, y) - 0.8 * height.at(x, y)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn height_round_trip() {
        let left = Grid::filled(8, 8, 1.0f32);
        let height = Grid::from_fn(8, 8, |x, y| (x + y) as f32);
        let pair = synthesize_stereo_pair(&left, &height, 0.4);
        let recovered = pair.disparity_to_height(&pair.true_disparity);
        assert!(recovered.max_abs_diff(&height) < 1e-5);
    }

    #[test]
    fn vertical_structure_unchanged() {
        // Disparity moves pixels along rows only; columns of a horizontal
        // stripe pattern are untouched.
        let left = Grid::from_fn(16, 16, |_, y| (y % 4) as f32);
        let height = Grid::from_fn(16, 16, |x, _| x as f32 * 0.2);
        let pair = synthesize_stereo_pair(&left, &height, 1.0);
        assert!(pair.left.max_abs_diff(&pair.right) < 1e-4);
    }
}
