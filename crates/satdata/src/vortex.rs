//! Rankine vortex flow — the hurricane wind model.
//!
//! A hurricane's horizontal wind field is classically modelled as a
//! Rankine (combined) vortex: solid-body rotation inside the radius of
//! maximum wind, decaying tangential speed outside, plus a radial inflow
//! component that gives the characteristic spiral. This produces exactly
//! the kind of non-rigid, locally-deforming cloud motion the SMA model
//! targets: nearby patches rotate, shear and converge rather than
//! translating rigidly.

use sma_grid::{FlowField, Vec2};

/// A Rankine vortex with spiral inflow.
#[derive(Debug, Clone, Copy)]
pub struct RankineVortex {
    /// Vortex center x (pixels).
    pub cx: f32,
    /// Vortex center y (pixels).
    pub cy: f32,
    /// Maximum tangential speed (pixels per frame interval).
    pub vmax: f32,
    /// Radius of maximum wind (pixels).
    pub rmax: f32,
    /// Inflow fraction: radial speed = `inflow * tangential speed`,
    /// directed toward the center (0 = pure rotation, ~0.2 typical).
    pub inflow: f32,
    /// Rotation sense: `+1.0` counter-clockwise (northern hemisphere on
    /// image coordinates with y down appears clockwise), `-1.0` reversed.
    pub sense: f32,
}

impl RankineVortex {
    /// A hurricane-like default centered in a `w x h` frame: eye at the
    /// center, `vmax` ~2.5 px/frame at ~1/6 of the frame width.
    pub fn centered(w: usize, h: usize, vmax: f32) -> Self {
        Self {
            cx: w as f32 / 2.0,
            cy: h as f32 / 2.0,
            vmax,
            rmax: w as f32 / 6.0,
            inflow: 0.15,
            sense: 1.0,
        }
    }

    /// Tangential speed profile at radius `r` (Rankine):
    /// `vmax * r / rmax` inside, `vmax * rmax / r` outside.
    pub fn tangential_speed(&self, r: f32) -> f32 {
        if r <= 0.0 {
            0.0
        } else if r <= self.rmax {
            self.vmax * r / self.rmax
        } else {
            self.vmax * self.rmax / r
        }
    }

    /// Velocity at a point (pixels per frame interval).
    pub fn velocity(&self, x: f32, y: f32) -> Vec2 {
        let dx = x - self.cx;
        let dy = y - self.cy;
        let r = (dx * dx + dy * dy).sqrt();
        if r < 1e-6 {
            return Vec2::ZERO;
        }
        let vt = self.tangential_speed(r) * self.sense;
        // Unit tangential (perpendicular to radial) and unit inward radial.
        let (tx, ty) = (-dy / r, dx / r);
        let (rx, ry) = (-dx / r, -dy / r);
        let vin = self.inflow * self.tangential_speed(r);
        Vec2::new(vt * tx + vin * rx, vt * ty + vin * ry)
    }

    /// The dense flow field over a `w x h` frame.
    pub fn flow_field(&self, w: usize, h: usize) -> FlowField {
        FlowField::from_fn(w, h, |x, y| self.velocity(x as f32, y as f32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vortex() -> RankineVortex {
        RankineVortex {
            cx: 32.0,
            cy: 32.0,
            vmax: 3.0,
            rmax: 10.0,
            inflow: 0.0,
            sense: 1.0,
        }
    }

    #[test]
    fn speed_peaks_at_rmax() {
        let v = vortex();
        assert!((v.tangential_speed(10.0) - 3.0).abs() < 1e-6);
        assert!(v.tangential_speed(5.0) < 3.0);
        assert!(v.tangential_speed(20.0) < 3.0);
        assert_eq!(v.tangential_speed(0.0), 0.0);
    }

    #[test]
    fn inner_profile_is_solid_body() {
        let v = vortex();
        // Solid body: speed proportional to radius.
        assert!((v.tangential_speed(5.0) - 1.5).abs() < 1e-6);
        assert!((v.tangential_speed(2.0) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn outer_profile_decays_inversely() {
        let v = vortex();
        assert!((v.tangential_speed(20.0) - 1.5).abs() < 1e-6);
        assert!((v.tangential_speed(30.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pure_rotation_is_perpendicular_to_radius() {
        let v = vortex();
        for &(x, y) in &[(40.0f32, 32.0f32), (32.0, 20.0), (25.0, 25.0)] {
            let vel = v.velocity(x, y);
            let radial = Vec2::new(x - 32.0, y - 32.0);
            assert!(vel.dot(&radial).abs() < 1e-4, "not tangential at ({x},{y})");
        }
    }

    #[test]
    fn inflow_points_inward() {
        let v = RankineVortex {
            inflow: 0.5,
            ..vortex()
        };
        let vel = v.velocity(42.0, 32.0); // 10 px right of center
                                          // Radial component: dot with inward unit vector (-1, 0) > 0.
        assert!(vel.u < 0.0, "inflow must move the point toward the eye");
    }

    #[test]
    fn eye_is_calm() {
        let v = vortex();
        assert_eq!(v.velocity(32.0, 32.0), Vec2::ZERO);
        let near = v.velocity(32.5, 32.0).magnitude();
        assert!(near < 0.3);
    }

    #[test]
    fn sense_reverses_rotation() {
        let ccw = vortex();
        let cw = RankineVortex {
            sense: -1.0,
            ..vortex()
        };
        let a = ccw.velocity(40.0, 32.0);
        let b = cw.velocity(40.0, 32.0);
        assert!((a.u + b.u).abs() < 1e-6);
        assert!((a.v + b.v).abs() < 1e-6);
    }

    #[test]
    fn flow_field_samples_velocity() {
        let v = RankineVortex::centered(64, 64, 2.0);
        let f = v.flow_field(64, 64);
        assert_eq!(f.dims(), (64, 64));
        let sample = f.at(48, 32);
        let direct = v.velocity(48.0, 32.0);
        assert!((sample.u - direct.u).abs() < 1e-6);
        assert!((sample.v - direct.v).abs() < 1e-6);
        // Max speed in the field is about vmax (plus inflow component).
        let max_mag = f.magnitude_plane().min_max().1;
        assert!(max_mag <= 2.0 * 1.2 + 1e-3);
        assert!(max_mag > 1.5);
    }
}
