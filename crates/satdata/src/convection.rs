//! Convective-cell flow — the thunderstorm model.
//!
//! A mid-afternoon Florida thunderstorm (the paper's §5.2 dataset) is a
//! field of convective cells: strong updraft cores whose cloud tops grow
//! and spread into divergent anvil outflow, superposed on a steering
//! (environmental) wind. At cloud-top level the horizontal motion seen by
//! a satellite is the steering flow plus radial divergence away from each
//! active core — non-rigid motion where neighboring patches *diverge*,
//! precisely what breaks rigid-motion trackers.

use sma_grid::{FlowField, Grid, Vec2};

/// One convective cell.
#[derive(Debug, Clone, Copy)]
pub struct ConvectiveCell {
    /// Core x (pixels).
    pub cx: f32,
    /// Core y (pixels).
    pub cy: f32,
    /// Anvil radius scale (pixels).
    pub radius: f32,
    /// Peak outflow speed at `radius` (pixels/frame).
    pub outflow: f32,
    /// Cloud-top brightness/height amplitude of the cell (0..=1) and its
    /// growth rate per frame (brightness amplitude multiplies the dome
    /// profile added to the scene).
    pub amplitude: f32,
    /// Per-frame multiplicative growth of `amplitude` (1.0 = steady,
    /// >1 growing, <1 decaying).
    pub growth: f32,
}

impl ConvectiveCell {
    /// Outflow velocity contribution of this cell at a point: radial,
    /// growing linearly to `outflow` at `radius`, decaying exponentially
    /// beyond.
    pub fn velocity(&self, x: f32, y: f32) -> Vec2 {
        let dx = x - self.cx;
        let dy = y - self.cy;
        let r = (dx * dx + dy * dy).sqrt();
        if r < 1e-6 {
            return Vec2::ZERO;
        }
        let speed = if r <= self.radius {
            self.outflow * r / self.radius
        } else {
            self.outflow * (-(r - self.radius) / self.radius).exp()
        };
        Vec2::new(speed * dx / r, speed * dy / r)
    }

    /// Smooth dome profile (Gaussian of the radius) the cell adds to the
    /// cloud-top brightness/height field.
    pub fn dome(&self, x: f32, y: f32) -> f32 {
        let dx = x - self.cx;
        let dy = y - self.cy;
        let r2 = dx * dx + dy * dy;
        let s = self.radius * 0.75;
        self.amplitude * (-r2 / (2.0 * s * s)).exp()
    }

    /// The cell one frame later: same geometry, grown amplitude (capped
    /// at 1).
    pub fn grown(&self) -> Self {
        Self {
            amplitude: (self.amplitude * self.growth).min(1.0),
            ..*self
        }
    }
}

/// A thunderstorm scene: steering wind plus a set of convective cells.
#[derive(Debug, Clone)]
pub struct ThunderstormScene {
    /// Uniform environmental steering wind (pixels/frame).
    pub steering: Vec2,
    /// Active cells.
    pub cells: Vec<ConvectiveCell>,
}

impl ThunderstormScene {
    /// Total cloud-top velocity at a point.
    pub fn velocity(&self, x: f32, y: f32) -> Vec2 {
        self.cells
            .iter()
            .fold(self.steering, |acc, c| acc + c.velocity(x, y))
    }

    /// Dense flow field.
    pub fn flow_field(&self, w: usize, h: usize) -> FlowField {
        FlowField::from_fn(w, h, |x, y| self.velocity(x as f32, y as f32))
    }

    /// Sum of all cell domes over a frame (added to the background cloud
    /// texture to brighten/raise cloud tops over the cores).
    pub fn dome_field(&self, w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| {
            self.cells.iter().map(|c| c.dome(x as f32, y as f32)).sum()
        })
    }

    /// Advance cell lifecycle by one frame (growth/decay only; cores are
    /// quasi-stationary over the paper's ~1 min rapid-scan interval).
    pub fn step(&self) -> Self {
        Self {
            steering: self.steering,
            cells: self.cells.iter().map(|c| c.grown()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> ConvectiveCell {
        ConvectiveCell {
            cx: 20.0,
            cy: 20.0,
            radius: 8.0,
            outflow: 2.0,
            amplitude: 0.5,
            growth: 1.1,
        }
    }

    #[test]
    fn outflow_is_radial_and_outward() {
        let c = cell();
        for &(x, y) in &[(28.0f32, 20.0f32), (20.0, 12.0), (26.0, 26.0)] {
            let v = c.velocity(x, y);
            let radial = Vec2::new(x - 20.0, y - 20.0);
            // Parallel to radius (cross product ~ 0) and outward (dot > 0).
            assert!((v.u * radial.v - v.v * radial.u).abs() < 1e-4);
            assert!(v.dot(&radial) > 0.0);
        }
    }

    #[test]
    fn outflow_peaks_at_radius() {
        let c = cell();
        let at_radius = c.velocity(28.0, 20.0).magnitude();
        assert!((at_radius - 2.0).abs() < 1e-5);
        assert!(c.velocity(24.0, 20.0).magnitude() < at_radius);
        assert!(c.velocity(40.0, 20.0).magnitude() < at_radius);
    }

    #[test]
    fn core_is_stationary() {
        let c = cell();
        assert_eq!(c.velocity(20.0, 20.0), Vec2::ZERO);
    }

    #[test]
    fn dome_is_peaked_at_core() {
        let c = cell();
        assert!((c.dome(20.0, 20.0) - 0.5).abs() < 1e-6);
        assert!(c.dome(25.0, 20.0) < 0.5);
        assert!(c.dome(60.0, 60.0) < 1e-3);
    }

    #[test]
    fn growth_caps_at_one() {
        let mut c = ConvectiveCell {
            amplitude: 0.9,
            growth: 1.5,
            ..cell()
        };
        for _ in 0..10 {
            c = c.grown();
        }
        assert!(c.amplitude <= 1.0);
        assert!((c.amplitude - 1.0).abs() < 1e-6);
    }

    #[test]
    fn scene_superposes_steering_and_cells() {
        let scene = ThunderstormScene {
            steering: Vec2::new(1.0, 0.0),
            cells: vec![cell()],
        };
        // Far from the cell: just steering.
        let far = scene.velocity(200.0, 200.0);
        assert!((far.u - 1.0).abs() < 1e-3 && far.v.abs() < 1e-3);
        // At radius right of core: steering + outflow (+2, 0).
        let near = scene.velocity(28.0, 20.0);
        assert!((near.u - 3.0).abs() < 1e-4);
    }

    #[test]
    fn scene_step_grows_all_cells() {
        let scene = ThunderstormScene {
            steering: Vec2::ZERO,
            cells: vec![cell(), cell()],
        };
        let next = scene.step();
        for (a, b) in scene.cells.iter().zip(next.cells.iter()) {
            assert!(b.amplitude > a.amplitude);
        }
    }

    #[test]
    fn dome_field_sums_cells() {
        let scene = ThunderstormScene {
            steering: Vec2::ZERO,
            cells: vec![
                cell(),
                ConvectiveCell {
                    cx: 40.0,
                    cy: 40.0,
                    ..cell()
                },
            ],
        };
        let d = scene.dome_field(64, 64);
        assert!(d.at(20, 20) > 0.4);
        assert!(d.at(40, 40) > 0.4);
        assert!(d.at(5, 60) < 0.05);
    }
}
