//! Multi-layer cloud decks with independent motion.
//!
//! The paper motivates the semi-fluid model with multi-layer clouds:
//! "is also well-suited for tracking multi-layered clouds since tracers
//! in each layer are modeled as separate small surface patches with
//! independent first order deformations". This module composites several
//! decks, each with its own height, texture, coverage and velocity; the
//! top (highest) opaque deck wins at each pixel, so layer boundaries are
//! exactly the fragmented, discontinuous correspondence structure Fsemi
//! was built for.

use sma_grid::{BorderPolicy, FlowField, Grid, Vec2};

use crate::advect::advect;
use crate::texture::{cloud_mask, cloud_texture, TextureParams};

/// One cloud deck.
#[derive(Debug, Clone)]
pub struct CloudLayer {
    /// Cloud-top height of the deck (arbitrary units; larger = higher =
    /// occludes lower decks).
    pub height: f32,
    /// Per-frame velocity of the deck (pixels/frame).
    pub velocity: Vec2,
    /// Opacity mask (0 = clear, 1 = opaque).
    pub mask: Grid<f32>,
    /// Visible brightness texture of the deck.
    pub brightness: Grid<f32>,
}

impl CloudLayer {
    /// Generate a deck from fractal texture: `threshold` controls
    /// coverage, `height` its cloud-top level, `velocity` its motion.
    pub fn generate(
        w: usize,
        h: usize,
        seed: u64,
        threshold: f32,
        height: f32,
        velocity: Vec2,
    ) -> Self {
        let tex = cloud_texture(w, h, seed, TextureParams::default());
        let mask = cloud_mask(&tex, threshold, 0.15);
        // Brightness: texture contrast over the cloudy parts, brighter for
        // higher decks (colder tops are brighter in IR; keep the same
        // convention for visible for simplicity).
        let brightness = tex.map(|&t| 0.4 + 0.6 * t);
        Self {
            height,
            velocity,
            mask,
            brightness,
        }
    }

    /// The deck one frame later: mask and brightness advected rigidly by
    /// the deck velocity.
    pub fn step(&self) -> Self {
        let flow = FlowField::uniform(self.mask.width(), self.mask.height(), self.velocity);
        Self {
            height: self.height,
            velocity: self.velocity,
            mask: advect(&self.mask, &flow, BorderPolicy::Wrap),
            brightness: advect(&self.brightness, &flow, BorderPolicy::Wrap),
        }
    }
}

/// A stack of decks plus a dim ground/sea background.
#[derive(Debug, Clone)]
pub struct LayeredScene {
    /// Decks, any order; compositing sorts by height.
    pub layers: Vec<CloudLayer>,
    /// Background brightness (0..1) for clear-sky pixels.
    pub background: f32,
}

impl LayeredScene {
    /// Composite to `(intensity, height)` frames: at each pixel the
    /// highest deck with mask > 0.5 provides brightness and height;
    /// clear pixels get the background brightness and height 0.
    pub fn composite(&self) -> (Grid<f32>, Grid<f32>) {
        assert!(
            !self.layers.is_empty(),
            "layered scene needs at least one layer"
        );
        let (w, h) = self.layers[0].mask.dims();
        // Indices sorted by descending height: first opaque hit wins.
        // total_cmp keeps the order total (and the sort panic-free) even
        // if a NaN height slips in; NaN sorts above +inf and so wins
        // visibility deterministically instead of poisoning the sort.
        let mut order: Vec<usize> = (0..self.layers.len()).collect();
        order.sort_by(|&a, &b| self.layers[b].height.total_cmp(&self.layers[a].height));
        let mut intensity = Grid::filled(w, h, self.background);
        let mut height = Grid::filled(w, h, 0.0f32);
        for y in 0..h {
            for x in 0..w {
                for &li in &order {
                    let l = &self.layers[li];
                    if l.mask.at(x, y) > 0.5 {
                        intensity.set(x, y, l.brightness.at(x, y));
                        height.set(x, y, l.height);
                        break;
                    }
                }
            }
        }
        (intensity, height)
    }

    /// True per-pixel flow of the *visible* surface: each pixel moves with
    /// the deck that is visible there (clear sky pixels get zero flow).
    pub fn visible_flow(&self) -> FlowField {
        assert!(
            !self.layers.is_empty(),
            "layered scene needs at least one layer"
        );
        let (w, h) = self.layers[0].mask.dims();
        let mut order: Vec<usize> = (0..self.layers.len()).collect();
        order.sort_by(|&a, &b| self.layers[b].height.total_cmp(&self.layers[a].height));
        FlowField::from_fn(w, h, |x, y| {
            for &li in &order {
                if self.layers[li].mask.at(x, y) > 0.5 {
                    return self.layers[li].velocity;
                }
            }
            Vec2::ZERO
        })
    }

    /// Advance every deck one frame.
    pub fn step(&self) -> Self {
        Self {
            layers: self.layers.iter().map(|l| l.step()).collect(),
            background: self.background,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer_scene() -> LayeredScene {
        LayeredScene {
            layers: vec![
                CloudLayer::generate(48, 48, 1, 0.55, 10.0, Vec2::new(1.0, 0.0)),
                CloudLayer::generate(48, 48, 2, 0.45, 5.0, Vec2::new(-1.0, 0.5)),
            ],
            background: 0.1,
        }
    }

    #[test]
    fn composite_prefers_higher_deck() {
        let scene = two_layer_scene();
        let (intensity, height) = scene.composite();
        assert_eq!(intensity.dims(), (48, 48));
        // Wherever the high deck is opaque, the height must be 10.
        for y in 0..48 {
            for x in 0..48 {
                if scene.layers[0].mask.at(x, y) > 0.5 {
                    assert_eq!(height.at(x, y), 10.0, "high deck must win at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn clear_sky_gets_background() {
        let scene = two_layer_scene();
        let (intensity, height) = scene.composite();
        for y in 0..48 {
            for x in 0..48 {
                let any_cloud = scene.layers.iter().any(|l| l.mask.at(x, y) > 0.5);
                if !any_cloud {
                    assert_eq!(intensity.at(x, y), 0.1);
                    assert_eq!(height.at(x, y), 0.0);
                }
            }
        }
    }

    #[test]
    fn visible_flow_matches_winning_layer() {
        let scene = two_layer_scene();
        let flow = scene.visible_flow();
        for y in 0..48 {
            for x in 0..48 {
                let v = flow.at(x, y);
                if scene.layers[0].mask.at(x, y) > 0.5 {
                    assert_eq!(v, Vec2::new(1.0, 0.0));
                } else if scene.layers[1].mask.at(x, y) > 0.5 {
                    assert_eq!(v, Vec2::new(-1.0, 0.5));
                } else {
                    assert_eq!(v, Vec2::ZERO);
                }
            }
        }
    }

    #[test]
    fn step_translates_decks_independently() {
        let scene = two_layer_scene();
        let next = scene.step();
        // Deck 0 moves +1 in x: its mask at (x, y) becomes the old mask at
        // (x-1, y) (toroidal wrap), to bilinear accuracy.
        let old = &scene.layers[0].mask;
        let new = &next.layers[0].mask;
        let mut diff = 0.0f32;
        let mut count = 0;
        for y in 2..46 {
            for x in 2..46 {
                diff += (new.at(x, y) - old.at(x - 1, y)).abs();
                count += 1;
            }
        }
        let mean = diff / count as f32;
        assert!(mean < 1e-3, "mean abs shift error {mean}");
    }

    #[test]
    fn layer_coverage_is_nontrivial() {
        let scene = two_layer_scene();
        let cov0 = crate::texture::coverage(&scene.layers[0].mask);
        assert!(cov0 > 0.1 && cov0 < 0.9, "coverage {cov0} should be mixed");
    }
}
