//! Semi-Lagrangian advection of scene fields by a flow.
//!
//! Frame `t+1` is produced by transporting frame `t` along the ground-
//! truth flow: `I_{t+1}(q) = I_t(q - F(q))` (backward trace, bilinear
//! sampling). For the slowly varying flows used here, the per-pixel
//! ground-truth correspondence of pixel `p` at time `t` is `p -> p + F(p)`
//! to sub-pixel accuracy, which is what the SMA accuracy tests score
//! against.

use sma_grid::warp::sample_bilinear;
use sma_grid::{BorderPolicy, FlowField, Grid};

/// Advect a scalar field one step along `flow` (backward semi-Lagrangian).
///
/// # Panics
/// Panics if shapes differ.
pub fn advect(field: &Grid<f32>, flow: &FlowField, policy: BorderPolicy) -> Grid<f32> {
    assert_eq!(field.dims(), flow.dims(), "advect shape mismatch");
    Grid::from_fn(field.width(), field.height(), |x, y| {
        let v = flow.at(x, y);
        sample_bilinear(field, x as f32 - v.u, y as f32 - v.v, policy)
    })
}

/// Advect with sub-stepping: split the step into `n` backward substeps,
/// re-evaluating the flow along the trace. More accurate for strongly
/// curved flows (hurricane eyewall); equal to [`advect`] when `n == 1`.
///
/// # Panics
/// Panics if shapes differ or `n == 0`.
pub fn advect_substeps(
    field: &Grid<f32>,
    flow: &FlowField,
    n: usize,
    policy: BorderPolicy,
) -> Grid<f32> {
    assert!(n > 0, "need at least one substep");
    assert_eq!(field.dims(), flow.dims(), "advect shape mismatch");
    let dt = 1.0 / n as f32;
    Grid::from_fn(field.width(), field.height(), |x, y| {
        // Trace backward through n substeps, sampling the (static) flow
        // at each intermediate position.
        let mut px = x as f32;
        let mut py = y as f32;
        for _ in 0..n {
            let ix = px.round().clamp(0.0, (field.width() - 1) as f32) as usize;
            let iy = py.round().clamp(0.0, (field.height() - 1) as f32) as usize;
            let v = flow.at(ix, iy);
            px -= v.u * dt;
            py -= v.v * dt;
        }
        sample_bilinear(field, px, py, policy)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_grid::Vec2;

    #[test]
    fn uniform_flow_translates() {
        let img = Grid::from_fn(16, 16, |x, y| (x * 3 + y) as f32);
        let flow = FlowField::uniform(16, 16, Vec2::new(2.0, 1.0));
        let out = advect(&img, &flow, BorderPolicy::Clamp);
        // out(x, y) = img(x-2, y-1): the scene moved by (+2, +1).
        for y in 2..15 {
            for x in 3..15 {
                assert!((out.at(x, y) - img.at(x - 2, y - 1)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn zero_flow_is_identity() {
        let img = Grid::from_fn(12, 12, |x, y| ((x * y) % 7) as f32);
        let out = advect(&img, &FlowField::zeros(12, 12), BorderPolicy::Clamp);
        assert!(img.max_abs_diff(&out) < 1e-6);
    }

    #[test]
    fn substep_one_matches_plain() {
        let img = Grid::from_fn(16, 16, |x, y| (x + y) as f32);
        let flow = FlowField::from_fn(16, 16, |x, _| Vec2::new((x as f32 * 0.3).sin(), 0.5));
        let a = advect(&img, &flow, BorderPolicy::Clamp);
        let b = advect_substeps(&img, &flow, 1, BorderPolicy::Clamp);
        // Substep path rounds the trace start; equal for this small flow.
        assert!(a.max_abs_diff(&b) < 0.6);
    }

    #[test]
    fn advection_preserves_constants() {
        let img = Grid::filled(10, 10, 4.25f32);
        let flow = FlowField::uniform(10, 10, Vec2::new(1.3, -0.7));
        let out = advect(&img, &flow, BorderPolicy::Clamp);
        for &v in out.iter() {
            assert!((v - 4.25).abs() < 1e-5);
        }
    }

    #[test]
    fn advection_conserves_range() {
        // Bilinear sampling cannot create new extrema.
        let img = Grid::from_fn(16, 16, |x, y| ((x * 7 + y * 3) % 11) as f32);
        let flow = FlowField::from_fn(16, 16, |x, y| {
            Vec2::new((y as f32 * 0.2).sin(), (x as f32 * 0.2).cos())
        });
        let out = advect(&img, &flow, BorderPolicy::Clamp);
        let (lo, hi) = img.min_max();
        let (olo, ohi) = out.min_max();
        assert!(olo >= lo - 1e-4 && ohi <= hi + 1e-4);
    }
}
