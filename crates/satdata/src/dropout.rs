//! Satellite input dropouts, driven by the fault harness.
//!
//! Real GOES tapes carry scan-line and pixel dropouts (telemetry gaps,
//! detector saturation). The synthetic scenes are pristine, so the fault
//! harness injects the defect instead: with `SMA_FAULTS` armed, each
//! pixel of a frame is independently eligible to drop out, keyed on
//! `(frame_key, x, y)` so the same seed always punches the same holes.
//!
//! A dropped pixel becomes `NaN` — the honest encoding of "no data" —
//! and is ledgered as *degraded* at the sensor (the harness cannot
//! recover data that never arrived). Downstream,
//! `SmaFrames::prepare` quarantines the `NaN`s (repairing them from
//! finite neighbors and masking them invalid), so an armed pipeline
//! still completes end to end; the quarantine count in the fault ledger
//! reports how many holes the pipeline absorbed.

use sma_fault::FaultSite;
use sma_grid::Grid;

/// Apply harness-driven dropouts to a frame: every injected pixel is
/// replaced by `NaN`. Disarmed (or at rate 0) this is an exact copy.
///
/// `frame_key` distinguishes frames of a sequence so each gets its own
/// deterministic dropout pattern under one seed.
pub fn apply_dropouts(img: &Grid<f32>, frame_key: u64) -> Grid<f32> {
    let mut out = img.clone();
    if !sma_fault::enabled() {
        return out;
    }
    let (w, h) = img.dims();
    for y in 0..h {
        for x in 0..w {
            let key = sma_fault::key3(frame_key, x as u64, y as u64);
            if let Some(token) = sma_fault::inject(FaultSite::InputDropout, key) {
                // Lost at the sensor: nothing upstream can restore it.
                token.degraded();
                out.set(x, y, f32::NAN);
            }
        }
    }
    out
}

/// Count the `NaN` pixels of a frame (the holes a dropout pass punched).
pub fn dropout_count(img: &Grid<f32>) -> usize {
    img.iter().filter(|v| !v.is_finite()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| (x + w * y) as f32)
    }

    #[test]
    fn disarmed_is_exact_copy() {
        let _g = sma_fault::exclusive();
        sma_fault::clear();
        let img = ramp(16, 16);
        assert_eq!(apply_dropouts(&img, 0), img);
    }

    #[test]
    fn armed_dropouts_are_deterministic_and_ledgered() {
        let _g = sma_fault::exclusive();
        sma_fault::install(777, 0.05);
        sma_fault::reset_ledger();
        let img = ramp(32, 32);
        let a = apply_dropouts(&img, 3);
        let b = apply_dropouts(&img, 3);
        let other_frame = apply_dropouts(&img, 4);
        sma_fault::clear();

        // NaN != NaN, so compare hole patterns bitwise.
        let holes_of = |g: &Grid<f32>| -> Vec<bool> { g.iter().map(|v| !v.is_finite()).collect() };
        assert_eq!(
            holes_of(&a),
            holes_of(&b),
            "same seed + frame key must drop the same pixels"
        );
        let holes = dropout_count(&a);
        assert!(holes > 0, "rate 0.05 over 1024 px should drop some");
        assert!(holes < 1024 / 4, "rate 0.05 should not shred the frame");
        assert_ne!(
            holes_of(&a),
            holes_of(&other_frame),
            "different frame keys must drop different pixels"
        );

        let snap = sma_fault::ledger();
        assert!(snap.balanced(), "every dropout token must resolve");
        let dropped = snap
            .by_site()
            .find(|(name, _)| *name == FaultSite::InputDropout.name())
            .map(|(_, n)| n)
            .unwrap_or(0);
        assert_eq!(
            dropped,
            (dropout_count(&a) * 2 + dropout_count(&other_frame)) as u64
        );
    }
}
