//! Ocean eddies and polar sea ice — the paper's other application
//! domains.
//!
//! The abstract names "polar sea ice, or ocean currents" alongside
//! clouds as targets for deformable motion tracking, and §1 adds "ocean
//! eddies and currents that maintain identifiable features in
//! multispectral imagery". Two generators:
//!
//! * [`EddyField`] — a superposition of Rankine-like gyres (mesoscale
//!   eddies) over a background current: smooth, rotational, non-rigid
//!   flow tracked on SST-like texture;
//! * [`IceField`] — rigid floes drifting independently over dark water:
//!   piecewise-*rigid* motion with sharp boundaries — the fragmented
//!   correspondence case (like multi-layer clouds, but with hard
//!   discontinuities at every floe edge).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sma_grid::{BorderPolicy, FlowField, Grid, Vec2};

use crate::advect::advect;
use crate::dataset::{Frame, SceneSequence};
use crate::texture::{cloud_texture, TextureParams};
use crate::vortex::RankineVortex;

/// A field of ocean eddies over a background current.
#[derive(Debug, Clone)]
pub struct EddyField {
    /// Background (geostrophic) current, pixels/frame.
    pub background: Vec2,
    /// The gyres (alternating-sense eddies).
    pub eddies: Vec<RankineVortex>,
}

impl EddyField {
    /// A reproducible field of `count` eddies in a `size x size` domain,
    /// with alternating rotation senses and radii ~ size/10.
    pub fn generate(size: usize, count: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = size as f32;
        let eddies = (0..count)
            .map(|k| RankineVortex {
                cx: rng.gen_range(0.2 * s..0.8 * s),
                cy: rng.gen_range(0.2 * s..0.8 * s),
                vmax: rng.gen_range(0.6..1.4),
                rmax: rng.gen_range(0.08 * s..0.14 * s),
                inflow: 0.0,
                sense: if k % 2 == 0 { 1.0 } else { -1.0 },
            })
            .collect();
        Self {
            background: Vec2::new(0.4, 0.1),
            eddies,
        }
    }

    /// Total velocity at a point.
    pub fn velocity(&self, x: f32, y: f32) -> Vec2 {
        self.eddies
            .iter()
            .fold(self.background, |acc, e| acc + e.velocity(x, y))
    }

    /// Dense flow field.
    pub fn flow_field(&self, w: usize, h: usize) -> FlowField {
        FlowField::from_fn(w, h, |x, y| self.velocity(x as f32, y as f32))
    }
}

/// Ocean-current analog sequence: SST-like texture advected by an eddy
/// field (monocular; the texture is the digital surface).
pub fn ocean_current_analog(size: usize, frames: usize, seed: u64) -> SceneSequence {
    assert!(size >= 32, "domain too small for eddies");
    assert!(frames >= 2, "a motion sequence needs at least two frames");
    let field = EddyField::generate(size, 4, seed);
    let flow = field.flow_field(size, size);
    let sst = cloud_texture(
        size,
        size,
        seed ^ 0x0CEA,
        TextureParams {
            base_freq: 0.06,
            ..Default::default()
        },
    )
    .map(|&t| 0.2 + 0.6 * t);

    let mut frames_vec = vec![Frame {
        intensity: sst.clone(),
        height: sst.clone(),
    }];
    let mut truth = Vec::new();
    let mut current = sst;
    for _ in 1..frames {
        current = advect(&current, &flow, BorderPolicy::Clamp);
        frames_vec.push(Frame {
            intensity: current.clone(),
            height: current.clone(),
        });
        truth.push(flow.clone());
    }
    SceneSequence {
        name: "ocean-current-analog".to_string(),
        frames: frames_vec,
        truth_flows: truth,
        interval_minutes: 60.0,
        stereo_gain: None,
    }
}

/// One rigid sea-ice floe: an ellipse with its own drift.
#[derive(Debug, Clone, Copy)]
pub struct Floe {
    /// Center x at t = 0.
    pub cx: f32,
    /// Center y at t = 0.
    pub cy: f32,
    /// Semi-axis along x.
    pub ax: f32,
    /// Semi-axis along y.
    pub ay: f32,
    /// Drift velocity, pixels/frame.
    pub drift: Vec2,
    /// Surface brightness of the floe (ice is bright, water dark).
    pub brightness: f32,
}

impl Floe {
    /// Whether `(x, y)` lies inside the floe at time-step `t`.
    pub fn contains(&self, x: f32, y: f32, t: f32) -> bool {
        let dx = (x - self.cx - self.drift.u * t) / self.ax;
        let dy = (y - self.cy - self.drift.v * t) / self.ay;
        dx * dx + dy * dy <= 1.0
    }
}

/// A field of independently drifting floes.
#[derive(Debug, Clone)]
pub struct IceField {
    /// The floes; earlier entries render on top.
    pub floes: Vec<Floe>,
    /// Open-water brightness.
    pub water: f32,
}

impl IceField {
    /// A reproducible pack of up to `count` non-overlapping floes in a
    /// `size x size` domain (real floes collide rather than stack, and
    /// overlap would create spurious occlusion churn).
    pub fn generate(size: usize, count: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1CE);
        let s = size as f32;
        let mut floes: Vec<Floe> = Vec::with_capacity(count);
        let mut attempts = 0;
        while floes.len() < count && attempts < count * 50 {
            attempts += 1;
            let cand = Floe {
                cx: rng.gen_range(0.15 * s..0.85 * s),
                cy: rng.gen_range(0.15 * s..0.85 * s),
                ax: rng.gen_range(0.06 * s..0.14 * s),
                ay: rng.gen_range(0.06 * s..0.14 * s),
                drift: Vec2::new(rng.gen_range(-1.2..1.2), rng.gen_range(-1.2..1.2)),
                brightness: rng.gen_range(0.7..0.95),
            };
            let clear = floes.iter().all(|f| {
                let d = ((f.cx - cand.cx).powi(2) + (f.cy - cand.cy).powi(2)).sqrt();
                d > f.ax.max(f.ay) + cand.ax.max(cand.ay) + 3.0
            });
            if clear {
                floes.push(cand);
            }
        }
        Self { floes, water: 0.08 }
    }

    /// Render the intensity image at time-step `t` (texture on each floe
    /// keyed to the floe so it drifts rigidly with it).
    pub fn render(&self, size: usize, t: f32, seed: u64) -> Grid<f32> {
        let tex = cloud_texture(
            size,
            size,
            seed ^ 0xF10E,
            TextureParams {
                base_freq: 0.15,
                octaves: 3,
                ..Default::default()
            },
        );
        Grid::from_fn(size, size, |x, y| {
            for f in &self.floes {
                if f.contains(x as f32, y as f32, t) {
                    // Texture sampled bilinearly in floe-local (drift-
                    // compensated) coordinates so it moves rigidly — and
                    // sub-pixel-exactly — with the floe.
                    let lx = x as f32 - f.drift.u * t;
                    let ly = y as f32 - f.drift.v * t;
                    let v = sma_grid::warp::sample_bilinear(&tex, lx, ly, BorderPolicy::Wrap);
                    return f.brightness * (0.55 + 0.45 * v);
                }
            }
            self.water
        })
    }

    /// The true velocity of the *visible* surface at time-step `t`
    /// (water reports zero).
    pub fn visible_flow(&self, size: usize, t: f32) -> FlowField {
        FlowField::from_fn(size, size, |x, y| {
            for f in &self.floes {
                if f.contains(x as f32, y as f32, t) {
                    return f.drift;
                }
            }
            Vec2::ZERO
        })
    }
}

/// Sea-ice analog sequence: drifting floes rendered per timestep.
pub fn sea_ice_analog(size: usize, frames: usize, seed: u64) -> SceneSequence {
    assert!(size >= 32, "domain too small for floes");
    assert!(frames >= 2, "a motion sequence needs at least two frames");
    let field = IceField::generate(size, 5, seed);
    let frames_vec: Vec<Frame> = (0..frames)
        .map(|t| {
            let img = field.render(size, t as f32, seed);
            Frame {
                intensity: img.clone(),
                height: img,
            }
        })
        .collect();
    let truth = (0..frames - 1)
        .map(|t| field.visible_flow(size, t as f32))
        .collect();
    SceneSequence {
        name: "sea-ice-analog".to_string(),
        frames: frames_vec,
        truth_flows: truth,
        interval_minutes: 360.0,
        stereo_gain: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eddy_field_superposes() {
        let f = EddyField::generate(64, 3, 7);
        assert_eq!(f.eddies.len(), 3);
        // Far corner: close to background (eddies decay).
        let v = f.velocity(1.0, 1.0);
        assert!((v - f.background).magnitude() < 1.5);
    }

    #[test]
    fn eddies_alternate_sense() {
        let f = EddyField::generate(64, 4, 3);
        assert_eq!(f.eddies[0].sense, 1.0);
        assert_eq!(f.eddies[1].sense, -1.0);
        assert_eq!(f.eddies[2].sense, 1.0);
    }

    #[test]
    fn ocean_sequence_shape_and_determinism() {
        let a = ocean_current_analog(48, 3, 5);
        let b = ocean_current_analog(48, 3, 5);
        assert_eq!(a.len(), 3);
        assert_eq!(a.truth_flows.len(), 2);
        assert_eq!(a.frames[2].intensity, b.frames[2].intensity);
        assert!(a.stereo_gain.is_none());
    }

    #[test]
    fn floe_drifts_rigidly() {
        let f = Floe {
            cx: 20.0,
            cy: 20.0,
            ax: 5.0,
            ay: 3.0,
            drift: Vec2::new(2.0, -1.0),
            brightness: 0.8,
        };
        assert!(f.contains(20.0, 20.0, 0.0));
        assert!(!f.contains(20.0, 20.0, 5.0)); // moved away
        assert!(f.contains(30.0, 15.0, 5.0)); // center at t=5
    }

    #[test]
    fn ice_renders_bright_floes_on_dark_water() {
        let field = IceField::generate(64, 4, 9);
        let img = field.render(64, 0.0, 9);
        let (lo, hi) = img.min_max();
        assert!(lo < 0.1, "water must be dark, min {lo}");
        assert!(hi > 0.6, "ice must be bright, max {hi}");
    }

    #[test]
    fn floes_do_not_overlap() {
        let field = IceField::generate(72, 5, 3);
        for (i, a) in field.floes.iter().enumerate() {
            for b in &field.floes[i + 1..] {
                let d = ((a.cx - b.cx).powi(2) + (a.cy - b.cy).powi(2)).sqrt();
                assert!(d > a.ax.max(a.ay) + b.ax.max(b.ay), "floes overlap");
            }
        }
        assert!(!field.floes.is_empty());
    }

    #[test]
    fn ice_flow_is_piecewise_rigid() {
        let field = IceField::generate(64, 3, 2);
        let flow = field.visible_flow(64, 0.0);
        // Every nonzero vector equals one of the floe drifts exactly.
        let drifts: Vec<Vec2> = field.floes.iter().map(|f| f.drift).collect();
        for (_, v) in flow.enumerate() {
            if v.magnitude() > 0.0 {
                assert!(drifts.iter().any(|d| (*d - v).magnitude() < 1e-6));
            }
        }
    }

    #[test]
    fn ice_sequence_moves_floes() {
        let seq = sea_ice_analog(64, 3, 4);
        assert_eq!(seq.len(), 3);
        let d = seq.frames[0].intensity.rms_diff(&seq.frames[1].intensity);
        assert!(d > 1e-3, "floes should move between frames");
    }
}
