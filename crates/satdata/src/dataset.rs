//! Ready-made sequence datasets — analogs of the paper's three GOES
//! scenes, each with dense ground-truth motion.

use sma_grid::{BorderPolicy, FlowField, Grid, Vec2};

use crate::advect::advect;
use crate::convection::{ConvectiveCell, ThunderstormScene};
use crate::stereo_synth::{synthesize_stereo_pair, StereoPair};
use crate::texture::{cloud_mask, cloud_texture, TextureParams};
use crate::vortex::RankineVortex;

/// One timestep of a sequence: the co-registered intensity image and
/// cloud-top height (surface) map — the `(I(t), z(t))` pair the SMA
/// algorithm consumes.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Visible-channel intensity, `[0, 1]`-ish.
    pub intensity: Grid<f32>,
    /// Cloud-top height map (arbitrary units, 0 = surface).
    pub height: Grid<f32>,
}

/// A time sequence with ground truth.
#[derive(Debug, Clone)]
pub struct SceneSequence {
    /// Dataset label.
    pub name: String,
    /// Frames `t = 0 .. T-1`.
    pub frames: Vec<Frame>,
    /// Truth flow `t -> t+1` for `t = 0 .. T-2` (pixel at `(x, y)` in
    /// frame `t` moves by `truth_flows[t].at(x, y)`).
    pub truth_flows: Vec<FlowField>,
    /// Nominal frame interval in minutes (context only).
    pub interval_minutes: f32,
    /// Parallax gain for stereo synthesis; `None` for monocular
    /// sequences (Luis, Florida) where intensity is treated as a digital
    /// surface, exactly as the paper does.
    pub stereo_gain: Option<f32>,
}

impl SceneSequence {
    /// Number of frames `T`.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if the sequence has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        self.frames[0].intensity.dims()
    }

    /// Synthesize the rectified stereo pair for frame `t`; `None` for
    /// monocular sequences or out-of-range `t`.
    pub fn stereo_pair(&self, t: usize) -> Option<StereoPair> {
        let gain = self.stereo_gain?;
        let frame = self.frames.get(t)?;
        Some(synthesize_stereo_pair(
            &frame.intensity,
            &frame.height,
            gain,
        ))
    }

    /// The surface input the SMA algorithm would use at frame `t`:
    /// the height map for stereo sequences, the intensity image itself
    /// for monocular ones ("treating the intensity data as a digital
    /// surface", §2).
    pub fn surface(&self, t: usize) -> &Grid<f32> {
        if self.stereo_gain.is_some() {
            &self.frames[t].height
        } else {
            &self.frames[t].intensity
        }
    }
}

/// Shared generator: advect an initial `(intensity, height)` scene by a
/// per-step flow field.
fn advected_sequence(
    name: &str,
    intensity0: Grid<f32>,
    height0: Grid<f32>,
    flow: &FlowField,
    frames: usize,
    interval_minutes: f32,
    stereo_gain: Option<f32>,
) -> SceneSequence {
    assert!(frames >= 2, "a motion sequence needs at least two frames");
    let mut seq = SceneSequence {
        name: name.to_string(),
        frames: vec![Frame {
            intensity: intensity0,
            height: height0,
        }],
        truth_flows: Vec::new(),
        interval_minutes,
        stereo_gain,
    };
    for _ in 1..frames {
        let prev = seq.frames.last().expect("non-empty frames");
        let next = Frame {
            intensity: advect(&prev.intensity, flow, BorderPolicy::Clamp),
            height: advect(&prev.height, flow, BorderPolicy::Clamp),
        };
        seq.frames.push(next);
        seq.truth_flows.push(flow.clone());
    }
    seq
}

/// Hurricane Frederic analog: stereoscopic vortex scene.
///
/// The paper's §5.1 dataset is four 512 x 512 GOES-6/7 visible pairs at
/// ~7.5 min intervals. This analog builds a fractal cloud field organized
/// by a Rankine vortex (bright, high eyewall; darker, lower outer bands),
/// advects it by the vortex flow, and marks the sequence stereoscopic so
/// [`SceneSequence::stereo_pair`] can synthesize GOES-6/7-like views.
/// Displacements are ~2–3 px/frame at the eyewall.
pub fn hurricane_frederic_analog(size: usize, frames: usize, seed: u64) -> SceneSequence {
    assert!(size >= 32, "scene too small for a vortex");
    let vortex = RankineVortex::centered(size, size, 2.5);
    let flow = vortex.flow_field(size, size);

    let tex = cloud_texture(size, size, seed, TextureParams::default());
    // Radial envelope: dense high cloud near the eyewall, thinning
    // outward; a clear eye inside ~rmax/2.
    let (cx, cy, rmax) = (vortex.cx, vortex.cy, vortex.rmax);
    let envelope = Grid::from_fn(size, size, |x, y| {
        let dx = x as f32 - cx;
        let dy = y as f32 - cy;
        let r = (dx * dx + dy * dy).sqrt();
        let eye = 1.0 - (-((r / (0.5 * rmax)).powi(2))).exp(); // 0 in the eye
        let band = (-(r - rmax).powi(2) / (2.0 * (2.5 * rmax).powi(2))).exp();
        eye * band
    });
    let intensity = tex.zip_map(&envelope, |&t, &e| (0.15 + 0.85 * t) * e + 0.05);
    // Cloud-top heights follow brightness: the eyewall towers, outer
    // bands are lower; a floor of 0 over the (clear) eye and far field.
    let mask = cloud_mask(&intensity, 0.25, 0.15);
    let height = intensity.zip_map(&mask, |&i, &m| m * (2.0 + 8.0 * i));

    advected_sequence(
        "hurricane-frederic-analog",
        intensity,
        height,
        &flow,
        frames,
        7.5,
        Some(0.5),
    )
}

/// Hurricane Luis analog: monocular rapid-scan vortex scene.
///
/// §5's Luis dataset is 490 GOES-9 frames at ~1.5 min intervals with no
/// stereo; the intensity image is treated as a digital surface. The
/// rapid-scan interval means small per-frame displacements (~1 px).
pub fn hurricane_luis_analog(size: usize, frames: usize, seed: u64) -> SceneSequence {
    assert!(size >= 32, "scene too small for a vortex");
    let vortex = RankineVortex {
        inflow: 0.1,
        ..RankineVortex::centered(size, size, 1.0)
    };
    let flow = vortex.flow_field(size, size);
    let tex = cloud_texture(size, size, seed ^ 0x1015, TextureParams::default());
    let intensity = tex.map(|&t| 0.1 + 0.8 * t);
    let height = intensity.clone(); // monocular: intensity is the surface
    let mut seq = advected_sequence(
        "hurricane-luis-analog",
        intensity,
        height,
        &flow,
        frames,
        1.5,
        None,
    );
    seq.name = "hurricane-luis-analog".to_string();
    seq
}

/// GOES-9 Florida thunderstorm analog: monocular rapid-scan convection.
///
/// §5.2's dataset is 49 frames at ~1 min intervals over Florida. The
/// analog superposes growing convective cells (divergent anvil outflow)
/// on a steering wind; cloud brightness has both advected texture and
/// growing domes over the cores.
pub fn florida_thunderstorm_analog(size: usize, frames: usize, seed: u64) -> SceneSequence {
    assert!(size >= 32, "scene too small for convection");
    assert!(frames >= 2, "a motion sequence needs at least two frames");
    let s = size as f32;
    let mut scene = ThunderstormScene {
        steering: Vec2::new(0.8, 0.3),
        cells: vec![
            ConvectiveCell {
                cx: s * 0.35,
                cy: s * 0.4,
                radius: s * 0.12,
                outflow: 0.8,
                amplitude: 0.5,
                growth: 1.03,
            },
            ConvectiveCell {
                cx: s * 0.65,
                cy: s * 0.55,
                radius: s * 0.1,
                outflow: 0.6,
                amplitude: 0.35,
                growth: 1.05,
            },
            ConvectiveCell {
                cx: s * 0.5,
                cy: s * 0.75,
                radius: s * 0.08,
                outflow: 0.5,
                amplitude: 0.25,
                growth: 1.02,
            },
        ],
    };
    let flow = scene.flow_field(size, size);

    let tex = cloud_texture(size, size, seed ^ 0xF10A, TextureParams::default());
    let mut texture_layer = tex.map(|&t| 0.1 + 0.5 * t);

    let make_frame = |texture_layer: &Grid<f32>, scene: &ThunderstormScene| -> Frame {
        let domes = scene.dome_field(size, size);
        let intensity = texture_layer.zip_map(&domes, |&t, &d| (t + d).min(1.0));
        let height = intensity.clone(); // monocular digital surface
        Frame { intensity, height }
    };

    let mut frames_vec = vec![make_frame(&texture_layer, &scene)];
    let mut truth_flows = Vec::new();
    for _ in 1..frames {
        texture_layer = advect(&texture_layer, &flow, BorderPolicy::Clamp);
        scene = scene.step();
        frames_vec.push(make_frame(&texture_layer, &scene));
        truth_flows.push(flow.clone());
    }
    SceneSequence {
        name: "florida-thunderstorm-analog".to_string(),
        frames: frames_vec,
        truth_flows,
        interval_minutes: 1.0,
        stereo_gain: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frederic_shape_and_truth() {
        let seq = hurricane_frederic_analog(64, 4, 9);
        assert_eq!(seq.len(), 4); // T = 4, like the paper
        assert_eq!(seq.truth_flows.len(), 3);
        assert_eq!(seq.dims(), (64, 64));
        assert!(seq.stereo_gain.is_some());
        assert!((seq.interval_minutes - 7.5).abs() < 1e-6);
    }

    #[test]
    fn frederic_eye_is_dark_eyewall_bright() {
        let seq = hurricane_frederic_analog(96, 2, 3);
        let i = &seq.frames[0].intensity;
        let eye = i.at(48, 48);
        // Mean around the eyewall radius (rmax = 16).
        let mut wall = 0.0f32;
        let mut n = 0;
        for k in 0..32 {
            let ang = k as f32 * std::f32::consts::TAU / 32.0;
            let x = (48.0 + 16.0 * ang.cos()) as usize;
            let y = (48.0 + 16.0 * ang.sin()) as usize;
            wall += i.at(x, y);
            n += 1;
        }
        wall /= n as f32;
        assert!(wall > eye + 0.1, "eyewall {wall} should outshine eye {eye}");
    }

    #[test]
    fn frederic_stereo_pair_available() {
        let seq = hurricane_frederic_analog(64, 2, 5);
        let pair = seq.stereo_pair(0).unwrap();
        assert_eq!(pair.left.dims(), (64, 64));
        // Heights are nonzero somewhere, so views must differ.
        assert!(pair.left.max_abs_diff(&pair.right) > 1e-3);
        assert!(seq.stereo_pair(10).is_none());
    }

    #[test]
    fn frederic_frames_actually_move() {
        let seq = hurricane_frederic_analog(64, 2, 7);
        let d = seq.frames[0].intensity.rms_diff(&seq.frames[1].intensity);
        assert!(d > 1e-3, "consecutive frames should differ, rms {d}");
    }

    #[test]
    fn luis_is_monocular_with_digital_surface() {
        let seq = hurricane_luis_analog(48, 3, 2);
        assert!(seq.stereo_gain.is_none());
        assert!(seq.stereo_pair(0).is_none());
        // Surface == intensity for monocular sequences.
        assert_eq!(seq.surface(0), &seq.frames[0].intensity);
        assert!((seq.interval_minutes - 1.5).abs() < 1e-6);
    }

    #[test]
    fn luis_motion_is_small_per_frame() {
        let seq = hurricane_luis_analog(64, 2, 4);
        let max_mag = seq.truth_flows[0].magnitude_plane().min_max().1;
        assert!(
            max_mag <= 1.5,
            "rapid-scan motion should be ~1 px, got {max_mag}"
        );
    }

    #[test]
    fn florida_has_growing_cells() {
        let seq = florida_thunderstorm_analog(64, 5, 11);
        assert_eq!(seq.len(), 5);
        // Brightness over the strongest core grows frame over frame.
        let (cx, cy) = (22usize, 26usize); // 0.35 * 64, 0.4 * 64
        let first = seq.frames[0].intensity.at(cx, cy);
        let last = seq.frames[4].intensity.at(cx, cy);
        assert!(last > first, "core should brighten: {first} -> {last}");
    }

    #[test]
    fn florida_flow_includes_steering() {
        let seq = florida_thunderstorm_analog(64, 2, 1);
        // A corner far from all cells moves with ~the steering wind.
        let v = seq.truth_flows[0].at(2, 2);
        assert!((v.u - 0.8).abs() < 0.3);
        assert!((v.v - 0.3).abs() < 0.3);
    }

    #[test]
    fn stereo_surface_is_height() {
        let seq = hurricane_frederic_analog(64, 2, 5);
        assert_eq!(seq.surface(0), &seq.frames[0].height);
    }

    #[test]
    fn sequences_are_deterministic() {
        let a = florida_thunderstorm_analog(48, 3, 123);
        let b = florida_thunderstorm_analog(48, 3, 123);
        assert_eq!(a.frames[2].intensity, b.frames[2].intensity);
    }

    #[test]
    #[should_panic(expected = "at least two frames")]
    fn single_frame_rejected() {
        let _ = florida_thunderstorm_analog(48, 1, 0);
    }
}
