//! Multispectral frame synthesis — the infrared companion channel.
//!
//! GOES imagers carry visible and infrared channels; the §6 extension
//! "using multispectral information" needs a second channel whose
//! information content differs from the visible one. For cloud scenes
//! the physics is simple: **IR brightness temperature tracks cloud-top
//! height** (higher tops are colder). We synthesize an IR channel as an
//! affine function of the height map, plus a channel-specific texture
//! term, so that:
//!
//! * features invisible in the visible channel (two decks with equal
//!   albedo but different heights) are distinct in IR;
//! * the IR channel advects with the same ground-truth motion.

use sma_grid::Grid;

use crate::dataset::SceneSequence;
use crate::noise::ValueNoise;

/// IR synthesis parameters.
#[derive(Debug, Clone, Copy)]
pub struct IrParams {
    /// Brightness-temperature-like value of the clear-sky surface
    /// (warm = high value before inversion; we emit *inverted* IR where
    /// higher = colder = higher cloud, so images correlate positively
    /// with height).
    pub surface_level: f32,
    /// IR response per unit cloud height.
    pub lapse_per_height: f32,
    /// Amplitude of channel-specific emissivity texture.
    pub texture_amp: f32,
    /// Seed for the emissivity texture.
    pub seed: u64,
}

impl Default for IrParams {
    fn default() -> Self {
        Self {
            surface_level: 0.1,
            lapse_per_height: 0.08,
            texture_amp: 0.05,
            seed: 0x1F,
        }
    }
}

/// Synthesize the IR channel for one frame from its height map:
/// `ir = surface_level + lapse * height + texture`, clamped to `[0, 1]`.
pub fn ir_from_height(height: &Grid<f32>, params: IrParams) -> Grid<f32> {
    let noise = ValueNoise::new(params.seed);
    Grid::from_fn(height.width(), height.height(), |x, y| {
        let tex = (noise.fbm(x as f32 * 0.08, y as f32 * 0.08, 3, 0.5) - 0.5) * 2.0;
        (params.surface_level
            + params.lapse_per_height * height.at(x, y)
            + params.texture_amp * tex)
            .clamp(0.0, 1.0)
    })
}

/// The IR channel sequence of a scene: one IR frame per timestep,
/// derived from each frame's height map (so it advects with the truth
/// flow exactly as the heights do).
pub fn ir_sequence(seq: &SceneSequence, params: IrParams) -> Vec<Grid<f32>> {
    seq.frames
        .iter()
        .map(|f| ir_from_height(&f.height, params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hurricane_frederic_analog;

    #[test]
    fn ir_increases_with_height() {
        let h = Grid::from_fn(16, 16, |x, _| x as f32);
        let ir = ir_from_height(
            &h,
            IrParams {
                texture_amp: 0.0,
                ..IrParams::default()
            },
        );
        for y in 0..16 {
            for x in 1..13 {
                assert!(ir.at(x, y) >= ir.at(x - 1, y), "IR must rise with height");
            }
        }
    }

    #[test]
    fn ir_clamped_to_unit_range() {
        let h = Grid::from_fn(8, 8, |x, _| x as f32 * 100.0);
        let ir = ir_from_height(&h, IrParams::default());
        let (lo, hi) = ir.min_max();
        assert!(lo >= 0.0 && hi <= 1.0);
        assert_eq!(ir.at(7, 0), 1.0); // saturated over very high tops
    }

    #[test]
    fn ir_sequence_tracks_frames() {
        let seq = hurricane_frederic_analog(48, 3, 4);
        let irs = ir_sequence(&seq, IrParams::default());
        assert_eq!(irs.len(), 3);
        assert_eq!(irs[0].dims(), (48, 48));
        // IR differs from the visible channel (different information).
        assert!(irs[0].rms_diff(&seq.frames[0].intensity) > 0.05);
        // And moves frame to frame like the heights do.
        assert!(irs[0].rms_diff(&irs[1]) > 1e-4);
    }

    #[test]
    fn equal_albedo_decks_distinct_in_ir() {
        // Two regions with the same visible brightness but different
        // heights must separate in IR.
        let h = Grid::from_fn(16, 16, |x, _| if x < 8 { 2.0f32 } else { 9.0 });
        let ir = ir_from_height(
            &h,
            IrParams {
                texture_amp: 0.0,
                ..IrParams::default()
            },
        );
        assert!(ir.at(12, 8) - ir.at(3, 8) > 0.3);
    }

    #[test]
    fn deterministic_given_params() {
        let h = Grid::from_fn(16, 16, |x, y| (x + y) as f32 * 0.3);
        let a = ir_from_height(&h, IrParams::default());
        let b = ir_from_height(&h, IrParams::default());
        assert_eq!(a, b);
    }
}
