//! # sma-stereo
//!
//! The Automatic Stereo Analysis (ASA) substrate.
//!
//! Paper §2.1: "We have used an existing correlation-based Automatic
//! Stereo Analysis (ASA) algorithm ... the multiresolution, hierarchical
//! and coarse-to-fine based searching for identifying stereo
//! correspondences. In the multiresolution approach the ASA uses the
//! coarse disparity estimates to warp or transform one view into the
//! other thereby successively estimating smaller disparities at finer
//! resolutions of the hierarchy. ... image matching is done at several
//! different resolutions, typically four levels to produce the final
//! dense disparity or depth maps."
//!
//! Pipeline:
//!
//! 1. build Gaussian pyramids of both rectified views ([`sma_grid::pyramid`]);
//! 2. at the coarsest level, run a full correlation search along scan
//!    lines ([`ncc`]);
//! 3. at each finer level, upsample and double the disparity estimate,
//!    warp the right view by it, and search a small residual range;
//! 4. convert the final dense disparity to cloud-top heights using the
//!    satellite viewing geometry ([`geometry`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asa;
pub mod coupled;
pub mod geometry;
pub mod hierarchical;
pub mod ncc;
pub mod ncc_fast;
pub mod ncc_pruned;

pub use asa::{Asa, AsaConfig};
pub use geometry::SatelliteGeometry;
pub use hierarchical::match_hierarchical;
pub use ncc::{best_disparity, ncc_score};
pub use ncc_fast::{NccPrecomp, ViewTables};
pub use ncc_pruned::best_disparity_pruned;
