//! Normalized cross-correlation matching along scan lines.
//!
//! The ASA is "correlation-based" and the views are rectified so
//! "epipolar lines become parallel to scan lines": correspondence search
//! is one-dimensional, over integer disparities along a row, scored by
//! zero-mean normalized cross-correlation (invariant to local brightness
//! gain/offset differences between the two satellite cameras), with a
//! parabolic sub-pixel refinement around the best integer disparity.

use sma_grid::{BorderPolicy, Grid};

/// Minimum template variance for a meaningful correlation score; flatter
/// (textureless) templates return [`NEUTRAL_SCORE`] (no evidence).
///
/// Shared with the integral-image path in [`crate::ncc_fast`] so both
/// paths classify the same windows as textureless — the conformance
/// harness relies on the two paths agreeing on the neutral branch.
pub const MIN_VARIANCE: f64 = 1e-8;

/// Score reported for windows with no correlation evidence (textureless,
/// or numerically degenerate). Shared by both NCC paths.
pub const NEUTRAL_SCORE: f64 = 0.0;

/// Zero-mean NCC between the `(2n+1)^2` template centered at `(x, y)` in
/// `left` and the window centered at `(x + d, y)` in `right`.
/// Returns a score in `[-1, 1]`; 0 for textureless windows.
pub fn ncc_score(
    left: &Grid<f32>,
    right: &Grid<f32>,
    x: usize,
    y: usize,
    d: isize,
    n: usize,
) -> f64 {
    let ni = n as isize;
    let mut sl = 0.0f64;
    let mut sr = 0.0f64;
    let count = ((2 * n + 1) * (2 * n + 1)) as f64;
    for dy in -ni..=ni {
        for dx in -ni..=ni {
            sl += left.at_clamped(x as isize + dx, y as isize + dy, BorderPolicy::Clamp) as f64;
            sr +=
                right.at_clamped(x as isize + dx + d, y as isize + dy, BorderPolicy::Clamp) as f64;
        }
    }
    let ml = sl / count;
    let mr = sr / count;
    let mut cov = 0.0f64;
    let mut vl = 0.0f64;
    let mut vr = 0.0f64;
    for dy in -ni..=ni {
        for dx in -ni..=ni {
            let a =
                left.at_clamped(x as isize + dx, y as isize + dy, BorderPolicy::Clamp) as f64 - ml;
            let b = right.at_clamped(x as isize + dx + d, y as isize + dy, BorderPolicy::Clamp)
                as f64
                - mr;
            cov += a * b;
            vl += a * a;
            vr += b * b;
        }
    }
    // NaN-safe: a non-finite variance (NaN pixels that escaped the
    // input quarantine) must take the neutral branch, so test the
    // *acceptance* condition — `NaN >= x` is false, `NaN < x` is not.
    if !(vl >= MIN_VARIANCE && vr >= MIN_VARIANCE) {
        if vl.is_nan() || vr.is_nan() {
            sma_fault::note_natural_degradation();
        }
        return NEUTRAL_SCORE;
    }
    let score = cov / (vl * vr).sqrt();
    if score.is_finite() {
        score
    } else {
        sma_fault::note_natural_degradation();
        NEUTRAL_SCORE
    }
}

/// Result of a 1-D disparity search at one pixel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Sub-pixel disparity estimate.
    pub disparity: f32,
    /// NCC score of the best integer disparity.
    pub score: f64,
}

/// Search integer disparities `d` in `center - range ..= center + range`
/// and return the best match with parabolic sub-pixel refinement.
/// Textureless pixels return disparity `center` with score 0.
pub fn best_disparity(
    left: &Grid<f32>,
    right: &Grid<f32>,
    x: usize,
    y: usize,
    center: isize,
    range: usize,
    n: usize,
) -> Match {
    let mut best_d = center;
    let mut best_s = f64::NEG_INFINITY;
    let mut scores: Vec<f64> = Vec::with_capacity(2 * range + 1);
    for d in center - range as isize..=center + range as isize {
        let s = ncc_score(left, right, x, y, d, n);
        // total_cmp: deterministic total order even against NaN (which
        // ncc_score never returns today, but the selection must not
        // silently depend on that).
        if s.total_cmp(&best_s).is_gt() {
            best_s = s;
            best_d = d;
        }
        scores.push(s);
    }
    if best_s <= 0.0 {
        // No correlation evidence anywhere in the search range.
        return Match {
            disparity: center as f32,
            score: 0.0,
        };
    }
    // Parabolic refinement using the neighbors of the best integer d,
    // when both neighbors are inside the searched range.
    let idx = (best_d - (center - range as isize)) as usize;
    let disparity = if idx > 0 && idx + 1 < scores.len() {
        let (s_minus, s0, s_plus) = (scores[idx - 1], scores[idx], scores[idx + 1]);
        let denom = s_minus - 2.0 * s0 + s_plus;
        if denom.abs() > 1e-12 {
            let offset = 0.5 * (s_minus - s_plus) / denom;
            best_d as f32 + (offset as f32).clamp(-0.5, 0.5)
        } else {
            best_d as f32
        }
    } else {
        best_d as f32
    };
    Match {
        disparity,
        score: best_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_grid::warp::translate;

    /// Aperiodic smooth test texture: hashed per-pixel noise, binomially
    /// smoothed twice so bilinear warps and sub-pixel matching behave.
    /// (Periodic sin/modular patterns alias the correlation search.)
    fn textured(w: usize, h: usize) -> Grid<f32> {
        let noise = Grid::from_fn(w, h, |x, y| {
            let mut v = (x as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ (y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
            v ^= v >> 29;
            v = v.wrapping_mul(0xBF58476D1CE4E5B9);
            v ^= v >> 32;
            (v % 1024) as f32 / 1024.0 * 8.0
        });
        let s = sma_grid::filter::binomial_smooth(&noise, BorderPolicy::Reflect);
        sma_grid::filter::binomial_smooth(&s, BorderPolicy::Reflect)
    }

    #[test]
    fn perfect_match_scores_one() {
        let img = textured(32, 32);
        let s = ncc_score(&img, &img, 16, 16, 0, 3);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gain_and_offset_invariance() {
        let img = textured(32, 32);
        let transformed = img.map(|&v| 2.5 * v + 10.0);
        let s = ncc_score(&img, &transformed, 16, 16, 0, 3);
        assert!(
            (s - 1.0).abs() < 1e-6,
            "NCC must ignore gain/offset, got {s}"
        );
    }

    #[test]
    fn inverted_pattern_scores_minus_one() {
        let img = textured(32, 32);
        let neg = img.map(|&v| -v);
        let s = ncc_score(&img, &neg, 16, 16, 0, 3);
        assert!((s + 1.0).abs() < 1e-6);
    }

    #[test]
    fn textureless_scores_zero() {
        let flat = Grid::filled(16, 16, 5.0f32);
        let img = textured(16, 16);
        assert_eq!(ncc_score(&flat, &img, 8, 8, 0, 2), 0.0);
        assert_eq!(ncc_score(&img, &flat, 8, 8, 0, 2), 0.0);
    }

    #[test]
    fn finds_integer_shift() {
        let left = textured(48, 48);
        // right(x) = left(x - 3): template at x matches right at x + 3,
        // i.e. true disparity +3 everywhere.
        let right = translate(&left, -3.0, 0.0, BorderPolicy::Clamp);
        for &(x, y) in &[(20usize, 20usize), (24, 16), (16, 30)] {
            let m = best_disparity(&left, &right, x, y, 0, 6, 3);
            assert!(
                (m.disparity - 3.0).abs() < 0.2,
                "at ({x},{y}): {}",
                m.disparity
            );
            assert!(m.score > 0.9);
        }
    }

    #[test]
    fn finds_subpixel_shift() {
        let left = Grid::from_fn(48, 48, |x, y| {
            (x as f32 * 0.5).sin() * 4.0 + (y as f32 * 0.3).cos() * 2.0
        });
        let right = translate(&left, -2.5, 0.0, BorderPolicy::Clamp);
        let m = best_disparity(&left, &right, 24, 24, 0, 6, 4);
        assert!(
            (m.disparity - 2.5).abs() < 0.3,
            "subpixel estimate {}",
            m.disparity
        );
    }

    #[test]
    fn search_centered_on_prior() {
        let left = textured(64, 64);
        let right = translate(&left, -10.0, 0.0, BorderPolicy::Clamp);
        // Range 3 around prior 9 still brackets the true disparity 10.
        let m = best_disparity(&left, &right, 32, 32, 9, 3, 3);
        assert!((m.disparity - 10.0).abs() < 0.3);
    }

    #[test]
    fn textureless_returns_prior() {
        let flat = Grid::filled(32, 32, 1.0f32);
        let m = best_disparity(&flat, &flat, 16, 16, 4, 3, 3);
        assert_eq!(m.disparity, 4.0);
        assert_eq!(m.score, 0.0);
    }

    #[test]
    fn negative_disparity_found() {
        let left = textured(48, 48);
        let right = translate(&left, 4.0, 0.0, BorderPolicy::Clamp);
        let m = best_disparity(&left, &right, 24, 24, 0, 6, 3);
        assert!((m.disparity + 4.0).abs() < 0.2, "got {}", m.disparity);
    }
}
