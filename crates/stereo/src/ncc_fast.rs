//! Integral-image fast path for NCC disparity search.
//!
//! [`crate::ncc::ncc_score`] re-reads every template pixel for every
//! candidate disparity — `O(window^2)` per score. For a *fixed* search
//! range the window statistics can be precomputed once with summed-area
//! tables: per-view sums and squared sums, plus one cross-product table
//! per candidate disparity. Each score then costs a handful of table
//! lookups. Same spirit as the paper's §4.1 template-mapping precompute:
//! hoist work shared by overlapping windows.
//!
//! Semantics note: the fast path computes statistics over *clipped*
//! windows (border windows shrink), while the reference path clamps
//! out-of-range pixels. Interior scores agree to floating-point
//! round-off — asserted by tests — and the hierarchical matcher only
//! trusts interior scores anyway.

use std::sync::Arc;

use crate::ncc::{MIN_VARIANCE, NEUTRAL_SCORE};
use sma_grid::{Grid, IntegralImage};

/// The *per-view* half of the NCC precompute: sum and squared-sum
/// integral images of one image. These depend on a single frame only,
/// so on a sequence the streaming artifact cache computes them once per
/// frame and both adjacent pairs share them
/// ([`NccPrecomp::build_with_views`]); only the cross-product tables
/// are pair-specific.
#[derive(Debug, Clone)]
pub struct ViewTables {
    /// Summed-area table of the view.
    pub sum: Arc<IntegralImage>,
    /// Summed-area table of the squared view.
    pub sq: Arc<IntegralImage>,
    dims: (usize, usize),
}

impl ViewTables {
    /// Build the per-view tables for one image.
    ///
    /// With the lane-chunked kernels enabled (the default) the sum and
    /// squared-sum tables come from one fused pass
    /// ([`IntegralImage::build_pair_fused`]); the fused pass is
    /// bit-identical to the two separate builds.
    pub fn build(view: &Grid<f32>) -> Self {
        let _span = sma_obs::span("ncc_view_tables");
        let (sum, sq) = if sma_grid::simd::enabled() {
            let (s, q) = IntegralImage::build_pair_fused(view);
            (Arc::new(s), Arc::new(q))
        } else {
            (
                Arc::new(IntegralImage::build(view)),
                Arc::new(IntegralImage::build_squared(view)),
            )
        };
        Self {
            sum,
            sq,
            dims: view.dims(),
        }
    }

    /// View dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        self.dims
    }

    /// Heap bytes of the two tables (cache-charge accounting): each SAT
    /// stores one f64 per pixel of a `(w+1) x (h+1)` plane.
    pub fn resident_bytes(&self) -> usize {
        let (w, h) = self.dims;
        2 * (w + 1) * (h + 1) * std::mem::size_of::<f64>()
    }
}

/// Precomputed tables for NCC over a fixed disparity range.
pub struct NccPrecomp {
    left: ViewTables,
    right: ViewTables,
    /// `cross[k]` integrates `left(x, y) * right(x + d_min + k, y)`.
    cross: Vec<IntegralImage>,
    d_min: isize,
    n: usize,
    dims: (usize, usize),
}

impl NccPrecomp {
    /// Build tables for disparities `d_min ..= d_max` with template
    /// half-width `n`.
    ///
    /// # Panics
    /// Panics if the views differ in shape or `d_min > d_max`.
    pub fn build(
        left: &Grid<f32>,
        right: &Grid<f32>,
        d_min: isize,
        d_max: isize,
        n: usize,
    ) -> Self {
        Self::build_with_views(
            ViewTables::build(left),
            ViewTables::build(right),
            left,
            right,
            d_min,
            d_max,
            n,
        )
    }

    /// [`NccPrecomp::build`] reusing per-view tables computed earlier
    /// (e.g. pulled from the streaming artifact cache). Only the
    /// pair-specific cross-product tables are built here; the result is
    /// bit-identical to [`NccPrecomp::build`] because the per-view
    /// tables are pure functions of each view.
    ///
    /// # Panics
    /// Panics if the views (or tables) differ in shape or
    /// `d_min > d_max`.
    pub fn build_with_views(
        left_tables: ViewTables,
        right_tables: ViewTables,
        left: &Grid<f32>,
        right: &Grid<f32>,
        d_min: isize,
        d_max: isize,
        n: usize,
    ) -> Self {
        assert_eq!(left.dims(), right.dims(), "stereo pair shape mismatch");
        assert_eq!(left_tables.dims(), left.dims(), "left table shape");
        assert_eq!(right_tables.dims(), right.dims(), "right table shape");
        assert!(d_min <= d_max, "empty disparity range");
        let _span = sma_obs::span("ncc_cross_tables");
        let (w, h) = left.dims();
        let cross = if sma_grid::simd::enabled() {
            // One scratch plane reused across all disparities: the
            // interior of each product row is a contiguous slice
            // multiply (8-wide lanes), only the clamped edges go pixel
            // by pixel. Same f32 products as the scalar closure below —
            // bit-identical tables.
            let mut scratch = Grid::filled(w, h, 0.0f32);
            (d_min..=d_max)
                .map(|d| {
                    cross_product_into(left, right, d, &mut scratch);
                    IntegralImage::build(&scratch)
                })
                .collect()
        } else {
            (d_min..=d_max)
                .map(|d| {
                    let prod = Grid::from_fn(w, h, |x, y| {
                        let sx = (x as isize + d).clamp(0, w as isize - 1) as usize;
                        left.at(x, y) * right.at(sx, y)
                    });
                    IntegralImage::build(&prod)
                })
                .collect()
        };
        Self {
            left: left_tables,
            right: right_tables,
            cross,
            d_min,
            n,
            dims: (w, h),
        }
    }

    /// The covered disparity range.
    pub fn range(&self) -> (isize, isize) {
        (self.d_min, self.d_min + self.cross.len() as isize - 1)
    }

    /// NCC score at `(x, y)` for disparity `d` in O(1). Valid for
    /// interior pixels (full template in range on both views); returns
    /// `None` if `d` is outside the precomputed range or the windows
    /// would clip.
    pub fn score(&self, x: usize, y: usize, d: isize) -> Option<f64> {
        let (w, h) = self.dims;
        let k = d.checked_sub(self.d_min)? as usize;
        if k >= self.cross.len() {
            return None;
        }
        let n = self.n;
        // Interior check for both windows.
        let xi = x as isize;
        let right_x = xi + d;
        if x < n || y < n || x + n >= w || y + n >= h {
            return None;
        }
        if right_x - (n as isize) < 0 || right_x + n as isize >= w as isize {
            return None;
        }
        let rx = right_x as usize;
        let count = ((2 * n + 1) * (2 * n + 1)) as f64;
        let sl = self.left.sum.window_sum(x, y, n);
        let sr = self.right.sum.window_sum(rx, y, n);
        let sll = self.left.sq.window_sum(x, y, n);
        let srr = self.right.sq.window_sum(rx, y, n);
        let slr = self.cross[k].window_sum(x, y, n);
        let cov = slr - sl * sr / count;
        // Float cancellation can drive a true-zero variance slightly
        // negative, and NaN inputs make it NaN; `max(0.0)` maps both to
        // 0 (f64::max returns the non-NaN operand), which the neutral
        // branch below absorbs instead of feeding `sqrt` a negative or
        // NaN argument.
        let vl = (sll - sl * sl / count).max(0.0);
        let vr = (srr - sr * sr / count).max(0.0);
        if vl < MIN_VARIANCE || vr < MIN_VARIANCE {
            return Some(NEUTRAL_SCORE);
        }
        let score = cov / (vl * vr).sqrt();
        if score.is_finite() {
            Some(score)
        } else {
            sma_fault::note_natural_degradation();
            Some(NEUTRAL_SCORE)
        }
    }

    /// Best disparity at `(x, y)` over the precomputed range (integer
    /// only; no sub-pixel refinement). `None` if the pixel is too close
    /// to the border for any candidate.
    pub fn best(&self, x: usize, y: usize) -> Option<(isize, f64)> {
        let (lo, hi) = self.range();
        let mut out: Option<(isize, f64)> = None;
        for d in lo..=hi {
            if let Some(s) = self.score(x, y, d) {
                // total_cmp mirrors `best_disparity` in `crate::ncc`:
                // the two paths must pick the same winner under the
                // same (total, NaN-proof) ordering.
                if out.is_none_or(|(_, bs)| s.total_cmp(&bs).is_gt()) {
                    out = Some((d, s));
                }
            }
        }
        out
    }
}

/// Fill `out(x, y) = left(x, y) * right(clamp(x + d), y)` — the
/// disparity-`d` cross-product plane. Interior columns (where `x + d`
/// is in range) are a contiguous slice multiply through
/// [`sma_grid::simd::mul_into`]; the clamped edge columns replicate the
/// border pixel scalar-wise, exactly like the reference closure in
/// [`NccPrecomp::build_with_views`].
fn cross_product_into(left: &Grid<f32>, right: &Grid<f32>, d: isize, out: &mut Grid<f32>) {
    let (w, h) = left.dims();
    // x + d in [0, w - 1]  <=>  lo <= x < hi.
    let lo = ((-d).max(0) as usize).min(w);
    let hi = ((w as isize - d).clamp(0, w as isize) as usize).max(lo);
    for y in 0..h {
        let l = left.row(y);
        let r = right.row(y);
        let o = out.row_mut(y);
        for x in 0..lo {
            o[x] = l[x] * r[0];
        }
        if hi > lo {
            let rl = (lo as isize + d) as usize;
            sma_grid::simd::mul_into(&l[lo..hi], &r[rl..rl + (hi - lo)], &mut o[lo..hi]);
        }
        for x in hi..w {
            o[x] = l[x] * r[w - 1];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ncc::ncc_score;
    use sma_grid::warp::translate;
    use sma_grid::BorderPolicy;

    fn textured(w: usize, h: usize) -> Grid<f32> {
        let noise = Grid::from_fn(w, h, |x, y| {
            let mut v = (x as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ (y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
            v ^= v >> 29;
            v = v.wrapping_mul(0xBF58476D1CE4E5B9);
            v ^= v >> 32;
            (v % 1024) as f32 / 1024.0 * 8.0
        });
        sma_grid::filter::binomial_smooth(&noise, BorderPolicy::Reflect)
    }

    #[test]
    fn fast_scores_match_reference_interior() {
        let left = textured(48, 48);
        let right = translate(&left, -3.0, 0.0, BorderPolicy::Clamp);
        let pre = NccPrecomp::build(&left, &right, -5, 5, 3);
        for &(x, y) in &[(20usize, 20usize), (24, 16), (30, 30)] {
            for d in -5isize..=5 {
                let fast = pre.score(x, y, d).expect("interior pixel");
                let reference = ncc_score(&left, &right, x, y, d, 3);
                // The product table is accumulated from f32 products, the
                // reference in f64: agreement to ~1e-5 is the f32 floor.
                assert!(
                    (fast - reference).abs() < 1e-4,
                    "({x},{y},{d}): fast {fast} vs ref {reference}"
                );
            }
        }
    }

    #[test]
    fn fast_best_finds_true_shift() {
        let left = textured(48, 48);
        let right = translate(&left, -4.0, 0.0, BorderPolicy::Clamp);
        let pre = NccPrecomp::build(&left, &right, -6, 6, 3);
        let (d, s) = pre.best(24, 24).unwrap();
        assert_eq!(d, 4);
        assert!(s > 0.9);
    }

    #[test]
    fn border_and_out_of_range_return_none() {
        let left = textured(32, 32);
        let pre = NccPrecomp::build(&left, &left, -2, 2, 3);
        assert!(pre.score(1, 16, 0).is_none(), "left border");
        assert!(pre.score(16, 1, 0).is_none(), "top border");
        assert!(pre.score(16, 16, 5).is_none(), "outside range");
        assert!(pre.score(30, 16, 2).is_none(), "right window clips");
        assert!(pre.score(16, 16, 0).is_some());
    }

    #[test]
    fn textureless_scores_zero() {
        let flat = Grid::filled(32, 32, 2.0f32);
        let pre = NccPrecomp::build(&flat, &flat, -2, 2, 3);
        assert_eq!(pre.score(16, 16, 0), Some(NEUTRAL_SCORE));
    }

    #[test]
    fn both_paths_agree_on_neutral_score_for_zero_variance() {
        // One flat view (zero variance) against one textured view, both
        // ways round: the reference and fast paths must take the same
        // neutral branch with the same shared constant, for every
        // candidate disparity — not scores that merely happen to match.
        let flat = Grid::filled(32, 32, 2.0f32);
        let img = textured(32, 32);
        let pre_lf = NccPrecomp::build(&flat, &img, -2, 2, 3);
        let pre_rf = NccPrecomp::build(&img, &flat, -2, 2, 3);
        for d in -2isize..=2 {
            assert_eq!(
                pre_lf.score(16, 16, d),
                Some(NEUTRAL_SCORE),
                "fast lf d={d}"
            );
            assert_eq!(
                pre_rf.score(16, 16, d),
                Some(NEUTRAL_SCORE),
                "fast rf d={d}"
            );
            assert_eq!(ncc_score(&flat, &img, 16, 16, d, 3), NEUTRAL_SCORE);
            assert_eq!(ncc_score(&img, &flat, 16, 16, d, 3), NEUTRAL_SCORE);
        }
    }

    #[test]
    fn simd_and_scalar_table_builds_are_bit_identical() {
        // Non-multiple-of-8 width, disparities past both image edges
        // (fully clamped product rows), and everything between: the
        // lane-chunked build must reproduce the scalar tables bit for
        // bit, per disparity and per prefix cell.
        let left = textured(33, 9);
        let right = translate(&left, -2.0, 0.0, BorderPolicy::Clamp);
        sma_grid::simd::set_enabled(false);
        let scalar = NccPrecomp::build(&left, &right, -40, 40, 3);
        sma_grid::simd::set_enabled(true);
        let simd = NccPrecomp::build(&left, &right, -40, 40, 3);
        assert_eq!(scalar.cross.len(), simd.cross.len());
        for (k, (a, b)) in scalar.cross.iter().zip(simd.cross.iter()).enumerate() {
            for y in 0..9 {
                for x in 0..33 {
                    assert_eq!(
                        a.rect_sum(0, 0, x, y).to_bits(),
                        b.rect_sum(0, 0, x, y).to_bits(),
                        "cross[{k}] at ({x},{y})"
                    );
                }
            }
        }
        for y in 0..9 {
            for x in 0..33 {
                assert_eq!(
                    scalar.left.sum.rect_sum(0, 0, x, y).to_bits(),
                    simd.left.sum.rect_sum(0, 0, x, y).to_bits()
                );
                assert_eq!(
                    scalar.left.sq.rect_sum(0, 0, x, y).to_bits(),
                    simd.left.sq.rect_sum(0, 0, x, y).to_bits()
                );
            }
        }
    }

    #[test]
    fn range_reported() {
        let img = textured(16, 16);
        let pre = NccPrecomp::build(&img, &img, -3, 7, 2);
        assert_eq!(pre.range(), (-3, 7));
    }
}
