//! Partial-sum pruned NCC disparity search.
//!
//! [`crate::ncc::best_disparity`] pays a full `O(window^2)` score for
//! every candidate disparity, even the hopeless ones. This variant
//! keeps the reference arithmetic for every *surviving* candidate —
//! the returned [`Match`] is bit-identical to the reference search —
//! but abandons losing candidates early using partial sums:
//!
//! * **Zero-mean left template, once per call.** The left window's mean
//!   and zero-mean residuals `a = l - ml` are shared by every
//!   candidate; `sum(a) = 0`, so each candidate's covariance is
//!   `sum(a * (r - c))` for *any* constant `c` — no per-candidate left
//!   pass.
//! * **Amortized right-window statistics.** Neighboring candidates'
//!   right windows overlap column for column, so per-column sums of
//!   `r` and `r^2` over the whole searched span are computed once and
//!   prefix-summed; any candidate's window sum and variance then cost
//!   `O(1)`.
//! * **Column-incremental Cauchy-Schwarz abandonment.** A candidate's
//!   covariance is accumulated column by column; the unseen remainder
//!   is bounded by `sqrt(E_a_rem * E_r_rem)` (Cauchy-Schwarz over the
//!   remaining columns, both energies `O(1)` from the precomputed
//!   sums). When even that optimistic completion cannot reach the
//!   running best score, the candidate is abandoned mid-window.
//!
//! Abandonment is *admissible*, not approximate: the bound is inflated
//! by a guard dominating the floating-point drift between the bound
//! algebra and the reference's two-pass arithmetic, a candidate is
//! only dropped when its guarded upper bound is strictly below the
//! running best (which the reference's `total_cmp` ordering would
//! reject anyway), and the winner plus its parabolic-refinement
//! neighbors are always scored by [`ncc_score`] itself. Degenerate
//! inputs (textureless left window, near-threshold variances) delegate
//! to the reference search outright.

use crate::ncc::{best_disparity, ncc_score, Match, MIN_VARIANCE};
use sma_grid::{BorderPolicy, Grid};

/// Candidates abandoned mid-window by the partial-sum bound.
static NCC_ABANDONED: sma_obs::Counter = sma_obs::Counter::new("stereo.ncc_disparities_abandoned");
/// Candidates fully scored by the reference kernel (winner, survivors,
/// gray-zone variances, and every candidate scanned before the first
/// positive incumbent).
static NCC_EVALUATED: sma_obs::Counter = sma_obs::Counter::new("stereo.ncc_disparities_evaluated");

/// Absolute guard added to the covariance upper bound.
const UB_GUARD_ABS: f64 = 1e-12;
/// Relative guard, scaled by the window energies feeding the bound —
/// orders of magnitude above the `n_terms * eps` drift of the f64
/// accumulations, orders below any useful pruning margin.
const UB_GUARD_REL: f64 = 1e-9;
/// Variance factor bracketing the [`MIN_VARIANCE`] neutral branch: a
/// bound-side variance below `MIN_VARIANCE / VAR_BRACKET` is certainly
/// neutral in the reference too, above `MIN_VARIANCE * VAR_BRACKET`
/// certainly not; the gray zone between is fully evaluated.
const VAR_BRACKET: f64 = 2.0;

/// [`best_disparity`], bit-identical output, with partial-sum early
/// abandonment of losing candidates (see module docs).
pub fn best_disparity_pruned(
    left: &Grid<f32>,
    right: &Grid<f32>,
    x: usize,
    y: usize,
    center: isize,
    range: usize,
    n: usize,
) -> Match {
    let ni = n as isize;
    let side = 2 * n + 1;
    let count = (side * side) as f64;

    // Left-window mean, accumulated in the reference's own visit order.
    let mut sl = 0.0f64;
    for dy in -ni..=ni {
        for dx in -ni..=ni {
            sl += left.at_clamped(x as isize + dx, y as isize + dy, BorderPolicy::Clamp) as f64;
        }
    }
    let ml = sl / count;

    // Zero-mean left residuals, column-major per-column energies, and
    // the total energy (the algebraic left variance).
    let mut a = vec![0.0f64; side * side];
    let mut col_aa = vec![0.0f64; side];
    for (ci, col) in a.chunks_mut(side).enumerate() {
        let dx = ci as isize - ni;
        for (ri, slot) in col.iter_mut().enumerate() {
            let dy = ri as isize - ni;
            let v =
                left.at_clamped(x as isize + dx, y as isize + dy, BorderPolicy::Clamp) as f64 - ml;
            *slot = v;
            col_aa[ci] += v * v;
        }
    }
    let vl: f64 = col_aa.iter().sum();
    if vl < MIN_VARIANCE * VAR_BRACKET || vl.is_nan() {
        // Textureless or gray-zone left window (every candidate is at
        // or near the neutral branch) — nothing to prune; NaN inputs
        // also delegate so the reference owns their handling.
        return best_disparity(left, right, x, y, center, range, n);
    }
    // Suffix energies of the left residuals: `a_suffix[k]` is the
    // energy of columns `k..`.
    let mut a_suffix = vec![0.0f64; side + 1];
    for k in (0..side).rev() {
        a_suffix[k] = a_suffix[k + 1] + col_aa[k];
    }

    // Per-column right-view sums over the union of all candidate
    // windows, then prefix sums so any candidate's window statistics
    // are O(1). Sampling is `at_clamped`, exactly the reference's.
    let span = 2 * (range + n) + 1;
    let col0 = x as isize + center - range as isize - ni;
    let mut pref_r = vec![0.0f64; span + 1];
    let mut pref_rr = vec![0.0f64; span + 1];
    for c in 0..span {
        let cx = col0 + c as isize;
        let mut s = 0.0f64;
        let mut ss = 0.0f64;
        for dy in -ni..=ni {
            let v = right.at_clamped(cx, y as isize + dy, BorderPolicy::Clamp) as f64;
            s += v;
            ss += v * v;
        }
        pref_r[c + 1] = pref_r[c] + s;
        pref_rr[c + 1] = pref_rr[c] + ss;
    }

    let mut best_d = center;
    let mut best_s = f64::NEG_INFINITY;
    for d in center - range as isize..=center + range as isize {
        // This candidate's window covers union columns `base .. base + side`.
        let base = (d - (center - range as isize)) as usize;
        if best_s > 0.0 {
            let sr = pref_r[base + side] - pref_r[base];
            let srr = pref_rr[base + side] - pref_rr[base];
            let mr = sr / count;
            let vr = srr - sr * sr / count;
            if vr < MIN_VARIANCE / VAR_BRACKET {
                // Certainly the neutral branch in the reference:
                // score 0 < best_s loses under `total_cmp`.
                NCC_ABANDONED.incr();
                continue;
            }
            if vr >= MIN_VARIANCE * VAR_BRACKET {
                // Column-incremental covariance with a Cauchy-Schwarz
                // tail bound; abandon as soon as even the optimistic
                // completion cannot reach the incumbent.
                let denom = (vl * vr).sqrt();
                let guard = UB_GUARD_ABS + UB_GUARD_REL * (vl + vr);
                let target = best_s * denom * (1.0 - UB_GUARD_REL) - guard;
                let mut cov = 0.0f64;
                let mut abandoned = false;
                for k in 0..side {
                    let cx = col0 + (base + k) as isize;
                    let col = &a[k * side..(k + 1) * side];
                    for (ri, &av) in col.iter().enumerate() {
                        let dy = ri as isize - ni;
                        let rv =
                            right.at_clamped(cx, y as isize + dy, BorderPolicy::Clamp) as f64 - mr;
                        cov += av * rv;
                    }
                    let er_rem = (pref_rr[base + side]
                        - pref_rr[base + k + 1]
                        - 2.0 * mr * (pref_r[base + side] - pref_r[base + k + 1])
                        + ((side - k - 1) * side) as f64 * mr * mr)
                        .max(0.0);
                    let tail = (a_suffix[k + 1] * er_rem).sqrt();
                    if cov + tail < target {
                        abandoned = true;
                        break;
                    }
                }
                if abandoned {
                    NCC_ABANDONED.incr();
                    continue;
                }
            }
            // Gray-zone variance or surviving candidate: full score.
        }
        NCC_EVALUATED.incr();
        let s = ncc_score(left, right, x, y, d, n);
        if s.total_cmp(&best_s).is_gt() {
            best_s = s;
            best_d = d;
        }
    }
    if best_s <= 0.0 {
        return Match {
            disparity: center as f32,
            score: 0.0,
        };
    }
    // Parabolic refinement around the winner, exactly as the reference:
    // only when both neighbors were inside the searched range. Their
    // scores are recomputed by the reference kernel — `ncc_score` is
    // pure, so recomputation reproduces the stored values bit for bit.
    let lo = center - range as isize;
    let hi = center + range as isize;
    let disparity = if best_d > lo && best_d < hi {
        let s_minus = ncc_score(left, right, x, y, best_d - 1, n);
        let s_plus = ncc_score(left, right, x, y, best_d + 1, n);
        let denom = s_minus - 2.0 * best_s + s_plus;
        if denom.abs() > 1e-12 {
            let offset = 0.5 * (s_minus - s_plus) / denom;
            best_d as f32 + (offset as f32).clamp(-0.5, 0.5)
        } else {
            best_d as f32
        }
    } else {
        best_d as f32
    };
    Match {
        disparity,
        score: best_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_grid::warp::translate;

    fn textured(w: usize, h: usize) -> Grid<f32> {
        let noise = Grid::from_fn(w, h, |x, y| {
            let mut v = (x as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ (y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
            v ^= v >> 29;
            v = v.wrapping_mul(0xBF58476D1CE4E5B9);
            v ^= v >> 32;
            (v % 1024) as f32 / 1024.0 * 8.0
        });
        let s = sma_grid::filter::binomial_smooth(&noise, BorderPolicy::Reflect);
        sma_grid::filter::binomial_smooth(&s, BorderPolicy::Reflect)
    }

    #[test]
    fn pruned_matches_reference_bit_for_bit() {
        let left = textured(48, 48);
        for shift in [-4.0f32, 0.0, 3.0] {
            let right = translate(&left, shift, 0.0, BorderPolicy::Clamp);
            for &(x, y) in &[
                (24usize, 24usize),
                (20, 16),
                (8, 30),
                (2, 2),   // border: clamped windows
                (45, 45), // border on the far side
            ] {
                for center in [-2isize, 0, 5] {
                    for range in [2usize, 6] {
                        let reference = best_disparity(&left, &right, x, y, center, range, 3);
                        let pruned = best_disparity_pruned(&left, &right, x, y, center, range, 3);
                        assert_eq!(
                            reference.disparity.to_bits(),
                            pruned.disparity.to_bits(),
                            "disparity at ({x},{y}) shift {shift} center {center} range {range}"
                        );
                        assert_eq!(
                            reference.score.to_bits(),
                            pruned.score.to_bits(),
                            "score at ({x},{y}) shift {shift} center {center} range {range}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn flat_windows_delegate_to_reference() {
        let flat = Grid::filled(32, 32, 1.0f32);
        let img = textured(32, 32);
        for (l, r) in [(&flat, &img), (&img, &flat), (&flat, &flat)] {
            let reference = best_disparity(l, r, 16, 16, 4, 3, 3);
            let pruned = best_disparity_pruned(l, r, 16, 16, 4, 3, 3);
            assert_eq!(reference, pruned);
        }
    }

    #[test]
    fn abandonment_is_not_vacuous() {
        // A textured scene with one clear winner must actually abandon
        // candidates — otherwise the partial-sum machinery is dead
        // weight and the perf claim is meaningless.
        sma_obs::set_level(sma_obs::ObsLevel::Summary);
        let left = textured(64, 64);
        let right = translate(&left, -5.0, 0.0, BorderPolicy::Clamp);
        let before = sma_obs::metrics::snapshot().counter("stereo.ncc_disparities_abandoned");
        for &(x, y) in &[(24usize, 24usize), (32, 32), (40, 20)] {
            let m = best_disparity_pruned(&left, &right, x, y, 0, 8, 4);
            assert!(
                (m.disparity - 5.0).abs() < 0.3,
                "({x},{y}): {}",
                m.disparity
            );
        }
        let abandoned =
            sma_obs::metrics::snapshot().counter("stereo.ncc_disparities_abandoned") - before;
        assert!(abandoned > 0, "no candidate was ever abandoned");
    }
}
