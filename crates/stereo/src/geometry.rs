//! Satellite viewing geometry: disparity to cloud-top height.
//!
//! "The estimated disparity or depth maps can be transformed into surface
//! maps z(t) of cloud-top heights for time instant t using satellite and
//! sensor geometry information" (§2.1). For two geostationary satellites
//! whose sub-satellite points subtend a baseline angle `2*alpha` at the
//! target, a cloud at height `h` above the surface shifts between the
//! rectified views by approximately
//!
//! ```text
//! d [pixels] = h * (tan(alpha_east) + tan(alpha_west)) / pixel_size
//! ```
//!
//! — the classic stereo-parallax relation, linear in height for the
//! near-nadir geometry of meteorological stereo. GOES-6/7 subtended
//! "about 135 degrees with respect to the center of the Earth", an
//! unusually large baseline that makes the parallax gain large and the
//! height retrieval correspondingly sensitive.

/// Viewing geometry of a rectified geostationary stereo pair.
#[derive(Debug, Clone, Copy)]
pub struct SatelliteGeometry {
    /// Local viewing zenith angle of the east satellite at the target
    /// (degrees).
    pub east_zenith_deg: f32,
    /// Local viewing zenith angle of the west satellite (degrees).
    pub west_zenith_deg: f32,
    /// Ground size of one pixel (km) at the analysis point. Frederic
    /// pixels "span approximately 1 sq-km" at image center.
    pub pixel_km: f32,
}

impl SatelliteGeometry {
    /// The GOES-6/7 Hurricane Frederic configuration: a ~135 degree
    /// baseline puts each satellite roughly 67.5 degrees from the
    /// midpoint; the effective local zenith angles at the storm were
    /// smaller — we use 45/45 as a representative symmetric geometry with
    /// 1 km pixels.
    pub fn goes_frederic() -> Self {
        Self {
            east_zenith_deg: 45.0,
            west_zenith_deg: 45.0,
            pixel_km: 1.0,
        }
    }

    /// Disparity gain: pixels of parallax per km of cloud height.
    ///
    /// # Panics
    /// Panics if either zenith angle is >= 90 degrees.
    pub fn gain_px_per_km(&self) -> f32 {
        assert!(
            self.east_zenith_deg < 90.0 && self.west_zenith_deg < 90.0,
            "zenith angles must be below the horizon"
        );
        (self.east_zenith_deg.to_radians().tan() + self.west_zenith_deg.to_radians().tan())
            / self.pixel_km
    }

    /// Cloud height (km) from a disparity (pixels).
    pub fn height_km(&self, disparity_px: f32) -> f32 {
        disparity_px / self.gain_px_per_km()
    }

    /// Disparity (pixels) from a cloud height (km).
    pub fn disparity_px(&self, height_km: f32) -> f32 {
        height_km * self.gain_px_per_km()
    }

    /// Convert a whole disparity plane to heights.
    pub fn height_map(&self, disparity: &sma_grid::Grid<f32>) -> sma_grid::Grid<f32> {
        let g = self.gain_px_per_km();
        disparity.map(|&d| d / g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_45_degree_gain() {
        let g = SatelliteGeometry::goes_frederic();
        // tan 45 + tan 45 = 2 px/km at 1 km pixels.
        assert!((g.gain_px_per_km() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn height_disparity_round_trip() {
        let g = SatelliteGeometry {
            east_zenith_deg: 30.0,
            west_zenith_deg: 50.0,
            pixel_km: 4.0,
        };
        for h in [0.0f32, 2.0, 10.0, 16.5] {
            let d = g.disparity_px(h);
            assert!((g.height_km(d) - h).abs() < 1e-4);
        }
    }

    #[test]
    fn coarser_pixels_reduce_gain() {
        // Frederic border pixels span ~4 sq-km: 4x coarser, 4x less gain.
        let center = SatelliteGeometry::goes_frederic();
        let border = SatelliteGeometry {
            pixel_km: 2.0,
            ..center
        };
        assert!((center.gain_px_per_km() / border.gain_px_per_km() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn height_map_scales_plane() {
        let g = SatelliteGeometry::goes_frederic();
        let disp = sma_grid::Grid::from_fn(4, 4, |x, _| x as f32);
        let h = g.height_map(&disp);
        assert!((h.at(2, 0) - 1.0).abs() < 1e-6); // 2 px / (2 px/km)
    }

    #[test]
    #[should_panic(expected = "below the horizon")]
    fn horizon_geometry_rejected() {
        let g = SatelliteGeometry {
            east_zenith_deg: 90.0,
            west_zenith_deg: 45.0,
            pixel_km: 1.0,
        };
        let _ = g.gain_px_per_km();
    }
}
