//! The top-level ASA driver: rectified pair in, height map out.

use sma_grid::Grid;

use crate::geometry::SatelliteGeometry;
use crate::hierarchical::{match_hierarchical, warp_residual, MatchParams};

/// ASA configuration: matcher parameters plus viewing geometry.
#[derive(Debug, Clone, Copy)]
pub struct AsaConfig {
    /// Hierarchical matcher parameters.
    pub matching: MatchParams,
    /// Viewing geometry for the disparity-to-height conversion.
    pub geometry: SatelliteGeometry,
}

impl Default for AsaConfig {
    fn default() -> Self {
        Self {
            matching: MatchParams::default(),
            geometry: SatelliteGeometry::goes_frederic(),
        }
    }
}

/// Output of one ASA run.
#[derive(Debug, Clone)]
pub struct AsaResult {
    /// Dense disparity (pixels).
    pub disparity: Grid<f32>,
    /// Dense cloud-top height (km per the configured geometry).
    pub height: Grid<f32>,
    /// RMS left-vs-warped-right intensity residual (quality diagnostic).
    pub residual: f32,
}

/// The Automatic Stereo Analysis pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Asa {
    config: AsaConfig,
}

impl Asa {
    /// Build with a configuration.
    pub fn new(config: AsaConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AsaConfig {
        &self.config
    }

    /// Run stereo analysis on a rectified pair.
    ///
    /// # Panics
    /// Panics if the images differ in shape.
    pub fn run(&self, left: &Grid<f32>, right: &Grid<f32>) -> AsaResult {
        let _span = sma_obs::span("stereo_asa");
        let disparity = match_hierarchical(left, right, self.config.matching);
        let height = self.config.geometry.height_map(&disparity);
        let residual = warp_residual(left, right, &disparity);
        AsaResult {
            disparity,
            height,
            residual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_grid::warp::translate;
    use sma_grid::BorderPolicy;

    #[test]
    fn end_to_end_uniform_height() {
        // A uniformly shifted pair -> uniform disparity -> uniform height.
        let left = {
            let noise = Grid::from_fn(64, 64, |x, y| {
                let mut v = (x as u64).wrapping_mul(0x9E3779B97F4A7C15)
                    ^ (y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
                v ^= v >> 29;
                v = v.wrapping_mul(0xBF58476D1CE4E5B9);
                v ^= v >> 32;
                (v % 1024) as f32 / 1024.0 * 8.0
            });
            let s = sma_grid::filter::binomial_smooth(&noise, BorderPolicy::Reflect);
            sma_grid::filter::binomial_smooth(&s, BorderPolicy::Reflect)
        };
        let right = translate(&left, -4.0, 0.0, BorderPolicy::Clamp);
        let asa = Asa::new(AsaConfig::default());
        let out = asa.run(&left, &right);
        // gain = 2 px/km: disparity 4 -> height 2 km.
        let h = out.height.at(32, 32);
        assert!((h - 2.0).abs() < 0.3, "height {h} km, want 2");
        assert!(out.residual < 0.5);
    }

    #[test]
    fn identical_views_give_zero_height() {
        let img = {
            let noise = Grid::from_fn(48, 48, |x, y| ((x * 31 + y * 17) % 97) as f32 / 12.0);
            sma_grid::filter::binomial_smooth(&noise, BorderPolicy::Reflect)
        };
        let out = Asa::default().run(&img, &img);
        assert!(out.height.at(24, 24).abs() < 0.2);
        // Sub-pixel parabola bias keeps this from being exactly zero.
        assert!(out.residual < 0.5, "residual {}", out.residual);
    }

    #[test]
    fn config_accessible() {
        let asa = Asa::default();
        assert_eq!(asa.config().matching.levels, 4);
    }
}
