//! Coarse-to-fine hierarchical disparity estimation.
//!
//! "The disparity estimates at the coarse level will typically provide
//! more reliable correspondence information but will be lacking detailed
//! surface structures. The disparity estimates at finer levels are more
//! noisy but will be more accurate using the coarse-to-fine approach."
//! (§2.1). Each level searches a small residual range around the
//! up-projected coarse estimate; the coarsest level carries the full
//! search burden where the image (and the disparity) is smallest.

use rayon::prelude::*;
use sma_grid::pyramid::{upsample_to, Pyramid};
use sma_grid::{BorderPolicy, Grid};

use crate::ncc_pruned::best_disparity_pruned;

static LEVELS_REFINED: sma_obs::Counter = sma_obs::Counter::new("stereo.levels_refined");
static PIXELS_MATCHED: sma_obs::Counter = sma_obs::Counter::new("stereo.pixels_matched");

/// Parameters of one hierarchical matching run.
#[derive(Debug, Clone, Copy)]
pub struct MatchParams {
    /// Number of pyramid levels ("typically four levels").
    pub levels: usize,
    /// Template half-width for correlation (the "stereo-analysis
    /// template"; its size "determines the starting resolution level").
    pub template_n: usize,
    /// Full search range (+- pixels) at the coarsest level.
    pub coarse_range: usize,
    /// Residual search range (+- pixels) at each finer level.
    pub refine_range: usize,
    /// Minimum NCC score to accept a match; weaker pixels keep the
    /// up-projected coarse estimate.
    pub min_score: f64,
}

impl Default for MatchParams {
    fn default() -> Self {
        Self {
            levels: 4,
            template_n: 3,
            coarse_range: 8,
            refine_range: 2,
            min_score: 0.3,
        }
    }
}

/// Dense disparity between a rectified pair by coarse-to-fine correlation.
///
/// Rows are processed in parallel with Rayon; results are deterministic
/// (per-pixel work is independent).
///
/// # Panics
/// Panics if the images have different shapes or `levels == 0`.
pub fn match_hierarchical(left: &Grid<f32>, right: &Grid<f32>, params: MatchParams) -> Grid<f32> {
    assert_eq!(left.dims(), right.dims(), "stereo pair shape mismatch");
    assert!(params.levels > 0, "need at least one pyramid level");
    let _span = sma_obs::span("hierarchical_match");

    // Cap the pyramid depth so the coarsest level is still meaningfully
    // larger than the correlation window — matching an 8x8 level with a
    // 7x7 template plus a +-8 search is pure border noise, and a wrong
    // coarse estimate is *doubled* at every finer level.
    let min_dim = left.width().min(left.height());
    let min_coarse = (4 * params.template_n + 4).max(16);
    let mut max_levels = 1usize;
    while max_levels < params.levels && (min_dim >> max_levels) >= min_coarse {
        max_levels += 1;
    }
    let lp = Pyramid::build(left, max_levels);
    let rp = Pyramid::build(right, max_levels);
    let levels = lp.num_levels().min(rp.num_levels());

    // Start from a zero disparity estimate at the coarsest level.
    let coarsest = levels - 1;
    let (cw, ch) = lp.level(coarsest).dims();
    let mut disparity = Grid::filled(cw, ch, 0.0f32);

    for k in (0..levels).rev() {
        let l = lp.level(k);
        let r = rp.level(k);
        if k != coarsest {
            // Up-project: double the disparity values onto the finer grid.
            let up = upsample_to(&disparity, l.width(), l.height());
            disparity = up.map(|&d| d * 2.0);
        }
        let range = if k == coarsest {
            params.coarse_range
        } else {
            params.refine_range
        };
        // Never search beyond a quarter of the level width: wider offsets
        // correlate mostly clamped border content.
        let range = range.min((l.width() / 4).max(1));
        let _level_span = sma_obs::span("refine_level");
        LEVELS_REFINED.incr();
        PIXELS_MATCHED.add((l.width() * l.height()) as u64);
        sma_obs::trace::counter("stereo.level_pixels", (l.width() * l.height()) as u64);
        disparity = refine_level(l, r, &disparity, range, params);
    }
    disparity
}

/// One level of refinement: search `+-range` around the prior at every
/// pixel.
fn refine_level(
    left: &Grid<f32>,
    right: &Grid<f32>,
    prior: &Grid<f32>,
    range: usize,
    params: MatchParams,
) -> Grid<f32> {
    let (w, h) = left.dims();
    let rows: Vec<Vec<f32>> = (0..h)
        .into_par_iter()
        .map(|y| {
            (0..w)
                .map(|x| {
                    let p = prior.at(x, y);
                    let center = p.round() as isize;
                    let m =
                        best_disparity_pruned(left, right, x, y, center, range, params.template_n);
                    if m.score >= params.min_score {
                        // Keep the sub-pixel fraction of the prior when the
                        // refinement only confirms the integer estimate.
                        m.disparity
                    } else {
                        p
                    }
                })
                .collect()
        })
        .collect();
    Grid::from_vec(w, h, rows.into_iter().flatten().collect())
}

/// Consistency check: warp `right` by the disparity and report the RMS
/// intensity residual against `left` over the interior (a cheap quality
/// metric for tests and diagnostics).
pub fn warp_residual(left: &Grid<f32>, right: &Grid<f32>, disparity: &Grid<f32>) -> f32 {
    let warped = sma_grid::warp::warp_by_disparity(right, disparity, BorderPolicy::Clamp);
    let (w, h) = left.dims();
    let m = 4usize.min(w / 4).min(h / 4);
    let mut ss = 0.0f64;
    let mut n = 0usize;
    for y in m..h - m {
        for x in m..w - m {
            let d = (left.at(x, y) - warped.at(x, y)) as f64;
            ss += d * d;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (ss / n as f64).sqrt() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_grid::warp::translate;

    /// Aperiodic smooth test texture: hashed per-pixel noise, binomially
    /// smoothed twice so bilinear warps and sub-pixel matching behave.
    /// (Periodic sin/modular patterns alias the correlation search.)
    fn textured(w: usize, h: usize) -> Grid<f32> {
        let noise = Grid::from_fn(w, h, |x, y| {
            let mut v = (x as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ (y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
            v ^= v >> 29;
            v = v.wrapping_mul(0xBF58476D1CE4E5B9);
            v ^= v >> 32;
            (v % 1024) as f32 / 1024.0 * 8.0
        });
        let s = sma_grid::filter::binomial_smooth(&noise, BorderPolicy::Reflect);
        sma_grid::filter::binomial_smooth(&s, BorderPolicy::Reflect)
    }

    #[test]
    fn recovers_uniform_shift() {
        let left = textured(64, 64);
        let right = translate(&left, 5.0, 0.0, BorderPolicy::Clamp);
        let d = match_hierarchical(&left, &right, MatchParams::default());
        // right(x) = left(x + 5), so the template at x matches right at
        // x + d with d = -5.
        let mut mean = 0.0f32;
        let mut n = 0;
        for y in 12..52 {
            for x in 12..52 {
                mean += d.at(x, y);
                n += 1;
            }
        }
        mean /= n as f32;
        assert!((mean + 5.0).abs() < 0.5, "mean disparity {mean}, want -5");
    }

    #[test]
    fn shift_exceeding_fine_range_needs_hierarchy() {
        // A 12-pixel shift is far beyond refine_range = 2 but within the
        // coarse search at 1/8 resolution (12/8 = 1.5 px).
        let left = textured(96, 96);
        let right = translate(&left, -12.0, 0.0, BorderPolicy::Clamp);
        let d = match_hierarchical(&left, &right, MatchParams::default());
        let center = d.at(48, 48);
        assert!((center - 12.0).abs() < 1.0, "got {center}, want 12");
    }

    #[test]
    fn zero_disparity_for_identical_views() {
        let img = textured(48, 48);
        let d = match_hierarchical(&img, &img, MatchParams::default());
        for y in 8..40 {
            for x in 8..40 {
                assert!(
                    d.at(x, y).abs() < 0.3,
                    "nonzero disparity {} at ({x},{y})",
                    d.at(x, y)
                );
            }
        }
    }

    #[test]
    fn spatially_varying_disparity() {
        // Disparity ramp: d_true(x) = -x/16 (max 4 px over 64).
        let left = textured(64, 64);
        let disp_true = Grid::from_fn(64, 64, |x, _| x as f32 / 16.0);
        let right =
            sma_grid::warp::warp_by_disparity(&left, &disp_true.map(|&d| -d), BorderPolicy::Clamp);
        // right(x) = left(x - d_true): matching left(x) to right(x + d)
        // finds d = +d_true.
        let d = match_hierarchical(&left, &right, MatchParams::default());
        let mut err = 0.0f32;
        let mut n = 0;
        for y in 12..52 {
            for x in 12..52 {
                err += (d.at(x, y) - disp_true.at(x, y)).abs();
                n += 1;
            }
        }
        err /= n as f32;
        assert!(err < 0.6, "mean abs disparity error {err}");
    }

    #[test]
    fn warp_residual_improves_with_correct_disparity() {
        let left = textured(64, 64);
        let right = translate(&left, 4.0, 0.0, BorderPolicy::Clamp);
        let zero = Grid::filled(64, 64, 0.0f32);
        let d = match_hierarchical(&left, &right, MatchParams::default());
        let r0 = warp_residual(&left, &right, &zero);
        let r1 = warp_residual(&left, &right, &d);
        assert!(r1 < 0.3 * r0, "residual {r1} should beat unwarped {r0}");
    }

    #[test]
    fn textureless_regions_inherit_coarse_prior() {
        // Left half textured and shifted; right half flat. The flat half
        // must not produce wild disparities.
        let left = Grid::from_fn(64, 64, |x, y| {
            if x < 32 {
                textured(64, 64).at(x, y)
            } else {
                1.0
            }
        });
        let right = translate(&left, 2.0, 0.0, BorderPolicy::Clamp);
        let d = match_hierarchical(&left, &right, MatchParams::default());
        for y in 8..56 {
            for x in 40..60 {
                assert!(
                    d.at(x, y).abs() < 8.0,
                    "wild disparity {} in flat zone",
                    d.at(x, y)
                );
            }
        }
    }
}
