//! Coupled stereo and motion estimation (§6: "coupling stereo and motion
//! estimation"; the paper cites Kambhamettu, Palaniappan & Hasler,
//! "Coupled, multi-resolution stereo and motion analysis", ISCV 1995 as
//! the fuller treatment).
//!
//! The idea: disparity at time `t+1` is not independent of disparity at
//! `t` — cloud decks persist, so the motion-advected `d(t)` is a strong
//! prior for `d(t+1)`. [`refine_disparity_with_motion`] fuses the two
//! (confidence-weighted), and [`temporal_consistency`] measures how much
//! a disparity sequence violates the motion prior — the quantity the
//! coupling reduces.

use sma_grid::warp::warp_by_flow;
use sma_grid::{BorderPolicy, FlowField, Grid};

/// Fuse an independently estimated disparity map at `t+1` with the
/// motion-advected disparity from `t`:
///
/// ```text
/// d_fused(q) = (1 - alpha) * d_t1(q) + alpha * d_t(q - flow)
/// ```
///
/// `alpha` is the weight of the temporal prior (0 = pure per-frame
/// stereo, 1 = pure advection). The advected prior is resampled with the
/// same backward warp the scene generator uses, so a correct flow maps
/// deck structure exactly.
///
/// # Panics
/// Panics if shapes differ or `alpha` is outside `[0, 1]`.
pub fn refine_disparity_with_motion(
    d_t: &Grid<f32>,
    d_t1: &Grid<f32>,
    flow: &FlowField,
    alpha: f32,
) -> Grid<f32> {
    assert_eq!(d_t.dims(), d_t1.dims(), "disparity shape mismatch");
    assert_eq!(d_t.dims(), flow.dims(), "flow shape mismatch");
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    // warp_by_flow pulls d_t forward: predicted(q) = d_t(q - flow(q))
    // requires inverting the flow; for the small per-frame motions of
    // rapid-scan imagery, -flow is the standard first-order inverse.
    let neg = FlowField::from_fn(flow.width(), flow.height(), |x, y| -flow.at(x, y));
    let predicted = warp_by_flow(d_t, &neg, BorderPolicy::Clamp);
    d_t1.zip_map(&predicted, |&indep, &prior| {
        (1.0 - alpha) * indep + alpha * prior
    })
}

/// Mean absolute temporal inconsistency of a disparity pair under a
/// motion field: `mean |d_t1(q) - d_t(q - flow(q))|` over the interior.
pub fn temporal_consistency(d_t: &Grid<f32>, d_t1: &Grid<f32>, flow: &FlowField) -> f32 {
    assert_eq!(d_t.dims(), d_t1.dims(), "disparity shape mismatch");
    let neg = FlowField::from_fn(flow.width(), flow.height(), |x, y| -flow.at(x, y));
    let predicted = warp_by_flow(d_t, &neg, BorderPolicy::Clamp);
    let (w, h) = d_t.dims();
    let m = 4usize.min(w / 4).min(h / 4);
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for y in m..h - m {
        for x in m..w - m {
            sum += (d_t1.at(x, y) - predicted.at(x, y)).abs() as f64;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_grid::Vec2;

    fn deck(w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| {
            ((x as f32 * 0.3).sin() + (y as f32 * 0.2).cos()) * 2.0 + 4.0
        })
    }

    #[test]
    fn alpha_zero_returns_independent_estimate() {
        let d0 = deck(32, 32);
        let d1 = d0.map(|v| v + 1.0);
        let flow = FlowField::zeros(32, 32);
        let fused = refine_disparity_with_motion(&d0, &d1, &flow, 0.0);
        assert!(fused.max_abs_diff(&d1) < 1e-6);
    }

    #[test]
    fn alpha_one_returns_advected_prior() {
        let d0 = deck(32, 32);
        let d1 = Grid::filled(32, 32, 0.0f32);
        let flow = FlowField::zeros(32, 32);
        let fused = refine_disparity_with_motion(&d0, &d1, &flow, 1.0);
        assert!(fused.max_abs_diff(&d0) < 1e-6);
    }

    #[test]
    fn coupling_denoises_stereo() {
        // True disparity advects by (2, 0). The independent t+1 estimate
        // is the truth plus deterministic noise; fusing with the advected
        // t-map halves the error.
        let d0 = deck(48, 48);
        let flow = FlowField::uniform(48, 48, Vec2::new(2.0, 0.0));
        let neg = FlowField::from_fn(48, 48, |x, y| -flow.at(x, y));
        let d1_true = warp_by_flow(&d0, &neg, BorderPolicy::Clamp);
        let noisy = Grid::from_fn(48, 48, |x, y| {
            let n = if (x * 7 + y * 13) % 2 == 0 { 0.5 } else { -0.5 };
            d1_true.at(x, y) + n
        });
        let fused = refine_disparity_with_motion(&d0, &noisy, &flow, 0.5);
        let e_before = noisy.rms_diff(&d1_true);
        let e_after = fused.rms_diff(&d1_true);
        assert!(
            e_after < 0.6 * e_before,
            "fused {e_after} vs noisy {e_before}"
        );
    }

    #[test]
    fn consistency_metric_detects_wrong_flow() {
        let d0 = deck(48, 48);
        let flow = FlowField::uniform(48, 48, Vec2::new(2.0, 0.0));
        let neg = FlowField::from_fn(48, 48, |x, y| -flow.at(x, y));
        let d1 = warp_by_flow(&d0, &neg, BorderPolicy::Clamp);
        let right = temporal_consistency(&d0, &d1, &flow);
        let wrong =
            temporal_consistency(&d0, &d1, &FlowField::uniform(48, 48, Vec2::new(-2.0, 0.0)));
        assert!(right < 0.1, "consistent pair scores {right}");
        assert!(
            wrong > 3.0 * right,
            "wrong flow must look inconsistent: {wrong} vs {right}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn bad_alpha_rejected() {
        let d = deck(8, 8);
        let _ = refine_disparity_with_motion(&d, &d, &FlowField::zeros(8, 8), 1.5);
    }
}
