//! ASA end-to-end on synthetic satellite scenes: the recovered height
//! map must track the generator's ground truth — the reproduction of the
//! paper's §2.1 stereo substrate on Frederic-like data.

use sma_satdata::hurricane_frederic_analog;
use sma_stereo::hierarchical::{match_hierarchical, MatchParams};
use sma_stereo::{Asa, AsaConfig};

#[test]
fn recovers_hurricane_heights_from_stereo() {
    let seq = hurricane_frederic_analog(96, 2, 42);
    let pair = seq.stereo_pair(0).expect("frederic analog is stereoscopic");
    let asa = Asa::new(AsaConfig::default());
    let out = asa.run(&pair.left, &pair.right);

    // Score the recovered disparity against truth over cloudy interior
    // pixels (clear sky is textureless — ASA legitimately reports prior
    // there, as does the paper's correlation matcher).
    let truth = &pair.true_disparity;
    let mut err_sum = 0.0f64;
    let mut n = 0usize;
    for y in 12..84 {
        for x in 12..84 {
            if seq.frames[0].intensity.at(x, y) > 0.35 {
                let e = (out.disparity.at(x, y) - truth.at(x, y)).abs() as f64;
                err_sum += e;
                n += 1;
            }
        }
    }
    assert!(n > 200, "need a meaningful cloudy sample, got {n}");
    let mae = err_sum / n as f64;
    assert!(
        mae < 1.0,
        "mean abs disparity error {mae} px over {n} cloudy pixels"
    );
}

#[test]
fn disparity_to_height_uses_pair_gain() {
    let seq = hurricane_frederic_analog(64, 2, 7);
    let pair = seq.stereo_pair(0).unwrap();
    // Perfect disparity -> exact heights through the pair's own gain.
    let h = pair.disparity_to_height(&pair.true_disparity);
    let err = h.max_abs_diff(&seq.frames[0].height);
    assert!(err < 1e-4, "height inversion error {err}");
}

#[test]
fn coarse_to_fine_beats_single_level_on_large_parallax() {
    // High gain -> large disparities that a +-2 single-level search
    // cannot reach but the hierarchy can.
    let seq = hurricane_frederic_analog(96, 2, 13);
    let frame = &seq.frames[0];
    let scaled_height = frame.height.map(|&h| h * 1.2);
    let pair = sma_satdata::synthesize_stereo_pair(&frame.intensity, &scaled_height, 1.0);

    let hier = MatchParams::default();
    let single = MatchParams {
        levels: 1,
        coarse_range: 2,
        ..hier
    };

    let d_hier = match_hierarchical(&pair.left, &pair.right, hier);
    let d_single = match_hierarchical(&pair.left, &pair.right, single);

    let mae = |d: &sma_grid::Grid<f32>| {
        let mut s = 0.0f64;
        let mut n = 0usize;
        for y in 12..84 {
            for x in 12..84 {
                if frame.intensity.at(x, y) > 0.35 && pair.true_disparity.at(x, y).abs() > 3.0 {
                    s += (d.at(x, y) - pair.true_disparity.at(x, y)).abs() as f64;
                    n += 1;
                }
            }
        }
        if n == 0 {
            f64::INFINITY
        } else {
            s / n as f64
        }
    };
    let e_hier = mae(&d_hier);
    let e_single = mae(&d_single);
    assert!(
        e_hier < 0.7 * e_single,
        "hierarchy ({e_hier:.2}) should beat single level ({e_single:.2}) on large disparities"
    );
}
