//! Property equivalence: the NCC table construction with the SIMD lane
//! kernels against the scalar builds — including zero-variance windows,
//! where the normalization denominator vanishes and both paths must
//! agree on the (non-)match verdict bit for bit.

use proptest::prelude::*;
use sma_grid::{simd, Grid};
use sma_stereo::ncc_fast::NccPrecomp;

/// Deterministic pseudo-random f32 plane.
fn textured(w: usize, h: usize, seed: u64) -> Grid<f32> {
    Grid::from_fn(w, h, |x, y| {
        let mix = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((y * w + x) as u64)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (mix >> 40) as f32 / 16_777_216.0 * 4.0
    })
}

/// Compare every `(x, y, d)` score under both kernel layers.
fn assert_tables_identical(
    left: &Grid<f32>,
    right: &Grid<f32>,
    d_min: isize,
    d_max: isize,
    n: usize,
) -> Result<(), String> {
    let was = simd::enabled();
    simd::set_enabled(false);
    let scalar = NccPrecomp::build(left, right, d_min, d_max, n);
    simd::set_enabled(true);
    let lanes = NccPrecomp::build(left, right, d_min, d_max, n);
    simd::set_enabled(was);
    let (w, h) = left.dims();
    for y in 0..h {
        for x in 0..w {
            for d in d_min..=d_max {
                let a = scalar.score(x, y, d);
                let b = lanes.score(x, y, d);
                match (a, b) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.to_bits(), b.to_bits(), "({}, {}) d {}", x, y, d);
                    }
                    _ => prop_assert!(false, "score presence diverged at ({x}, {y}) d {d}"),
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Textured pair, disparity ranges that force full-clamp columns at
    /// both edges: lane and scalar table builds score identically.
    #[test]
    fn ncc_tables_toggle_is_bit_identical(
        w in 9usize..26,
        h in 3usize..12,
        seed in 0u64..1000,
        n in 1usize..3,
        reach in 1isize..6,
    ) {
        let left = textured(w, h, seed);
        let right = textured(w, h, seed ^ 0x77);
        assert_tables_identical(&left, &right, -reach, reach, n)?;
    }

    /// Zero-variance windows: a constant stripe (and a fully constant
    /// right view) makes the NCC denominator vanish; both paths must
    /// return the same verdict for every window.
    #[test]
    fn zero_variance_windows_agree(
        w in 9usize..22,
        h in 5usize..10,
        seed in 0u64..1000,
        level in -2i32..3,
    ) {
        let mut left = textured(w, h, seed);
        // A flat horizontal band wide enough to swallow whole templates.
        for y in 2..h.min(5) {
            for x in 0..w {
                left.set(x, y, level as f32);
            }
        }
        let right = Grid::filled(w, h, level as f32);
        assert_tables_identical(&left, &right, -3, 3, 1)?;
    }
}
