use sma_grid::{BorderPolicy, Grid};
use sma_stereo::{best_disparity, best_disparity_pruned};

fn textured(w: usize, h: usize, dc: f32, amp: f32) -> Grid<f32> {
    let noise = Grid::from_fn(w, h, |x, y| {
        let mut v = (x as u64).wrapping_mul(0x9E3779B97F4A7C15)
            ^ (y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
        v ^= v >> 29;
        v = v.wrapping_mul(0xBF58476D1CE4E5B9);
        v ^= v >> 32;
        dc + (v % 1024) as f32 / 1024.0 * amp
    });
    let s = sma_grid::filter::binomial_smooth(&noise, BorderPolicy::Reflect);
    sma_grid::filter::binomial_smooth(&s, BorderPolicy::Reflect)
}

#[test]
fn dc_offset_probe() {
    let mut mismatches = 0usize;
    let mut total = 0usize;
    for &(dc, amp) in &[
        (0.0f32, 8.0f32),
        (1.0e4, 1.0),
        (1.0e5, 1.0),
        (1.0e6, 1.0),
        (1.0e6, 0.05),
        (3.0e6, 0.02),
    ] {
        let left = textured(48, 48, dc, amp);
        let right = sma_grid::warp::translate(&left, -3.0, 0.0, BorderPolicy::Clamp);
        for y in 8..40 {
            for x in 8..40 {
                for center in [-1isize, 0, 3] {
                    for range in [4usize, 6] {
                        total += 1;
                        let a = best_disparity(&left, &right, x, y, center, range, 3);
                        let b = best_disparity_pruned(&left, &right, x, y, center, range, 3);
                        if a.disparity.to_bits() != b.disparity.to_bits()
                            || a.score.to_bits() != b.score.to_bits()
                        {
                            mismatches += 1;
                            if mismatches <= 5 {
                                eprintln!(
                                    "MISMATCH dc={dc} amp={amp} ({x},{y}) c={center} r={range}: ref=({}, {}) pruned=({}, {})",
                                    a.disparity, a.score, b.disparity, b.score
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    eprintln!("total={total} mismatches={mismatches}");
    assert_eq!(mismatches, 0, "pruned diverged from reference");
}
