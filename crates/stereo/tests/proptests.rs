//! Property tests for the ASA substrate: NCC invariances, disparity
//! search correctness on random shifts, geometry round-trips, coupled
//! stereo-motion fusion bounds.

use proptest::prelude::*;
use sma_grid::warp::translate;
use sma_grid::{BorderPolicy, FlowField, Grid, Vec2};
use sma_stereo::coupled::refine_disparity_with_motion;
use sma_stereo::geometry::SatelliteGeometry;
use sma_stereo::ncc::{best_disparity, ncc_score};

/// Aperiodic smooth texture (hash noise, smoothed).
fn textured(w: usize, h: usize, seed: u64) -> Grid<f32> {
    let noise = Grid::from_fn(w, h, |x, y| {
        let mut v = (x as u64 ^ seed.rotate_left(7)).wrapping_mul(0x9E3779B97F4A7C15)
            ^ (y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
        v ^= v >> 29;
        v = v.wrapping_mul(0xBF58476D1CE4E5B9);
        v ^= v >> 32;
        (v % 1024) as f32 / 1024.0 * 8.0
    });
    sma_grid::filter::binomial_smooth(&noise, BorderPolicy::Reflect)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// NCC is bounded in [-1, 1] and exactly 1 against itself.
    #[test]
    fn ncc_bounds(seed in 0u64..500, d in -5isize..=5) {
        let a = textured(32, 32, seed);
        let b = textured(32, 32, seed ^ 99);
        let s = ncc_score(&a, &b, 16, 16, d, 3);
        prop_assert!((-1.0..=1.0).contains(&s), "score {s}");
        let self_s = ncc_score(&a, &a, 16, 16, 0, 3);
        prop_assert!((self_s - 1.0).abs() < 1e-9);
    }

    /// NCC is invariant to affine intensity transforms of either view.
    #[test]
    fn ncc_affine_invariance(
        seed in 0u64..300, gain in 0.1f32..5.0, offset in -50.0f32..50.0
    ) {
        let a = textured(24, 24, seed);
        let b = a.map(|&v| gain * v + offset);
        let s = ncc_score(&a, &b, 12, 12, 0, 3);
        prop_assert!((s - 1.0).abs() < 1e-5, "score {s}");
    }

    /// The 1-D search recovers any integer shift inside its range.
    #[test]
    fn search_recovers_integer_shift(seed in 0u64..200, d in -5isize..=5) {
        let left = textured(48, 48, seed);
        let right = translate(&left, -(d as f32), 0.0, BorderPolicy::Clamp);
        let m = best_disparity(&left, &right, 24, 24, 0, 6, 3);
        prop_assert!((m.disparity - d as f32).abs() < 0.35,
            "found {} want {d}", m.disparity);
        prop_assert!(m.score > 0.8);
    }

    /// Geometry disparity<->height round-trips for any valid geometry.
    #[test]
    fn geometry_roundtrip(
        east in 5.0f32..80.0, west in 5.0f32..80.0,
        px in 0.5f32..8.0, h in 0.0f32..20.0
    ) {
        let g = SatelliteGeometry { east_zenith_deg: east, west_zenith_deg: west, pixel_km: px };
        let d = g.disparity_px(h);
        prop_assert!((g.height_km(d) - h).abs() < 1e-3);
        prop_assert!(g.gain_px_per_km() > 0.0);
    }

    /// Coupled fusion is a convex combination: the fused value always
    /// lies between the independent estimate and the advected prior.
    #[test]
    fn coupled_fusion_convex(seed in 0u64..200, alpha in 0.0f32..1.0) {
        let d0 = textured(24, 24, seed);
        let d1 = textured(24, 24, seed ^ 7);
        let flow = FlowField::uniform(24, 24, Vec2::new(1.0, 0.0));
        let fused = refine_disparity_with_motion(&d0, &d1, &flow, alpha);
        let neg = FlowField::from_fn(24, 24, |x, y| -flow.at(x, y));
        let prior = sma_grid::warp::warp_by_flow(&d0, &neg, BorderPolicy::Clamp);
        for y in 0..24 {
            for x in 0..24 {
                let lo = d1.at(x, y).min(prior.at(x, y)) - 1e-4;
                let hi = d1.at(x, y).max(prior.at(x, y)) + 1e-4;
                let v = fused.at(x, y);
                prop_assert!(v >= lo && v <= hi, "non-convex at ({x},{y})");
            }
        }
    }

    /// The subpixel refinement never moves more than half a pixel from
    /// the best integer disparity.
    #[test]
    fn subpixel_bounded(seed in 0u64..200, frac in -0.45f32..0.45) {
        let left = textured(48, 48, seed);
        let right = translate(&left, -(2.0 + frac), 0.0, BorderPolicy::Clamp);
        let m = best_disparity(&left, &right, 24, 24, 0, 5, 3);
        // True disparity 2 + frac in (1.55, 2.45): estimate within 0.5 of
        // the nearest integer and within 0.5 of truth.
        prop_assert!((m.disparity - (2.0 + frac)).abs() < 0.5,
            "estimate {} truth {}", m.disparity, 2.0 + frac);
    }
}
