//! Integral images (summed-area tables).
//!
//! The ASA's correlation matcher evaluates window sums (means, variances,
//! cross-products) at every pixel and disparity; a summed-area table
//! turns each `(2n+1)^2` window sum into four lookups. This is a
//! host-side optimization of the same flavor as the paper's §4.1
//! precompute — trading memory for the elimination of redundant window
//! work — and the `stereo` bench quantifies what it buys.

use crate::grid::Grid;

/// A summed-area table over an image: `table[(x, y)]` holds the sum of
/// all pixels `(i, j)` with `i <= x`, `j <= y`, in `f64` (f32 prefix sums
/// of large images lose precision).
#[derive(Debug, Clone, PartialEq)]
pub struct IntegralImage {
    table: Grid<f64>,
}

impl IntegralImage {
    /// Build from an image in one pass.
    pub fn build(img: &Grid<f32>) -> Self {
        let (w, h) = img.dims();
        let mut table = Grid::filled(w, h, 0.0f64);
        for y in 0..h {
            let mut row_sum = 0.0f64;
            for x in 0..w {
                row_sum += img.at(x, y) as f64;
                let above = if y > 0 { table.at(x, y - 1) } else { 0.0 };
                table.set(x, y, row_sum + above);
            }
        }
        Self { table }
    }

    /// Build over the squared image (for variance computations).
    pub fn build_squared(img: &Grid<f32>) -> Self {
        Self::build(&img.map(|&v| v * v))
    }

    /// Build the sum and squared-sum tables in one fused pass over the
    /// image: one traversal instead of two, and no intermediate squared
    /// plane. Bit-identical to `(build(img), build_squared(img))` — each
    /// prefix accumulates in the same order, and the square is the same
    /// f32 product `v * v` widened to f64 afterwards.
    pub fn build_pair_fused(img: &Grid<f32>) -> (Self, Self) {
        crate::simd::note_row(img.len());
        let (w, h) = img.dims();
        let mut sum = Grid::filled(w, h, 0.0f64);
        let mut sq = Grid::filled(w, h, 0.0f64);
        for y in 0..h {
            let src = img.row(y);
            let mut row_s = 0.0f64;
            let mut row_q = 0.0f64;
            for (x, &v) in src.iter().enumerate() {
                row_s += v as f64;
                row_q += (v * v) as f64;
                let (above_s, above_q) = if y > 0 {
                    (sum.at(x, y - 1), sq.at(x, y - 1))
                } else {
                    (0.0, 0.0)
                };
                sum.set(x, y, row_s + above_s);
                sq.set(x, y, row_q + above_q);
            }
        }
        (Self { table: sum }, Self { table: sq })
    }

    /// Dimensions of the underlying image.
    pub fn dims(&self) -> (usize, usize) {
        self.table.dims()
    }

    /// Sum over the inclusive rectangle `[x0, x1] x [y0, y1]`, clipped to
    /// the image.
    ///
    /// # Panics
    /// Panics if `x0 > x1` or `y0 > y1`.
    pub fn rect_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        assert!(x0 <= x1 && y0 <= y1, "degenerate rectangle");
        let (w, h) = self.table.dims();
        let x1 = x1.min(w - 1);
        let y1 = y1.min(h - 1);
        let a = self.table.at(x1, y1);
        let b = if x0 > 0 {
            self.table.at(x0 - 1, y1)
        } else {
            0.0
        };
        let c = if y0 > 0 {
            self.table.at(x1, y0 - 1)
        } else {
            0.0
        };
        let d = if x0 > 0 && y0 > 0 {
            self.table.at(x0 - 1, y0 - 1)
        } else {
            0.0
        };
        a - b - c + d
    }

    /// Sum over the `(2n+1)^2` window centered at `(cx, cy)`, clipped to
    /// the image (clipped windows sum fewer pixels; see
    /// [`IntegralImage::window_area`]).
    pub fn window_sum(&self, cx: usize, cy: usize, n: usize) -> f64 {
        let x0 = cx.saturating_sub(n);
        let y0 = cy.saturating_sub(n);
        self.rect_sum(x0, y0, cx + n, cy + n)
    }

    /// Number of in-range pixels of the window centered at `(cx, cy)`.
    pub fn window_area(&self, cx: usize, cy: usize, n: usize) -> usize {
        let (w, h) = self.table.dims();
        let x0 = cx.saturating_sub(n);
        let y0 = cy.saturating_sub(n);
        let x1 = (cx + n).min(w - 1);
        let y1 = (cy + n).min(h - 1);
        (x1 - x0 + 1) * (y1 - y0 + 1)
    }

    /// Mean over the (clipped) window centered at `(cx, cy)`.
    pub fn window_mean(&self, cx: usize, cy: usize, n: usize) -> f64 {
        self.window_sum(cx, cy, n) / self.window_area(cx, cy, n) as f64
    }
}

/// A summed-area table over `K` channels at once: one prefix-sum pass
/// over a `[f64; K]`-valued plane, after which any rectangular sum of
/// all `K` channels is four corner lookups.
///
/// This is the storage form of the SMA fast path's *moment planes*: the
/// per-template-pixel contributions to the normal-equation moments
/// (`A^T A`, `A^T b`, `b^T b` terms) are plane-valued, and every tracked
/// pixel's system is the sum of those contributions over its template
/// window — a window sum per channel, O(1) here instead of O(T^2).
#[derive(Debug, Clone)]
pub struct MomentIntegral<const K: usize> {
    table: Grid<[f64; K]>,
}

impl<const K: usize> MomentIntegral<K> {
    /// Build from a per-pixel channel function in one pass.
    pub fn from_fn(w: usize, h: usize, mut f: impl FnMut(usize, usize) -> [f64; K]) -> Self {
        let mut table = Grid::filled(w, h, [0.0f64; K]);
        for y in 0..h {
            let mut row_sum = [0.0f64; K];
            for x in 0..w {
                let v = f(x, y);
                let above = if y > 0 { table.at(x, y - 1) } else { [0.0; K] };
                let mut cell = [0.0f64; K];
                for k in 0..K {
                    row_sum[k] += v[k];
                    cell[k] = row_sum[k] + above[k];
                }
                table.set(x, y, cell);
            }
        }
        Self { table }
    }

    /// Build from an existing channel plane.
    pub fn build(plane: &Grid<[f64; K]>) -> Self {
        let (w, h) = plane.dims();
        Self::from_fn(w, h, |x, y| plane.at(x, y))
    }

    /// Dimensions of the underlying plane.
    pub fn dims(&self) -> (usize, usize) {
        self.table.dims()
    }

    /// Per-channel sum over the inclusive rectangle `[x0, x1] x [y0, y1]`,
    /// clipped to the plane.
    ///
    /// # Panics
    /// Panics if `x0 > x1` or `y0 > y1`.
    pub fn rect_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> [f64; K] {
        assert!(x0 <= x1 && y0 <= y1, "degenerate rectangle");
        let (w, h) = self.table.dims();
        let x1 = x1.min(w - 1);
        let y1 = y1.min(h - 1);
        let a = self.table.at(x1, y1);
        let b = if x0 > 0 {
            self.table.at(x0 - 1, y1)
        } else {
            [0.0; K]
        };
        let c = if y0 > 0 {
            self.table.at(x1, y0 - 1)
        } else {
            [0.0; K]
        };
        let d = if x0 > 0 && y0 > 0 {
            self.table.at(x0 - 1, y0 - 1)
        } else {
            [0.0; K]
        };
        let mut out = [0.0f64; K];
        for k in 0..K {
            out[k] = a[k] - b[k] - c[k] + d[k];
        }
        out
    }

    /// Per-channel sum over the `(2n+1)^2` window centered at `(cx, cy)`,
    /// clipped to the plane.
    pub fn window_sum(&self, cx: usize, cy: usize, n: usize) -> [f64; K] {
        let x0 = cx.saturating_sub(n);
        let y0 = cy.saturating_sub(n);
        self.rect_sum(x0, y0, cx + n, cy + n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img() -> Grid<f32> {
        Grid::from_fn(9, 7, |x, y| ((x * 13 + y * 7) % 11) as f32)
    }

    fn brute_sum(g: &Grid<f32>, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        let mut s = 0.0;
        for y in y0..=y1.min(g.height() - 1) {
            for x in x0..=x1.min(g.width() - 1) {
                s += g.at(x, y) as f64;
            }
        }
        s
    }

    #[test]
    fn rect_sums_match_brute_force() {
        let g = img();
        let it = IntegralImage::build(&g);
        for (x0, y0, x1, y1) in [(0, 0, 8, 6), (2, 1, 5, 4), (3, 3, 3, 3), (0, 2, 8, 2)] {
            assert!((it.rect_sum(x0, y0, x1, y1) - brute_sum(&g, x0, y0, x1, y1)).abs() < 1e-9);
        }
    }

    #[test]
    fn window_sums_clip_at_borders() {
        let g = img();
        let it = IntegralImage::build(&g);
        // Corner window 5x5 centered at (0, 0): only 3x3 pixels exist.
        assert_eq!(it.window_area(0, 0, 2), 9);
        assert!((it.window_sum(0, 0, 2) - brute_sum(&g, 0, 0, 2, 2)).abs() < 1e-9);
        // Interior window has full area.
        assert_eq!(it.window_area(4, 3, 2), 25);
    }

    #[test]
    fn window_mean_of_constant() {
        let g = Grid::filled(8, 8, 3.25f32);
        let it = IntegralImage::build(&g);
        for &(x, y) in &[(0usize, 0usize), (4, 4), (7, 7)] {
            assert!((it.window_mean(x, y, 2) - 3.25).abs() < 1e-9);
        }
    }

    #[test]
    fn squared_table_gives_variance() {
        let g = img();
        let it = IntegralImage::build(&g);
        let it2 = IntegralImage::build_squared(&g);
        // var = E[x^2] - E[x]^2 over an interior window.
        let n = it.window_area(4, 3, 2) as f64;
        let mean = it.window_mean(4, 3, 2);
        let var = it2.window_sum(4, 3, 2) / n - mean * mean;
        // Brute force.
        let mut bv = 0.0;
        for y in 1..=5 {
            for x in 2..=6 {
                bv += (g.at(x, y) as f64 - mean).powi(2);
            }
        }
        bv /= n;
        assert!((var - bv).abs() < 1e-9);
    }

    #[test]
    fn fused_pair_is_bit_identical_to_separate_builds() {
        for (w, h) in [(1usize, 1usize), (7, 3), (9, 7), (16, 16), (33, 5)] {
            let g = Grid::from_fn(w, h, |x, y| ((x * 13 + y * 7) % 11) as f32 * 0.75 - 2.0);
            let (fs, fq) = IntegralImage::build_pair_fused(&g);
            let ss = IntegralImage::build(&g);
            let sq = IntegralImage::build_squared(&g);
            for y in 0..h {
                for x in 0..w {
                    assert_eq!(
                        fs.rect_sum(0, 0, x, y).to_bits(),
                        ss.rect_sum(0, 0, x, y).to_bits(),
                        "sum ({x},{y}) of {w}x{h}"
                    );
                    assert_eq!(
                        fq.rect_sum(0, 0, x, y).to_bits(),
                        sq.rect_sum(0, 0, x, y).to_bits(),
                        "sq ({x},{y}) of {w}x{h}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "degenerate rectangle")]
    fn inverted_rect_rejected() {
        let it = IntegralImage::build(&img());
        let _ = it.rect_sum(5, 0, 2, 3);
    }

    #[test]
    fn windows_flush_against_each_border() {
        // A window whose edge lands *exactly* on an image border takes
        // the boundary branch of every corner lookup — the classic
        // off-by-one site. Exercise all four borders with a full-size
        // (unclipped) window and check against brute force.
        let g = img(); // 9 x 7
        let it = IntegralImage::build(&g);
        let n = 2usize;
        let cases = [
            (n, 3, "left"),                 // x0 == 0 exactly
            (8 - n, 3, "right"),            // x1 == w-1 exactly
            (4, n, "top"),                  // y0 == 0 exactly
            (4, 6 - n, "bottom"),           // y1 == h-1 exactly
            (n, n, "top-left"),             // both low edges flush
            (8 - n, 6 - n, "bottom-right"), // both high edges flush
        ];
        for (cx, cy, which) in cases {
            assert_eq!(it.window_area(cx, cy, n), 25, "{which} window clipped");
            let want = brute_sum(&g, cx - n, cy - n, cx + n, cy + n);
            assert!(
                (it.window_sum(cx, cy, n) - want).abs() < 1e-9,
                "{which} flush window at ({cx},{cy})"
            );
        }
    }

    #[test]
    fn one_by_one_grid() {
        let g = Grid::filled(1, 1, 4.5f32);
        let it = IntegralImage::build(&g);
        let it2 = IntegralImage::build_squared(&g);
        // Every window on a 1x1 image clips to the single pixel.
        for n in 0..3usize {
            assert_eq!(it.window_area(0, 0, n), 1);
            assert!((it.window_sum(0, 0, n) - 4.5).abs() < 1e-12);
            assert!((it.window_mean(0, 0, n) - 4.5).abs() < 1e-12);
            assert!((it2.window_sum(0, 0, n) - 4.5 * 4.5).abs() < 1e-9);
        }
        assert!((it.rect_sum(0, 0, 0, 0) - 4.5).abs() < 1e-12);
        let mi = MomentIntegral::<2>::from_fn(1, 1, |_, _| [1.0, -2.0]);
        assert_eq!(mi.window_sum(0, 0, 2), [1.0, -2.0]);
    }

    #[test]
    fn single_row_and_single_column_grids() {
        // Degenerate aspect ratios hit the y-only / x-only boundary
        // branches in isolation.
        let row = Grid::from_fn(7, 1, |x, _| x as f32);
        let it = IntegralImage::build(&row);
        assert!((it.rect_sum(0, 0, 6, 0) - 21.0).abs() < 1e-12);
        assert!((it.window_sum(3, 0, 1) - 9.0).abs() < 1e-12); // 2+3+4
        assert_eq!(it.window_area(3, 0, 1), 3);
        assert_eq!(it.window_area(0, 0, 1), 2); // clipped left
        let col = Grid::from_fn(1, 7, |_, y| y as f32);
        let ic = IntegralImage::build(&col);
        assert!((ic.window_sum(0, 3, 1) - 9.0).abs() < 1e-12);
        assert_eq!(ic.window_area(0, 6, 1), 2); // clipped bottom
    }

    #[test]
    fn moment_integral_matches_per_channel_brute_force() {
        let chan = |x: usize, y: usize| -> [f64; 3] {
            let v = (x * 13 + y * 7) % 11;
            [v as f64, (v * v) as f64, x as f64 - y as f64]
        };
        let mi = MomentIntegral::<3>::from_fn(9, 7, chan);
        for (x0, y0, x1, y1) in [(0, 0, 8, 6), (2, 1, 5, 4), (3, 3, 3, 3), (0, 2, 20, 2)] {
            let got = mi.rect_sum(x0, y0, x1, y1);
            let mut want = [0.0f64; 3];
            for y in y0..=y1.min(6) {
                for x in x0..=x1.min(8) {
                    let v = chan(x, y);
                    for k in 0..3 {
                        want[k] += v[k];
                    }
                }
            }
            for k in 0..3 {
                assert!(
                    (got[k] - want[k]).abs() < 1e-9,
                    "rect ({x0},{y0})-({x1},{y1}) channel {k}: {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn moment_integral_window_matches_single_channel_table() {
        let g = img();
        let single = IntegralImage::build(&g);
        let multi = MomentIntegral::<1>::from_fn(9, 7, |x, y| [g.at(x, y) as f64]);
        for &(cx, cy, n) in &[(0usize, 0usize, 2usize), (4, 3, 2), (8, 6, 1), (4, 3, 0)] {
            assert!((multi.window_sum(cx, cy, n)[0] - single.window_sum(cx, cy, n)).abs() < 1e-9);
        }
    }

    #[test]
    fn moment_integral_build_equals_from_fn() {
        let plane = Grid::from_fn(6, 5, |x, y| [x as f64 * 0.5, y as f64 * -1.25]);
        let a = MomentIntegral::<2>::build(&plane);
        let b = MomentIntegral::<2>::from_fn(6, 5, |x, y| plane.at(x, y));
        assert_eq!(a.dims(), (6, 5));
        for y in 0..5 {
            for x in 0..6 {
                assert_eq!(a.rect_sum(0, 0, x, y), b.rect_sum(0, 0, x, y));
            }
        }
    }
}
