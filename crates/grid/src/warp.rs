//! Bilinear sampling and warping.
//!
//! Warping appears in three places in the reproduction, mirroring the
//! paper:
//!
//! * ASA stereo warps one view by the coarse disparity estimate before
//!   refining at the next finer level (§2.1 "uses the coarse disparity
//!   estimates to warp or transform one view into the other");
//! * right images are "rectified and warped to align them with the left
//!   images" before motion analysis (§2.2);
//! * the synthetic data generator advects cloud scenes by a ground-truth
//!   flow field (semi-Lagrangian backward warp).

use crate::border::BorderPolicy;
use crate::flow::FlowField;
use crate::grid::Grid;

static WARP_PIXELS: sma_obs::Counter = sma_obs::Counter::new("grid.warp.pixels");

/// Bilinearly interpolated sample at real-valued coordinates `(x, y)`.
/// Out-of-range support pixels are resolved with `policy` (Constant reads
/// as 0).
pub fn sample_bilinear(img: &Grid<f32>, x: f32, y: f32, policy: BorderPolicy) -> f32 {
    let x0 = x.floor();
    let y0 = y.floor();
    let fx = x - x0;
    let fy = y - y0;
    let xi = x0 as isize;
    let yi = y0 as isize;
    let v00 = img.at_clamped(xi, yi, policy);
    let v10 = img.at_clamped(xi + 1, yi, policy);
    let v01 = img.at_clamped(xi, yi + 1, policy);
    let v11 = img.at_clamped(xi + 1, yi + 1, policy);
    let top = v00 + fx * (v10 - v00);
    let bot = v01 + fx * (v11 - v01);
    top + fy * (bot - top)
}

/// Backward warp by a dense flow field: `out(x, y) = img(x + u, y + v)`
/// where `(u, v) = flow(x, y)`. With `flow` being the motion from `img`'s
/// frame to the next, this *pulls* the next frame's pixel values — i.e.
/// `warp_by_flow(frame_{t+1}, flow_t)` aligns frame `t+1` with frame `t`.
///
/// # Panics
/// Panics if the flow field's shape differs from the image's.
pub fn warp_by_flow(img: &Grid<f32>, flow: &FlowField, policy: BorderPolicy) -> Grid<f32> {
    assert_eq!(img.dims(), flow.dims(), "warp flow shape mismatch");
    let _span = sma_obs::span("warp");
    WARP_PIXELS.add((img.width() * img.height()) as u64);
    Grid::from_fn(img.width(), img.height(), |x, y| {
        let v = flow.at(x, y);
        sample_bilinear(img, x as f32 + v.u, y as f32 + v.v, policy)
    })
}

/// Backward warp by a horizontal disparity plane:
/// `out(x, y) = img(x + d(x, y), y)`. This is the stereo-rectified case
/// where correspondence is along scan lines ("epipolar lines become
/// parallel to scan lines", §2.2).
///
/// # Panics
/// Panics if the disparity plane's shape differs from the image's.
pub fn warp_by_disparity(img: &Grid<f32>, disp: &Grid<f32>, policy: BorderPolicy) -> Grid<f32> {
    assert_eq!(img.dims(), disp.dims(), "warp disparity shape mismatch");
    let _span = sma_obs::span("warp");
    WARP_PIXELS.add((img.width() * img.height()) as u64);
    Grid::from_fn(img.width(), img.height(), |x, y| {
        sample_bilinear(img, x as f32 + disp.at(x, y), y as f32, policy)
    })
}

/// Translate an image by a constant real-valued offset (backward warp).
pub fn translate(img: &Grid<f32>, dx: f32, dy: f32, policy: BorderPolicy) -> Grid<f32> {
    Grid::from_fn(img.width(), img.height(), |x, y| {
        sample_bilinear(img, x as f32 + dx, y as f32 + dy, policy)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Vec2;

    fn ramp() -> Grid<f32> {
        Grid::from_fn(16, 16, |x, y| 3.0 * x as f32 + 5.0 * y as f32)
    }

    #[test]
    fn sample_at_integer_coords_is_exact() {
        let img = ramp();
        assert_eq!(
            sample_bilinear(&img, 4.0, 7.0, BorderPolicy::Clamp),
            img.at(4, 7)
        );
    }

    #[test]
    fn sample_midpoint_averages() {
        let img = ramp();
        let v = sample_bilinear(&img, 4.5, 7.5, BorderPolicy::Clamp);
        assert!((v - (3.0 * 4.5 + 5.0 * 7.5)).abs() < 1e-4);
    }

    #[test]
    fn sample_is_continuous_across_pixel_boundaries() {
        let img = ramp();
        let a = sample_bilinear(&img, 4.999, 6.0, BorderPolicy::Clamp);
        let b = sample_bilinear(&img, 5.001, 6.0, BorderPolicy::Clamp);
        assert!((a - b).abs() < 0.02);
    }

    #[test]
    fn translate_shifts_ramp_exactly() {
        let img = ramp();
        let t = translate(&img, 1.0, 2.0, BorderPolicy::Clamp);
        for y in 0..13 {
            for x in 0..14 {
                assert!((t.at(x, y) - img.at(x + 1, y + 2)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn warp_by_uniform_flow_matches_translate() {
        let img = ramp();
        let flow = FlowField::uniform(16, 16, Vec2::new(2.0, -1.0));
        let a = warp_by_flow(&img, &flow, BorderPolicy::Clamp);
        let b = translate(&img, 2.0, -1.0, BorderPolicy::Clamp);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn warp_by_disparity_moves_along_rows_only() {
        let img = Grid::from_fn(8, 8, |x, y| (x + 10 * y) as f32);
        let disp = Grid::filled(8, 8, 1.0f32);
        let w = warp_by_disparity(&img, &disp, BorderPolicy::Clamp);
        for y in 0..8 {
            for x in 0..7 {
                assert_eq!(w.at(x, y), img.at(x + 1, y));
            }
        }
    }

    #[test]
    fn constant_policy_reads_zero_outside() {
        let img = Grid::filled(4, 4, 5.0f32);
        let v = sample_bilinear(&img, -2.0, 0.0, BorderPolicy::Constant);
        assert_eq!(v, 0.0);
        // Half in, half out: interpolates toward zero.
        let e = sample_bilinear(&img, -0.5, 0.0, BorderPolicy::Constant);
        assert!((e - 2.5).abs() < 1e-5);
    }
}
