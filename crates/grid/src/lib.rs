//! # sma-grid
//!
//! Two-dimensional grid containers and image operations shared by every
//! layer of the Semi-Fluid Motion Analysis (SMA) reproduction.
//!
//! The paper (Palaniappan et al., IPPS 1996) operates on `M x N` arrays of
//! pixels: intensity images `I(x, y, t)`, surface (cloud-top height) maps
//! `z(x, y, t)` and dense motion fields. This crate provides:
//!
//! * [`Grid`] — a dense row-major 2-D container with checked and border-
//!   policy-aware access ([`BorderPolicy`]);
//! * [`window`] — centered square/rectangular neighborhood iteration, the
//!   `(2N+1) x (2N+1)` windows the paper's every step is phrased in;
//! * [`filter`] — separable convolution, Gaussian and binomial smoothing,
//!   central-difference gradients;
//! * [`integral`] — summed-area tables for O(1) window sums (the NCC
//!   fast path);
//! * [`prune`] — decimated-lattice summed-area tables and 3 x 3
//!   quadratic-minimum kernels backing the pruned-search drivers'
//!   admissible candidate bounds;
//! * [`pyramid`] — the multi-resolution image pyramid used by the ASA
//!   stereo substrate's coarse-to-fine search;
//! * [`validity`] — NaN/Inf input quarantine with per-pixel validity
//!   masks that propagate through the pyramid (the fault-tolerance
//!   layer's input gate);
//! * [`warp`] — bilinear sampling and warping by disparity / flow, used to
//!   align stereo views and advect synthetic scenes;
//! * [`flow`] — dense motion ([`flow::FlowField`]) and sparse tracer
//!   representations plus comparison statistics (RMS endpoint error — the
//!   paper's accuracy metric against 32 manual wind barbs);
//! * [`io`] — PGM image and CSV plane output for visual inspection.
//!
//! Everything is `f32`-centric (the MP-2's fast path was single precision;
//! the paper quotes 6.3 GFlops single vs 2.4 GFlops double) but [`Grid`]
//! itself is generic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod border;
pub mod filter;
pub mod flow;
pub mod grid;
pub mod integral;
pub mod io;
pub mod prune;
pub mod pyramid;
pub mod simd;
pub mod validity;
pub mod warp;
pub mod window;

pub use border::BorderPolicy;
pub use flow::{FlowField, FlowStats, Vec2};
pub use grid::Grid;
pub use integral::{IntegralImage, MomentIntegral};
pub use validity::{quarantine, ValidityMask};
pub use window::{CenteredWindow, WindowBounds};

/// Convenience alias for the single-precision planes used throughout the
/// reproduction (intensity images, surface maps, per-pixel geometric
/// variable planes).
pub type Plane = Grid<f32>;
