//! Centered neighborhood windows.
//!
//! The paper phrases every stage in terms of `(2N+1) x (2N+1)` windows
//! centered on a pixel of interest:
//!
//! * surface-fitting neighborhood `(2Nz+1)^2` (Table 1: 5x5),
//! * z-search / hypothesis area `eta_zs`, `(2Nzs+1)^2` (13x13),
//! * z-template `eta_zT`, `(2NzT+1)^2` (121x121),
//! * semi-fluid search `eta_ss`, `(2Nss+1)^2` (3x3),
//! * semi-fluid template `eta_sT`, `(2NsT+1)^2` (5x5).
//!
//! [`CenteredWindow`] captures the half-width `N` and provides iteration
//! over offsets and absolute pixels; [`WindowBounds`] is the clipped
//! bounding box used by the raster-scan read-out in `maspar-sim`.

/// A square window of half-width `n`, spanning `(2n+1) x (2n+1)` pixels
/// centered on a target pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CenteredWindow {
    /// Half-width `N`; the window covers offsets `-N ..= N` on both axes.
    pub n: usize,
}

impl CenteredWindow {
    /// Window of half-width `n`.
    pub const fn new(n: usize) -> Self {
        Self { n }
    }

    /// Window built from an odd side length `s = 2n+1`.
    ///
    /// # Panics
    /// Panics if `s` is even or zero.
    pub fn from_side(s: usize) -> Self {
        assert!(s % 2 == 1, "centered window side must be odd, got {s}");
        Self { n: s / 2 }
    }

    /// Side length `2n+1`.
    #[inline]
    pub const fn side(&self) -> usize {
        2 * self.n + 1
    }

    /// Number of pixels `(2n+1)^2`.
    #[inline]
    pub const fn area(&self) -> usize {
        self.side() * self.side()
    }

    /// Iterate over signed offsets `(dx, dy)` in row-major order
    /// (`dy` outer, `dx` inner, both `-n ..= n`).
    pub fn offsets(&self) -> impl Iterator<Item = (isize, isize)> {
        let n = self.n as isize;
        (-n..=n).flat_map(move |dy| (-n..=n).map(move |dx| (dx, dy)))
    }

    /// Iterate over absolute signed pixel coordinates of the window
    /// centered at `(cx, cy)`, row-major.
    pub fn pixels_at(&self, cx: isize, cy: isize) -> impl Iterator<Item = (isize, isize)> {
        self.offsets().map(move |(dx, dy)| (cx + dx, cy + dy))
    }

    /// The window's clipped bounds when centered at `(cx, cy)` inside a
    /// `width x height` grid. Returns `None` if the window lies entirely
    /// outside the grid.
    pub fn bounds_at(
        &self,
        cx: isize,
        cy: isize,
        width: usize,
        height: usize,
    ) -> Option<WindowBounds> {
        let n = self.n as isize;
        WindowBounds::clipped(cx - n, cy - n, cx + n, cy + n, width, height)
    }

    /// True if the whole window fits inside the grid when centered at
    /// `(cx, cy)` — i.e. no border handling would be required.
    pub fn fits_at(&self, cx: usize, cy: usize, width: usize, height: usize) -> bool {
        cx >= self.n && cy >= self.n && cx + self.n < width && cy + self.n < height
    }
}

/// An inclusive, in-range rectangle `[x0, x1] x [y0, y1]` inside a grid —
/// the "PE bounding box" of the paper's raster-scan read-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowBounds {
    /// Left column (inclusive).
    pub x0: usize,
    /// Top row (inclusive).
    pub y0: usize,
    /// Right column (inclusive).
    pub x1: usize,
    /// Bottom row (inclusive).
    pub y1: usize,
}

impl WindowBounds {
    /// Clip a signed rectangle to grid bounds; `None` if empty after
    /// clipping.
    pub fn clipped(
        x0: isize,
        y0: isize,
        x1: isize,
        y1: isize,
        width: usize,
        height: usize,
    ) -> Option<Self> {
        if width == 0 || height == 0 {
            return None;
        }
        let cx0 = x0.max(0) as usize;
        let cy0 = y0.max(0) as usize;
        if x1 < 0 || y1 < 0 || cx0 >= width || cy0 >= height {
            return None;
        }
        let cx1 = (x1 as usize).min(width - 1);
        let cy1 = (y1 as usize).min(height - 1);
        if cx0 > cx1 || cy0 > cy1 {
            return None;
        }
        Some(Self {
            x0: cx0,
            y0: cy0,
            x1: cx1,
            y1: cy1,
        })
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.x1 - self.x0 + 1
    }

    /// Number of rows.
    #[inline]
    pub fn height(&self) -> usize {
        self.y1 - self.y0 + 1
    }

    /// Number of contained pixels.
    #[inline]
    pub fn area(&self) -> usize {
        self.width() * self.height()
    }

    /// Iterate over contained `(x, y)` pixels in raster-scan order.
    pub fn pixels(&self) -> impl Iterator<Item = (usize, usize)> {
        let (x0, x1) = (self.x0, self.x1);
        (self.y0..=self.y1).flat_map(move |y| (x0..=x1).map(move |x| (x, y)))
    }

    /// True if `(x, y)` lies inside the rectangle.
    #[inline]
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_window_sizes() {
        // Table 1: the Hurricane Frederic windows.
        assert_eq!(CenteredWindow::new(2).side(), 5); // surface fit 5x5
        assert_eq!(CenteredWindow::new(6).side(), 13); // z-search 13x13
        assert_eq!(CenteredWindow::new(60).side(), 121); // z-template 121x121
        assert_eq!(CenteredWindow::new(6).area(), 169); // 169 Gaussian eliminations
        assert_eq!(CenteredWindow::new(60).area(), 14641); // 14641 error terms
    }

    #[test]
    fn from_side_round_trip() {
        for n in 0..10 {
            let w = CenteredWindow::new(n);
            assert_eq!(CenteredWindow::from_side(w.side()), w);
        }
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn from_side_rejects_even() {
        let _ = CenteredWindow::from_side(4);
    }

    #[test]
    fn offsets_cover_square_row_major() {
        let w = CenteredWindow::new(1);
        let offs: Vec<_> = w.offsets().collect();
        assert_eq!(
            offs,
            vec![
                (-1, -1),
                (0, -1),
                (1, -1),
                (-1, 0),
                (0, 0),
                (1, 0),
                (-1, 1),
                (0, 1),
                (1, 1)
            ]
        );
    }

    #[test]
    fn pixels_at_translates_offsets() {
        let w = CenteredWindow::new(1);
        let px: Vec<_> = w.pixels_at(10, 20).collect();
        assert_eq!(px[0], (9, 19));
        assert_eq!(px[4], (10, 20));
        assert_eq!(px[8], (11, 21));
        assert_eq!(px.len(), 9);
    }

    #[test]
    fn fits_at_interior_and_border() {
        let w = CenteredWindow::new(2);
        assert!(w.fits_at(2, 2, 8, 8));
        assert!(w.fits_at(5, 5, 8, 8));
        assert!(!w.fits_at(1, 2, 8, 8));
        assert!(!w.fits_at(2, 6, 8, 8));
    }

    #[test]
    fn bounds_clip_at_corner() {
        let w = CenteredWindow::new(2);
        let b = w.bounds_at(0, 0, 8, 8).unwrap();
        assert_eq!(
            b,
            WindowBounds {
                x0: 0,
                y0: 0,
                x1: 2,
                y1: 2
            }
        );
        assert_eq!(b.area(), 9);
    }

    #[test]
    fn bounds_none_when_fully_outside() {
        let w = CenteredWindow::new(1);
        assert!(w.bounds_at(-5, 0, 8, 8).is_none());
        assert!(w.bounds_at(0, 20, 8, 8).is_none());
        assert!(w.bounds_at(0, 0, 0, 0).is_none());
    }

    #[test]
    fn bounds_pixels_raster_order() {
        let b = WindowBounds {
            x0: 1,
            y0: 2,
            x1: 2,
            y1: 3,
        };
        let px: Vec<_> = b.pixels().collect();
        assert_eq!(px, vec![(1, 2), (2, 2), (1, 3), (2, 3)]);
        assert!(b.contains(2, 3));
        assert!(!b.contains(0, 2));
    }

    #[test]
    fn interior_bounds_match_area() {
        let w = CenteredWindow::new(3);
        let b = w.bounds_at(10, 10, 32, 32).unwrap();
        assert_eq!(b.area(), w.area());
        assert_eq!(b.width(), w.side());
    }
}
