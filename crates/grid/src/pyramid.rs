//! Multi-resolution image pyramids.
//!
//! The ASA stereo substrate is "multiresolution, hierarchical and
//! coarse-to-fine" (paper §2.1): matching starts at a coarse level where
//! disparities are small and reliable, then each finer level refines the
//! up-projected estimate. The paper uses "typically four levels".
//!
//! [`Pyramid::build`] smooths with the 5-tap binomial kernel and decimates
//! by 2 per level (Burt–Adelson Gaussian pyramid).

use std::sync::Arc;

use crate::border::BorderPolicy;
use crate::filter::binomial_smooth;
use crate::grid::Grid;
use crate::warp::sample_bilinear;

static PYRAMID_BUILDS: sma_obs::Counter = sma_obs::Counter::new("grid.pyramid.builds");
static PYRAMID_LEVELS: sma_obs::Counter = sma_obs::Counter::new("grid.pyramid.levels");
/// Bytes of pyramid levels *allocated* by construction (decimated
/// levels, plus level 0 only when the caller handed in a plain
/// reference that had to be copied).
static PYRAMID_BYTES_OWNED: sma_obs::Counter = sma_obs::Counter::new("grid.pyramid.bytes_owned");
/// Bytes of level-0 planes *shared* instead of copied
/// ([`Pyramid::build_arc`]) — the allocation the Arc refactor saves.
static PYRAMID_BYTES_SHARED: sma_obs::Counter = sma_obs::Counter::new("grid.pyramid.bytes_shared");

/// A Gaussian image pyramid; `levels[0]` is full resolution.
///
/// Levels are `Arc`-shared: [`Pyramid::build_arc`] stores the caller's
/// full-resolution plane without copying it (level 0 is by far the
/// largest level — more than 3/4 of the pyramid's footprint), and
/// cloning a pyramid copies pointers only.
#[derive(Debug, Clone)]
pub struct Pyramid {
    levels: Vec<Arc<Grid<f32>>>,
}

impl Pyramid {
    /// Build an `n_levels` pyramid over `img`. Level `k` has dimensions
    /// `ceil(w / 2^k) x ceil(h / 2^k)`. Construction stops early if a level
    /// would fall below 2 pixels on either axis, so the result may have
    /// fewer than `n_levels` levels.
    ///
    /// Level 0 is copied from `img`; callers that already hold the plane
    /// behind an `Arc` should use [`Pyramid::build_arc`], which shares
    /// it instead.
    ///
    /// # Panics
    /// Panics if `n_levels == 0` or the image is empty.
    pub fn build(img: &Grid<f32>, n_levels: usize) -> Self {
        PYRAMID_BYTES_OWNED.add((img.len() * std::mem::size_of::<f32>()) as u64);
        Self::build_levels(Arc::new(img.clone()), n_levels)
    }

    /// [`Pyramid::build`] from an `Arc`-shared full-resolution plane:
    /// level 0 is the shared plane itself, so the largest level is never
    /// copied. The streaming artifact cache hands its per-frame planes
    /// in this way.
    ///
    /// # Panics
    /// Panics if `n_levels == 0` or the image is empty.
    pub fn build_arc(img: Arc<Grid<f32>>, n_levels: usize) -> Self {
        PYRAMID_BYTES_SHARED.add((img.len() * std::mem::size_of::<f32>()) as u64);
        Self::build_levels(img, n_levels)
    }

    fn build_levels(img: Arc<Grid<f32>>, n_levels: usize) -> Self {
        assert!(n_levels > 0, "pyramid needs at least one level");
        assert!(!img.is_empty(), "pyramid of empty image");
        let _span = sma_obs::span("pyramid_build");
        let mut levels = vec![img];
        while levels.len() < n_levels {
            let prev = &levels[levels.len() - 1];
            if prev.width() < 4 || prev.height() < 4 {
                break;
            }
            let next = downsample(prev);
            PYRAMID_BYTES_OWNED.add((next.len() * std::mem::size_of::<f32>()) as u64);
            levels.push(Arc::new(next));
        }
        PYRAMID_BUILDS.incr();
        PYRAMID_LEVELS.add(levels.len() as u64);
        Self { levels }
    }

    /// Number of levels actually built.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Level `k` (0 = finest).
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn level(&self, k: usize) -> &Grid<f32> {
        &self.levels[k]
    }

    /// Level `k` as a shared handle (pointer copy, no pixel copy).
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn level_arc(&self, k: usize) -> Arc<Grid<f32>> {
        Arc::clone(&self.levels[k])
    }

    /// Iterate from coarsest to finest — the order coarse-to-fine search
    /// visits levels.
    pub fn coarse_to_fine(&self) -> impl Iterator<Item = (usize, &Grid<f32>)> {
        self.levels.iter().map(Arc::as_ref).enumerate().rev()
    }
}

/// Smooth-and-decimate by 2: output dims `ceil(w/2) x ceil(h/2)`, taking
/// every even-indexed pixel of the binomially smoothed image.
///
/// With the lane-chunked kernels enabled (the default) this routes
/// through [`crate::simd::downsample_fused`], which skips the odd
/// columns/rows the decimation would discard; the fused path is
/// bit-identical to the smooth-then-sample reference below.
pub fn downsample(img: &Grid<f32>) -> Grid<f32> {
    if crate::simd::enabled() {
        return crate::simd::downsample_fused(img);
    }
    let sm = binomial_smooth(img, BorderPolicy::Reflect);
    let w2 = img.width().div_ceil(2);
    let h2 = img.height().div_ceil(2);
    Grid::from_fn(w2, h2, |x, y| sm.at(2 * x, 2 * y))
}

/// Bilinear upsampling to an explicit target size. Values are sampled at
/// the source coordinates `x * (sw / tw)` so that upsampling a decimated
/// grid approximately inverts [`downsample`]'s index mapping.
pub fn upsample_to(img: &Grid<f32>, tw: usize, th: usize) -> Grid<f32> {
    assert!(tw > 0 && th > 0, "upsample to empty target");
    let sx = img.width() as f32 / tw as f32;
    let sy = img.height() as f32 / th as f32;
    Grid::from_fn(tw, th, |x, y| {
        sample_bilinear(img, x as f32 * sx, y as f32 * sy, BorderPolicy::Clamp)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| x as f32 + 2.0 * y as f32)
    }

    #[test]
    fn four_levels_of_512_like_paper() {
        // The paper's ASA uses typically four resolution levels on 512x512.
        let img = ramp(64, 64); // scaled-down stand-in
        let p = Pyramid::build(&img, 4);
        assert_eq!(p.num_levels(), 4);
        assert_eq!(p.level(0).dims(), (64, 64));
        assert_eq!(p.level(1).dims(), (32, 32));
        assert_eq!(p.level(2).dims(), (16, 16));
        assert_eq!(p.level(3).dims(), (8, 8));
    }

    #[test]
    fn odd_dimensions_round_up() {
        let img = ramp(9, 5);
        let p = Pyramid::build(&img, 2);
        assert_eq!(p.level(1).dims(), (5, 3));
    }

    #[test]
    fn stops_before_degenerate_levels() {
        let img = ramp(8, 8);
        let p = Pyramid::build(&img, 10);
        // 8 -> 4 -> 2, and 2 < 4 stops further decimation.
        assert_eq!(p.num_levels(), 3);
    }

    #[test]
    fn coarse_to_fine_order() {
        let img = ramp(32, 32);
        let p = Pyramid::build(&img, 3);
        let order: Vec<usize> = p.coarse_to_fine().map(|(k, _)| k).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn downsample_preserves_constant() {
        let img = Grid::filled(16, 16, 7.0f32);
        let d = downsample(&img);
        for &v in d.iter() {
            assert!((v - 7.0).abs() < 1e-5);
        }
    }

    #[test]
    fn downsample_approximately_preserves_ramp() {
        // A linear ramp decimated by 2 should sample the smoothed ramp at
        // even indices: value ~ 2x (slope doubles in index space).
        let img = Grid::from_fn(32, 32, |x, _| x as f32);
        let d = downsample(&img);
        for y in 1..d.height() - 1 {
            for x in 1..d.width() - 1 {
                assert!((d.at(x, y) - 2.0 * x as f32).abs() < 0.5);
            }
        }
    }

    #[test]
    fn upsample_inverts_downsample_for_smooth_data() {
        let img = Grid::from_fn(32, 32, |x, y| {
            (x as f32 * 0.2).sin() + (y as f32 * 0.15).cos()
        });
        let d = downsample(&img);
        let u = upsample_to(&d, 32, 32);
        // Smooth content round-trips within a modest tolerance.
        assert!(img.rms_diff(&u) < 0.08, "rms {}", img.rms_diff(&u));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_rejected() {
        let _ = Pyramid::build(&ramp(8, 8), 0);
    }
}
