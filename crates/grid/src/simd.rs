//! Lane-chunked (8-wide) f32 kernels and the runtime SIMD toggle.
//!
//! The paper's target machine was a 16K-PE SIMD array; on a modern CPU
//! the analogue of the PE array is the vector lane. The kernels here are
//! written as explicit 8-wide chunks with a portable scalar tail — plain
//! stable Rust, no intrinsics, no new dependencies — so the compiler can
//! keep each lane independent and vectorize, while every kernel stays
//! **bit-identical** to its scalar reference: per-lane arithmetic is the
//! exact per-pixel expression of the scalar path, and any reduction
//! preserves the scalar accumulation order.
//!
//! The runtime toggle (`SMA_SIMD=off`, or [`set_enabled`]) routes the
//! gated call sites back to their scalar loops; the conformance harness
//! replays every driver under both settings and asserts that not one
//! output bit moves.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::border::BorderPolicy;
use crate::filter::BINOMIAL_5;
use crate::grid::Grid;

/// Lane width of every chunked kernel.
pub const LANES: usize = 8;

/// 8-wide lane operations executed (one count per full chunk of
/// [`LANES`] elements handed to a kernel).
static LANES_USED: sma_obs::Counter = sma_obs::Counter::new("simd.lanes_used");
/// Elements processed by the portable scalar tails (row length mod 8).
static SCALAR_TAIL: sma_obs::Counter = sma_obs::Counter::new("simd.scalar_tail");

/// Record the lane/tail split of one `len`-element kernel row.
#[inline]
pub fn note_row(len: usize) {
    LANES_USED.add((len / LANES) as u64);
    SCALAR_TAIL.add((len % LANES) as u64);
}

/// Toggle state: 0 = uninitialized (consult `SMA_SIMD`), 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// True when the lane-chunked kernels are enabled (the default).
///
/// First call consults the `SMA_SIMD` environment variable: `off`/`0`
/// disables the kernels, `on`/`1` (or unset) enables them
/// (case-insensitive, surrounding whitespace ignored). Anything else
/// warns once on stderr and keeps the default — a typo must not
/// silently change which kernels a run used.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = match std::env::var("SMA_SIMD") {
                Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                    "off" | "0" => false,
                    "on" | "1" | "" => true,
                    _ => {
                        sma_obs::env::warn_misparse(
                            "SMA_SIMD",
                            &v,
                            "on|off (or 1|0)",
                            "SIMD kernels stay on",
                        );
                        true
                    }
                },
                Err(_) => true,
            };
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Set the toggle programmatically (the conformance runtime combos use
/// this to replay every driver with the kernels off).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// `out[i] = a[i] * b[i]`, 8-wide chunks with a scalar tail. Lane
/// products are independent, so this is bit-identical to the scalar
/// loop trivially.
///
/// # Panics
/// Panics if the slice lengths differ.
#[inline]
pub fn mul_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(
        a.len() == b.len() && a.len() == out.len(),
        "length mismatch"
    );
    note_row(a.len());
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let o = c * LANES;
        for l in 0..LANES {
            out[o + l] = a[o + l] * b[o + l];
        }
    }
    for i in chunks * LANES..a.len() {
        out[i] = a[i] * b[i];
    }
}

/// Fused smooth-and-decimate by 2, bit-identical to
/// `binomial_smooth(img, Reflect)` sampled at even pixels (the scalar
/// [`crate::pyramid::downsample`]): the row convolution is evaluated
/// only at even columns (for every row), then the column convolution
/// only at even rows — half the row work and three quarters of the
/// column work of the scalar path, before lane parallelism.
///
/// Per output pixel the five taps accumulate in kernel-index order into
/// an `acc` that starts at zero, exactly like `convolve_rows` /
/// `convolve_cols`; border taps resolve through the same
/// [`BorderPolicy::Reflect`] arithmetic. Identical inputs, identical
/// operation order — identical bits.
pub fn downsample_fused(img: &Grid<f32>) -> Grid<f32> {
    let (w, h) = img.dims();
    let w2 = w.div_ceil(2);
    let h2 = h.div_ceil(2);
    let reflect =
        |v: isize, n: usize| -> usize { BorderPolicy::Reflect.resolve_axis(v, n).unwrap_or(0) };

    // Row pass at even columns, every row: tmp[(x2, y)] = row-convolved
    // image at (2 * x2, y).
    let mut tmp = Grid::filled(w2, h, 0.0f32);
    // Interior output columns: all five taps of source column 2 * x2
    // in range.
    let lo = 1usize.min(w2);
    let hi = if w >= 3 { ((w - 3) / 2 + 1).min(w2) } else { 0 };
    for y in 0..h {
        let src = img.row(y);
        let dst = tmp.row_mut(y);
        for x2 in 0..lo.min(w2) {
            let mut acc = 0.0f32;
            for (i, &kv) in BINOMIAL_5.iter().enumerate() {
                acc += kv * src[reflect(2 * x2 as isize + i as isize - 2, w)];
            }
            dst[x2] = acc;
        }
        if hi > lo {
            note_row(hi - lo);
            let mut x2 = lo;
            while x2 + LANES <= hi {
                let mut acc = [0.0f32; LANES];
                for (i, &kv) in BINOMIAL_5.iter().enumerate() {
                    let base = 2 * x2 + i - 2;
                    for l in 0..LANES {
                        acc[l] += kv * src[base + 2 * l];
                    }
                }
                dst[x2..x2 + LANES].copy_from_slice(&acc);
                x2 += LANES;
            }
            while x2 < hi {
                let mut acc = 0.0f32;
                let base = 2 * x2 - 2;
                for (i, &kv) in BINOMIAL_5.iter().enumerate() {
                    acc += kv * src[base + i];
                }
                dst[x2] = acc;
                x2 += 1;
            }
        }
        for x2 in hi.max(lo)..w2 {
            let mut acc = 0.0f32;
            for (i, &kv) in BINOMIAL_5.iter().enumerate() {
                acc += kv * src[reflect(2 * x2 as isize + i as isize - 2, w)];
            }
            dst[x2] = acc;
        }
    }

    // Column pass at even rows: out[(x2, y2)] = column-convolved tmp at
    // (x2, 2 * y2), reflecting row indices against the full height.
    let mut out = Grid::filled(w2, h2, 0.0f32);
    for y2 in 0..h2 {
        let yc = 2 * y2 as isize;
        let rows: [&[f32]; 5] = [
            tmp.row(reflect(yc - 2, h)),
            tmp.row(reflect(yc - 1, h)),
            tmp.row(reflect(yc, h)),
            tmp.row(reflect(yc + 1, h)),
            tmp.row(reflect(yc + 2, h)),
        ];
        let dst = out.row_mut(y2);
        note_row(w2);
        let chunks = w2 / LANES;
        for c in 0..chunks {
            let o = c * LANES;
            let mut acc = [0.0f32; LANES];
            for (i, &kv) in BINOMIAL_5.iter().enumerate() {
                let r = rows[i];
                for l in 0..LANES {
                    acc[l] += kv * r[o + l];
                }
            }
            dst[o..o + LANES].copy_from_slice(&acc);
        }
        for x2 in chunks * LANES..w2 {
            let mut acc = 0.0f32;
            for (i, &kv) in BINOMIAL_5.iter().enumerate() {
                acc += kv * rows[i][x2];
            }
            dst[x2] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::binomial_smooth;

    #[test]
    fn env_default_is_on_and_toggle_round_trips() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }

    #[test]
    fn mul_into_matches_scalar_at_awkward_lengths() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 31] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos() - 0.5).collect();
            let mut out = vec![0.0f32; n];
            mul_into(&a, &b, &mut out);
            for i in 0..n {
                assert_eq!(out[i].to_bits(), (a[i] * b[i]).to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn fused_downsample_is_bit_identical_to_scalar_reference() {
        // Non-multiple-of-8 widths, odd dims, tiny grids: the fused path
        // must match smooth-then-decimate bit for bit everywhere.
        for (w, h) in [
            (1usize, 1usize),
            (2, 3),
            (5, 5),
            (9, 7),
            (16, 16),
            (33, 21),
            (40, 6),
        ] {
            let img = Grid::from_fn(w, h, |x, y| {
                ((x * 31 + y * 17) % 23) as f32 * 0.4 - 3.0 + (x as f32 * 0.3).sin()
            });
            let sm = binomial_smooth(&img, BorderPolicy::Reflect);
            let scalar = Grid::from_fn(w.div_ceil(2), h.div_ceil(2), |x, y| sm.at(2 * x, 2 * y));
            let fused = downsample_fused(&img);
            assert_eq!(fused.dims(), scalar.dims(), "{w}x{h}");
            for y in 0..scalar.height() {
                for x in 0..scalar.width() {
                    assert_eq!(
                        fused.at(x, y).to_bits(),
                        scalar.at(x, y).to_bits(),
                        "({x},{y}) of {w}x{h}: {} vs {}",
                        fused.at(x, y),
                        scalar.at(x, y)
                    );
                }
            }
        }
    }
}
