//! Dense motion fields and accuracy statistics.
//!
//! The SMA algorithm outputs a dense field of non-rigid correspondences —
//! one displacement per tracked pixel ("a dense motion field for 262144
//! pixels is estimated for each image pair"). The paper validates against
//! 32 manually tracked wind barbs with "a root-mean-squared error of less
//! than one pixel"; [`FlowStats`] computes the same RMS endpoint metric
//! plus mean/max magnitudes and mean angular error.

use crate::grid::Grid;

/// A 2-D displacement in pixels: `u` along `x` (columns), `v` along `y`
/// (rows).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal displacement (pixels).
    pub u: f32,
    /// Vertical displacement (pixels).
    pub v: f32,
}

impl Vec2 {
    /// Construct from components.
    #[inline]
    pub const fn new(u: f32, v: f32) -> Self {
        Self { u, v }
    }

    /// Zero displacement.
    pub const ZERO: Vec2 = Vec2 { u: 0.0, v: 0.0 };

    /// Euclidean magnitude.
    #[inline]
    pub fn magnitude(&self) -> f32 {
        (self.u * self.u + self.v * self.v).sqrt()
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, o: &Vec2) -> f32 {
        self.u * o.u + self.v * o.v
    }

    /// Angle in radians measured from +x axis (atan2 convention).
    #[inline]
    pub fn angle(&self) -> f32 {
        self.v.atan2(self.u)
    }
}

impl std::ops::Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.u + o.u, self.v + o.v)
    }
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.u - o.u, self.v - o.v)
    }
}

impl std::ops::Mul<f32> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f32) -> Vec2 {
        Vec2::new(self.u * s, self.v * s)
    }
}

impl std::ops::Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.u, -self.v)
    }
}

/// A dense per-pixel displacement field.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowField {
    grid: Grid<Vec2>,
}

impl FlowField {
    /// All-zero flow of the given shape.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self {
            grid: Grid::filled(width, height, Vec2::ZERO),
        }
    }

    /// Uniform flow of the given shape.
    pub fn uniform(width: usize, height: usize, v: Vec2) -> Self {
        Self {
            grid: Grid::filled(width, height, v),
        }
    }

    /// Build from a per-pixel function.
    pub fn from_fn(width: usize, height: usize, f: impl FnMut(usize, usize) -> Vec2) -> Self {
        Self {
            grid: Grid::from_fn(width, height, f),
        }
    }

    /// Wrap an existing grid of vectors.
    pub fn from_grid(grid: Grid<Vec2>) -> Self {
        Self { grid }
    }

    /// `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        self.grid.dims()
    }

    /// Field width.
    pub fn width(&self) -> usize {
        self.grid.width()
    }

    /// Field height.
    pub fn height(&self) -> usize {
        self.grid.height()
    }

    /// Displacement at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> Vec2 {
        self.grid.at(x, y)
    }

    /// Set displacement at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: Vec2) {
        self.grid.set(x, y, v);
    }

    /// Underlying grid of vectors.
    pub fn as_grid(&self) -> &Grid<Vec2> {
        &self.grid
    }

    /// Copy every displacement from `src` into this field without
    /// allocating — the refresh half of a double-buffered relaxation
    /// pass (e.g. `fill_invalid`'s back buffer).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn copy_from(&mut self, src: &FlowField) {
        assert_eq!(self.dims(), src.dims(), "flow shape mismatch");
        self.grid
            .as_mut_slice()
            .copy_from_slice(src.grid.as_slice());
    }

    /// The `u` component as a plane.
    pub fn u_plane(&self) -> Grid<f32> {
        self.grid.map(|v| v.u)
    }

    /// The `v` component as a plane.
    pub fn v_plane(&self) -> Grid<f32> {
        self.grid.map(|v| v.v)
    }

    /// Magnitude plane.
    pub fn magnitude_plane(&self) -> Grid<f32> {
        self.grid.map(|v| v.magnitude())
    }

    /// Iterate `((x, y), Vec2)` row-major.
    pub fn enumerate(&self) -> impl Iterator<Item = ((usize, usize), Vec2)> + '_ {
        self.grid.enumerate().map(|(c, &v)| (c, v))
    }

    /// Compare against a reference field over all pixels.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn compare(&self, truth: &FlowField) -> FlowStats {
        assert_eq!(self.dims(), truth.dims(), "flow compare shape mismatch");
        let pairs = self
            .grid
            .iter()
            .zip(truth.grid.iter())
            .map(|(&a, &b)| (a, b));
        FlowStats::from_pairs(pairs)
    }

    /// Compare at a sparse set of pixel locations — the paper's manual
    /// wind-barb protocol (32 tracked particles). Out-of-range points are
    /// skipped.
    pub fn compare_at(&self, truth: &FlowField, points: &[(usize, usize)]) -> FlowStats {
        let pairs =
            points.iter().filter_map(
                |&(x, y)| match (self.grid.get(x, y), truth.grid.get(x, y)) {
                    (Some(&a), Some(&b)) => Some((a, b)),
                    _ => None,
                },
            );
        FlowStats::from_pairs(pairs)
    }
}

/// Accuracy statistics of an estimated flow against a reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowStats {
    /// Number of compared vectors.
    pub count: usize,
    /// Root-mean-squared endpoint error in pixels (the paper's metric).
    pub rms_endpoint: f32,
    /// Mean endpoint error in pixels.
    pub mean_endpoint: f32,
    /// Maximum endpoint error in pixels.
    pub max_endpoint: f32,
    /// Mean absolute angular error in radians, over vectors where both
    /// estimate and truth exceed 0.1 px (angle is meaningless for
    /// near-zero vectors).
    pub mean_angular: f32,
    /// Mean magnitude of the reference field (context for the errors).
    pub mean_truth_magnitude: f32,
}

impl FlowStats {
    /// Aggregate over `(estimate, truth)` pairs.
    pub fn from_pairs(pairs: impl Iterator<Item = (Vec2, Vec2)>) -> Self {
        let mut n = 0usize;
        let mut ss = 0.0f64;
        let mut sum = 0.0f64;
        let mut max = 0.0f32;
        let mut ang_sum = 0.0f64;
        let mut ang_n = 0usize;
        let mut truth_mag = 0.0f64;
        for (est, tru) in pairs {
            let e = (est - tru).magnitude();
            n += 1;
            ss += (e as f64) * (e as f64);
            sum += e as f64;
            max = max.max(e);
            truth_mag += tru.magnitude() as f64;
            if est.magnitude() > 0.1 && tru.magnitude() > 0.1 {
                let cosang = (est.dot(&tru) / (est.magnitude() * tru.magnitude())).clamp(-1.0, 1.0);
                ang_sum += cosang.acos() as f64;
                ang_n += 1;
            }
        }
        if n == 0 {
            return Self {
                count: 0,
                rms_endpoint: 0.0,
                mean_endpoint: 0.0,
                max_endpoint: 0.0,
                mean_angular: 0.0,
                mean_truth_magnitude: 0.0,
            };
        }
        Self {
            count: n,
            rms_endpoint: (ss / n as f64).sqrt() as f32,
            mean_endpoint: (sum / n as f64) as f32,
            max_endpoint: max,
            mean_angular: if ang_n > 0 {
                (ang_sum / ang_n as f64) as f32
            } else {
                0.0
            },
            mean_truth_magnitude: (truth_mag / n as f64) as f32,
        }
    }

    /// The paper's pass criterion: RMS endpoint error under one pixel.
    pub fn subpixel(&self) -> bool {
        self.rms_endpoint < 1.0
    }
}

impl std::fmt::Display for FlowStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} rms={:.3}px mean={:.3}px max={:.3}px ang={:.1}deg truth|v|={:.2}px",
            self.count,
            self.rms_endpoint,
            self.mean_endpoint,
            self.max_endpoint,
            self.mean_angular.to_degrees(),
            self.mean_truth_magnitude
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.magnitude(), 5.0);
        assert_eq!((a + Vec2::new(1.0, -1.0)), Vec2::new(4.0, 3.0));
        assert_eq!((a - a), Vec2::ZERO);
        assert_eq!(a * 2.0, Vec2::new(6.0, 8.0));
        assert_eq!(-a, Vec2::new(-3.0, -4.0));
        assert!((Vec2::new(0.0, 1.0).angle() - std::f32::consts::FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn identical_fields_have_zero_error() {
        let f = FlowField::uniform(8, 8, Vec2::new(1.5, -0.5));
        let s = f.compare(&f);
        assert_eq!(s.count, 64);
        assert_eq!(s.rms_endpoint, 0.0);
        assert!(s.subpixel());
        assert!((s.mean_truth_magnitude - (1.5f32 * 1.5 + 0.25).sqrt()).abs() < 1e-5);
    }

    #[test]
    fn rms_of_constant_offset() {
        let a = FlowField::uniform(4, 4, Vec2::new(1.0, 0.0));
        let b = FlowField::uniform(4, 4, Vec2::new(0.0, 0.0));
        let s = a.compare(&b);
        assert!((s.rms_endpoint - 1.0).abs() < 1e-6);
        assert!((s.mean_endpoint - 1.0).abs() < 1e-6);
        assert_eq!(s.max_endpoint, 1.0);
        assert!(!s.subpixel());
    }

    #[test]
    fn angular_error_of_perpendicular_vectors() {
        let a = FlowField::uniform(2, 2, Vec2::new(1.0, 0.0));
        let b = FlowField::uniform(2, 2, Vec2::new(0.0, 1.0));
        let s = a.compare(&b);
        assert!((s.mean_angular - std::f32::consts::FRAC_PI_2).abs() < 1e-5);
    }

    #[test]
    fn sparse_comparison_uses_only_requested_points() {
        let mut est = FlowField::zeros(8, 8);
        est.set(2, 2, Vec2::new(1.0, 0.0)); // wrong only here
        let truth = FlowField::zeros(8, 8);
        let all = est.compare(&truth);
        assert!(all.rms_endpoint > 0.0);
        let s = est.compare_at(&truth, &[(0, 0), (5, 5)]);
        assert_eq!(s.count, 2);
        assert_eq!(s.rms_endpoint, 0.0);
        // Out-of-range points are skipped, not an error.
        let s2 = est.compare_at(&truth, &[(100, 100), (2, 2)]);
        assert_eq!(s2.count, 1);
        assert_eq!(s2.rms_endpoint, 1.0);
    }

    #[test]
    fn planes_extract_components() {
        let f = FlowField::from_fn(3, 2, |x, y| Vec2::new(x as f32, y as f32));
        assert_eq!(f.u_plane().at(2, 1), 2.0);
        assert_eq!(f.v_plane().at(2, 1), 1.0);
        assert!((f.magnitude_plane().at(2, 1) - (5.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let s = FlowStats::from_pairs(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.rms_endpoint, 0.0);
    }
}
