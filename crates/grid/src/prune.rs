//! Bound kernels for the pruned-search fast path.
//!
//! The pruned driver family (`sma_core::pruned`) rejects hypothesis
//! offsets *before* building their full moment planes by comparing an
//! **admissible lower bound** on each candidate's minimized error
//! against the running best. The bound machinery lives here, beside the
//! summed-area tables it is built from:
//!
//! * [`DecimatedMoments`] — a summed-area table over the **stride-2
//!   even lattice** of a channel plane. A window sum over the even
//!   sub-lattice of a template window is a *subset* of the full window
//!   sum, and a sum of squared residuals over a subset of samples can
//!   never exceed the sum over all of them — which is exactly why the
//!   decimated lattice (and not a blurred pyramid level, whose samples
//!   are *mixtures*) yields an admissible bound.
//! * [`inv3`] / [`quad_min`] — the closed-form minimum of a 3-variable
//!   least-squares quadratic `theta^T A theta - 2 theta^T b + c`,
//!   namely `c - b^T A^-1 b`, clamped at zero. The SMA normal equations
//!   decouple into two such 3 x 3 blocks, so two of these evaluations
//!   bound a candidate's full 6-parameter minimum from below.
//!
//! The runtime toggle (`SMA_PRUNE=off`, or [`set_enabled`]) disarms the
//! screen; the pruned drivers then degrade to a plain raster sweep that
//! is structurally the SIMD driver's loop. The equivalence tests replay
//! scenes under both settings and assert that not one output bit moves.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::integral::MomentIntegral;

/// Toggle state: 0 = uninitialized (consult `SMA_PRUNE`), 1 = off,
/// 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// True when the candidate screen is enabled (the default).
///
/// First call consults the `SMA_PRUNE` environment variable: `off`/`0`
/// disables the screen, `on`/`1` (or unset) enables it
/// (case-insensitive, surrounding whitespace ignored). Anything else
/// warns once on stderr and keeps the default — a typo must not
/// silently change which search a run used.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = match std::env::var("SMA_PRUNE") {
                Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                    "off" | "0" => false,
                    "on" | "1" | "" => true,
                    _ => {
                        sma_obs::env::warn_misparse(
                            "SMA_PRUNE",
                            &v,
                            "on|off (or 1|0)",
                            "candidate screen stays on",
                        );
                        true
                    }
                },
                Err(_) => true,
            };
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Set the toggle programmatically (the prune-on == prune-off identity
/// tests use this to replay scenes with the screen disarmed).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// A summed-area table over the stride-2 even lattice of a `K`-channel
/// plane: cell `(cx, cy)` of the coarse table holds the channel values
/// of fine pixel `(2 cx, 2 cy)`, so any rectangle sum over the coarse
/// table is the sum over the even-coordinate subset of the
/// corresponding fine rectangle — at a quarter of the build cost of the
/// full-resolution table.
#[derive(Debug, Clone)]
pub struct DecimatedMoments<const K: usize> {
    sat: MomentIntegral<K>,
    fine_w: usize,
    fine_h: usize,
}

impl<const K: usize> DecimatedMoments<K> {
    /// Build from a per-fine-pixel channel function, sampled on the
    /// even lattice of a `w x h` plane in one pass.
    pub fn from_fn(w: usize, h: usize, mut f: impl FnMut(usize, usize) -> [f64; K]) -> Self {
        let cw = w.div_ceil(2).max(1);
        let ch = h.div_ceil(2).max(1);
        let sat = MomentIntegral::from_fn(cw, ch, |cx, cy| f(2 * cx, 2 * cy));
        Self {
            sat,
            fine_w: w,
            fine_h: h,
        }
    }

    /// Dimensions of the fine plane the lattice was sampled from.
    pub fn fine_dims(&self) -> (usize, usize) {
        (self.fine_w, self.fine_h)
    }

    /// Per-channel sum over the even-coordinate subset of the
    /// `(2 n + 1)^2` window centered at `(cx, cy)` of the fine plane,
    /// clipped to the plane. `None` when the window contains no even
    /// lattice point (possible only for `n == 0` at an odd coordinate).
    pub fn even_window_sum(&self, cx: usize, cy: usize, n: usize) -> Option<[f64; K]> {
        let x0 = cx.saturating_sub(n);
        let y0 = cy.saturating_sub(n);
        let x1 = (cx + n).min(self.fine_w.saturating_sub(1));
        let y1 = (cy + n).min(self.fine_h.saturating_sub(1));
        // Even x in [x0, x1]  <=>  coarse cx in [ceil(x0/2), floor(x1/2)].
        let cx0 = x0.div_ceil(2);
        let cy0 = y0.div_ceil(2);
        let cx1 = x1 / 2;
        let cy1 = y1 / 2;
        if cx0 > cx1 || cy0 > cy1 {
            return None;
        }
        Some(self.sat.rect_sum(cx0, cy0, cx1, cy1))
    }

    /// Number of even lattice points inside the (clipped) window — the
    /// subset's sample count, for diagnostics and tests.
    pub fn even_window_count(&self, cx: usize, cy: usize, n: usize) -> usize {
        let x0 = cx.saturating_sub(n);
        let y0 = cy.saturating_sub(n);
        let x1 = (cx + n).min(self.fine_w.saturating_sub(1));
        let y1 = (cy + n).min(self.fine_h.saturating_sub(1));
        let nx = (x1 / 2 + 1).saturating_sub(x0.div_ceil(2));
        let ny = (y1 / 2 + 1).saturating_sub(y0.div_ceil(2));
        nx * ny
    }
}

/// Relative determinant tolerance below which a 3 x 3 system is treated
/// as singular (the pixel is then unscreenable and its bound degrades
/// to zero, which never rejects anything).
pub const DET_RTOL: f64 = 1e-12;

/// Invert a symmetric 3 x 3 matrix (row-major) by the adjugate, or
/// `None` when the determinant is non-finite or small relative to the
/// matrix scale. The caller treats `None` as "no usable bound".
pub fn inv3(m: &[f64; 9]) -> Option<[f64; 9]> {
    let c00 = m[4] * m[8] - m[5] * m[7];
    let c01 = m[5] * m[6] - m[3] * m[8];
    let c02 = m[3] * m[7] - m[4] * m[6];
    let det = m[0] * c00 + m[1] * c01 + m[2] * c02;
    // Scale from the row 1-norms: det of a well-conditioned matrix is
    // comparable to their product; a det far below it is numerically
    // singular no matter the absolute magnitudes.
    let scale = (m[0].abs() + m[1].abs() + m[2].abs())
        * (m[3].abs() + m[4].abs() + m[5].abs())
        * (m[6].abs() + m[7].abs() + m[8].abs());
    if !det.is_finite() || !scale.is_finite() || det.abs() <= DET_RTOL * scale {
        return None;
    }
    let inv = [
        c00 / det,
        (m[2] * m[7] - m[1] * m[8]) / det,
        (m[1] * m[5] - m[2] * m[4]) / det,
        c01 / det,
        (m[0] * m[8] - m[2] * m[6]) / det,
        (m[2] * m[3] - m[0] * m[5]) / det,
        c02 / det,
        (m[1] * m[6] - m[0] * m[7]) / det,
        (m[0] * m[4] - m[1] * m[3]) / det,
    ];
    inv.iter().all(|v| v.is_finite()).then_some(inv)
}

/// The minimum of the least-squares quadratic
/// `theta^T A theta - 2 theta^T b + c` over `theta`, given `A^-1`:
/// `c - b^T A^-1 b`, clamped at zero (the quadratic is a sum of squared
/// residuals, so its true minimum is non-negative). Non-finite
/// intermediates collapse to `0.0` — a vacuous bound that rejects
/// nothing, never an unsound one.
#[inline]
pub fn quad_min(c: f64, b: &[f64; 3], inv: &[f64; 9]) -> f64 {
    let ib0 = inv[0] * b[0] + inv[1] * b[1] + inv[2] * b[2];
    let ib1 = inv[3] * b[0] + inv[4] * b[1] + inv[5] * b[2];
    let ib2 = inv[6] * b[0] + inv[7] * b[1] + inv[8] * b[2];
    let m = c - (b[0] * ib0 + b[1] * ib1 + b[2] * ib2);
    if m.is_finite() {
        m.max(0.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(x: usize, y: usize) -> [f64; 2] {
        let v = ((x * 13 + y * 7) % 11) as f64;
        [v * 0.5 - 2.0, (x as f64 - y as f64) * 0.25]
    }

    #[test]
    fn decimated_sums_match_even_lattice_brute_force() {
        for (w, h) in [(9usize, 7usize), (16, 16), (33, 5), (1, 1)] {
            let d = DecimatedMoments::<2>::from_fn(w, h, chan);
            for &(cx, cy, n) in &[(4usize, 3usize, 2usize), (0, 0, 3), (8, 6, 1), (2, 2, 0)] {
                if cx >= w || cy >= h {
                    continue;
                }
                let mut want = [0.0f64; 2];
                let mut count = 0usize;
                for y in cy.saturating_sub(n)..=(cy + n).min(h - 1) {
                    for x in cx.saturating_sub(n)..=(cx + n).min(w - 1) {
                        if x % 2 == 0 && y % 2 == 0 {
                            let v = chan(x, y);
                            want[0] += v[0];
                            want[1] += v[1];
                            count += 1;
                        }
                    }
                }
                assert_eq!(d.even_window_count(cx, cy, n), count, "({cx},{cy}) n={n}");
                match d.even_window_sum(cx, cy, n) {
                    Some(got) => {
                        assert!(count > 0);
                        for k in 0..2 {
                            assert!(
                                (got[k] - want[k]).abs() < 1e-9,
                                "({cx},{cy}) n={n} ch {k}: {got:?} vs {want:?}"
                            );
                        }
                    }
                    None => assert_eq!(count, 0, "({cx},{cy}) n={n}"),
                }
            }
        }
    }

    #[test]
    fn odd_pixel_zero_window_has_no_even_samples() {
        let d = DecimatedMoments::<1>::from_fn(8, 8, |x, y| [(x + y) as f64]);
        assert!(d.even_window_sum(3, 3, 0).is_none());
        assert_eq!(d.even_window_count(3, 3, 0), 0);
        assert!(d.even_window_sum(4, 4, 0).is_some());
    }

    #[test]
    fn inv3_inverts_well_conditioned_matrices() {
        let m = [4.0, 1.0, -0.5, 1.0, 3.0, 0.25, -0.5, 0.25, 2.0];
        let inv = inv3(&m).expect("invertible");
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += m[i * 3 + k] * inv[k * 3 + j];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((s - want).abs() < 1e-12, "({i},{j}): {s}");
            }
        }
    }

    #[test]
    fn inv3_rejects_singular_and_non_finite() {
        // Rank-2: third row is the sum of the first two.
        let m = [1.0, 2.0, 3.0, 2.0, 5.0, 1.0, 3.0, 7.0, 4.0];
        assert!(inv3(&m).is_none());
        let mut nf = m;
        nf[0] = f64::NAN;
        assert!(inv3(&nf).is_none());
        // Scale invariance: a tiny well-conditioned matrix still inverts.
        let tiny = [4e-30, 1e-30, 0.0, 1e-30, 3e-30, 0.0, 0.0, 0.0, 2e-30];
        assert!(inv3(&tiny).is_some());
    }

    #[test]
    fn quad_min_is_the_quadratic_minimum() {
        let a = [4.0, 1.0, -0.5, 1.0, 3.0, 0.25, -0.5, 0.25, 2.0];
        let b = [1.0, -2.0, 0.5];
        let c = 7.0;
        let inv = inv3(&a).expect("invertible");
        let m = quad_min(c, &b, &inv);
        // Sample the quadratic around the analytic argmin: no sampled
        // value may fall below the closed-form minimum.
        let argmin = [
            inv[0] * b[0] + inv[1] * b[1] + inv[2] * b[2],
            inv[3] * b[0] + inv[4] * b[1] + inv[5] * b[2],
            inv[6] * b[0] + inv[7] * b[1] + inv[8] * b[2],
        ];
        let eval = |t: &[f64; 3]| {
            let mut q = c;
            for i in 0..3 {
                let mut row = 0.0;
                for j in 0..3 {
                    row += a[i * 3 + j] * t[j];
                }
                q += t[i] * row - 2.0 * t[i] * b[i];
            }
            q
        };
        assert!((eval(&argmin) - m).abs() < 1e-9);
        for dx in [-0.3, 0.0, 0.4] {
            for dy in [-0.2, 0.1] {
                let t = [argmin[0] + dx, argmin[1] + dy, argmin[2] - dx * dy];
                assert!(eval(&t) + 1e-12 >= m);
            }
        }
    }

    #[test]
    fn quad_min_clamps_at_zero_and_absorbs_non_finite() {
        let inv = inv3(&[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]).expect("identity");
        // c smaller than b^T b: exact-arithmetic negative, clamped.
        assert_eq!(quad_min(1.0, &[2.0, 0.0, 0.0], &inv), 0.0);
        assert_eq!(quad_min(f64::NAN, &[0.0; 3], &inv), 0.0);
        assert_eq!(quad_min(1.0, &[f64::INFINITY, 0.0, 0.0], &inv), 0.0);
    }

    #[test]
    fn toggle_round_trips() {
        let prev = enabled();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(prev);
    }
}
