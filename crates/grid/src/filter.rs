//! Separable filtering and discrete derivatives.
//!
//! The ASA stereo substrate smooths images before decimation (anti-alias)
//! and the synthetic data generator band-limits its cloud textures. The
//! SMA surface-fitting stage needs first derivatives `z_x`, `z_y` of the
//! fitted patches — those come analytically from `sma-surface`; the
//! central-difference gradients here serve the generators and diagnostics.

use crate::border::BorderPolicy;
use crate::grid::Grid;

/// Convolve each row with the 1-D kernel `k` (odd length), then each
/// column, using `policy` at the borders. This is the standard separable
/// convolution; the kernel is applied in correlation orientation (no
/// flip), which is equivalent for the symmetric kernels used here.
///
/// # Panics
/// Panics if the kernel length is even or zero.
pub fn separable_convolve(img: &Grid<f32>, k: &[f32], policy: BorderPolicy) -> Grid<f32> {
    let tmp = convolve_rows(img, k, policy);
    convolve_cols(&tmp, k, policy)
}

/// Convolve rows only with the 1-D kernel `k`.
///
/// # Panics
/// Panics if the kernel length is even or zero.
pub fn convolve_rows(img: &Grid<f32>, k: &[f32], policy: BorderPolicy) -> Grid<f32> {
    assert!(k.len() % 2 == 1, "kernel length must be odd");
    let r = (k.len() / 2) as isize;
    Grid::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f32;
        for (i, &kv) in k.iter().enumerate() {
            let dx = i as isize - r;
            acc += kv * img.at_clamped(x as isize + dx, y as isize, policy);
        }
        acc
    })
}

/// Convolve columns only with the 1-D kernel `k`.
///
/// # Panics
/// Panics if the kernel length is even or zero.
pub fn convolve_cols(img: &Grid<f32>, k: &[f32], policy: BorderPolicy) -> Grid<f32> {
    assert!(k.len() % 2 == 1, "kernel length must be odd");
    let r = (k.len() / 2) as isize;
    Grid::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f32;
        for (i, &kv) in k.iter().enumerate() {
            let dy = i as isize - r;
            acc += kv * img.at_clamped(x as isize, y as isize + dy, policy);
        }
        acc
    })
}

/// The 5-tap binomial kernel `[1 4 6 4 1] / 16` — the classic Burt–Adelson
/// generating kernel used for pyramid construction.
pub const BINOMIAL_5: [f32; 5] = [1.0 / 16.0, 4.0 / 16.0, 6.0 / 16.0, 4.0 / 16.0, 1.0 / 16.0];

/// Smooth with the 5-tap binomial kernel in both directions.
pub fn binomial_smooth(img: &Grid<f32>, policy: BorderPolicy) -> Grid<f32> {
    separable_convolve(img, &BINOMIAL_5, policy)
}

/// Build a normalized 1-D Gaussian kernel with standard deviation `sigma`,
/// truncated at `3 sigma` (minimum radius 1).
///
/// # Panics
/// Panics if `sigma` is not finite and positive.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
    let r = ((3.0 * sigma).ceil() as usize).max(1);
    let mut k: Vec<f32> = (0..=2 * r)
        .map(|i| {
            let d = i as f32 - r as f32;
            (-0.5 * d * d / (sigma * sigma)).exp()
        })
        .collect();
    let s: f32 = k.iter().sum();
    for v in &mut k {
        *v /= s;
    }
    k
}

/// Gaussian smoothing with standard deviation `sigma`.
pub fn gaussian_smooth(img: &Grid<f32>, sigma: f32, policy: BorderPolicy) -> Grid<f32> {
    separable_convolve(img, &gaussian_kernel(sigma), policy)
}

/// Central-difference gradient `(d/dx, d/dy)` planes.
pub fn gradient(img: &Grid<f32>, policy: BorderPolicy) -> (Grid<f32>, Grid<f32>) {
    let gx = Grid::from_fn(img.width(), img.height(), |x, y| {
        0.5 * (img.at_clamped(x as isize + 1, y as isize, policy)
            - img.at_clamped(x as isize - 1, y as isize, policy))
    });
    let gy = Grid::from_fn(img.width(), img.height(), |x, y| {
        0.5 * (img.at_clamped(x as isize, y as isize + 1, policy)
            - img.at_clamped(x as isize, y as isize - 1, policy))
    });
    (gx, gy)
}

/// Box mean over a `(2n+1) x (2n+1)` window (used by NCC normalization).
pub fn box_mean(img: &Grid<f32>, n: usize, policy: BorderPolicy) -> Grid<f32> {
    let side = 2 * n + 1;
    let k = vec![1.0 / side as f32; side];
    separable_convolve(img, &k, policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant(v: f32) -> Grid<f32> {
        Grid::filled(9, 7, v)
    }

    #[test]
    fn binomial_preserves_constants() {
        let img = constant(3.5);
        let out = binomial_smooth(&img, BorderPolicy::Clamp);
        for &v in out.iter() {
            assert!((v - 3.5).abs() < 1e-5);
        }
    }

    #[test]
    fn gaussian_kernel_normalized_and_symmetric() {
        let k = gaussian_kernel(1.3);
        let s: f32 = k.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        for i in 0..k.len() / 2 {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-6);
        }
        assert!(k.len() % 2 == 1);
    }

    #[test]
    fn gaussian_smooth_reduces_variance() {
        // A checkerboard has maximal high-frequency energy; smoothing must
        // pull values toward the mean.
        let img = Grid::from_fn(16, 16, |x, y| if (x + y) % 2 == 0 { 1.0 } else { 0.0 });
        let out = gaussian_smooth(&img, 1.0, BorderPolicy::Reflect);
        let var_in: f32 = img.iter().map(|v| (v - 0.5) * (v - 0.5)).sum();
        let var_out: f32 = out.iter().map(|v| (v - 0.5) * (v - 0.5)).sum();
        assert!(var_out < 0.1 * var_in);
    }

    #[test]
    fn gradient_of_linear_ramp_is_exact() {
        let img = Grid::from_fn(8, 8, |x, y| 2.0 * x as f32 - 3.0 * y as f32);
        let (gx, gy) = gradient(&img, BorderPolicy::Clamp);
        // Interior pixels see the exact slope.
        for y in 1..7 {
            for x in 1..7 {
                assert!((gx.at(x, y) - 2.0).abs() < 1e-5);
                assert!((gy.at(x, y) + 3.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn box_mean_of_impulse_spreads_uniformly() {
        let mut img = Grid::filled(7, 7, 0.0f32);
        img.set(3, 3, 9.0);
        let out = box_mean(&img, 1, BorderPolicy::Constant);
        for (dx, dy) in CenteredOffsets::new(1) {
            let v = out.at((3 + dx) as usize, (3 + dy) as usize);
            assert!(
                (v - 1.0).abs() < 1e-5,
                "expected 1.0 at offset ({dx},{dy}), got {v}"
            );
        }
        assert!(out.at(0, 0).abs() < 1e-6);
    }

    #[test]
    fn convolve_rows_identity_kernel() {
        let img = Grid::from_fn(5, 4, |x, y| (x * 10 + y) as f32);
        let out = convolve_rows(&img, &[0.0, 1.0, 0.0], BorderPolicy::Clamp);
        assert_eq!(out, img);
    }

    #[test]
    #[should_panic(expected = "kernel length must be odd")]
    fn even_kernel_rejected() {
        let img = constant(0.0);
        let _ = convolve_rows(&img, &[0.5, 0.5], BorderPolicy::Clamp);
    }

    /// Tiny local helper: offsets of a centered window (avoids a circular
    /// dev-dependency on the window module in this test).
    struct CenteredOffsets {
        n: isize,
        i: isize,
    }
    impl CenteredOffsets {
        fn new(n: isize) -> Self {
            Self { n, i: 0 }
        }
    }
    impl Iterator for CenteredOffsets {
        type Item = (isize, isize);
        fn next(&mut self) -> Option<Self::Item> {
            let side = 2 * self.n + 1;
            if self.i >= side * side {
                return None;
            }
            let dx = self.i % side - self.n;
            let dy = self.i / side - self.n;
            self.i += 1;
            Some((dx, dy))
        }
    }
}
