//! Input-pixel quarantine and validity masks.
//!
//! Operational satellite imagery arrives with dropouts: dead scan
//! lines, saturated detectors, transmission gaps. Upstream of the SMA
//! pipeline these appear as NaN/Inf pixels, and a single non-finite
//! value poisons every window sum it touches. [`quarantine`] repairs a
//! plane — each non-finite pixel is replaced by the mean of its finite
//! 8-neighbors (or 0 when fully surrounded by bad pixels) — and returns
//! a [`ValidityMask`] recording which pixels were repaired so
//! downstream consumers can discount them. The mask propagates through
//! the pyramid via [`ValidityMask::downsample`]: a coarse pixel is
//! valid only if every fine pixel it draws on was valid.
//!
//! On a clean plane [`quarantine`] touches nothing and returns the
//! input unchanged — zero-fault runs stay bit-identical.

use std::sync::Arc;

use crate::grid::Grid;

/// Count of non-finite pixels repaired across all quarantine passes.
static QUARANTINED: sma_obs::Counter = sma_obs::Counter::new("grid.validity.quarantined");
/// Bytes of mask-pyramid levels allocated (downsampled levels, plus a
/// copied level 0 when built from a plain reference).
static MASK_BYTES_OWNED: sma_obs::Counter = sma_obs::Counter::new("grid.validity.bytes_owned");
/// Bytes of level-0 masks shared instead of copied
/// ([`ValidityMask::pyramid_arc`]).
static MASK_BYTES_SHARED: sma_obs::Counter = sma_obs::Counter::new("grid.validity.bytes_shared");

/// A per-pixel validity bitmap paired with a plane of the same shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidityMask {
    mask: Grid<bool>,
}

impl ValidityMask {
    /// An all-valid mask of the given shape.
    pub fn all_valid(width: usize, height: usize) -> Self {
        Self {
            mask: Grid::filled(width, height, true),
        }
    }

    /// Mask dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        self.mask.dims()
    }

    /// Whether the pixel at `(x, y)` held finite data.
    #[inline]
    pub fn is_valid(&self, x: usize, y: usize) -> bool {
        self.mask.at(x, y)
    }

    /// Mark `(x, y)` invalid.
    pub fn invalidate(&mut self, x: usize, y: usize) {
        self.mask.set(x, y, false);
    }

    /// Number of invalid pixels.
    pub fn count_invalid(&self) -> usize {
        self.mask.iter().filter(|&&v| !v).count()
    }

    /// Fraction of valid pixels (1.0 for a clean plane).
    pub fn fraction_valid(&self) -> f64 {
        let (w, h) = self.mask.dims();
        if w * h == 0 {
            return 1.0;
        }
        1.0 - self.count_invalid() as f64 / (w * h) as f64
    }

    /// True when every pixel is valid.
    pub fn is_all_valid(&self) -> bool {
        self.mask.iter().all(|&v| v)
    }

    /// Whether the whole `(2n+1) x (2n+1)` window centered at `(x, y)`
    /// (clamped at the borders) is valid — the check drivers use before
    /// trusting a window sum over repaired data.
    pub fn window_valid(&self, x: usize, y: usize, n: usize) -> bool {
        let (w, h) = self.mask.dims();
        let ni = n as isize;
        for dy in -ni..=ni {
            for dx in -ni..=ni {
                let cx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                let cy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                if !self.mask.at(cx, cy) {
                    return false;
                }
            }
        }
        true
    }

    /// Merge with another mask of the same shape: a pixel is valid only
    /// if valid in both.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn intersect(&self, other: &ValidityMask) -> ValidityMask {
        assert_eq!(self.dims(), other.dims(), "validity mask shape mismatch");
        let (w, h) = self.dims();
        ValidityMask {
            mask: Grid::from_fn(w, h, |x, y| self.mask.at(x, y) && other.mask.at(x, y)),
        }
    }

    /// Decimate by 2 to match [`crate::pyramid::downsample`]'s index
    /// mapping (`ceil(w/2) x ceil(h/2)`, even source indices). The
    /// binomial smoothing mixes each coarse pixel from a 5x5 fine
    /// neighborhood, so a coarse pixel is valid only if that whole
    /// (clamped) neighborhood was — conservative propagation.
    pub fn downsample(&self) -> ValidityMask {
        let (w, h) = self.dims();
        let w2 = w.div_ceil(2);
        let h2 = h.div_ceil(2);
        ValidityMask {
            mask: Grid::from_fn(w2, h2, |x, y| self.window_valid(2 * x, 2 * y, 2)),
        }
    }

    /// The mask for every pyramid level (`levels[0]` = this mask),
    /// matching a [`crate::pyramid::Pyramid`] of `n_levels` built on the
    /// paired plane (the same early-stop rule applies). Level 0 is a
    /// copy of `self`; callers that already hold the mask behind an
    /// `Arc` should use [`ValidityMask::pyramid_arc`], which shares it.
    pub fn pyramid(&self, n_levels: usize) -> Vec<Arc<ValidityMask>> {
        let (w, h) = self.dims();
        MASK_BYTES_OWNED.add((w * h) as u64);
        Self::pyramid_levels(Arc::new(self.clone()), n_levels)
    }

    /// [`ValidityMask::pyramid`] from a shared full-resolution mask:
    /// level 0 is the shared mask itself, never copied — the analog of
    /// [`crate::pyramid::Pyramid::build_arc`] for validity planes.
    pub fn pyramid_arc(this: &Arc<ValidityMask>, n_levels: usize) -> Vec<Arc<ValidityMask>> {
        let (w0, h0) = this.dims();
        MASK_BYTES_SHARED.add((w0 * h0) as u64);
        Self::pyramid_levels(Arc::clone(this), n_levels)
    }

    fn pyramid_levels(level0: Arc<ValidityMask>, n_levels: usize) -> Vec<Arc<ValidityMask>> {
        let mut levels = vec![level0];
        while levels.len() < n_levels {
            let prev = &levels[levels.len() - 1];
            let (w, h) = prev.dims();
            if w < 4 || h < 4 {
                break;
            }
            let next = prev.downsample();
            MASK_BYTES_OWNED.add((next.dims().0 * next.dims().1) as u64);
            levels.push(Arc::new(next));
        }
        levels
    }
}

/// Repair non-finite pixels of `img`, returning the cleaned plane, the
/// validity mask, and the number of pixels quarantined. Clean inputs
/// return an unmodified clone and an all-valid mask.
pub fn quarantine(img: &Grid<f32>) -> (Grid<f32>, ValidityMask, u64) {
    let (w, h) = img.dims();
    let mut mask = ValidityMask::all_valid(w, h);
    let mut bad: Vec<(usize, usize)> = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if !img.at(x, y).is_finite() {
                mask.invalidate(x, y);
                bad.push((x, y));
            }
        }
    }
    if bad.is_empty() {
        return (img.clone(), mask, 0);
    }
    // The telemetry atlas records *where* inputs were untrustworthy.
    sma_obs::atlas::mark_batch(sma_obs::atlas::AtlasChannel::Quarantine, &bad);

    // Repair from the original plane so the result is independent of
    // repair order; a bad pixel whose whole neighborhood is bad gets 0.
    let mut out = img.clone();
    for &(x, y) in &bad {
        let mut sum = 0.0f64;
        let mut count = 0u32;
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                if (dx, dy) == (0, 0) {
                    continue;
                }
                let cx = x as isize + dx;
                let cy = y as isize + dy;
                if cx < 0 || cy < 0 || cx >= w as isize || cy >= h as isize {
                    continue;
                }
                let v = img.at(cx as usize, cy as usize);
                if v.is_finite() {
                    sum += v as f64;
                    count += 1;
                }
            }
        }
        let repaired = if count > 0 {
            (sum / count as f64) as f32
        } else {
            0.0
        };
        out.set(x, y, repaired);
    }
    QUARANTINED.add(bad.len() as u64);
    (out, mask, bad.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plane_untouched() {
        let img = Grid::from_fn(8, 8, |x, y| (x * 3 + y) as f32);
        let (out, mask, n) = quarantine(&img);
        assert_eq!(n, 0);
        assert!(mask.is_all_valid());
        assert_eq!(mask.fraction_valid(), 1.0);
        for (a, b) in img.iter().zip(out.iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "clean pixels must be bit-identical"
            );
        }
    }

    #[test]
    fn nan_and_inf_repaired_from_neighbors() {
        let mut img = Grid::filled(8, 8, 2.0f32);
        img.set(3, 3, f32::NAN);
        img.set(5, 5, f32::INFINITY);
        img.set(0, 0, f32::NEG_INFINITY);
        let (out, mask, n) = quarantine(&img);
        assert_eq!(n, 3);
        assert_eq!(mask.count_invalid(), 3);
        assert!(!mask.is_valid(3, 3));
        assert!(mask.is_valid(4, 4));
        for &v in out.iter() {
            assert!(v.is_finite());
        }
        assert_eq!(out.at(3, 3), 2.0, "mean of finite neighbors");
        assert_eq!(out.at(0, 0), 2.0, "corner repaired from 3 neighbors");
    }

    #[test]
    fn fully_bad_neighborhood_repairs_to_zero() {
        let img = Grid::filled(4, 4, f32::NAN);
        let (out, mask, n) = quarantine(&img);
        assert_eq!(n, 16);
        assert_eq!(mask.count_invalid(), 16);
        for &v in out.iter() {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn repair_is_order_independent() {
        // Two adjacent NaNs: each repairs from the *original* finite
        // neighbors only, not from each other's repaired value.
        let mut img = Grid::filled(6, 6, 4.0f32);
        img.set(2, 2, f32::NAN);
        img.set(3, 2, f32::NAN);
        let (out, _, _) = quarantine(&img);
        assert_eq!(out.at(2, 2), 4.0);
        assert_eq!(out.at(3, 2), 4.0);
    }

    #[test]
    fn window_valid_checks_neighborhood() {
        let mut img = Grid::filled(10, 10, 1.0f32);
        img.set(5, 5, f32::NAN);
        let (_, mask, _) = quarantine(&img);
        assert!(!mask.window_valid(4, 4, 1));
        assert!(!mask.window_valid(5, 5, 0));
        assert!(mask.window_valid(2, 2, 1));
        assert!(!mask.window_valid(7, 7, 2));
        assert!(mask.window_valid(8, 8, 1));
    }

    #[test]
    fn downsample_is_conservative_and_shape_matched() {
        let mut img = Grid::filled(16, 16, 1.0f32);
        img.set(6, 6, f32::NAN);
        let (clean, mask, _) = quarantine(&img);
        let down = mask.downsample();
        let coarse = crate::pyramid::downsample(&clean);
        assert_eq!(down.dims(), coarse.dims());
        // Coarse pixel (3, 3) samples fine (6, 6): invalid.
        assert!(!down.is_valid(3, 3));
        // Far corner untouched by the 5x5 support of (6, 6).
        assert!(down.is_valid(0, 0));
        assert!(down.is_valid(7, 7));
    }

    #[test]
    fn pyramid_masks_match_pyramid_levels() {
        let mut img = Grid::from_fn(32, 32, |x, y| (x + y) as f32);
        img.set(10, 10, f32::NAN);
        let (clean, mask, _) = quarantine(&img);
        let pyr = crate::pyramid::Pyramid::build(&clean, 4);
        let masks = mask.pyramid(4);
        assert_eq!(masks.len(), pyr.num_levels());
        for (k, m) in masks.iter().enumerate() {
            assert_eq!(m.dims(), pyr.level(k).dims(), "level {k}");
        }
        assert!(!masks[1].is_valid(5, 5));
    }

    #[test]
    fn intersect_combines() {
        let mut a = ValidityMask::all_valid(4, 4);
        let mut b = ValidityMask::all_valid(4, 4);
        a.invalidate(1, 1);
        b.invalidate(2, 2);
        let c = a.intersect(&b);
        assert!(!c.is_valid(1, 1));
        assert!(!c.is_valid(2, 2));
        assert!(c.is_valid(0, 0));
        assert_eq!(c.count_invalid(), 2);
    }
}
