//! Border handling for neighborhood operations.
//!
//! Every step of the SMA algorithm reads `(2N+1) x (2N+1)` neighborhoods
//! centered on a pixel; near the image border parts of those windows fall
//! outside the array. The paper sidesteps the issue by reporting results
//! away from the border (and because the 121x121 z-template makes a wide
//! apron anyway); we make the policy explicit so every consumer states how
//! it treats the apron.

/// How out-of-range coordinates are resolved when reading a neighborhood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BorderPolicy {
    /// Clamp to the nearest edge pixel (replicate border).
    Clamp,
    /// Mirror across the edge without repeating the edge pixel
    /// (`-1 -> 1`, `-2 -> 2`, `w -> w-2`).
    Reflect,
    /// Wrap around toroidally (`-1 -> w-1`), matching the MasPar X-net
    /// mesh's toroidal connections.
    Wrap,
    /// Out-of-range reads yield a caller-supplied constant.
    Constant,
}

impl BorderPolicy {
    /// Resolve signed `(x, y)` against a `width x height` grid.
    ///
    /// Returns in-range indices, or `None` for [`BorderPolicy::Constant`]
    /// when the point is outside (the caller substitutes its constant).
    ///
    /// # Panics
    /// Panics if `width` or `height` is zero — a border policy over an
    /// empty grid has no meaning.
    #[inline]
    pub fn resolve(
        self,
        x: isize,
        y: isize,
        width: usize,
        height: usize,
    ) -> Option<(usize, usize)> {
        assert!(width > 0 && height > 0, "border resolve on empty grid");
        let rx = self.resolve_axis(x, width)?;
        let ry = self.resolve_axis(y, height)?;
        Some((rx, ry))
    }

    /// Resolve a single signed coordinate against an axis of length `n`.
    #[inline]
    pub fn resolve_axis(self, v: isize, n: usize) -> Option<usize> {
        let n_i = n as isize;
        if v >= 0 && v < n_i {
            return Some(v as usize);
        }
        match self {
            BorderPolicy::Clamp => Some(v.clamp(0, n_i - 1) as usize),
            BorderPolicy::Reflect => {
                if n == 1 {
                    return Some(0);
                }
                // Reflect with period 2(n-1): ... 2 1 0 1 2 ... n-2 n-1 n-2 ...
                let period = 2 * (n_i - 1);
                let mut m = v.rem_euclid(period);
                if m >= n_i {
                    m = period - m;
                }
                Some(m as usize)
            }
            BorderPolicy::Wrap => Some(v.rem_euclid(n_i) as usize),
            BorderPolicy::Constant => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_identity_for_all_policies() {
        for p in [
            BorderPolicy::Clamp,
            BorderPolicy::Reflect,
            BorderPolicy::Wrap,
            BorderPolicy::Constant,
        ] {
            assert_eq!(p.resolve_axis(3, 8), Some(3));
            assert_eq!(p.resolve(2, 5, 8, 8), Some((2, 5)));
        }
    }

    #[test]
    fn clamp_pins_to_edges() {
        assert_eq!(BorderPolicy::Clamp.resolve_axis(-5, 4), Some(0));
        assert_eq!(BorderPolicy::Clamp.resolve_axis(9, 4), Some(3));
    }

    #[test]
    fn reflect_mirrors_without_repeating_edge() {
        let p = BorderPolicy::Reflect;
        assert_eq!(p.resolve_axis(-1, 4), Some(1));
        assert_eq!(p.resolve_axis(-2, 4), Some(2));
        assert_eq!(p.resolve_axis(4, 4), Some(2));
        assert_eq!(p.resolve_axis(5, 4), Some(1));
        // Full period round trip.
        assert_eq!(p.resolve_axis(6, 4), Some(0));
        assert_eq!(p.resolve_axis(-6, 4), Some(0));
    }

    #[test]
    fn reflect_singleton_axis() {
        assert_eq!(BorderPolicy::Reflect.resolve_axis(-3, 1), Some(0));
        assert_eq!(BorderPolicy::Reflect.resolve_axis(7, 1), Some(0));
    }

    #[test]
    fn wrap_is_toroidal() {
        assert_eq!(BorderPolicy::Wrap.resolve_axis(-1, 4), Some(3));
        assert_eq!(BorderPolicy::Wrap.resolve_axis(4, 4), Some(0));
        assert_eq!(BorderPolicy::Wrap.resolve_axis(-5, 4), Some(3));
    }

    #[test]
    fn constant_yields_none_outside() {
        assert_eq!(BorderPolicy::Constant.resolve_axis(-1, 4), None);
        assert_eq!(BorderPolicy::Constant.resolve(0, 4, 4, 4), None);
        assert_eq!(BorderPolicy::Constant.resolve(3, 3, 4, 4), Some((3, 3)));
    }

    #[test]
    fn reflect_always_in_range() {
        for n in 1usize..6 {
            for v in -20isize..20 {
                let r = BorderPolicy::Reflect.resolve_axis(v, n).unwrap();
                assert!(r < n, "reflect({v}, {n}) = {r} out of range");
            }
        }
    }
}
