//! Dense row-major 2-D grid container.
//!
//! [`Grid`] is the fundamental array type of the reproduction: images,
//! surface maps, per-pixel parameter planes and PE-array register planes
//! are all grids. Coordinates follow the paper's convention:
//! `x` is the column index in `0..N` (width) and `y` is the row index in
//! `0..M` (height), matching `I(x, y, t)` with `x = 0..N-1`, `y = 0..M-1`.

use crate::border::BorderPolicy;

/// A dense, row-major 2-D array.
///
/// Element `(x, y)` lives at linear index `y * width + x`. The container
/// is deliberately simple — contiguous storage, no strides — because the
/// MasPar data-mapping code in `maspar-sim` needs to reason about exact
/// memory layout when folding grids onto the PE array.
#[derive(Clone, PartialEq)]
pub struct Grid<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for Grid<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Grid {}x{} [", self.width, self.height)?;
        for y in 0..self.height.min(8) {
            write!(f, "  ")?;
            for x in 0..self.width.min(8) {
                write!(f, "{:?} ", self.data[y * self.width + x])?;
            }
            writeln!(f, "{}", if self.width > 8 { "..." } else { "" })?;
        }
        if self.height > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl<T: Clone + Default> Grid<T> {
    /// Create a `width x height` grid filled with `T::default()`.
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, T::default())
    }
}

impl<T: Clone> Grid<T> {
    /// Create a grid filled with copies of `value`.
    pub fn filled(width: usize, height: usize, value: T) -> Self {
        Self {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Extract the rectangle `[x0, x0+w) x [y0, y0+h)` as a new grid.
    ///
    /// # Panics
    /// Panics if the rectangle is not fully inside the grid.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Self {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop out of bounds"
        );
        let mut data = Vec::with_capacity(w * h);
        for y in y0..y0 + h {
            data.extend_from_slice(&self.data[y * self.width + x0..y * self.width + x0 + w]);
        }
        Self {
            width: w,
            height: h,
            data,
        }
    }
}

impl<T> Grid<T> {
    /// Build a grid by evaluating `f(x, y)` at every pixel (row-major order).
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Self {
            width,
            height,
            data,
        }
    }

    /// Wrap an existing row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), width * height, "grid data length mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    /// Grid width `N` (number of columns; valid `x` is `0..width`).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height `M` (number of rows; valid `y` is `0..height`).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of elements (`width * height`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// True if `(x, y)` lies inside the grid.
    #[inline]
    pub fn contains(&self, x: isize, y: isize) -> bool {
        x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height
    }

    /// Reference to element `(x, y)`; `None` if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Option<&T> {
        if x < self.width && y < self.height {
            Some(&self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Mutable reference to element `(x, y)`; `None` if out of bounds.
    #[inline]
    pub fn get_mut(&mut self, x: usize, y: usize) -> Option<&mut T> {
        if x < self.width && y < self.height {
            Some(&mut self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Immutable view of the backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing row-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the grid, returning the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Row `y` as a slice.
    ///
    /// # Panics
    /// Panics if `y >= height`.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        assert!(y < self.height, "row index out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Mutable row `y`.
    ///
    /// # Panics
    /// Panics if `y >= height`.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        assert!(y < self.height, "row index out of bounds");
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// Iterate over `((x, y), &value)` in row-major order.
    pub fn enumerate(&self) -> impl Iterator<Item = ((usize, usize), &T)> {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| ((i % w, i / w), v))
    }

    /// Iterate over values in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Iterate mutably over values in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Apply `f` to every element, producing a new grid of the same shape.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Grid<U> {
        Grid {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Combine two same-shaped grids element-wise.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn zip_map<U, V>(&self, other: &Grid<U>, mut f: impl FnMut(&T, &U) -> V) -> Grid<V> {
        assert_eq!(self.dims(), other.dims(), "zip_map shape mismatch");
        Grid {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(a, b))
                .collect(),
        }
    }
}

impl<T: Copy> Grid<T> {
    /// Element `(x, y)` by value.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> T {
        assert!(
            x < self.width && y < self.height,
            "grid index out of bounds"
        );
        self.data[y * self.width + x]
    }

    /// Set element `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        assert!(
            x < self.width && y < self.height,
            "grid index out of bounds"
        );
        self.data[y * self.width + x] = v;
    }

    /// Element at signed coordinates, resolving out-of-range indices with
    /// `policy`. For [`BorderPolicy::Constant`] the fallback `cval` is
    /// returned outside the grid.
    #[inline]
    pub fn at_border(&self, x: isize, y: isize, policy: BorderPolicy, cval: T) -> T {
        match policy.resolve(x, y, self.width, self.height) {
            Some((rx, ry)) => self.data[ry * self.width + rx],
            None => cval,
        }
    }

    /// Transpose the grid (width and height swap).
    pub fn transposed(&self) -> Self {
        Grid::from_fn(self.height, self.width, |x, y| self.at(y, x))
    }
}

impl Grid<f32> {
    /// Element at signed coordinates with the given policy, returning `0.0`
    /// outside for [`BorderPolicy::Constant`].
    #[inline]
    pub fn at_clamped(&self, x: isize, y: isize, policy: BorderPolicy) -> f32 {
        self.at_border(x, y, policy, 0.0)
    }

    /// Minimum and maximum values; `(0, 0)` for empty grids. NaN values are
    /// ignored so a stray NaN does not poison normalization.
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo > hi {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Mean of all elements (0 for empty grids).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.data.iter().map(|&v| v as f64).sum();
        (sum / self.data.len() as f64) as f32
    }

    /// Root-mean-square difference between two same-shaped planes.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn rms_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.dims(), other.dims(), "rms_diff shape mismatch");
        if self.data.is_empty() {
            return 0.0;
        }
        let ss: f64 = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum();
        (ss / self.data.len() as f64).sqrt() as f32
    }

    /// Maximum absolute difference between two same-shaped planes.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.dims(), other.dims(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Rescale values linearly so the range maps onto `[lo, hi]`.
    /// A constant plane maps to `lo`.
    pub fn normalized(&self, lo: f32, hi: f32) -> Self {
        let (mn, mx) = self.min_max();
        let span = mx - mn;
        if span <= 0.0 {
            return Grid::filled(self.width, self.height, lo);
        }
        self.map(|&v| lo + (v - mn) / span * (hi - lo))
    }
}

impl<T> std::ops::Index<(usize, usize)> for Grid<T> {
    type Output = T;
    #[inline]
    fn index(&self, (x, y): (usize, usize)) -> &T {
        assert!(
            x < self.width && y < self.height,
            "grid index out of bounds"
        );
        &self.data[y * self.width + x]
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, (x, y): (usize, usize)) -> &mut T {
        assert!(
            x < self.width && y < self.height,
            "grid index out of bounds"
        );
        &mut self.data[y * self.width + x]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_row_major_layout() {
        let g = Grid::from_fn(3, 2, |x, y| (x, y));
        assert_eq!(
            g.as_slice(),
            &[(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]
        );
    }

    #[test]
    fn index_roundtrip() {
        let mut g: Grid<i32> = Grid::new(4, 3);
        g.set(2, 1, 7);
        assert_eq!(g.at(2, 1), 7);
        assert_eq!(g[(2, 1)], 7);
        g[(3, 2)] = -1;
        assert_eq!(g.at(3, 2), -1);
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let g: Grid<u8> = Grid::new(2, 2);
        assert!(g.get(2, 0).is_none());
        assert!(g.get(0, 2).is_none());
        assert!(g.get(1, 1).is_some());
    }

    #[test]
    #[should_panic(expected = "grid index out of bounds")]
    fn at_panics_out_of_bounds() {
        let g: Grid<u8> = Grid::new(2, 2);
        let _ = g.at(2, 0);
    }

    #[test]
    fn rows_are_contiguous() {
        let g = Grid::from_fn(3, 3, |x, y| (10 * y + x) as i32);
        assert_eq!(g.row(1), &[10, 11, 12]);
    }

    #[test]
    fn enumerate_order_and_coords() {
        let g = Grid::from_fn(2, 2, |x, y| x + 10 * y);
        let coords: Vec<_> = g.enumerate().map(|(c, _)| c).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
        for ((x, y), &v) in g.enumerate() {
            assert_eq!(v, x + 10 * y);
        }
    }

    #[test]
    fn map_and_zip_map() {
        let a = Grid::from_fn(2, 2, |x, y| (x + y) as f32);
        let b = a.map(|v| v * 2.0);
        let c = a.zip_map(&b, |x, y| y - x);
        for (_, &v) in c.enumerate().zip(a.iter()).map(|(e, _)| e) {
            assert!(v >= 0.0);
        }
        assert_eq!(c.at(1, 1), 2.0);
    }

    #[test]
    fn crop_extracts_rectangle() {
        let g = Grid::from_fn(4, 4, |x, y| 10 * y + x);
        let c = g.crop(1, 2, 2, 2);
        assert_eq!(c.dims(), (2, 2));
        assert_eq!(c.as_slice(), &[21, 22, 31, 32]);
    }

    #[test]
    fn transpose_swaps_axes() {
        let g = Grid::from_fn(3, 2, |x, y| (x, y));
        let t = g.transposed();
        assert_eq!(t.dims(), (2, 3));
        assert_eq!(t.at(1, 2), (2, 1));
    }

    #[test]
    fn min_max_ignores_nan() {
        let g = Grid::from_vec(2, 2, vec![1.0, f32::NAN, -3.0, 2.0]);
        assert_eq!(g.min_max(), (-3.0, 2.0));
    }

    #[test]
    fn normalized_range() {
        let g = Grid::from_vec(2, 2, vec![0.0, 1.0, 2.0, 4.0]);
        let n = g.normalized(0.0, 1.0);
        assert_eq!(n.min_max(), (0.0, 1.0));
        let flat = Grid::filled(2, 2, 3.0f32);
        assert_eq!(flat.normalized(5.0, 9.0).at(0, 0), 5.0);
    }

    #[test]
    fn rms_and_max_abs_diff() {
        let a = Grid::from_vec(2, 1, vec![0.0, 0.0]);
        let b = Grid::from_vec(2, 1, vec![3.0, 4.0]);
        assert!((a.rms_diff(&b) - (12.5f32).sqrt()).abs() < 1e-6);
        assert_eq!(a.max_abs_diff(&b), 4.0);
    }

    #[test]
    fn mean_value() {
        let g = Grid::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert!((g.mean() - 2.5).abs() < 1e-6);
    }
}
