//! Plane and flow-field output: PGM images, CSV dumps, ASCII quiver plots.
//!
//! These are diagnostic/visualization outputs — the reproduction's analog
//! of the paper's Figure 6 cloud-tracking imagery and wind-barb overlays.

use std::io::{self, BufRead, BufWriter, Read, Write};
use std::path::Path;

use crate::flow::FlowField;
use crate::grid::Grid;

/// Write a plane as a binary 8-bit PGM (P5), linearly normalizing values
/// to `0..=255`.
pub fn write_pgm(path: impl AsRef<Path>, img: &Grid<f32>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write!(w, "P5\n{} {}\n255\n", img.width(), img.height())?;
    let norm = img.normalized(0.0, 255.0);
    let bytes: Vec<u8> = norm
        .iter()
        .map(|&v| v.round().clamp(0.0, 255.0) as u8)
        .collect();
    w.write_all(&bytes)?;
    Ok(())
}

/// Read a binary 8-bit PGM (P5) into a plane of `0.0..=255.0` values.
pub fn read_pgm(path: impl AsRef<Path>) -> io::Result<Grid<f32>> {
    let data = std::fs::read(path)?;
    parse_pgm(&data)
}

/// Parse P5 PGM bytes.
pub fn parse_pgm(data: &[u8]) -> io::Result<Grid<f32>> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let mut cursor = io::Cursor::new(data);
    let mut header_tokens = Vec::new();
    // The header is 4 whitespace-separated tokens: "P5", width, height,
    // maxval, with '#' comment lines allowed.
    let mut line = String::new();
    while header_tokens.len() < 4 {
        line.clear();
        if cursor.read_line(&mut line)? == 0 {
            return Err(bad("truncated PGM header"));
        }
        let body = line.split('#').next().unwrap_or("");
        header_tokens.extend(body.split_whitespace().map(str::to_string));
    }
    if header_tokens[0] != "P5" {
        return Err(bad("not a P5 PGM"));
    }
    let w: usize = header_tokens[1].parse().map_err(|_| bad("bad width"))?;
    let h: usize = header_tokens[2].parse().map_err(|_| bad("bad height"))?;
    let maxval: usize = header_tokens[3].parse().map_err(|_| bad("bad maxval"))?;
    if maxval == 0 || maxval > 255 {
        return Err(bad("unsupported maxval"));
    }
    let mut pixels = vec![0u8; w * h];
    cursor
        .read_exact(&mut pixels)
        .map_err(|_| bad("truncated PGM pixels"))?;
    Ok(Grid::from_vec(
        w,
        h,
        pixels.into_iter().map(|b| b as f32).collect(),
    ))
}

/// Write a plane as CSV (one row per grid row, `%.6g` formatting).
pub fn write_csv(path: impl AsRef<Path>, img: &Grid<f32>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for y in 0..img.height() {
        let row: Vec<String> = img.row(y).iter().map(|v| format!("{v:.6}")).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

/// Render a flow field as a coarse ASCII quiver plot, sampling every
/// `step`-th pixel (the paper visualizes "every 10th pixel"). Each sampled
/// cell becomes one character: `.` for near-zero motion, otherwise one of
/// eight arrows by direction.
///
/// # Panics
/// Panics if `step == 0`.
pub fn ascii_quiver(flow: &FlowField, step: usize) -> String {
    assert!(step > 0, "quiver step must be positive");
    const ARROWS: [char; 8] = ['>', '\\', 'v', '/', '<', '\\', '^', '/'];
    let mut out = String::new();
    let mut y = 0;
    while y < flow.height() {
        let mut x = 0;
        while x < flow.width() {
            let v = flow.at(x, y);
            if v.magnitude() < 0.25 {
                out.push('.');
            } else {
                // Quantize angle into 8 sectors of 45 degrees.
                let ang = v.angle().rem_euclid(std::f32::consts::TAU);
                let sector = ((ang + std::f32::consts::FRAC_PI_8) / std::f32::consts::FRAC_PI_4)
                    as usize
                    % 8;
                out.push(ARROWS[sector]);
            }
            x += step;
        }
        out.push('\n');
        y += step;
    }
    out
}

/// Format a sparse set of `(x, y, u, v)` wind vectors as the textual
/// equivalent of the paper's wind-barb table.
pub fn format_wind_barbs(rows: &[(usize, usize, f32, f32)]) -> String {
    let mut out = String::from("   x    y        u        v    speed  dir_deg\n");
    for &(x, y, u, v) in rows {
        let speed = (u * u + v * v).sqrt();
        let dir = v.atan2(u).to_degrees();
        out.push_str(&format!(
            "{x:4} {y:4} {u:8.3} {v:8.3} {speed:8.3} {dir:8.1}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Vec2;

    #[test]
    fn pgm_round_trip() {
        let img = Grid::from_fn(6, 4, |x, y| (x * 40 + y * 10) as f32);
        let dir = std::env::temp_dir().join("sma_grid_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pgm");
        write_pgm(&path, &img).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back.dims(), (6, 4));
        // Values were normalized to 0..=255; ordering must be preserved.
        assert!(back.at(0, 0) < back.at(5, 3));
        assert_eq!(back.min_max(), (0.0, 255.0));
    }

    #[test]
    fn parse_pgm_with_comment() {
        let mut data = b"P5\n# a comment\n2 2\n255\n".to_vec();
        data.extend_from_slice(&[0, 64, 128, 255]);
        let g = parse_pgm(&data).unwrap();
        assert_eq!(g.dims(), (2, 2));
        assert_eq!(g.at(1, 1), 255.0);
    }

    #[test]
    fn parse_pgm_rejects_garbage() {
        assert!(parse_pgm(b"P6\n2 2\n255\n0123").is_err());
        assert!(parse_pgm(b"P5\n2 2\n255\n").is_err()); // truncated pixels
    }

    #[test]
    fn csv_has_one_line_per_row() {
        let img = Grid::from_fn(3, 2, |x, y| (x + y) as f32);
        let dir = std::env::temp_dir().join("sma_grid_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plane.csv");
        write_csv(&path, &img).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert_eq!(text.lines().next().unwrap().split(',').count(), 3);
    }

    #[test]
    fn quiver_arrows_follow_direction() {
        let f = FlowField::uniform(4, 4, Vec2::new(1.0, 0.0));
        let q = ascii_quiver(&f, 2);
        assert!(q.contains('>'));
        assert!(!q.contains('<'));
        let still = FlowField::zeros(4, 4);
        assert!(ascii_quiver(&still, 2)
            .chars()
            .all(|c| c == '.' || c == '\n'));
    }

    #[test]
    fn quiver_sampling_density() {
        let f = FlowField::zeros(10, 10);
        let q = ascii_quiver(&f, 5);
        // 10/5 = 2 samples per axis -> 2 lines of 2 chars.
        assert_eq!(q, "..\n..\n");
    }

    #[test]
    fn wind_barb_table_format() {
        let rows = vec![(10, 20, 3.0, 4.0)];
        let t = format_wind_barbs(&rows);
        assert!(t.contains("5.000")); // speed
        assert!(t.contains("53.1")); // direction
        assert_eq!(t.lines().count(), 2);
    }
}
