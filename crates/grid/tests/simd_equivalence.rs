//! Property equivalence: the grid crate's SIMD lane kernels against
//! their scalar references, over randomized shapes — in particular
//! widths that are not multiples of the 8-wide lane count, where the
//! scalar-tail handling must still be bit-identical.

use proptest::prelude::*;
use sma_grid::filter::binomial_smooth;
use sma_grid::pyramid::downsample;
use sma_grid::simd;
use sma_grid::{BorderPolicy, Grid, IntegralImage};

/// Deterministic pseudo-random f32 from a seed and position (full
/// dynamic range without flushing to zero, no RNG state needed).
fn val(seed: u64, i: usize) -> f32 {
    let mix = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i as u64)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    ((mix >> 40) as f32 / 16_777_216.0 - 0.5) * 8.0
}

fn textured(w: usize, h: usize, seed: u64) -> Grid<f32> {
    Grid::from_fn(w, h, |x, y| val(seed, y * w + x))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `mul_into` is exactly the elementwise product at every length,
    /// including 0, sub-lane lengths and lengths with a scalar tail.
    #[test]
    fn mul_into_matches_scalar_product(len in 0usize..70, seed in 0u64..1000) {
        let a: Vec<f32> = (0..len).map(|i| val(seed, i)).collect();
        let b: Vec<f32> = (0..len).map(|i| val(seed ^ 0xabcd, i)).collect();
        let mut out = vec![0.0f32; len];
        simd::mul_into(&a, &b, &mut out);
        for i in 0..len {
            prop_assert_eq!(out[i].to_bits(), (a[i] * b[i]).to_bits(), "index {}", i);
        }
    }

    /// The fused downsample (row/column convolution only at surviving
    /// even indices) is bit-identical to smooth-then-decimate.
    #[test]
    fn fused_downsample_matches_smooth_then_decimate(
        w in 1usize..40,
        h in 1usize..40,
        seed in 0u64..1000,
    ) {
        let img = textured(w, h, seed);
        let fused = simd::downsample_fused(&img);
        let sm = binomial_smooth(&img, BorderPolicy::Reflect);
        let (w2, h2) = (w.div_ceil(2), h.div_ceil(2));
        prop_assert_eq!(fused.dims(), (w2, h2));
        for y in 0..h2 {
            for x in 0..w2 {
                prop_assert_eq!(
                    fused.at(x, y).to_bits(),
                    sm.at(2 * x, 2 * y).to_bits(),
                    "({}, {})", x, y
                );
            }
        }
    }

    /// `downsample` itself answers the same bits whichever kernel layer
    /// the toggle selects (both tested directly above and in the crate's
    /// unit tests; this pins the dispatch site).
    #[test]
    fn downsample_toggle_is_bit_identical(
        w in 1usize..32,
        h in 1usize..32,
        seed in 0u64..1000,
    ) {
        let img = textured(w, h, seed);
        let was = simd::enabled();
        simd::set_enabled(false);
        let scalar = downsample(&img);
        simd::set_enabled(true);
        let lanes = downsample(&img);
        simd::set_enabled(was);
        prop_assert_eq!(scalar.dims(), lanes.dims());
        let (w2, h2) = scalar.dims();
        for y in 0..h2 {
            for x in 0..w2 {
                prop_assert_eq!(scalar.at(x, y).to_bits(), lanes.at(x, y).to_bits());
            }
        }
    }

    /// The fused sum/squared-sum table pair answers every rectangle with
    /// the same bits as separately built tables.
    #[test]
    fn fused_integral_pair_matches_separate_builds(
        w in 1usize..40,
        h in 1usize..40,
        seed in 0u64..1000,
    ) {
        let img = textured(w, h, seed);
        let (fs, fq) = IntegralImage::build_pair_fused(&img);
        let sum = IntegralImage::build(&img);
        let sq = IntegralImage::build_squared(&img);
        // Every anchored rectangle plus a diagonal band of interior ones.
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(
                    fs.rect_sum(0, 0, x, y).to_bits(),
                    sum.rect_sum(0, 0, x, y).to_bits()
                );
                prop_assert_eq!(
                    fq.rect_sum(0, 0, x, y).to_bits(),
                    sq.rect_sum(0, 0, x, y).to_bits()
                );
            }
        }
        for k in 0..w.min(h) {
            prop_assert_eq!(
                fs.rect_sum(k / 2, k / 2, k, k).to_bits(),
                sum.rect_sum(k / 2, k / 2, k, k).to_bits()
            );
            prop_assert_eq!(
                fq.rect_sum(k / 2, k / 2, k, k).to_bits(),
                sq.rect_sum(k / 2, k / 2, k, k).to_bits()
            );
        }
    }
}
