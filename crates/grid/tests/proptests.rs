//! Property-based tests for grid invariants.

use proptest::prelude::*;
use sma_grid::border::BorderPolicy;
use sma_grid::filter::{gaussian_kernel, separable_convolve};
use sma_grid::flow::{FlowField, Vec2};
use sma_grid::grid::Grid;
use sma_grid::pyramid::{downsample, upsample_to, Pyramid};
use sma_grid::warp::{sample_bilinear, translate};
use sma_grid::window::{CenteredWindow, WindowBounds};

proptest! {
    /// Every border policy except Constant resolves any signed coordinate
    /// to an in-range index.
    #[test]
    fn border_policies_always_resolve(
        v in -200isize..200,
        n in 1usize..64,
        policy in prop_oneof![
            Just(BorderPolicy::Clamp),
            Just(BorderPolicy::Reflect),
            Just(BorderPolicy::Wrap),
        ]
    ) {
        let r = policy.resolve_axis(v, n).expect("non-constant always resolves");
        prop_assert!(r < n);
    }

    /// Wrap is a group action: shifting by n is the identity.
    #[test]
    fn wrap_periodicity(v in -100isize..100, n in 1usize..50) {
        let a = BorderPolicy::Wrap.resolve_axis(v, n);
        let b = BorderPolicy::Wrap.resolve_axis(v + n as isize, n);
        prop_assert_eq!(a, b);
    }

    /// from_fn/at round-trip: grid stores exactly what the closure returned.
    #[test]
    fn grid_from_fn_roundtrip(w in 1usize..32, h in 1usize..32) {
        let g = Grid::from_fn(w, h, |x, y| (x * 1000 + y) as i64);
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(g.at(x, y), (x * 1000 + y) as i64);
            }
        }
    }

    /// Transposition is an involution.
    #[test]
    fn transpose_involution(w in 1usize..20, h in 1usize..20, seed in 0u64..1000) {
        let g = Grid::from_fn(w, h, |x, y| ((x * 31 + y * 17) as u64 ^ seed) as i64);
        prop_assert_eq!(g.transposed().transposed(), g);
    }

    /// A centered window's offset iteration always yields exactly
    /// (2n+1)^2 distinct offsets.
    #[test]
    fn window_offsets_count_and_unique(n in 0usize..20) {
        let w = CenteredWindow::new(n);
        let offs: Vec<_> = w.offsets().collect();
        prop_assert_eq!(offs.len(), w.area());
        let set: std::collections::HashSet<_> = offs.iter().collect();
        prop_assert_eq!(set.len(), offs.len());
    }

    /// Clipped window bounds never exceed the unclipped area and always lie
    /// inside the grid.
    #[test]
    fn window_bounds_inside_grid(
        n in 0usize..10,
        cx in -15isize..40,
        cy in -15isize..40,
        w in 1usize..30,
        h in 1usize..30
    ) {
        let win = CenteredWindow::new(n);
        if let Some(b) = win.bounds_at(cx, cy, w, h) {
            prop_assert!(b.x1 < w && b.y1 < h);
            prop_assert!(b.x0 <= b.x1 && b.y0 <= b.y1);
            prop_assert!(b.area() <= win.area());
            for (px, py) in b.pixels() {
                prop_assert!(px < w && py < h);
                // Every clipped pixel is inside the original window.
                prop_assert!((px as isize - cx).abs() <= n as isize);
                prop_assert!((py as isize - cy).abs() <= n as isize);
            }
        }
    }

    /// WindowBounds::clipped returns None exactly when the rectangle
    /// misses the grid.
    #[test]
    fn clipped_none_iff_empty(
        x0 in -20isize..30, y0 in -20isize..30,
        dx in 0isize..10, dy in 0isize..10,
        w in 1usize..20, h in 1usize..20
    ) {
        let r = WindowBounds::clipped(x0, y0, x0 + dx, y0 + dy, w, h);
        let misses = x0 + dx < 0 || y0 + dy < 0 || x0 >= w as isize || y0 >= h as isize;
        prop_assert_eq!(r.is_none(), misses);
    }

    /// Gaussian smoothing never exceeds the input range (it is an
    /// averaging operator with nonnegative weights).
    #[test]
    fn smoothing_respects_range(seed in 0u32..500, sigma in 0.5f32..3.0) {
        let g = Grid::from_fn(12, 12, |x, y| {
            (((x * 7 + y * 13) as u32).wrapping_mul(seed.wrapping_add(1)) % 256) as f32
        });
        let (lo, hi) = g.min_max();
        let k = gaussian_kernel(sigma);
        let s = separable_convolve(&g, &k, BorderPolicy::Reflect);
        let (slo, shi) = s.min_max();
        prop_assert!(slo >= lo - 1e-3);
        prop_assert!(shi <= hi + 1e-3);
    }

    /// Bilinear sampling at integer grid points reproduces stored values.
    #[test]
    fn bilinear_interpolates_nodes(w in 2usize..16, h in 2usize..16) {
        let g = Grid::from_fn(w, h, |x, y| (x * 10 + y) as f32);
        for y in 0..h {
            for x in 0..w {
                let v = sample_bilinear(&g, x as f32, y as f32, BorderPolicy::Clamp);
                prop_assert!((v - g.at(x, y)).abs() < 1e-4);
            }
        }
    }

    /// Translating forward then backward returns the original for interior
    /// pixels (bilinear warp of an integer shift is exact).
    #[test]
    fn integer_translate_roundtrip(dx in -3isize..=3, dy in -3isize..=3) {
        let g = Grid::from_fn(20, 20, |x, y| ((x * 31 + y * 7) % 97) as f32);
        let t = translate(&g, dx as f32, dy as f32, BorderPolicy::Clamp);
        let back = translate(&t, -dx as f32, -dy as f32, BorderPolicy::Clamp);
        let m = 4usize;
        for y in m..20 - m {
            for x in m..20 - m {
                prop_assert!((back.at(x, y) - g.at(x, y)).abs() < 1e-3);
            }
        }
    }

    /// Pyramid level dimensions halve (rounding up) at every level.
    #[test]
    fn pyramid_halving(w in 8usize..64, h in 8usize..64) {
        let g = Grid::from_fn(w, h, |x, y| (x + y) as f32);
        let p = Pyramid::build(&g, 4);
        for k in 1..p.num_levels() {
            let (pw, ph) = p.level(k - 1).dims();
            prop_assert_eq!(p.level(k).dims(), (pw.div_ceil(2), ph.div_ceil(2)));
        }
    }

    /// Down-then-up keeps a constant plane exactly constant.
    #[test]
    fn pyramid_constant_invariance(v in -10.0f32..10.0) {
        let g = Grid::filled(16, 16, v);
        let u = upsample_to(&downsample(&g), 16, 16);
        for &x in u.iter() {
            prop_assert!((x - v).abs() < 1e-4);
        }
    }

    /// Flow comparison is symmetric in endpoint error and zero against
    /// itself.
    #[test]
    fn flow_stats_metric_axioms(u in -5.0f32..5.0, v in -5.0f32..5.0) {
        let a = FlowField::uniform(6, 6, Vec2::new(u, v));
        let b = FlowField::zeros(6, 6);
        let ab = a.compare(&b);
        let ba = b.compare(&a);
        prop_assert!((ab.rms_endpoint - ba.rms_endpoint).abs() < 1e-5);
        prop_assert_eq!(a.compare(&a).rms_endpoint, 0.0);
        prop_assert!((ab.rms_endpoint - (u * u + v * v).sqrt()).abs() < 1e-4);
    }
}
