//! Structural gates for the flight recorder and its Chrome trace export.
//!
//! The recorder's rings, the recording flag and the span registry are
//! process-global, so everything runs inside one ordered test: phases
//! share state deliberately and reset between themselves.

#![cfg(feature = "enabled")]

use sma_obs::trace::{self, TRACE_RING_CAPACITY};
use sma_obs::{set_level, span, ObsLevel};

#[test]
fn flight_recorder_exports_valid_cross_thread_chrome_trace() {
    set_level(ObsLevel::Summary);

    // Phase 1: recording off — span guards run but nothing is captured.
    trace::set_recording(false);
    {
        let _g = span("trace_test_disabled");
    }
    let check = trace::validate_chrome_json(&trace::chrome_json()).expect("empty trace valid");
    assert_eq!(check.spans, 0, "disabled recording captured spans");
    assert_eq!(trace::events_dropped(), 0);

    // Phase 2: a cross-thread forest. Three named workers plus the main
    // thread, each with a three-deep span nest, plus counter samples and
    // a tagged instant.
    trace::set_recording(true);
    {
        let _root = span("trace_test_main");
        {
            let _mid = span("trace_test_mid");
            let _leaf = span("trace_test_leaf");
        }
        trace::counter("trace_test.counter", 42);
        trace::instant_with("trace_test.instant", "site_a");
    }
    let workers: Vec<_> = (0..3)
        .map(|i| {
            std::thread::Builder::new()
                .name(format!("trace-worker-{i}"))
                .spawn(|| {
                    let _root = span("trace_test_worker");
                    for _ in 0..4 {
                        let _leaf = span("trace_test_worker_leaf");
                    }
                    trace::counter("trace_test.worker_counter", 7);
                })
                .expect("spawn worker")
        })
        .collect();
    for w in workers {
        w.join().expect("join worker");
    }

    let json = trace::chrome_json();
    let check = trace::validate_chrome_json(&json).expect("trace structurally valid");
    // 3 main spans + 3 workers * (1 root + 4 leaves) = 18 span pairs.
    assert_eq!(check.spans, 18, "span pair count");
    assert!(
        check.threads >= 4,
        "expected main + 3 workers, saw {} threads",
        check.threads
    );
    assert!(check.max_depth >= 3, "nesting depth lost: {check:?}");
    assert!(json.contains("\"C\""), "counter samples missing");
    assert!(json.contains("\"i\""), "instant missing");
    assert!(json.contains("site_a"), "instant detail missing");
    assert!(
        json.contains("trace-worker-0"),
        "thread_name metadata missing"
    );

    // Latency percentiles come from the same spans, keyed by path.
    let lat = trace::latency_summary();
    let leaf = lat
        .iter()
        .find(|l| l.path == "trace_test_worker/trace_test_worker_leaf")
        .expect("worker leaf path in latency summary");
    assert_eq!(leaf.count, 12, "4 leaves on each of 3 workers");
    assert!(leaf.p50_us <= leaf.p95_us && leaf.p95_us <= leaf.p99_us);
    let root = lat
        .iter()
        .find(|l| l.path == "trace_test_main")
        .expect("main root path");
    assert_eq!(root.count, 1);

    // Phase 3: overflow drops whole (oldest) spans; the export stays
    // balanced and bounded.
    trace::reset();
    for _ in 0..(TRACE_RING_CAPACITY + 100) {
        let _s = span("trace_test_flood");
    }
    assert!(
        trace::events_dropped() >= 100,
        "ring overflow not counted: {}",
        trace::events_dropped()
    );
    let check = trace::validate_chrome_json(&trace::chrome_json()).expect("overflowed trace valid");
    assert!(check.spans <= TRACE_RING_CAPACITY);
    assert!(check.spans > 0);

    // Phase 4: reset clears events and drop counts.
    trace::reset();
    assert_eq!(trace::events_dropped(), 0);
    let check = trace::validate_chrome_json(&trace::chrome_json()).expect("reset trace valid");
    assert_eq!(check.spans, 0);

    trace::set_recording(false);
}

#[test]
fn validator_rejects_malformed_traces() {
    // Unbalanced: B without E.
    let unbalanced = r#"{"traceEvents": [
        {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 1}
    ]}"#;
    assert!(trace::validate_chrome_json(unbalanced)
        .unwrap_err()
        .contains("unclosed"));

    // Mismatched close name.
    let mismatched = r#"{"traceEvents": [
        {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
        {"name": "b", "ph": "E", "ts": 2, "pid": 1, "tid": 1}
    ]}"#;
    assert!(trace::validate_chrome_json(mismatched)
        .unwrap_err()
        .contains("closes"));

    // Backwards timestamps on one thread.
    let backwards = r#"{"traceEvents": [
        {"name": "a", "ph": "B", "ts": 5, "pid": 1, "tid": 1},
        {"name": "a", "ph": "E", "ts": 4, "pid": 1, "tid": 1}
    ]}"#;
    assert!(trace::validate_chrome_json(backwards)
        .unwrap_err()
        .contains("backwards"));

    // E with no matching B at all.
    let orphan = r#"{"traceEvents": [
        {"name": "a", "ph": "E", "ts": 1, "pid": 1, "tid": 1}
    ]}"#;
    assert!(trace::validate_chrome_json(orphan)
        .unwrap_err()
        .contains("empty stack"));

    assert!(trace::validate_chrome_json("not json").is_err());
    assert!(trace::validate_chrome_json("{}")
        .unwrap_err()
        .contains("traceEvents"));
}
