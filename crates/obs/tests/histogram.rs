//! Histogram gates: overflow-bucket behaviour, the power-of-two
//! percentile error bound, and merge/snapshot consistency under
//! concurrent observers.

#![cfg(feature = "enabled")]

use sma_obs::metrics::{Histogram, HistogramSnapshot, HIST_BUCKETS};
use sma_obs::{set_level, ObsLevel};

#[test]
fn overflow_bucket_captures_huge_values() {
    static H: Histogram = Histogram::new("test.histogram.overflow");
    set_level(ObsLevel::Summary);
    // Largest non-overflow bucket is HIST_BUCKETS - 2 = 31, covering
    // [2^30, 2^31 - 1]; everything >= 2^31 lands in the open-ended last
    // bucket.
    H.record((1u64 << 31) - 1); // top regular bucket
    H.record(1u64 << 31); // first overflow value
    H.record(1u64 << 62);
    H.record(u64::MAX);
    let s = H.snapshot_buckets();
    assert_eq!(s.buckets[HIST_BUCKETS - 2], 1, "top regular bucket");
    assert_eq!(s.buckets[HIST_BUCKETS - 1], 3, "overflow bucket");
    assert_eq!(s.count, 4);
    assert_eq!(s.max, u64::MAX);
    // Percentiles inside the overflow bucket clamp to the recorded max
    // instead of reporting the bucket's unbounded upper edge.
    assert_eq!(s.percentile(1.0), u64::MAX);
    // p25 is the top regular bucket's upper edge: exactly the value.
    assert_eq!(s.percentile(0.25), (1u64 << 31) - 1);
}

/// Deterministic xorshift so the test needs no RNG crate.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[test]
fn percentile_estimate_is_within_factor_two() {
    // For any data set of values below the overflow threshold (2^31)
    // and any quantile q, the estimate e of the true q-th smallest value
    // w must satisfy w <= e < 2w (w > 0), and e == 0 iff w == 0: the
    // estimate is the upper edge of w's power-of-two bucket, clamped to
    // the global max. (Inside the open-ended overflow bucket only
    // `w <= e <= max` holds — pinned in the overflow test above.)
    let mut state = 0x9E3779B97F4A7C15u64;
    for round in 0..50 {
        let n = 1 + (xorshift(&mut state) % 200) as usize;
        let mut values: Vec<u64> = (0..n)
            .map(|_| {
                // Spread magnitudes roughly uniformly in log2 space,
                // always below 2^31 so no value overflows.
                let shift = 33 + xorshift(&mut state) % 31;
                xorshift(&mut state) >> shift
            })
            .collect();
        let mut snap = HistogramSnapshot::empty();
        for &v in &values {
            snap.observe(v);
        }
        values.sort_unstable();
        for &q in &[0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let w = values[rank - 1];
            let e = snap.percentile(q);
            if w == 0 {
                assert_eq!(e, 0, "round {round}: q={q} w=0 but e={e}");
            } else {
                assert!(
                    e >= w && e < 2 * w,
                    "round {round}: q={q} true={w} estimate={e} violates [w, 2w)"
                );
            }
        }
    }
}

#[test]
fn percentile_handles_empty_and_single_value() {
    let mut snap = HistogramSnapshot::empty();
    assert_eq!(snap.percentile(0.5), 0);
    snap.observe(1000);
    // 1000's bucket is [512, 1023]; the estimate is clamped to max.
    assert_eq!(snap.percentile(0.5), 1000);
    assert_eq!(snap.percentile(0.0), 1000);
}

#[test]
fn merge_equals_combined_observation() {
    let mut state = 0xD1B54A32D192ED03u64;
    let mut a = HistogramSnapshot::empty();
    let mut b = HistogramSnapshot::empty();
    let mut all = HistogramSnapshot::empty();
    for i in 0..500 {
        let v = xorshift(&mut state) >> (i % 48);
        if i % 2 == 0 {
            a.observe(v);
        } else {
            b.observe(v);
        }
        all.observe(v);
    }
    let mut merged = a;
    merged.merge(&b);
    assert_eq!(merged, all, "merge must equal observing the union");
    assert_eq!(merged.stats().count, 500);
}

#[test]
fn concurrent_observers_never_corrupt_the_final_snapshot() {
    static H: Histogram = Histogram::new("test.histogram.concurrent");
    set_level(ObsLevel::Summary);
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 10_000;
    let before = H.snapshot_buckets();
    let observers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Values 1..=1024 across buckets 1..=11.
                    H.record(1 + (t * PER_THREAD + i) % 1024);
                }
            })
        })
        .collect();
    // Mid-flight snapshots: per-bucket counts must be monotone
    // nondecreasing between consecutive snapshots (relaxed atomics never
    // lose an increment), and never exceed the final total.
    let mut prev = before;
    for _ in 0..50 {
        let s = H.snapshot_buckets();
        for (i, (&now, &was)) in s.buckets.iter().zip(prev.buckets.iter()).enumerate() {
            assert!(now >= was, "bucket {i} went backwards: {was} -> {now}");
        }
        let landed: u64 = s.buckets.iter().sum::<u64>() - before.buckets.iter().sum::<u64>();
        assert!(
            landed <= THREADS * PER_THREAD,
            "phantom observations: {landed}"
        );
        prev = s;
        std::thread::yield_now();
    }
    for o in observers {
        o.join().expect("observer join");
    }
    // Quiesced: the delta snapshot is exact and internally consistent.
    let after = H.snapshot_buckets();
    let count = after.count - before.count;
    let bucket_sum: u64 = after.buckets.iter().sum::<u64>() - before.buckets.iter().sum::<u64>();
    assert_eq!(count, THREADS * PER_THREAD);
    assert_eq!(bucket_sum, count, "bucket totals must equal the count");
    assert!(after.max >= 1024);
    // Sum is exact too: each thread contributes sum over its sequence.
    let expected_sum: u64 = (0..THREADS * PER_THREAD).map(|k| 1 + k % 1024).sum();
    assert_eq!(after.sum - before.sum, expected_sum);
}
