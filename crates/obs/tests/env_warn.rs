//! The env-misparse warning contract across its production call sites.
//!
//! `sma_obs::env::warn_misparse` is the single shared implementation
//! behind every `SMA_*` knob's typo warning — `SMA_OBS` (obs level
//! init), `SMA_FAULTS` (fault-harness arming), `SMA_SIMD` and
//! `SMA_TRACE`. This test pins the once-per-variable dedupe for the two
//! variables that historically had *separate* warning helpers (the obs
//! copy and the fault/serve copy), using the exact variable names those
//! call sites pass, against the one shared registry.
//!
//! Neither variable is set in the test environment, so the library init
//! paths cannot have consumed the registry keys before this test runs.

use sma_obs::env::warn_misparse;

#[test]
fn production_vars_warn_exactly_once_each() {
    assert!(
        std::env::var_os("SMA_OBS").is_none() && std::env::var_os("SMA_FAULTS").is_none(),
        "test requires SMA_OBS/SMA_FAULTS unset so init paths don't pre-warn"
    );

    // The obs call site (level.rs): first misparse warns ...
    assert!(warn_misparse(
        "SMA_OBS",
        "verbos",
        "off|summary|spans|trace (or 0|1|2|3)",
        "observability stays off",
    ));
    // ... and every repeat — even with a different bad value — is
    // suppressed.
    assert!(!warn_misparse(
        "SMA_OBS",
        "all",
        "off|summary|spans|trace (or 0|1|2|3)",
        "observability stays off",
    ));

    // The fault call site (injector.rs) shares the registry but has its
    // own key: it still gets its one warning ...
    assert!(warn_misparse(
        "SMA_FAULTS",
        "yes",
        "<seed>[:<rate>] (decimal u64 seed, rate in [0,1])",
        "fault injection stays disarmed",
    ));
    // ... exactly once.
    assert!(!warn_misparse(
        "SMA_FAULTS",
        "yes",
        "<seed>[:<rate>] (decimal u64 seed, rate in [0,1])",
        "fault injection stays disarmed",
    ));

    // Cross-variable independence: one variable warning does not consume
    // another's slot (regression guard for the pre-dedupe era where the
    // two copies kept separate, inconsistent state).
    assert!(!warn_misparse("SMA_OBS", "verbos", "off", "stays off"));
    assert!(!warn_misparse("SMA_FAULTS", "yes", "<seed>", "disarmed"));
}
