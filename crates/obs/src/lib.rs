//! Zero-dependency observability for the SMA reproduction.
//!
//! The paper's whole §4–§5 argument is quantitative — operation counts,
//! X-net fetch costs, the 64 KB-per-PE memory formula — so the pipeline
//! carries its own cost monitoring instead of relying on one-off bench
//! binaries. This crate is the substrate: no external dependencies (the
//! workspace builds offline against `vendor/` shims, so no `tracing`),
//! `std` only, and a feature-gated no-op mode that compiles every entry
//! point away.
//!
//! Three pieces:
//!
//! * **Spans** ([`span()`]): hierarchical wall-clock timers. Guards push a
//!   name onto a thread-local stack; on drop the `/`-joined path is
//!   aggregated into a process-global registry, so timings from Rayon
//!   workers and explicit threads land in the same tree.
//! * **Metrics** ([`metrics::Counter`], [`metrics::HighWater`],
//!   [`metrics::Histogram`]): statically-declared atomics that register
//!   themselves on first touch. Counting only happens when the runtime
//!   level is above [`ObsLevel::Off`], so untouched test binaries pay one
//!   relaxed atomic load per call site and record nothing.
//! * **Exporters** ([`report::render`], [`json::MetricsDoc`]): a
//!   human-readable nested timing tree, and a versioned `METRICS_*.json`
//!   schema shared by every bench binary (see [`json::SCHEMA_VERSION`]).
//! * **Flight recorder** ([`trace`]): bounded per-thread ring buffers of
//!   closed spans, counter samples and instants, exported as Chrome
//!   trace-event / Perfetto JSON (`SMA_TRACE=out.json`) with per-stage
//!   p50/p95/p99 latency built on the histogram buckets.
//! * **Telemetry atlas** ([`atlas`]): per-tile spatial planes (near-tie
//!   density, border fallback, exact/integral/SIMD dispatch, quarantine
//!   sites, per-frame cache hit/miss) feeding the adaptive-planner cost
//!   model and the `trace_report` heatmaps.
//!
//! Runtime verbosity is env-filtered via `SMA_OBS`:
//!
//! | value     | effect                                                   |
//! |-----------|----------------------------------------------------------|
//! | `off`     | nothing recorded (default when the variable is unset)    |
//! | `summary` | spans + metrics aggregated silently; read via snapshots  |
//! | `spans`   | `summary`, plus one stderr line as each span closes      |
//! | `trace`   | `spans`, plus a stderr line as each span opens           |
//!
//! Compile-time kill switch: build this crate with
//! `--no-default-features` and [`span()`] returns a zero-sized guard,
//! [`metrics::Counter::add`] is an empty `#[inline]` body, and
//! [`level`] is a `const`-foldable `Off`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atlas;
pub mod env;
pub mod json;
mod level;
pub mod metrics;
pub mod report;
pub mod scoped;
pub mod span;
pub mod trace;

pub use level::{level, set_level, ObsLevel};
pub use metrics::{Counter, HighWater, Histogram};
pub use span::{span, SpanGuard};

/// True when the runtime level records anything at all.
///
/// Call sites use this to skip building expensive diagnostic values
/// (string formatting, large snapshots) when observability is off. With
/// the `enabled` feature off this is a `const false` and the guarded
/// block is dead code.
#[inline]
pub fn active() -> bool {
    level() != ObsLevel::Off
}
