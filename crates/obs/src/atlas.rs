//! Spatial telemetry atlas: per-tile event planes over the image grid.
//!
//! The scalar counters answer *how many* near-tie re-routes or border
//! fallbacks a run took; the atlas answers *where*. When armed for a
//! `width x height` grid with a tile edge of `tile` pixels, each
//! [`AtlasChannel`] owns a `tiles_x x tiles_y` plane of event counts,
//! and instrumented call sites deposit already-materialised coordinate
//! lists into it ([`mark_batch`]) or whole rectangles ([`mark_rect`],
//! counted arithmetically — never per pixel). A per-frame hit/miss
//! series ([`cache_event`]) rides along for the streaming cache.
//!
//! The atlas is disarmed by default: every call site pays one relaxed
//! atomic load and nothing else, so conformance and production runs are
//! unaffected (the planes observe the run; they never steer it). Marks
//! outside the armed geometry are dropped silently, which lets tests
//! with different scene sizes coexist with an armed atlas.
//!
//! This is the observed-quantity store the ROADMAP item-2 adaptive
//! planner consumes: near-tie density and border fraction per tile
//! decide where the exact kernel is worth scheduling, the dispatch
//! planes record what actually ran, and quarantine sites flag input
//! regions whose telemetry is untrustworthy.

use crate::json::MetricsDoc;

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock};

/// Upper bound on the per-frame cache series length; frames beyond this
/// are folded into the last slot so memory stays bounded.
pub const ATLAS_MAX_FRAMES: usize = 4096;

/// One spatial event plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtlasChannel {
    /// Pixels served by an exact-kernel path (full exact drivers, border
    /// fallback, and near-tie / poisoned-plane re-routes).
    DispatchExact,
    /// Pixels served by the scalar moment-plane (integral) fast path.
    DispatchIntegral,
    /// Pixels served by the SIMD lane-kernel fast path.
    DispatchSimd,
    /// Pixels served by the pruned-search (bound-screened) fast path.
    DispatchPruned,
    /// Border pixels the fast paths handed back to the exact kernel.
    BorderFallback,
    /// Near-tie argmin re-routes (winning margin inside the declared
    /// fast-vs-exact error bound).
    NearTie,
    /// Non-finite input pixels quarantined and repaired.
    Quarantine,
}

impl AtlasChannel {
    /// Every channel, in export order.
    pub const ALL: [AtlasChannel; 7] = [
        AtlasChannel::DispatchExact,
        AtlasChannel::DispatchIntegral,
        AtlasChannel::DispatchSimd,
        AtlasChannel::DispatchPruned,
        AtlasChannel::BorderFallback,
        AtlasChannel::NearTie,
        AtlasChannel::Quarantine,
    ];

    /// Stable dotted-name segment used in exports and heatmap headers.
    pub fn name(self) -> &'static str {
        match self {
            AtlasChannel::DispatchExact => "dispatch_exact",
            AtlasChannel::DispatchIntegral => "dispatch_integral",
            AtlasChannel::DispatchSimd => "dispatch_simd",
            AtlasChannel::DispatchPruned => "dispatch_pruned",
            AtlasChannel::BorderFallback => "border_fallback",
            AtlasChannel::NearTie => "near_tie",
            AtlasChannel::Quarantine => "quarantine",
        }
    }

    fn index(self) -> usize {
        match self {
            AtlasChannel::DispatchExact => 0,
            AtlasChannel::DispatchIntegral => 1,
            AtlasChannel::DispatchSimd => 2,
            AtlasChannel::DispatchPruned => 3,
            AtlasChannel::BorderFallback => 4,
            AtlasChannel::NearTie => 5,
            AtlasChannel::Quarantine => 6,
        }
    }
}

#[cfg(feature = "enabled")]
struct AtlasState {
    width: usize,
    height: usize,
    tile: usize,
    tiles_x: usize,
    tiles_y: usize,
    planes: Vec<Vec<u64>>,
    /// (hits, misses) per frame index.
    cache_frames: Vec<(u64, u64)>,
}

#[cfg(feature = "enabled")]
static ARMED: AtomicBool = AtomicBool::new(false);

#[cfg(feature = "enabled")]
fn state() -> &'static Mutex<Option<AtlasState>> {
    static STATE: OnceLock<Mutex<Option<AtlasState>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// Whether the atlas is collecting. One relaxed load; always `false`
/// without the `enabled` feature.
#[inline]
pub fn armed() -> bool {
    #[cfg(feature = "enabled")]
    {
        ARMED.load(Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Arm the atlas for a `width x height` grid with `tile`-pixel square
/// tiles (minimum 1), discarding any previous state. No-op without the
/// `enabled` feature.
pub fn arm(width: usize, height: usize, tile: usize) {
    #[cfg(feature = "enabled")]
    {
        let tile = tile.max(1);
        let tiles_x = width.div_ceil(tile).max(1);
        let tiles_y = height.div_ceil(tile).max(1);
        let planes = (0..AtlasChannel::ALL.len())
            .map(|_| vec![0u64; tiles_x * tiles_y])
            .collect();
        if let Ok(mut s) = state().lock() {
            *s = Some(AtlasState {
                width,
                height,
                tile,
                tiles_x,
                tiles_y,
                planes,
                cache_frames: Vec::new(),
            });
            ARMED.store(true, Relaxed);
        }
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (width, height, tile);
}

/// Stop collecting and drop the planes.
pub fn disarm() {
    #[cfg(feature = "enabled")]
    {
        ARMED.store(false, Relaxed);
        if let Ok(mut s) = state().lock() {
            *s = None;
        }
    }
}

#[cfg(feature = "enabled")]
fn with_state(f: impl FnOnce(&mut AtlasState)) {
    if let Ok(mut s) = state().lock() {
        if let Some(st) = s.as_mut() {
            f(st);
        }
    }
}

/// Deposit one event at pixel `(x, y)`. Out-of-range marks are dropped.
#[inline]
pub fn mark(ch: AtlasChannel, x: usize, y: usize) {
    #[cfg(feature = "enabled")]
    {
        if !armed() {
            return;
        }
        with_state(|st| {
            if x < st.width && y < st.height {
                let idx = (y / st.tile) * st.tiles_x + x / st.tile;
                st.planes[ch.index()][idx] += 1;
            }
        });
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (ch, x, y);
}

/// Deposit one event per listed pixel under a single lock acquisition.
/// This is the intended call shape: drivers already materialise their
/// border / near-tie / quarantine coordinate lists, so the atlas never
/// adds work inside a pixel loop.
pub fn mark_batch(ch: AtlasChannel, pts: &[(usize, usize)]) {
    #[cfg(feature = "enabled")]
    {
        if !armed() || pts.is_empty() {
            return;
        }
        with_state(|st| {
            let plane = &mut st.planes[ch.index()];
            for &(x, y) in pts {
                if x < st.width && y < st.height {
                    plane[(y / st.tile) * st.tiles_x + x / st.tile] += 1;
                }
            }
        });
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (ch, pts);
}

/// Deposit one event per pixel of the inclusive rectangle
/// `[x0, x1] x [y0, y1]`, computed arithmetically per overlapped tile
/// (cost is O(tiles touched), not O(pixels)). Used by the full-region
/// exact drivers to record dispatch without enumerating pixels.
pub fn mark_rect(ch: AtlasChannel, x0: usize, y0: usize, x1: usize, y1: usize) {
    #[cfg(feature = "enabled")]
    {
        if !armed() || x1 < x0 || y1 < y0 {
            return;
        }
        with_state(|st| {
            let x1 = x1.min(st.width.saturating_sub(1));
            let y1 = y1.min(st.height.saturating_sub(1));
            if x0 > x1 || y0 > y1 {
                return;
            }
            let plane = &mut st.planes[ch.index()];
            for ty in (y0 / st.tile)..=(y1 / st.tile) {
                let ty0 = (ty * st.tile).max(y0);
                let ty1 = ((ty + 1) * st.tile - 1).min(y1);
                let rows = (ty1 - ty0 + 1) as u64;
                for tx in (x0 / st.tile)..=(x1 / st.tile) {
                    let tx0 = (tx * st.tile).max(x0);
                    let tx1 = ((tx + 1) * st.tile - 1).min(x1);
                    let cols = (tx1 - tx0 + 1) as u64;
                    plane[ty * st.tiles_x + tx] += rows * cols;
                }
            }
        });
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (ch, x0, y0, x1, y1);
}

/// Record one streaming-cache lookup outcome for `frame`. Frames beyond
/// [`ATLAS_MAX_FRAMES`] fold into the last slot.
pub fn cache_event(frame: usize, hit: bool) {
    #[cfg(feature = "enabled")]
    {
        if !armed() {
            return;
        }
        with_state(|st| {
            let idx = frame.min(ATLAS_MAX_FRAMES - 1);
            if st.cache_frames.len() <= idx {
                st.cache_frames.resize(idx + 1, (0, 0));
            }
            if hit {
                st.cache_frames[idx].0 += 1;
            } else {
                st.cache_frames[idx].1 += 1;
            }
        });
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (frame, hit);
}

/// Owned copy of the armed atlas: geometry, one plane per channel, and
/// the per-frame cache series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtlasSnapshot {
    /// Grid width in pixels.
    pub width: usize,
    /// Grid height in pixels.
    pub height: usize,
    /// Tile edge in pixels.
    pub tile: usize,
    /// Tiles per row.
    pub tiles_x: usize,
    /// Tile rows.
    pub tiles_y: usize,
    /// Row-major `tiles_x * tiles_y` counts, indexed by
    /// [`AtlasChannel::ALL`] order.
    pub planes: Vec<Vec<u64>>,
    /// `(hits, misses)` per frame index.
    pub cache_frames: Vec<(u64, u64)>,
}

impl AtlasSnapshot {
    /// The tile plane for one channel.
    pub fn plane(&self, ch: AtlasChannel) -> &[u64] {
        &self.planes[ch.index()]
    }

    /// Count at tile `(tx, ty)` for one channel.
    pub fn tile(&self, ch: AtlasChannel, tx: usize, ty: usize) -> u64 {
        self.planes[ch.index()][ty * self.tiles_x + tx]
    }

    /// Total events deposited into one channel.
    pub fn total(&self, ch: AtlasChannel) -> u64 {
        self.plane(ch).iter().sum()
    }

    /// Number of tiles with at least one event in one channel.
    pub fn tiles_nonzero(&self, ch: AtlasChannel) -> usize {
        self.plane(ch).iter().filter(|&&c| c > 0).count()
    }

    /// Events deposited into every atlas tile overlapping the inclusive
    /// pixel rectangle `[x0, x1] x [y0, y1]`. The atlas stores per-tile
    /// counts, so a partially overlapped tile contributes its whole
    /// count — a deliberate conservative over-estimate for consumers
    /// (the execution planner) steering by event density. Out-of-range
    /// coordinates clamp to the grid; an inverted rectangle is empty.
    pub fn rect_total(&self, ch: AtlasChannel, x0: usize, y0: usize, x1: usize, y1: usize) -> u64 {
        if self.width == 0 || self.height == 0 || x0 > x1 || y0 > y1 || self.tile == 0 {
            return 0;
        }
        let x0 = x0.min(self.width - 1);
        let x1 = x1.min(self.width - 1);
        let y0 = y0.min(self.height - 1);
        let y1 = y1.min(self.height - 1);
        let plane = self.plane(ch);
        let mut sum = 0u64;
        for ty in (y0 / self.tile)..=(y1 / self.tile) {
            for tx in (x0 / self.tile)..=(x1 / self.tile) {
                sum += plane[ty * self.tiles_x + tx];
            }
        }
        sum
    }

    /// Render one channel as an ASCII heatmap (one character per tile,
    /// ten brightness steps scaled to the channel's max tile count).
    pub fn heatmap(&self, ch: AtlasChannel) -> String {
        const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let plane = self.plane(ch);
        let max = plane.iter().copied().max().unwrap_or(0);
        let mut out = format!(
            "{} ({}x{} tiles of {}px, total {}, max/tile {})\n",
            ch.name(),
            self.tiles_x,
            self.tiles_y,
            self.tile,
            self.total(ch),
            max
        );
        for ty in 0..self.tiles_y {
            out.push('|');
            for tx in 0..self.tiles_x {
                let c = plane[ty * self.tiles_x + tx];
                let ch = if c == 0 || max == 0 {
                    RAMP[0]
                } else {
                    // Nonzero tiles always render at least RAMP[1].
                    let step = 1 + (c.saturating_sub(1) * (RAMP.len() as u64 - 2) / max) as usize;
                    RAMP[step.min(RAMP.len() - 1)]
                };
                out.push(ch);
            }
            out.push_str("|\n");
        }
        out
    }

    /// Export the atlas into a metrics document: geometry gauges
    /// (`atlas.width` …), per-channel totals and nonzero-tile counts
    /// (`atlas.<channel>.total`, `.tiles_nonzero`), per-tile counts for
    /// nonzero tiles (`atlas.<channel>.tile.<tx>_<ty>`), and the cache
    /// series (`atlas.cache.hits.f<N>` / `.misses.f<N>`).
    pub fn export_into(&self, doc: &mut MetricsDoc) {
        doc.set_gauge("atlas.width", self.width as f64);
        doc.set_gauge("atlas.height", self.height as f64);
        doc.set_gauge("atlas.tile", self.tile as f64);
        doc.set_gauge("atlas.tiles_x", self.tiles_x as f64);
        doc.set_gauge("atlas.tiles_y", self.tiles_y as f64);
        for ch in AtlasChannel::ALL {
            doc.set_counter(&format!("atlas.{}.total", ch.name()), self.total(ch));
            doc.set_counter(
                &format!("atlas.{}.tiles_nonzero", ch.name()),
                self.tiles_nonzero(ch) as u64,
            );
            for ty in 0..self.tiles_y {
                for tx in 0..self.tiles_x {
                    let c = self.tile(ch, tx, ty);
                    if c > 0 {
                        doc.set_counter(&format!("atlas.{}.tile.{}_{}", ch.name(), tx, ty), c);
                    }
                }
            }
        }
        doc.set_gauge("atlas.cache.frames", self.cache_frames.len() as f64);
        for (i, (hits, misses)) in self.cache_frames.iter().enumerate() {
            if *hits > 0 {
                doc.set_counter(&format!("atlas.cache.hits.f{i}"), *hits);
            }
            if *misses > 0 {
                doc.set_counter(&format!("atlas.cache.misses.f{i}"), *misses);
            }
        }
    }
}

/// Copy out the armed atlas (`None` when disarmed or without the
/// `enabled` feature).
pub fn snapshot() -> Option<AtlasSnapshot> {
    #[cfg(feature = "enabled")]
    {
        if !armed() {
            return None;
        }
        let s = state().lock().ok()?;
        s.as_ref().map(|st| AtlasSnapshot {
            width: st.width,
            height: st.height,
            tile: st.tile,
            tiles_x: st.tiles_x,
            tiles_y: st.tiles_y,
            planes: st.planes.clone(),
            cache_frames: st.cache_frames.clone(),
        })
    }
    #[cfg(not(feature = "enabled"))]
    {
        None
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // The atlas is process-global; run everything under one test so
    // arm/disarm never races a sibling test in this binary.
    #[test]
    fn marks_rects_and_cache_events_land_in_tiles() {
        arm(32, 16, 8);
        assert!(armed());
        mark(AtlasChannel::NearTie, 0, 0);
        mark(AtlasChannel::NearTie, 7, 7);
        mark(AtlasChannel::NearTie, 8, 0);
        mark(AtlasChannel::NearTie, 99, 0); // out of range: dropped
        mark_batch(AtlasChannel::BorderFallback, &[(0, 0), (31, 15), (16, 8)]);
        // Full-grid rect: every pixel counted exactly once.
        mark_rect(AtlasChannel::DispatchExact, 0, 0, 31, 15);
        // Rect clipped to the grid.
        mark_rect(AtlasChannel::DispatchIntegral, 24, 8, 99, 99);
        cache_event(0, true);
        cache_event(0, false);
        cache_event(2, true);

        let snap = snapshot().expect("armed snapshot");
        assert_eq!((snap.tiles_x, snap.tiles_y), (4, 2));
        assert_eq!(snap.tile(AtlasChannel::NearTie, 0, 0), 2);
        assert_eq!(snap.tile(AtlasChannel::NearTie, 1, 0), 1);
        assert_eq!(snap.total(AtlasChannel::NearTie), 3);
        assert_eq!(snap.total(AtlasChannel::BorderFallback), 3);
        assert_eq!(snap.total(AtlasChannel::DispatchExact), 32 * 16);
        assert_eq!(snap.tile(AtlasChannel::DispatchExact, 0, 0), 64);
        assert_eq!(snap.total(AtlasChannel::DispatchIntegral), 8 * 8);
        assert_eq!(snap.cache_frames, vec![(1, 1), (0, 0), (1, 0)]);

        let map = snap.heatmap(AtlasChannel::NearTie);
        assert!(map.contains("near_tie"));
        assert_eq!(map.lines().count(), 1 + snap.tiles_y);

        let mut doc = MetricsDoc::new("atlas_test");
        snap.export_into(&mut doc);
        assert_eq!(doc.counter("atlas.near_tie.total"), 3);
        assert_eq!(doc.counter("atlas.near_tie.tile.0_0"), 2);
        assert_eq!(doc.counter("atlas.dispatch_exact.total"), 512);
        assert_eq!(doc.counter("atlas.cache.hits.f0"), 1);
        assert_eq!(doc.counter("atlas.cache.misses.f0"), 1);
        assert_eq!(doc.counter("atlas.cache.hits.f2"), 1);

        disarm();
        assert!(!armed());
        assert!(snapshot().is_none());
        mark(AtlasChannel::NearTie, 0, 0); // disarmed: dropped silently
    }
}
