//! Runtime verbosity level, initialised lazily from the `SMA_OBS`
//! environment variable and overridable in-process.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU8, Ordering};

/// Observability verbosity, ordered from silent to chatty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsLevel {
    /// Record nothing; every instrumentation call is a cheap early-out.
    Off = 0,
    /// Aggregate spans and metrics silently; read them via snapshots.
    Summary = 1,
    /// `Summary`, plus a stderr line each time a span closes.
    Spans = 2,
    /// `Spans`, plus a stderr line each time a span opens.
    Trace = 3,
}

impl ObsLevel {
    /// Parse an `SMA_OBS` value. Unrecognised strings read as `Off` so a
    /// typo can never turn a production run into a tracing run; callers
    /// that want to *report* the typo use [`ObsLevel::try_parse`].
    pub fn parse(s: &str) -> ObsLevel {
        ObsLevel::try_parse(s).unwrap_or(ObsLevel::Off)
    }

    /// Strict parse: `None` for anything that is not one of the accepted
    /// spellings (`off|summary|spans|trace` or `0`–`3`, case-insensitive,
    /// surrounding whitespace ignored; the empty string reads as `Off`).
    pub fn try_parse(s: &str) -> Option<ObsLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(ObsLevel::Off),
            "summary" | "1" => Some(ObsLevel::Summary),
            "spans" | "2" => Some(ObsLevel::Spans),
            "trace" | "3" => Some(ObsLevel::Trace),
            _ => None,
        }
    }

    #[cfg(feature = "enabled")]
    fn from_u8(v: u8) -> ObsLevel {
        match v {
            1 => ObsLevel::Summary,
            2 => ObsLevel::Spans,
            3 => ObsLevel::Trace,
            _ => ObsLevel::Off,
        }
    }
}

/// Sentinel meaning "not yet initialised from the environment".
#[cfg(feature = "enabled")]
const UNINIT: u8 = u8::MAX;

#[cfg(feature = "enabled")]
static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

/// The current verbosity level.
///
/// First call reads `SMA_OBS`; later calls are one relaxed atomic load.
/// With the `enabled` feature off this is always [`ObsLevel::Off`] and
/// the environment is never consulted.
#[inline]
pub fn level() -> ObsLevel {
    #[cfg(feature = "enabled")]
    {
        match LEVEL.load(Ordering::Relaxed) {
            UNINIT => init_from_env(),
            v => ObsLevel::from_u8(v),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        ObsLevel::Off
    }
}

#[cfg(feature = "enabled")]
#[cold]
fn init_from_env() -> ObsLevel {
    let l = match std::env::var("SMA_OBS") {
        Ok(s) => match ObsLevel::try_parse(&s) {
            Some(l) => l,
            None => {
                // A typo must not silently disable the run's telemetry:
                // warn exactly once, naming the accepted spellings, then
                // fall back to Off as documented.
                crate::env::warn_misparse(
                    "SMA_OBS",
                    &s,
                    "off|summary|spans|trace (or 0|1|2|3)",
                    "observability stays off",
                );
                ObsLevel::Off
            }
        },
        Err(_) => ObsLevel::Off,
    };
    // A concurrent set_level may have raced us; only fill in if still
    // uninitialised, then re-read whatever won.
    let _ = LEVEL.compare_exchange(UNINIT, l as u8, Ordering::Relaxed, Ordering::Relaxed);
    ObsLevel::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Override the level in-process (tests, report binaries). With the
/// `enabled` feature off this is a no-op.
#[inline]
pub fn set_level(l: ObsLevel) {
    #[cfg(feature = "enabled")]
    LEVEL.store(l as u8, Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = l;
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_names_and_digits() {
        assert_eq!(ObsLevel::parse("off"), ObsLevel::Off);
        assert_eq!(ObsLevel::parse("Summary"), ObsLevel::Summary);
        assert_eq!(ObsLevel::parse(" spans "), ObsLevel::Spans);
        assert_eq!(ObsLevel::parse("TRACE"), ObsLevel::Trace);
        assert_eq!(ObsLevel::parse("3"), ObsLevel::Trace);
        assert_eq!(ObsLevel::parse("bogus"), ObsLevel::Off);
        assert_eq!(ObsLevel::parse(""), ObsLevel::Off);
    }

    #[test]
    fn try_parse_distinguishes_typos_from_off() {
        assert_eq!(ObsLevel::try_parse("off"), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::try_parse("0"), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::try_parse(""), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::try_parse(" Trace "), Some(ObsLevel::Trace));
        assert_eq!(ObsLevel::try_parse("bogus"), None);
        assert_eq!(ObsLevel::try_parse("summry"), None);
        assert_eq!(ObsLevel::try_parse("4"), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(ObsLevel::Off < ObsLevel::Summary);
        assert!(ObsLevel::Summary < ObsLevel::Spans);
        assert!(ObsLevel::Spans < ObsLevel::Trace);
    }
}
