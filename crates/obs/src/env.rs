//! One-time misparse warnings for the `SMA_*` environment knobs.
//!
//! Every runtime knob in the workspace (`SMA_OBS`, `SMA_FAULTS`,
//! `SMA_SIMD`, `SMA_TRACE`) follows the same contract: an unrecognised
//! value must never silently change behaviour — it falls back to the
//! documented default *and* says so on stderr exactly once per process.
//! This module is the shared implementation so the four knobs stay
//! consistent; it is compiled unconditionally (even with the `enabled`
//! feature off) because a misconfigured knob is exactly the situation
//! where the user needs the hint.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// Variables that have already warned in this process.
static WARNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Warn on stderr — once per `var` per process — that `value` was not
/// understood, naming the accepted spellings and the fallback behaviour
/// actually taken. Returns `true` when the warning was emitted (first
/// call for this variable), `false` when it was suppressed as a repeat.
pub fn warn_misparse(var: &'static str, value: &str, accepted: &str, fallback: &str) -> bool {
    let mut warned = WARNED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if !warned.insert(var) {
        return false;
    }
    eprintln!(
        "[sma-obs] unrecognized {var} value {value:?}; accepted values are {accepted} — {fallback}"
    );
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warns_once_per_variable() {
        // Keys private to this test so parallel tests cannot interfere.
        assert!(warn_misparse("SMA_TEST_A", "huh", "on|off", "stays off"));
        assert!(!warn_misparse("SMA_TEST_A", "huh2", "on|off", "stays off"));
        assert!(warn_misparse("SMA_TEST_B", "huh", "on|off", "stays off"));
        assert!(!warn_misparse("SMA_TEST_B", "huh", "on|off", "stays off"));
    }
}
