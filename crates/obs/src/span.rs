//! Hierarchical span timers.
//!
//! [`span`] returns a RAII guard; nesting is derived from a thread-local
//! stack of active span names, so the registry key is the `/`-joined
//! path from the thread's outermost span down to this one:
//!
//! ```
//! use sma_obs::{set_level, span, ObsLevel};
//! set_level(ObsLevel::Summary);
//! {
//!     let _outer = span("pipeline");
//!     let _inner = span("matching"); // recorded as "pipeline/matching"
//! }
//! let spans = sma_obs::span::snapshot();
//! # #[cfg(feature = "enabled")]
//! assert!(spans.iter().any(|s| s.path == "pipeline/matching"));
//! ```
//!
//! The registry is process-global and thread-aware: every thread (Rayon
//! workers included) keeps its own nesting stack, and all of them
//! aggregate by path into one table, so a span entered from eight
//! workers shows up once with `calls = 8`. Guards must drop in LIFO
//! order — the natural consequence of binding them to scopes.

#[cfg(feature = "enabled")]
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

#[cfg(any(feature = "enabled", test))]
use crate::ObsLevel;

/// Aggregated timing for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// `/`-joined path from the thread's root span to this one.
    pub path: String,
    /// Number of times a span with this path closed.
    pub calls: u64,
    /// Total wall-clock time across all calls.
    pub total: Duration,
}

#[derive(Default)]
struct SpanTable {
    // path -> (calls, total, first-seen order)
    map: HashMap<String, (u64, Duration, usize)>,
}

fn table() -> &'static Mutex<SpanTable> {
    static TABLE: OnceLock<Mutex<SpanTable>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(SpanTable::default()))
}

#[cfg(feature = "enabled")]
thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII timer for one span. Created by [`span`]; records on drop.
#[must_use = "a span guard times the scope it lives in; bind it to a variable"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    start: Option<std::time::Instant>,
    #[cfg(feature = "enabled")]
    name: &'static str,
}

/// Open a span named `name`. Timing starts now and is recorded when the
/// returned guard drops. When the runtime level is `Off` (or the crate
/// is built without the `enabled` feature) the guard is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        let level = crate::level();
        if level == ObsLevel::Off {
            return SpanGuard { start: None, name };
        }
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.len()
        });
        if level >= ObsLevel::Trace {
            eprintln!("[sma-obs] {:indent$}> {name}", "", indent = depth - 1);
        }
        SpanGuard {
            start: Some(std::time::Instant::now()),
            name,
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        SpanGuard {}
    }
}

#[cfg(feature = "enabled")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let elapsed = start.elapsed();
        let (path, depth) = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let path = s.join("/");
            let depth = s.len();
            s.pop();
            (path, depth)
        });
        crate::trace::record_span(self.name, start, depth);
        if crate::level() >= ObsLevel::Spans {
            eprintln!(
                "[sma-obs] {:indent$}< {path} {:.3?}",
                "",
                elapsed,
                indent = depth - 1
            );
        }
        let mut t = table().lock().unwrap();
        let next = t.map.len();
        let e = t.map.entry(path).or_insert((0, Duration::ZERO, next));
        e.0 += 1;
        e.1 += elapsed;
    }
}

/// Snapshot all recorded spans in first-seen order.
pub fn snapshot() -> Vec<SpanRow> {
    let t = table().lock().unwrap();
    let mut rows: Vec<(usize, SpanRow)> = t
        .map
        .iter()
        .map(|(path, &(calls, total, order))| {
            (
                order,
                SpanRow {
                    path: path.clone(),
                    calls,
                    total,
                },
            )
        })
        .collect();
    rows.sort_by_key(|(order, _)| *order);
    rows.into_iter().map(|(_, r)| r).collect()
}

/// Forget all recorded spans (tests and multi-phase report binaries).
pub fn reset() {
    table().lock().unwrap().map.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "enabled")]
    #[test]
    fn nested_spans_record_paths() {
        crate::set_level(ObsLevel::Summary);
        {
            let _a = span("span_test_outer");
            let _b = span("span_test_inner");
        }
        let rows = snapshot();
        let inner = rows
            .iter()
            .find(|r| r.path == "span_test_outer/span_test_inner")
            .expect("inner span path recorded");
        assert!(inner.calls >= 1);
        assert!(rows.iter().any(|r| r.path == "span_test_outer"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn calls_aggregate_across_threads() {
        crate::set_level(ObsLevel::Summary);
        let before = snapshot()
            .iter()
            .find(|r| r.path == "span_test_threaded")
            .map_or(0, |r| r.calls);
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span("span_test_threaded");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let after = snapshot()
            .iter()
            .find(|r| r.path == "span_test_threaded")
            .map_or(0, |r| r.calls);
        assert_eq!(after - before, 3);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_guard_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        crate::set_level(ObsLevel::Trace); // no-op
        {
            let _g = span("span_test_noop");
        }
        assert!(snapshot().is_empty());
    }
}
