//! Flight recorder and Chrome trace-event / Perfetto export.
//!
//! Every thread that emits an event owns a private bounded ring buffer
//! ([`TRACE_RING_CAPACITY`] events, oldest dropped first), registered in
//! a process-global list the exporter drains. The hot path is
//! contention-free: a thread only ever touches its own ring, and the
//! per-ring lock is taken by another thread exclusively during export or
//! [`reset`], so recording never blocks on a peer. When recording is off
//! the entire layer costs one relaxed atomic load per call site, and
//! with the crate's `enabled` feature off it compiles away entirely.
//!
//! Three event kinds are recorded:
//!
//! * **closed spans** — [`SpanGuard`](crate::span::SpanGuard) drops feed
//!   `(name, start, end, depth)` here; recording only *closed* spans
//!   means ring overflow drops whole spans and the exported `B`/`E`
//!   stream stays balanced by construction;
//! * **counter samples** — a named running total at a point in time
//!   (Chrome `C` events, rendered as a value track in Perfetto);
//! * **instants** — point events such as fault-ledger transitions
//!   (Chrome `i` events), optionally tagged with a static detail string.
//!
//! Recording is armed by the presence of a non-empty `SMA_TRACE`
//! environment variable (its value is the output path report binaries
//! pass to [`export_to_env`]) or in-process via [`set_recording`]. Span
//! capture additionally requires the observability level to be at least
//! `Summary` — an inert span guard never reaches the recorder.
//!
//! [`chrome_json`] renders the whole cross-thread forest in the Chrome
//! trace-event JSON format (`{"traceEvents": [...]}`), loadable in
//! Perfetto or `chrome://tracing`, and [`latency_summary`] folds the
//! same spans into per-stage p50/p95/p99 latency via
//! [`HistogramSnapshot`].

use crate::json::JsonValue;
#[cfg(feature = "enabled")]
use crate::metrics::HistogramSnapshot;

#[cfg(feature = "enabled")]
use std::collections::VecDeque;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering::Relaxed};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Bounded per-thread ring capacity, in events. Memory is bounded at
/// roughly `threads * TRACE_RING_CAPACITY * size_of::<Event>()`; when a
/// ring is full the oldest event is dropped and counted in
/// [`events_dropped`].
pub const TRACE_RING_CAPACITY: usize = 4096;

/// One closed span as the recorder stores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (the leaf, not the `/`-joined path — paths are
    /// reconstructed from containment at export time).
    pub name: &'static str,
    /// Start time in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// End time in nanoseconds since the recorder epoch.
    pub end_ns: u64,
    /// Nesting depth at close (1 = thread-root span).
    pub depth: u32,
}

/// Per-stage latency distribution derived from recorded spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLatency {
    /// `/`-joined span path, reconstructed from per-thread containment.
    pub path: String,
    /// Number of recorded closes, summed across threads.
    pub count: u64,
    /// Median latency in microseconds (bucket upper-edge estimate).
    pub p50_us: u64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
    /// Largest recorded latency in microseconds (exact).
    pub max_us: u64,
}

#[cfg(feature = "enabled")]
#[derive(Debug, Clone, Copy)]
enum Event {
    Span(SpanEvent),
    Counter {
        name: &'static str,
        t_ns: u64,
        value: u64,
    },
    Instant {
        name: &'static str,
        detail: Option<&'static str>,
        t_ns: u64,
    },
}

#[cfg(feature = "enabled")]
struct RingState {
    events: VecDeque<Event>,
    dropped: u64,
}

#[cfg(feature = "enabled")]
struct ThreadRing {
    tid: u64,
    label: String,
    state: Mutex<RingState>,
}

#[cfg(feature = "enabled")]
impl ThreadRing {
    fn push(&self, ev: Event) {
        let Ok(mut s) = self.state.lock() else {
            return;
        };
        if s.events.len() >= TRACE_RING_CAPACITY {
            s.events.pop_front();
            s.dropped += 1;
        }
        s.events.push_back(ev);
    }
}

#[cfg(feature = "enabled")]
fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

#[cfg(feature = "enabled")]
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[cfg(feature = "enabled")]
fn ns_since_epoch(t: Instant) -> u64 {
    t.saturating_duration_since(epoch()).as_nanos() as u64
}

#[cfg(feature = "enabled")]
thread_local! {
    static RING: std::cell::OnceCell<Arc<ThreadRing>> = const { std::cell::OnceCell::new() };
}

#[cfg(feature = "enabled")]
fn with_ring(f: impl FnOnce(&ThreadRing)) {
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            static NEXT_TID: AtomicU64 = AtomicU64::new(1);
            let tid = NEXT_TID.fetch_add(1, Relaxed);
            let cur = std::thread::current();
            let label = match cur.name() {
                Some(n) => n.to_string(),
                None => format!("thread-{tid}"),
            };
            let ring = Arc::new(ThreadRing {
                tid,
                label,
                state: Mutex::new(RingState {
                    events: VecDeque::new(),
                    dropped: 0,
                }),
            });
            if let Ok(mut r) = rings().lock() {
                r.push(Arc::clone(&ring));
            }
            ring
        });
        f(ring);
    });
}

/// Recording switch: `u8::MAX` until the environment is consulted.
#[cfg(feature = "enabled")]
static RECORDING: AtomicU8 = AtomicU8::new(u8::MAX);

/// Whether the flight recorder is capturing events. First call reads the
/// `SMA_TRACE` environment variable (any non-empty value arms it); later
/// calls are one relaxed atomic load. Always `false` without the
/// `enabled` feature.
#[inline]
pub fn recording() -> bool {
    #[cfg(feature = "enabled")]
    {
        match RECORDING.load(Relaxed) {
            0 => false,
            u8::MAX => init_from_env(),
            _ => true,
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

#[cfg(feature = "enabled")]
#[cold]
fn init_from_env() -> bool {
    let var = std::env::var("SMA_TRACE").ok();
    let armed = var.as_deref().is_some_and(|v| !v.trim().is_empty());
    if let Some(v) = var.as_deref() {
        // Set-but-blank is the one unparseable spelling this knob has: it
        // looks armed in the environment but records nothing.
        if v.trim().is_empty() {
            crate::env::warn_misparse(
                "SMA_TRACE",
                v,
                "a non-empty output path (e.g. trace.json)",
                "flight recorder stays off",
            );
        }
    }
    if armed {
        let _ = epoch();
    }
    let _ = RECORDING.compare_exchange(u8::MAX, armed as u8, Relaxed, Relaxed);
    RECORDING.load(Relaxed) != 0
}

/// Arm or disarm the recorder in-process (tests, report binaries,
/// conformance combos). No-op without the `enabled` feature.
pub fn set_recording(on: bool) {
    #[cfg(feature = "enabled")]
    {
        if on {
            let _ = epoch();
        }
        RECORDING.store(on as u8, Relaxed);
    }
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// The `SMA_TRACE` output path, if the variable is set and non-empty.
pub fn env_path() -> Option<String> {
    std::env::var("SMA_TRACE")
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
}

/// Record one closed span on the calling thread. Called from the span
/// guard's drop; also usable directly by custom instrumentation.
/// `depth` is the nesting depth at close (1 = thread-root span).
#[inline]
pub fn record_span(name: &'static str, start: std::time::Instant, depth: usize) {
    #[cfg(feature = "enabled")]
    {
        if !recording() {
            return;
        }
        let end_ns = ns_since_epoch(Instant::now());
        let start_ns = ns_since_epoch(start);
        with_ring(|ring| {
            ring.push(Event::Span(SpanEvent {
                name,
                start_ns: start_ns.min(end_ns),
                end_ns,
                depth: depth.min(u32::MAX as usize) as u32,
            }));
        });
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (name, start, depth);
}

/// Record a named running total at the current instant (rendered as a
/// Perfetto counter track). Intended for low-frequency call sites such
/// as cache hit/miss totals or fault-ledger tallies — not per-pixel
/// loops.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    #[cfg(feature = "enabled")]
    {
        if !recording() {
            return;
        }
        let t_ns = ns_since_epoch(Instant::now());
        with_ring(|ring| ring.push(Event::Counter { name, t_ns, value }));
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value);
}

/// Record a point event (e.g. a pipeline phase boundary).
#[inline]
pub fn instant(name: &'static str) {
    instant_with_opt(name, None);
}

/// Record a point event carrying a static detail string (e.g. a
/// fault-ledger transition tagged with its injection site).
#[inline]
pub fn instant_with(name: &'static str, detail: &'static str) {
    instant_with_opt(name, Some(detail));
}

#[inline]
fn instant_with_opt(name: &'static str, detail: Option<&'static str>) {
    #[cfg(feature = "enabled")]
    {
        if !recording() {
            return;
        }
        let t_ns = ns_since_epoch(Instant::now());
        with_ring(|ring| ring.push(Event::Instant { name, detail, t_ns }));
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (name, detail);
}

/// Total events dropped to ring overflow, summed over all threads.
pub fn events_dropped() -> u64 {
    #[cfg(feature = "enabled")]
    {
        let Ok(r) = rings().lock() else { return 0 };
        r.iter()
            .map(|ring| ring.state.lock().map_or(0, |s| s.dropped))
            .sum()
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Clear every thread's ring (events and drop counts). Thread
/// registrations are retained, like
/// [`metrics::reset`](crate::metrics::reset).
pub fn reset() {
    #[cfg(feature = "enabled")]
    {
        let Ok(r) = rings().lock() else { return };
        for ring in r.iter() {
            if let Ok(mut s) = ring.state.lock() {
                s.events.clear();
                s.dropped = 0;
            }
        }
    }
}

/// Everything exported for one thread: a snapshot taken under the ring
/// lock, already separated by kind.
#[cfg(feature = "enabled")]
struct ThreadCapture {
    tid: u64,
    label: String,
    spans: Vec<SpanEvent>,
    counters: Vec<(u64, &'static str, u64)>,
    instants: Vec<(u64, &'static str, Option<&'static str>)>,
}

#[cfg(feature = "enabled")]
fn capture_all() -> Vec<ThreadCapture> {
    let Ok(r) = rings().lock() else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(r.len());
    for ring in r.iter() {
        let Ok(s) = ring.state.lock() else { continue };
        let mut cap = ThreadCapture {
            tid: ring.tid,
            label: ring.label.clone(),
            spans: Vec::new(),
            counters: Vec::new(),
            instants: Vec::new(),
        };
        for ev in s.events.iter() {
            match *ev {
                Event::Span(sp) => cap.spans.push(sp),
                Event::Counter { name, t_ns, value } => cap.counters.push((t_ns, name, value)),
                Event::Instant { name, detail, t_ns } => cap.instants.push((t_ns, name, detail)),
            }
        }
        out.push(cap);
    }
    out.sort_by_key(|c| c.tid);
    out
}

/// Sort spans into emission order: by start time, ties broken by depth
/// (parents first) then by later end first, so a stack replay recovers
/// the original nesting exactly.
#[cfg(feature = "enabled")]
fn sort_spans(spans: &mut [SpanEvent]) {
    spans.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(a.depth.cmp(&b.depth))
            .then(b.end_ns.cmp(&a.end_ns))
    });
}

/// One step of a nesting replay: a span opening (with its reconstructed
/// `/`-joined path and clamped end time) or a span closing.
#[cfg(feature = "enabled")]
enum Replayed {
    Open { span: SpanEvent, path: String },
    Close { end_ns: u64, name: &'static str },
}

/// Replay one thread's sorted spans through an enclosure stack, yielding
/// `Open` steps in `B` order and `Close` steps in `E` (LIFO) order. End
/// times are clamped to the enclosing span so the emitted stream is
/// properly nested even if clock jitter produced a pathological overlap.
#[cfg(feature = "enabled")]
fn replay_spans(spans: &[SpanEvent]) -> Vec<Replayed> {
    let mut out = Vec::with_capacity(spans.len() * 2);
    // Stack of (clamped end_ns, name) for currently open spans.
    let mut stack: Vec<(u64, &'static str)> = Vec::new();
    let mut path = String::new();
    for sp in spans {
        while let Some(&(end_ns, name)) = stack.last() {
            if end_ns <= sp.start_ns {
                out.push(Replayed::Close { end_ns, name });
                stack.pop();
                let keep = stack
                    .iter()
                    .map(|(_, n)| n.len() + 1)
                    .sum::<usize>()
                    .saturating_sub(1);
                path.truncate(keep);
            } else {
                break;
            }
        }
        let clamped_end = match stack.last() {
            Some(&(parent_end, _)) => sp.end_ns.min(parent_end).max(sp.start_ns),
            None => sp.end_ns.max(sp.start_ns),
        };
        if !path.is_empty() {
            path.push('/');
        }
        path.push_str(sp.name);
        out.push(Replayed::Open {
            span: SpanEvent {
                end_ns: clamped_end,
                ..*sp
            },
            path: path.clone(),
        });
        stack.push((clamped_end, sp.name));
    }
    while let Some((end_ns, name)) = stack.pop() {
        out.push(Replayed::Close { end_ns, name });
    }
    out
}

#[cfg(feature = "enabled")]
fn micros(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

#[cfg(feature = "enabled")]
fn meta_event(kind: &str, tid: f64, label: &str) -> JsonValue {
    JsonValue::Obj(vec![
        ("name".into(), JsonValue::Str(kind.into())),
        ("ph".into(), JsonValue::Str("M".into())),
        ("pid".into(), JsonValue::Num(1.0)),
        ("tid".into(), JsonValue::Num(tid)),
        (
            "args".into(),
            JsonValue::Obj(vec![("name".into(), JsonValue::Str(label.into()))]),
        ),
    ])
}

#[cfg(feature = "enabled")]
fn span_edge(ph: &str, name: &str, ts_ns: u64, tid: f64) -> JsonValue {
    JsonValue::Obj(vec![
        ("name".into(), JsonValue::Str(name.into())),
        ("ph".into(), JsonValue::Str(ph.into())),
        ("ts".into(), JsonValue::Num(micros(ts_ns))),
        ("pid".into(), JsonValue::Num(1.0)),
        ("tid".into(), JsonValue::Num(tid)),
    ])
}

/// Render the recorded forest as Chrome trace-event JSON
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`), loadable in
/// Perfetto. Per thread, `B`/`E` events are balanced and properly nested
/// by construction; timestamps (microseconds since the recorder epoch)
/// are nondecreasing within each thread. Counter samples map to `C`
/// events, instants to `i`, and each thread gets a `thread_name`
/// metadata record. Without the `enabled` feature the result is a valid
/// document with an empty event list.
pub fn chrome_json() -> String {
    #[cfg_attr(not(feature = "enabled"), allow(unused_mut))]
    let mut events: Vec<JsonValue> = vec![JsonValue::Obj(vec![
        ("name".into(), JsonValue::Str("process_name".into())),
        ("ph".into(), JsonValue::Str("M".into())),
        ("pid".into(), JsonValue::Num(1.0)),
        ("tid".into(), JsonValue::Num(0.0)),
        (
            "args".into(),
            JsonValue::Obj(vec![("name".into(), JsonValue::Str("sma-pipeline".into()))]),
        ),
    ])];
    #[cfg(feature = "enabled")]
    {
        for cap in capture_all() {
            let tid = cap.tid as f64;
            events.push(meta_event("thread_name", tid, &cap.label));
            let mut spans = cap.spans.clone();
            sort_spans(&mut spans);
            // (ts, kind, event): kind 0 = span edge, kind 1 = sample;
            // the span edges are appended in replay order, which is
            // already nondecreasing in ts and nesting-correct.
            let mut timeline: Vec<(u64, u8, JsonValue)> = Vec::new();
            for step in replay_spans(&spans) {
                match step {
                    Replayed::Open { span, .. } => timeline.push((
                        span.start_ns,
                        0,
                        span_edge("B", span.name, span.start_ns, tid),
                    )),
                    Replayed::Close { end_ns, name } => {
                        timeline.push((end_ns, 0, span_edge("E", name, end_ns, tid)))
                    }
                }
            }
            for (t_ns, name, value) in &cap.counters {
                timeline.push((
                    *t_ns,
                    1,
                    JsonValue::Obj(vec![
                        ("name".into(), JsonValue::Str((*name).into())),
                        ("ph".into(), JsonValue::Str("C".into())),
                        ("ts".into(), JsonValue::Num(micros(*t_ns))),
                        ("pid".into(), JsonValue::Num(1.0)),
                        ("tid".into(), JsonValue::Num(tid)),
                        (
                            "args".into(),
                            JsonValue::Obj(vec![("value".into(), JsonValue::Num(*value as f64))]),
                        ),
                    ]),
                ));
            }
            for (t_ns, name, detail) in &cap.instants {
                let mut fields = vec![
                    ("name".into(), JsonValue::Str((*name).into())),
                    ("ph".into(), JsonValue::Str("i".into())),
                    ("s".into(), JsonValue::Str("t".into())),
                    ("ts".into(), JsonValue::Num(micros(*t_ns))),
                    ("pid".into(), JsonValue::Num(1.0)),
                    ("tid".into(), JsonValue::Num(tid)),
                ];
                if let Some(d) = detail {
                    fields.push((
                        "args".into(),
                        JsonValue::Obj(vec![("detail".into(), JsonValue::Str((*d).into()))]),
                    ));
                }
                timeline.push((*t_ns, 1, JsonValue::Obj(fields)));
            }
            // Stable sort: span-edge relative order (kind 0) is
            // preserved at equal timestamps; samples (kind 1) slot after
            // them so they never interleave a B/E pair.
            timeline.sort_by_key(|(t, kind, _)| (*t, *kind));
            events.extend(timeline.into_iter().map(|(_, _, ev)| ev));
        }
    }
    let doc = JsonValue::Obj(vec![
        ("traceEvents".into(), JsonValue::Arr(events)),
        ("displayTimeUnit".into(), JsonValue::Str("ms".into())),
    ]);
    crate::json::write_pretty(&doc)
}

/// Write [`chrome_json`] to the `SMA_TRACE` path, if set. Returns the
/// path written to (`None` when `SMA_TRACE` is unset or empty).
///
/// # Errors
/// Propagates the I/O error if the path cannot be written.
pub fn export_to_env() -> std::io::Result<Option<String>> {
    match env_path() {
        Some(path) => {
            std::fs::write(&path, chrome_json())?;
            Ok(Some(path))
        }
        None => Ok(None),
    }
}

/// Fold recorded spans into per-stage latency distributions: spans are
/// grouped by reconstructed `/`-joined path (merged across threads, in
/// first-seen order) and each group's durations feed a
/// [`HistogramSnapshot`] whose
/// p50/p95/p99 upper-edge estimates are reported in microseconds. Empty
/// without recorded spans.
pub fn latency_summary() -> Vec<StageLatency> {
    #[cfg(feature = "enabled")]
    {
        let mut order: Vec<String> = Vec::new();
        let mut hists: std::collections::HashMap<String, HistogramSnapshot> =
            std::collections::HashMap::new();
        for cap in capture_all() {
            let mut spans = cap.spans.clone();
            sort_spans(&mut spans);
            for step in replay_spans(&spans) {
                if let Replayed::Open { span, path } = step {
                    let h = hists.entry(path.clone()).or_insert_with(|| {
                        order.push(path);
                        HistogramSnapshot::empty()
                    });
                    h.observe((span.end_ns - span.start_ns) / 1000);
                }
            }
        }
        order
            .into_iter()
            .map(|path| {
                let h = hists.get(&path).copied().unwrap_or_default();
                StageLatency {
                    path,
                    count: h.count,
                    p50_us: h.percentile(0.50),
                    p95_us: h.percentile(0.95),
                    p99_us: h.percentile(0.99),
                    max_us: h.max,
                }
            })
            .collect()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Structural summary returned by [`validate_chrome_json`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total `B`/`E`/`C`/`i` events (metadata excluded).
    pub events: usize,
    /// Number of distinct `tid`s seen on non-metadata events.
    pub threads: usize,
    /// Number of complete `B`/`E` span pairs.
    pub spans: usize,
    /// Deepest `B` nesting observed on any thread.
    pub max_depth: usize,
}

/// Structurally validate a Chrome trace-event JSON document: every
/// thread's `B`/`E` events must pair up LIFO with matching names, and
/// timestamps must be nondecreasing per thread. This mirrors the check
/// CI applies to exported traces; tests call it directly on
/// [`chrome_json`] output.
///
/// # Errors
/// Returns a description of the first structural violation found.
pub fn validate_chrome_json(text: &str) -> Result<TraceCheck, String> {
    let doc = crate::json::parse(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = match doc.get("traceEvents") {
        Some(JsonValue::Arr(evs)) => evs,
        _ => return Err("missing traceEvents array".into()),
    };
    let mut stacks: std::collections::HashMap<u64, Vec<String>> = std::collections::HashMap::new();
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    let mut check = TraceCheck {
        events: 0,
        threads: 0,
        spans: 0,
        max_depth: 0,
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.get("ph").and_then(JsonValue::as_str) {
            Some(s) => s.to_string(),
            None => return Err(format!("event {i} has no ph")),
        };
        if ph == "M" {
            continue;
        }
        let tid = match ev.get("tid").and_then(JsonValue::as_f64) {
            Some(n) => n as u64,
            None => return Err(format!("event {i} ({ph}) has no tid")),
        };
        let ts = match ev.get("ts").and_then(JsonValue::as_f64) {
            Some(n) => n,
            None => return Err(format!("event {i} ({ph}) has no ts")),
        };
        let name = match ev.get("name").and_then(JsonValue::as_str) {
            Some(s) => s.to_string(),
            None => return Err(format!("event {i} ({ph}) has no name")),
        };
        check.events += 1;
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        if ts < *prev {
            return Err(format!(
                "event {i} ({ph} {name:?}) ts {ts} goes backwards on tid {tid} (prev {prev})"
            ));
        }
        *prev = ts;
        match ph.as_str() {
            "B" => {
                let stack = stacks.entry(tid).or_default();
                stack.push(name);
                check.max_depth = check.max_depth.max(stack.len());
            }
            "E" => {
                let stack = stacks.entry(tid).or_default();
                match stack.pop() {
                    Some(open) if open == name => check.spans += 1,
                    Some(open) => {
                        return Err(format!(
                            "event {i}: E {name:?} closes B {open:?} on tid {tid}"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "event {i}: E {name:?} with empty stack on tid {tid}"
                        ))
                    }
                }
            }
            "C" | "i" => {}
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid} ends with {} unclosed B events",
                stack.len()
            ));
        }
    }
    check.threads = last_ts.len();
    Ok(check)
}
