//! Dynamically-keyed counters for per-tenant (per-shard, per-stream)
//! scoping.
//!
//! The static [`Counter`](crate::metrics::Counter) registry is ideal for
//! fixed pipeline stages but cannot name a counter per *tenant* — tenant
//! ids only exist at runtime. This module keeps a process-global map
//! keyed `(scope, id, field)` (e.g. `("serve.tenant", 3, "completed")`)
//! that renders as `serve.tenant.3.completed` in snapshots and
//! `METRICS_*.json` exports. Like the static metrics, recording is
//! gated on the runtime [`level`](crate::level): with `SMA_OBS` off the
//! map is never touched.
//!
//! With the `enabled` feature off every entry point compiles to an empty
//! body.

#[cfg(feature = "enabled")]
use std::collections::BTreeMap;
#[cfg(feature = "enabled")]
use std::sync::Mutex;

#[cfg(feature = "enabled")]
static SCOPED: Mutex<BTreeMap<(&'static str, usize, &'static str), u64>> =
    Mutex::new(BTreeMap::new());

/// Add `n` to the scoped counter `(scope, id, field)`.
#[inline]
pub fn add(scope: &'static str, id: usize, field: &'static str, n: u64) {
    #[cfg(feature = "enabled")]
    {
        if crate::level() == crate::ObsLevel::Off || n == 0 {
            return;
        }
        let mut map = SCOPED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *map.entry((scope, id, field)).or_insert(0) += n;
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (scope, id, field, n);
    }
}

/// Increment the scoped counter `(scope, id, field)` by one.
#[inline]
pub fn incr(scope: &'static str, id: usize, field: &'static str) {
    add(scope, id, field, 1);
}

/// Raise the scoped counter to at least `v` (high-water semantics).
#[inline]
pub fn set_max(scope: &'static str, id: usize, field: &'static str, v: u64) {
    #[cfg(feature = "enabled")]
    {
        if crate::level() == crate::ObsLevel::Off {
            return;
        }
        let mut map = SCOPED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let slot = map.entry((scope, id, field)).or_insert(0);
        *slot = (*slot).max(v);
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (scope, id, field, v);
    }
}

/// Snapshot all scoped counters as `("scope.id.field", value)` rows in
/// key order. Empty with the feature off.
pub fn snapshot() -> Vec<(String, u64)> {
    #[cfg(feature = "enabled")]
    {
        let map = SCOPED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.iter()
            .map(|((scope, id, field), v)| (format!("{scope}.{id}.{field}"), *v))
            .collect()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Zero and forget every scoped counter (tests and report binaries).
pub fn reset() {
    #[cfg(feature = "enabled")]
    SCOPED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

/// Export every scoped counter into a metrics document.
pub fn export_into(doc: &mut crate::json::MetricsDoc) {
    for (name, v) in snapshot() {
        doc.set_counter(&name, v);
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn scoped_counters_render_with_ids() {
        let prev = crate::level();
        crate::set_level(crate::ObsLevel::Summary);
        reset();
        incr("test.tenant", 0, "completed");
        add("test.tenant", 7, "completed", 3);
        set_max("test.tenant", 7, "depth_high_water", 5);
        set_max("test.tenant", 7, "depth_high_water", 2);
        let rows = snapshot();
        let get = |k: &str| rows.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("test.tenant.0.completed"), Some(1));
        assert_eq!(get("test.tenant.7.completed"), Some(3));
        assert_eq!(get("test.tenant.7.depth_high_water"), Some(5));

        let mut doc = crate::json::MetricsDoc::new("scoped_test");
        export_into(&mut doc);
        assert_eq!(doc.counter("test.tenant.7.completed"), 3);
        reset();
        crate::set_level(prev);
    }
}
