//! The stable `METRICS_*.json` exporter and its parser.
//!
//! Every bench binary emits the same schema so downstream tooling can
//! diff runs without knowing which binary produced them:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "source": "obs_report",
//!   "counters": { "sma.ge_solves": 12345 },
//!   "gauges": { "maspar.pe_bytes_high_water": 9216 },
//!   "histograms": { "maspar.router.in_degree": { "count": 3, "sum": 6, "max": 4 } },
//!   "spans": [ { "path": "pipeline/matching", "calls": 1, "total_seconds": 0.5 } ]
//! }
//! ```
//!
//! The workspace has no serde (offline, vendored shims only), so this
//! module carries a small recursive-descent JSON parser. [`MetricsDoc`]
//! round-trips through it and [`MetricsDoc::from_json`] rejects
//! documents whose `schema_version` differs from [`SCHEMA_VERSION`] or
//! that lack the required keys.

use crate::metrics::MetricsSnapshot;
use crate::span::SpanRow;

/// Version of the metrics document layout. Bump on any breaking change;
/// readers reject documents with a different version.
pub const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Generic JSON value, parser and writer
// ---------------------------------------------------------------------

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry the byte offset of the problem.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Decode surrogate pairs; lone surrogates
                            // become U+FFFD rather than failing.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                    } else {
                                        out.push('\u{FFFD}');
                                        out.push(char::from_u32(lo).unwrap_or('\u{FFFD}'));
                                    }
                                } else {
                                    out.push('\u{FFFD}');
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the source is a &str, so slicing
                    // at char boundaries is safe via chars().
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_num(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no NaN/Inf; clamp rather than emit an invalid token.
        "0".to_string()
    } else {
        // Rust's Display for f64 is the shortest round-trip form.
        format!("{n}")
    }
}

/// Serialise a [`JsonValue`] with two-space indentation.
pub fn write_pretty(v: &JsonValue) -> String {
    let mut out = String::new();
    write_value(&mut out, v, 0);
    out.push('\n');
    out
}

fn write_value(out: &mut String, v: &JsonValue, depth: usize) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => out.push_str(&fmt_num(*n)),
        JsonValue::Str(s) => escape_into(out, s),
        JsonValue::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&"  ".repeat(depth + 1));
                write_value(out, item, depth + 1);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&"  ".repeat(depth));
            out.push(']');
        }
        JsonValue::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in members.iter().enumerate() {
                out.push_str(&"  ".repeat(depth + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_value(out, val, depth + 1);
                out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
            }
            out.push_str(&"  ".repeat(depth));
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------
// The metrics document
// ---------------------------------------------------------------------

/// One span row in the export.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEntry {
    /// `/`-joined span path.
    pub path: String,
    /// Number of closes.
    pub calls: u64,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
}

/// One histogram row in the export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramEntry {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
}

/// The versioned metrics document written as `METRICS_*.json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsDoc {
    /// The binary (or test) that produced the document.
    pub source: String,
    /// Counter totals, in name order.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, in insertion order. Bench binaries also park their
    /// derived quantities (modelled seconds, speedups) here.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, in name order.
    pub histograms: Vec<(String, HistogramEntry)>,
    /// Aggregated spans, in first-seen order.
    pub spans: Vec<SpanEntry>,
}

impl MetricsDoc {
    /// An empty document attributed to `source`.
    pub fn new(source: &str) -> Self {
        Self {
            source: source.to_string(),
            ..Self::default()
        }
    }

    /// Capture the current global metric and span state into a document.
    pub fn capture(source: &str) -> Self {
        Self::from_parts(
            source,
            &crate::metrics::snapshot(),
            &crate::span::snapshot(),
        )
    }

    /// Build a document from explicit snapshots (useful for deltas).
    pub fn from_parts(source: &str, metrics: &MetricsSnapshot, spans: &[SpanRow]) -> Self {
        let mut doc = Self::new(source);
        for (name, v) in &metrics.counters {
            doc.counters.push((name.to_string(), *v));
        }
        for (name, v) in &metrics.gauges {
            doc.gauges.push((name.to_string(), *v as f64));
        }
        for (name, h) in &metrics.histograms {
            doc.histograms.push((
                name.to_string(),
                HistogramEntry {
                    count: h.count,
                    sum: h.sum,
                    max: h.max,
                },
            ));
        }
        for s in spans {
            doc.spans.push(SpanEntry {
                path: s.path.clone(),
                calls: s.calls,
                total_seconds: s.total.as_secs_f64(),
            });
        }
        doc
    }

    /// Add a gauge, replacing any existing gauge with the same name.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        if let Some(g) = self.gauges.iter_mut().find(|(n, _)| n == name) {
            g.1 = v;
        } else {
            self.gauges.push((name.to_string(), v));
        }
    }

    /// Add a counter, replacing any existing counter with the same name.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        if let Some(c) = self.counters.iter_mut().find(|(n, _)| n == name) {
            c.1 = v;
        } else {
            self.counters.push((name.to_string(), v));
        }
    }

    /// Counter total by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Serialise to the versioned JSON schema.
    pub fn to_json(&self) -> String {
        let counters = JsonValue::Obj(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), JsonValue::Num(*v as f64)))
                .collect(),
        );
        let gauges = JsonValue::Obj(
            self.gauges
                .iter()
                .map(|(n, v)| (n.clone(), JsonValue::Num(*v)))
                .collect(),
        );
        let histograms = JsonValue::Obj(
            self.histograms
                .iter()
                .map(|(n, h)| {
                    (
                        n.clone(),
                        JsonValue::Obj(vec![
                            ("count".into(), JsonValue::Num(h.count as f64)),
                            ("sum".into(), JsonValue::Num(h.sum as f64)),
                            ("max".into(), JsonValue::Num(h.max as f64)),
                        ]),
                    )
                })
                .collect(),
        );
        let spans = JsonValue::Arr(
            self.spans
                .iter()
                .map(|s| {
                    JsonValue::Obj(vec![
                        ("path".into(), JsonValue::Str(s.path.clone())),
                        ("calls".into(), JsonValue::Num(s.calls as f64)),
                        ("total_seconds".into(), JsonValue::Num(s.total_seconds)),
                    ])
                })
                .collect(),
        );
        let doc = JsonValue::Obj(vec![
            (
                "schema_version".into(),
                JsonValue::Num(SCHEMA_VERSION as f64),
            ),
            ("source".into(), JsonValue::Str(self.source.clone())),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
            ("spans".into(), spans),
        ]);
        write_pretty(&doc)
    }

    /// Parse and validate a metrics document.
    ///
    /// # Errors
    /// Rejects malformed JSON, a missing or unknown `schema_version`,
    /// and missing `source` / `counters` / `spans` keys.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        let version = v
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let source = v
            .get("source")
            .and_then(JsonValue::as_str)
            .ok_or("missing source")?
            .to_string();
        let mut doc = Self::new(&source);
        for (name, val) in v
            .get("counters")
            .and_then(JsonValue::as_obj)
            .ok_or("missing counters object")?
        {
            let n = val
                .as_u64()
                .ok_or_else(|| format!("counter {name} is not a non-negative integer"))?;
            doc.counters.push((name.clone(), n));
        }
        if let Some(gauges) = v.get("gauges").and_then(JsonValue::as_obj) {
            for (name, val) in gauges {
                let n = val
                    .as_f64()
                    .ok_or_else(|| format!("gauge {name} is not a number"))?;
                doc.gauges.push((name.clone(), n));
            }
        }
        if let Some(hists) = v.get("histograms").and_then(JsonValue::as_obj) {
            for (name, val) in hists {
                let field = |k: &str| {
                    val.get(k)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("histogram {name} missing {k}"))
                };
                doc.histograms.push((
                    name.clone(),
                    HistogramEntry {
                        count: field("count")?,
                        sum: field("sum")?,
                        max: field("max")?,
                    },
                ));
            }
        }
        for item in v
            .get("spans")
            .and_then(JsonValue::as_arr)
            .ok_or("missing spans array")?
        {
            let path = item
                .get("path")
                .and_then(JsonValue::as_str)
                .ok_or("span missing path")?
                .to_string();
            let calls = item
                .get("calls")
                .and_then(JsonValue::as_u64)
                .ok_or("span missing calls")?;
            let total_seconds = item
                .get("total_seconds")
                .and_then(JsonValue::as_f64)
                .ok_or("span missing total_seconds")?;
            doc.spans.push(SpanEntry {
                path,
                calls,
                total_seconds,
            });
        }
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_scalars_arrays_objects() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parser_decodes_unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{e9}\u{1F600}"));
    }

    #[test]
    fn doc_round_trips() {
        let mut doc = MetricsDoc::new("round_trip_test");
        doc.counters.push(("sma.ge_solves".into(), 12345));
        doc.counters
            .push(("fastpath.border_fallback_pixels".into(), 88));
        doc.set_gauge("speedup", 16.75);
        doc.histograms.push((
            "maspar.router.in_degree".into(),
            HistogramEntry {
                count: 9,
                sum: 20,
                max: 5,
            },
        ));
        doc.spans.push(SpanEntry {
            path: "pipeline/matching".into(),
            calls: 2,
            total_seconds: 0.125,
        });
        let text = doc.to_json();
        let back = MetricsDoc::from_json(&text).expect("round trip parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn rejects_unknown_schema_version() {
        let doc = MetricsDoc::new("x");
        let text = doc
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        let err = MetricsDoc::from_json(&text).unwrap_err();
        assert!(err.contains("unsupported schema_version 999"), "{err}");
    }

    #[test]
    fn rejects_missing_required_keys() {
        assert!(MetricsDoc::from_json("{}")
            .unwrap_err()
            .contains("schema_version"));
        let no_counters = r#"{"schema_version": 1, "source": "x", "spans": []}"#;
        assert!(MetricsDoc::from_json(no_counters)
            .unwrap_err()
            .contains("counters"));
        let no_spans = r#"{"schema_version": 1, "source": "x", "counters": {}}"#;
        assert!(MetricsDoc::from_json(no_spans)
            .unwrap_err()
            .contains("spans"));
    }

    #[test]
    fn empty_capture_is_still_valid_schema() {
        let doc = MetricsDoc::new("empty");
        let back = MetricsDoc::from_json(&doc.to_json()).unwrap();
        assert_eq!(back.source, "empty");
        assert!(back.counters.is_empty());
        assert!(back.spans.is_empty());
    }
}
