//! Typed counters, high-water gauges and histograms.
//!
//! Metrics are declared as `static` items at their call sites and
//! register themselves into a process-global registry on first touch, so
//! there is no central list to keep in sync:
//!
//! ```
//! use sma_obs::{metrics::Counter, set_level, ObsLevel};
//! static HYPOTHESES: Counter = Counter::new("sma.hypotheses_evaluated");
//! set_level(ObsLevel::Summary);
//! HYPOTHESES.add(25);
//! # #[cfg(feature = "enabled")]
//! assert_eq!(HYPOTHESES.get(), 25);
//! ```
//!
//! All updates are relaxed atomics: totals are exact (every add lands),
//! only cross-metric ordering is unspecified, which aggregation does not
//! care about. When the runtime level is [`Off`](crate::ObsLevel::Off)
//! updates return before touching the value, so instrumented hot loops
//! cost one atomic load per call site in production.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, Once, OnceLock};

/// What a registry entry points at. In no-op builds nothing ever
/// registers, so the variants are only constructed with `enabled` on.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
enum MetricRef {
    Counter(&'static Counter),
    HighWater(&'static HighWater),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<Vec<MetricRef>> {
    static REGISTRY: OnceLock<Mutex<Vec<MetricRef>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// A monotonically increasing event count.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    registered: Once,
}

impl Counter {
    /// Declare a counter. `name` is the stable dotted identifier used in
    /// reports and the JSON export (e.g. `"sma.ge_solves"`).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: Once::new(),
        }
    }

    /// The counter's stable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` events. No-op when observability is off.
    #[inline]
    pub fn add(&'static self, n: u64) {
        #[cfg(feature = "enabled")]
        {
            if !crate::active() {
                return;
            }
            self.registered
                .call_once(|| registry().lock().unwrap().push(MetricRef::Counter(self)));
            self.value.fetch_add(n, Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Add one event. No-op when observability is off.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A gauge that keeps the maximum value ever recorded (e.g. per-PE
/// memory high-water in bytes).
pub struct HighWater {
    name: &'static str,
    value: AtomicU64,
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    registered: Once,
}

impl HighWater {
    /// Declare a high-water gauge with a stable dotted `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: Once::new(),
        }
    }

    /// The gauge's stable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record an observation; the gauge keeps the maximum. No-op when
    /// observability is off.
    #[inline]
    pub fn record(&'static self, v: u64) {
        #[cfg(feature = "enabled")]
        {
            if !crate::active() {
                return;
            }
            self.registered
                .call_once(|| registry().lock().unwrap().push(MetricRef::HighWater(self)));
            self.value.fetch_max(v, Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Largest value recorded so far (0 if never touched).
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// Power-of-two bucket count: values land in bucket
/// `ceil(log2(v + 1))`, capped. Bucket 0 holds zeros.
pub const HIST_BUCKETS: usize = 33;

/// Bucket index for one observation: bucket `b >= 1` covers
/// `[2^(b-1), 2^b - 1]`, bucket 0 holds zeros, and the last bucket is an
/// open-ended overflow bin for everything at or above `2^(HIST_BUCKETS-2)`.
#[inline]
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper edge of a non-overflow bucket; `u64::MAX` for the
/// overflow bucket (callers clamp with the recorded max instead).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A histogram over `u64` observations with power-of-two buckets plus
/// exact count/sum/max (e.g. router in-degrees).
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    registered: Once,
}

/// Point-in-time histogram statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Largest observation (0 if empty).
    pub max: u64,
}

impl Histogram {
    /// Declare a histogram with a stable dotted `name`.
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            name,
            buckets: [ZERO; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: Once::new(),
        }
    }

    /// The histogram's stable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one observation. No-op when observability is off.
    #[inline]
    pub fn record(&'static self, v: u64) {
        #[cfg(feature = "enabled")]
        {
            if !crate::active() {
                return;
            }
            self.registered
                .call_once(|| registry().lock().unwrap().push(MetricRef::Histogram(self)));
            self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
            self.count.fetch_add(1, Relaxed);
            self.sum.fetch_add(v, Relaxed);
            self.max.fetch_max(v, Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Current count/sum/max.
    pub fn stats(&self) -> HistogramStats {
        HistogramStats {
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }

    /// Full-fidelity copy of the buckets plus count/sum/max. Updates are
    /// relaxed, so a snapshot taken while observers are recording may be
    /// mid-update (bucket landed, count not yet); a snapshot taken after
    /// the observers are quiesced is exact.
    pub fn snapshot_buckets(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::empty();
        for (i, b) in self.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Relaxed);
        }
        s.count = self.count.load(Relaxed);
        s.sum = self.sum.load(Relaxed);
        s.max = self.max.load(Relaxed);
        s
    }
}

/// An owned, mergeable histogram with the same power-of-two buckets as
/// [`Histogram`]. Serves two roles: a point-in-time copy of a static
/// histogram (via [`Histogram::snapshot_buckets`]) and a local
/// accumulator that never touches the global registry (the trace
/// exporter builds per-stage latency distributions this way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; bucket `b >= 1` covers
    /// `[2^(b-1), 2^b - 1]`, bucket 0 holds zeros, last bucket overflows.
    pub buckets: [u64; HIST_BUCKETS],
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations (wrapping, like the live histogram).
    pub sum: u64,
    /// Largest observation (0 if empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (all buckets zero).
    pub const fn empty() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one observation locally (no atomics, no registry, no level
    /// check — this is plain owned data).
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    /// Fold another snapshot into this one (e.g. merging per-thread
    /// distributions for one stage).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) as the inclusive
    /// upper edge of the bucket holding the `ceil(q * count)`-th smallest
    /// observation, clamped to the recorded max. With power-of-two
    /// buckets the estimate `e` of a true quantile `w > 0` satisfies
    /// `w <= e < 2 * w` whenever `w` is below the overflow threshold
    /// `2^(HIST_BUCKETS - 2)` (and `e == 0` iff `w == 0`); inside the
    /// open-ended overflow bucket the clamp only guarantees
    /// `w <= e <= max`. Both bounds are pinned by the histogram test
    /// suite. Returns 0 for an empty snapshot.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The count/sum/max triple, for parity with [`Histogram::stats`].
    pub fn stats(&self) -> HistogramStats {
        HistogramStats {
            count: self.count,
            sum: self.sum,
            max: self.max,
        }
    }
}

/// Point-in-time copy of every metric touched so far, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, total)` for each counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, max_recorded)` for each high-water gauge.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(name, stats)` for each histogram.
    pub histograms: Vec<(&'static str, HistogramStats)>,
}

impl MetricsSnapshot {
    /// Look up a counter total by name (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Look up a gauge value by name (0 if never touched).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }
}

/// Snapshot every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let mut s = MetricsSnapshot::default();
    for m in registry().lock().unwrap().iter() {
        match m {
            MetricRef::Counter(c) => s.counters.push((c.name, c.get())),
            MetricRef::HighWater(g) => s.gauges.push((g.name, g.get())),
            MetricRef::Histogram(h) => s.histograms.push((h.name, h.stats())),
        }
    }
    s.counters.sort_by_key(|(n, _)| *n);
    s.gauges.sort_by_key(|(n, _)| *n);
    s.histograms.sort_by_key(|(n, _)| *n);
    s
}

/// Zero every registered metric (tests and multi-phase report binaries).
/// Registration is retained so the metrics still appear in snapshots.
pub fn reset() {
    for m in registry().lock().unwrap().iter() {
        match m {
            MetricRef::Counter(c) => c.value.store(0, Relaxed),
            MetricRef::HighWater(g) => g.value.store(0, Relaxed),
            MetricRef::Histogram(h) => {
                for b in &h.buckets {
                    b.store(0, Relaxed);
                }
                h.count.store(0, Relaxed);
                h.sum.store(0, Relaxed);
                h.max.store(0, Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Metric state is process-global; these tests use distinct metric
    // names and only assert on deltas of their own metrics so they stay
    // order- and concurrency-independent.

    #[cfg(feature = "enabled")]
    #[test]
    fn counter_counts_when_enabled() {
        static C: Counter = Counter::new("test.metrics.counter_counts");
        crate::set_level(crate::ObsLevel::Summary);
        let before = C.get();
        C.add(3);
        C.incr();
        assert_eq!(C.get() - before, 4);
        assert_eq!(snapshot().counter("test.metrics.counter_counts"), C.get());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn high_water_keeps_max() {
        static G: HighWater = HighWater::new("test.metrics.high_water");
        crate::set_level(crate::ObsLevel::Summary);
        G.record(10);
        G.record(7);
        assert!(G.get() >= 10);
        G.record(99);
        assert!(G.get() >= 99);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn histogram_tracks_count_sum_max() {
        static H: Histogram = Histogram::new("test.metrics.histogram");
        crate::set_level(crate::ObsLevel::Summary);
        let before = H.stats();
        H.record(0);
        H.record(1);
        H.record(16);
        let after = H.stats();
        assert_eq!(after.count - before.count, 3);
        assert_eq!(after.sum - before.sum, 17);
        assert!(after.max >= 16);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn threads_aggregate_into_one_total() {
        static C: Counter = Counter::new("test.metrics.threaded");
        crate::set_level(crate::ObsLevel::Summary);
        let before = C.get();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        C.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(C.get() - before, 4000);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_records_nothing() {
        static C: Counter = Counter::new("test.metrics.disabled");
        static G: HighWater = HighWater::new("test.metrics.disabled_gauge");
        static H: Histogram = Histogram::new("test.metrics.disabled_hist");
        crate::set_level(crate::ObsLevel::Trace); // must be a no-op
        C.add(100);
        G.record(100);
        H.record(100);
        assert_eq!(C.get(), 0);
        assert_eq!(G.get(), 0);
        assert_eq!(H.stats().count, 0);
        assert_eq!(crate::level(), crate::ObsLevel::Off);
    }
}
