//! Human-readable exporter: a nested timing tree plus metric listings.

use std::time::Duration;

use crate::metrics::MetricsSnapshot;
use crate::span::SpanRow;

struct Node {
    name: String,
    calls: u64,
    total: Duration,
    children: Vec<Node>,
}

impl Node {
    fn child_mut(&mut self, name: &str) -> &mut Node {
        // Linear scan: span trees are tens of nodes, not thousands.
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            &mut self.children[i]
        } else {
            self.children.push(Node {
                name: name.to_string(),
                calls: 0,
                total: Duration::ZERO,
                children: Vec::new(),
            });
            self.children.last_mut().unwrap()
        }
    }
}

fn build_tree(rows: &[SpanRow]) -> Node {
    let mut root = Node {
        name: String::new(),
        calls: 0,
        total: Duration::ZERO,
        children: Vec::new(),
    };
    for row in rows {
        let mut node = &mut root;
        for part in row.path.split('/') {
            node = node.child_mut(part);
        }
        node.calls += row.calls;
        node.total += row.total;
    }
    root
}

fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

fn render_node(out: &mut String, node: &Node, depth: usize, parent_total: Option<Duration>) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", node.name);
    let pct = match parent_total {
        Some(p) if !p.is_zero() => {
            format!(
                "  {:5.1}%",
                100.0 * node.total.as_secs_f64() / p.as_secs_f64()
            )
        }
        _ => String::new(),
    };
    out.push_str(&format!(
        "{label:<40} {:>12} {:>8}x{pct}\n",
        fmt_dur(node.total),
        node.calls
    ));
    for c in &node.children {
        render_node(out, c, depth + 1, Some(node.total));
    }
}

/// Render the nested span timing tree and all metrics as plain text.
///
/// Child rows show their share of the parent's wall-clock time; shares
/// can exceed 100% in aggregate when children run on multiple threads.
pub fn render(spans: &[SpanRow], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("span tree (wall-clock total, calls):\n");
    if spans.is_empty() {
        out.push_str("  (no spans recorded; set SMA_OBS=summary or higher)\n");
    } else {
        let root = build_tree(spans);
        for c in &root.children {
            render_node(&mut out, c, 1, None);
        }
    }
    if !metrics.counters.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, v) in &metrics.counters {
            out.push_str(&format!("  {name:<44} {v:>16}\n"));
        }
    }
    if !metrics.gauges.is_empty() {
        out.push_str("\nhigh-water gauges:\n");
        for (name, v) in &metrics.gauges {
            out.push_str(&format!("  {name:<44} {v:>16}\n"));
        }
    }
    if !metrics.histograms.is_empty() {
        out.push_str("\nhistograms (count / sum / max):\n");
        for (name, h) in &metrics.histograms {
            out.push_str(&format!(
                "  {name:<44} {:>10} / {} / {}\n",
                h.count, h.sum, h.max
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramStats;

    #[test]
    fn renders_nested_tree_with_percentages() {
        let spans = vec![
            SpanRow {
                path: "pipeline".into(),
                calls: 1,
                total: Duration::from_millis(100),
            },
            SpanRow {
                path: "pipeline/matching".into(),
                calls: 2,
                total: Duration::from_millis(80),
            },
        ];
        let metrics = MetricsSnapshot {
            counters: vec![("sma.ge_solves", 42)],
            gauges: vec![("maspar.pe_bytes_high_water", 1024)],
            histograms: vec![(
                "maspar.router.in_degree",
                HistogramStats {
                    count: 3,
                    sum: 6,
                    max: 4,
                },
            )],
        };
        let text = render(&spans, &metrics);
        assert!(text.contains("pipeline"));
        assert!(text.contains("matching"));
        assert!(text.contains("80.0%"));
        assert!(text.contains("sma.ge_solves"));
        assert!(text.contains("42"));
        assert!(text.contains("1024"));
        assert!(text.contains("in_degree"));
    }

    #[test]
    fn empty_spans_render_hint() {
        let text = render(&[], &MetricsSnapshot::default());
        assert!(text.contains("no spans recorded"));
    }

    #[test]
    fn missing_intermediate_nodes_are_synthesised() {
        // A path whose parent was never recorded directly still nests.
        let spans = vec![SpanRow {
            path: "a/b/c".into(),
            calls: 1,
            total: Duration::from_millis(5),
        }];
        let text = render(&spans, &MetricsSnapshot::default());
        assert!(text.contains('a'));
        assert!(text.contains("    c"));
    }
}
