//! The adaptive execution planner's contracts, including every
//! degenerate tiling the issue sweep called out: 1x1 tiles, all-border
//! tiles, all-invalid (quarantined) tiles, and tile sizes that do not
//! divide the frame. The load-bearing claim throughout: planner output
//! is bit-identical to each tile's chosen driver run over that tile
//! alone — and, with default knobs, to the SIMD fast path wholesale.

use sma_core::motion::SmaFrames;
use sma_core::plan::{Driver, ExecutionPlanner, PlanFeedback, PlanReason, PlannerKnobs, Strategy};
use sma_core::sequential::Region;
use sma_core::{
    track_all_planner, track_all_planner_with, track_all_sequential, track_all_simd, MotionModel,
    SmaConfig, SmaError,
};
use sma_grid::Grid;
use sma_obs::atlas::{AtlasChannel, AtlasSnapshot};

const SIDE: usize = 28;

fn scene(cfg: &SmaConfig) -> SmaFrames {
    let before = Grid::from_fn(SIDE, SIDE, |x, y| {
        (x as f32 * 0.37).sin() * (y as f32 * 0.23).cos() + 0.1 * (x + 2 * y) as f32 / SIDE as f32
    });
    let after = Grid::from_fn(SIDE, SIDE, |x, y| {
        let xs = (x as isize - 1).clamp(0, SIDE as isize - 1) as usize;
        before.at(xs, y)
    });
    SmaFrames::prepare(&before, &after, &before, &after, cfg).expect("prepare")
}

/// Planner output must match, bit for bit, each tile's chosen strategy
/// run over that tile rectangle alone.
fn assert_mosaic_identity(
    planner: &ExecutionPlanner,
    frames: &SmaFrames,
    cfg: &SmaConfig,
    region: Region,
) {
    let plan = planner.plan(frames, cfg, region).expect("plan");
    let out = planner.execute_plan(frames, cfg, &plan).expect("execute");
    for t in &plan.tiles {
        let solo = t
            .strategy
            .run(frames, cfg, Region::Rect(t.bounds))
            .expect("tile driver");
        for (x, y) in t.bounds.pixels() {
            let (a, b) = (out.estimates.at(x, y), solo.estimates.at(x, y));
            assert_eq!(a.valid, b.valid, "validity at ({x},{y}) [{:?}]", t.strategy);
            assert_eq!(
                a.displacement, b.displacement,
                "displacement bits at ({x},{y}) [{:?}]",
                t.strategy
            );
            assert_eq!(
                a.error.to_bits(),
                b.error.to_bits(),
                "error bits at ({x},{y}) [{:?}]",
                t.strategy
            );
        }
    }
}

#[test]
fn default_knobs_match_simd_bitwise() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let frames = scene(&cfg);
    for region in [
        Region::Full,
        Region::Interior {
            margin: cfg.margin(),
        },
    ] {
        let planned = track_all_planner(&frames, &cfg, region).expect("planner");
        let simd = track_all_simd(&frames, &cfg, region).expect("simd");
        for (x, y) in planned.region.pixels() {
            let (a, b) = (planned.estimates.at(x, y), simd.estimates.at(x, y));
            assert_eq!(a.valid, b.valid);
            assert_eq!(a.displacement, b.displacement, "at ({x},{y})");
            assert_eq!(a.error.to_bits(), b.error.to_bits(), "at ({x},{y})");
        }
    }
}

#[test]
fn one_by_one_tiles_stay_bit_identical() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let frames = scene(&cfg);
    let planner = ExecutionPlanner::with_knobs(PlannerKnobs {
        tile: 1,
        parallel: false,
        ..PlannerKnobs::default()
    });
    // Region::Full makes the plan genuinely mixed: border rows of 1x1
    // tiles go exact, interior ones SIMD.
    let plan = planner.plan(&frames, &cfg, Region::Full).expect("plan");
    assert_eq!(plan.tiles.len(), SIDE * SIDE, "one tile per pixel");
    assert!(plan.uniform_strategy().is_none(), "plan must be mixed");
    assert_mosaic_identity(&planner, &frames, &cfg, Region::Full);
}

#[test]
fn all_border_frame_plans_exact_everywhere() {
    // A frame too small for any template window to fit: every tile is
    // all-border, so the whole plan degenerates to the exact kernel.
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let side = 2 * cfg.nzt; // interior rect is empty at this size
    let before = Grid::from_fn(side, side, |x, y| (x as f32 * 0.7).sin() + y as f32 * 0.1);
    let frames = SmaFrames::prepare(&before, &before, &before, &before, &cfg).expect("prepare");
    let planner = ExecutionPlanner::with_knobs(PlannerKnobs {
        tile: 4,
        ..PlannerKnobs::default()
    });
    let plan = planner.plan(&frames, &cfg, Region::Full).expect("plan");
    assert!(plan
        .tiles
        .iter()
        .all(|t| t.reason == PlanReason::AllBorder && t.strategy == Strategy::Sequential));
    // Uniform-exact plan: output is the sequential reference, bitwise.
    let out = planner.run(&frames, &cfg, Region::Full).expect("run");
    let seq = track_all_sequential(&frames, &cfg, Region::Full).expect("seq");
    for (x, y) in out.region.pixels() {
        assert_eq!(
            out.estimates.at(x, y).error.to_bits(),
            seq.estimates.at(x, y).error.to_bits()
        );
        assert_eq!(
            out.estimates.at(x, y).displacement,
            seq.estimates.at(x, y).displacement
        );
    }
}

#[test]
fn all_invalid_tiles_execute_bit_identically() {
    // Poke a whole tile's worth of non-finite pixels: preparation
    // quarantines and repairs them, and the planner must still match
    // the per-tile drivers bit for bit (quarantine steers nothing).
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let mut before = Grid::from_fn(SIDE, SIDE, |x, y| {
        (x as f32 * 0.37).sin() * (y as f32 * 0.23).cos()
    });
    for y in 8..16 {
        for x in 8..16 {
            before.set(x, y, f32::NAN);
        }
    }
    let after = Grid::from_fn(SIDE, SIDE, |x, y| {
        let xs = (x as isize - 1).clamp(0, SIDE as isize - 1) as usize;
        before.at(xs, y)
    });
    let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
    let planner = ExecutionPlanner::with_knobs(PlannerKnobs {
        tile: 8,
        parallel: false,
        ..PlannerKnobs::default()
    });
    assert_mosaic_identity(&planner, &frames, &cfg, Region::Full);
    // And the end result still equals the wholesale SIMD driver.
    let planned = planner.run(&frames, &cfg, Region::Full).expect("planner");
    let simd = track_all_simd(&frames, &cfg, Region::Full).expect("simd");
    for (x, y) in planned.region.pixels() {
        assert_eq!(
            planned.estimates.at(x, y).error.to_bits(),
            simd.estimates.at(x, y).error.to_bits()
        );
    }
}

#[test]
fn non_dividing_tile_sizes_cover_the_region_exactly() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let frames = scene(&cfg);
    // 5 does not divide 28: the last row/column of tiles truncates.
    let planner = ExecutionPlanner::with_knobs(PlannerKnobs {
        tile: 5,
        parallel: false,
        ..PlannerKnobs::default()
    });
    let plan = planner.plan(&frames, &cfg, Region::Full).expect("plan");
    // Tiles partition the region: every pixel covered exactly once.
    let mut covered = vec![0u32; SIDE * SIDE];
    for t in &plan.tiles {
        for (x, y) in t.bounds.pixels() {
            covered[y * SIDE + x] += 1;
        }
    }
    assert!(covered.iter().all(|&c| c == 1), "tiles must partition");
    assert_mosaic_identity(&planner, &frames, &cfg, Region::Full);
}

#[test]
fn translation_only_knob_matches_the_degraded_driver() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let frames = scene(&cfg);
    let region = Region::Interior {
        margin: cfg.margin(),
    };
    let knobs = PlannerKnobs {
        translation_only: true,
        ..PlannerKnobs::default()
    };
    let planned = track_all_planner_with(&frames, &cfg, region, knobs).expect("planner");
    let degraded =
        sma_core::fastpath::track_all_translation_only(&frames, &cfg, region).expect("driver");
    for (x, y) in planned.region.pixels() {
        assert_eq!(
            planned.estimates.at(x, y).error.to_bits(),
            degraded.estimates.at(x, y).error.to_bits()
        );
        assert_eq!(
            planned.estimates.at(x, y).displacement,
            degraded.estimates.at(x, y).displacement
        );
    }
}

#[test]
fn near_tie_feedback_replans_dense_tiles_onto_the_exact_kernel() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let frames = scene(&cfg);
    // A hand-built snapshot claiming every pixel of the top-left 8x8
    // tile near-tied: density 1.0 >= the 0.25 default threshold.
    let mut planes = vec![vec![0u64; 16]; AtlasChannel::ALL.len()];
    let near_tie_idx = AtlasChannel::ALL
        .iter()
        .position(|c| *c == AtlasChannel::NearTie)
        .expect("channel");
    planes[near_tie_idx][0] = 7 * 7; // atlas tile (0,0), 7px tiles on 28
    let snapshot = AtlasSnapshot {
        width: SIDE,
        height: SIDE,
        tile: 7,
        tiles_x: 4,
        tiles_y: 4,
        planes,
        cache_frames: Vec::new(),
    };
    let planner = ExecutionPlanner::with_knobs(PlannerKnobs {
        tile: 7,
        parallel: false,
        ..PlannerKnobs::default()
    })
    .with_feedback(PlanFeedback::from_snapshot(snapshot));
    let plan = planner.plan(&frames, &cfg, Region::Full).expect("plan");
    let dense: Vec<_> = plan
        .tiles
        .iter()
        .filter(|t| t.reason == PlanReason::NearTieDense)
        .collect();
    assert_eq!(dense.len(), 1, "exactly the claimed-dense interior tile");
    assert!(dense[0].strategy.is_exact());
    // A feedback-steered plan still honors the mosaic bit-identity.
    assert_mosaic_identity(&planner, &frames, &cfg, Region::Full);
}

#[test]
fn planner_honors_cancellation_checkpoints() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let frames = scene(&cfg);
    let token = sma_core::cancel::CancelToken::new();
    token.cancel(12, 5);
    let _guard = sma_core::cancel::install(token);
    let err = track_all_planner(&frames, &cfg, Region::Full).expect_err("must cancel");
    assert!(
        matches!(err, SmaError::DeadlineExceeded { .. }),
        "got {err:?}"
    );
}

#[test]
fn planner_driver_trait_names_and_census() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let frames = scene(&cfg);
    let planner = ExecutionPlanner::default();
    assert_eq!(Driver::name(&planner), "planner_auto");
    assert_eq!(Driver::name(&Strategy::SimdParallel), "simd_par");
    // Default 16px tiles on a 28^2 frame: every tile overlaps the
    // interior rect, so the plan is uniform pruned search (the 5 x 5
    // sweep of small_test clears PRUNE_MIN_HYPOTHESES) — sequential,
    // because 784 tracked pixels sit far below the row-parallel
    // cutover.
    let plan = planner.plan(&frames, &cfg, Region::Full).expect("plan");
    assert_eq!(plan.uniform_strategy(), Some(Strategy::Pruned));
    // 3px tiles leave whole tiles inside the border band (nzt = 3), so
    // the census mixes exact border tiles with SIMD interior ones.
    let fine = ExecutionPlanner::with_knobs(PlannerKnobs {
        tile: 3,
        ..PlannerKnobs::default()
    });
    let plan = fine.plan(&frames, &cfg, Region::Full).expect("plan");
    let census = plan.census();
    let total: usize = census.iter().map(|(_, c)| c).sum();
    assert_eq!(total, plan.tiles.len());
    assert!(census.len() >= 2, "census: {census:?}");
}
