//! Property tests for the SMA core: randomized translation recovery,
//! driver equivalence under random scenes, affine algebra, and config
//! invariants.

use proptest::prelude::*;
use sma_core::motion::{track_pixel, SmaFrames};
use sma_core::precompute::track_all_segmented;
use sma_core::sequential::{track_all_sequential, Region};
use sma_core::{track_all_parallel, LocalAffine, MotionModel, SmaConfig};
use sma_grid::warp::translate;
use sma_grid::{BorderPolicy, Grid};

/// A deterministic, richly textured surface parameterized by seed.
fn textured(w: usize, h: usize, seed: u64) -> Grid<f32> {
    Grid::from_fn(w, h, |x, y| {
        let s = seed as f32 * 0.013;
        let (xf, yf) = (x as f32, y as f32);
        (xf * (0.41 + s * 0.01)).sin() * 2.0
            + (yf * 0.33 + s).cos() * 1.5
            + (xf * 0.11 + yf * 0.19 + s).sin() * 3.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any integer translation inside the search window is recovered
    /// exactly by the continuous model on textured data.
    #[test]
    fn continuous_recovers_any_integer_shift(
        dx in -2isize..=2, dy in -2isize..=2, seed in 0u64..100
    ) {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = textured(32, 32, seed);
        let after = translate(&before, -(dx as f32), -(dy as f32), BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let est = track_pixel(&frames, &cfg, 16, 16);
        prop_assert!(est.valid);
        prop_assert_eq!(est.displacement.u as isize, dx);
        prop_assert_eq!(est.displacement.v as isize, dy);
    }

    /// The semi-fluid model recovers translations too (displacement may
    /// route through hypothesis + refinement, but the reported center
    /// correspondence must match the truth).
    #[test]
    fn semifluid_recovers_any_integer_shift(
        dx in -2isize..=2, dy in -2isize..=2, seed in 0u64..50
    ) {
        let cfg = SmaConfig::small_test(MotionModel::SemiFluid);
        let before = textured(30, 30, seed);
        let after = translate(&before, -(dx as f32), -(dy as f32), BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let est = track_pixel(&frames, &cfg, 15, 15);
        prop_assert!(est.valid);
        prop_assert_eq!(est.displacement.u as isize, dx, "u mismatch");
        prop_assert_eq!(est.displacement.v as isize, dy, "v mismatch");
    }

    /// Sequential, Rayon-parallel and segmented drivers agree pixel for
    /// pixel on arbitrary scenes and chunk sizes.
    #[test]
    fn drivers_identical_on_random_scenes(
        seed in 0u64..50, z_rows in 1usize..5,
        model in prop_oneof![Just(MotionModel::Continuous), Just(MotionModel::SemiFluid)]
    ) {
        let cfg = SmaConfig::small_test(model);
        let before = textured(24, 24, seed);
        let after = translate(&before, -1.0, 0.0, BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let region = Region::Interior { margin: 10 };
        let s = track_all_sequential(&frames, &cfg, region).expect("sequential");
        let p = track_all_parallel(&frames, &cfg, region).expect("parallel");
        let g = track_all_segmented(&frames, &cfg, region, z_rows).expect("segmented");
        for (x, y) in s.region.pixels() {
            prop_assert_eq!(s.estimates.at(x, y), p.estimates.at(x, y));
            prop_assert_eq!(s.estimates.at(x, y), g.estimates.at(x, y));
        }
    }

    /// LocalAffine::apply is exactly eq. (6) for random parameters.
    #[test]
    fn affine_apply_matches_equation(
        ai in -0.5f64..0.5, bi in -0.5f64..0.5,
        aj in -0.5f64..0.5, bj in -0.5f64..0.5,
        ak in -0.5f64..0.5, bk in -0.5f64..0.5,
        x0 in -3.0f64..3.0, y0 in -3.0f64..3.0, z0 in -3.0f64..3.0,
        u in -5.0f64..5.0, v in -5.0f64..5.0, z in -5.0f64..5.0
    ) {
        let a = LocalAffine { ai, bi, aj, bj, ak, bk, x0, y0, z0 };
        let (xp, yp, zp) = a.apply(u, v, z);
        prop_assert!((xp - (u + ai * u + bi * v + x0)).abs() < 1e-12);
        prop_assert!((yp - (v + aj * u + bj * v + y0)).abs() < 1e-12);
        prop_assert!((zp - (z + ak * u + bk * v + z0)).abs() < 1e-12);
        // Round trip through params.
        let b = LocalAffine::from_params(&a.params(), x0, y0, z0);
        prop_assert_eq!(a, b);
    }

    /// Margins always cover every window the configuration can touch: a
    /// tracked pixel at the margin never indexes outside the frame
    /// (exercised by running on a frame exactly twice the margin plus a
    /// small interior).
    #[test]
    fn margin_is_sufficient(
        nzs in 1usize..3, nzt in 1usize..4, nss in 0usize..2,
        model in prop_oneof![Just(MotionModel::Continuous), Just(MotionModel::SemiFluid)]
    ) {
        let cfg = SmaConfig { model, nz: 2, nzs, nzt, nss, nst: 2 };
        prop_assume!(cfg.validate().is_ok());
        let m = cfg.margin();
        let side = 2 * m + 3;
        let before = textured(side, side, 7);
        let frames = SmaFrames::prepare(&before, &before, &before, &before, &cfg).expect("prepare");
        // Must not panic; zero motion must win on identical frames.
        let est = track_pixel(&frames, &cfg, m + 1, m + 1);
        if est.valid {
            prop_assert_eq!(est.displacement.u, 0.0);
            prop_assert_eq!(est.displacement.v, 0.0);
        }
    }

    /// Workload counts scale exactly with the window areas.
    #[test]
    fn workload_scaling(nzs in 1usize..8, nzt in 1usize..12) {
        use sma_core::timing::SmaWorkload;
        let cfg = SmaConfig { model: MotionModel::Continuous, nz: 2, nzs, nzt, nss: 0, nst: 2 };
        let w = SmaWorkload::from_config(&cfg, 64, 64);
        let hyps = ((2 * nzs + 1) * (2 * nzs + 1)) as u64;
        let terms = ((2 * nzt + 1) * (2 * nzt + 1)) as u64;
        prop_assert_eq!(w.hyp_ges, 4096 * hyps);
        prop_assert_eq!(w.hyp_terms, 4096 * hyps * terms);
        prop_assert_eq!(w.semifluid_mappings, 0);
    }
}
