//! Property equivalence: the core crate's SIMD-gated kernels and the
//! SIMD drivers against their scalar references.
//!
//! Everything here pins *bit* identity: the lane kernels reorder only
//! independent work, never an accumulation, so toggling them may not
//! move one output bit — and the SIMD drivers must agree with the
//! scalar fast path exactly on every randomized scene, border pixels
//! and near-ties included.

use proptest::prelude::*;
use sma_core::ext::regularize::fill_invalid;
use sma_core::fastpath::track_all_integral;
use sma_core::sequential::{track_all_sequential, Region};
use sma_core::template_map::discriminant_match_score;
use sma_core::{track_all_simd, MotionModel, SmaConfig, SmaFrames};
use sma_grid::flow::{FlowField, Vec2};
use sma_grid::warp::translate;
use sma_grid::{simd, BorderPolicy, Grid};

/// A deterministic, richly textured surface parameterized by seed.
fn textured(w: usize, h: usize, seed: u64) -> Grid<f32> {
    Grid::from_fn(w, h, |x, y| {
        let s = seed as f32 * 0.013;
        let (xf, yf) = (x as f32, y as f32);
        (xf * (0.41 + s * 0.01)).sin() * 2.0
            + (yf * 0.33 + s).cos() * 1.5
            + (xf * 0.11 + yf * 0.19 + s).sin() * 3.0
    })
}

/// Run `f` twice — scalar kernels, then lane kernels — and return both
/// results, restoring the ambient toggle.
fn both<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let was = simd::enabled();
    simd::set_enabled(false);
    let scalar = f();
    simd::set_enabled(true);
    let lanes = f();
    simd::set_enabled(was);
    (scalar, lanes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `fill_invalid` with the lane-chunked pass is bit-identical to the
    /// scalar pass for arbitrary validity patterns — including rows that
    /// are entirely invalid, which exercise full-width lane chunks with
    /// no valid in-row neighbors.
    #[test]
    fn fill_invalid_toggle_is_bit_identical(
        w in 1usize..24,
        h in 1usize..16,
        seed in 0u64..1000,
        dead_row in 0usize..16,
        passes in 0usize..5,
    ) {
        let flow = FlowField::from_fn(w, h, |x, y| {
            Vec2::new(
                ((x as f32 + seed as f32) * 0.7).sin() * 3.0,
                (y as f32 * 1.3).cos() * 2.0,
            )
        });
        let valid = Grid::from_fn(w, h, |x, y| {
            // Pseudo-random validity with one forced all-invalid row.
            y != dead_row % h && !(x * 7 + y * 5 + x * y + seed as usize).is_multiple_of(3)
        });
        let ((fa, oa), (fb, ob)) = both(|| fill_invalid(&flow, &valid, passes));
        prop_assert_eq!(fa, fb, "flow diverged");
        prop_assert_eq!(oa, ob, "validity diverged");
    }

    /// The interior lane kernel for the discriminant sweep is
    /// bit-identical to the clamped scalar sweep at every window
    /// position, interior or border.
    #[test]
    fn discriminant_score_toggle_is_bit_identical(
        seed in 0u64..1000,
        px in -2isize..24,
        py in -2isize..20,
        qx in -2isize..24,
        qy in -2isize..20,
        nst in 0usize..5,
    ) {
        let before = textured(22, 18, seed);
        let after = textured(22, 18, seed ^ 0x5a5a);
        let (scalar, lanes) = both(|| {
            discriminant_match_score(&before, &after, px, py, qx, qy, nst)
        });
        prop_assert_eq!(scalar.to_bits(), lanes.to_bits());
    }

    /// Whole-driver toggle invariance: the sequential reference (whose
    /// `solve_samples` accumulation and semi-fluid discriminant sweep
    /// are both lane-gated) answers the same bits either way.
    #[test]
    fn sequential_driver_toggle_is_bit_identical(
        seed in 0u64..100,
        dx in -1isize..=1,
        model in prop_oneof![Just(MotionModel::Continuous), Just(MotionModel::SemiFluid)],
    ) {
        let cfg = SmaConfig::small_test(model);
        let before = textured(26, 26, seed);
        let after = translate(&before, -(dx as f32), 0.0, BorderPolicy::Clamp);
        let frames =
            SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let (a, b) = both(|| {
            track_all_sequential(&frames, &cfg, Region::Full).expect("track")
        });
        prop_assert_eq!(a.estimates, b.estimates);
    }

    /// The SIMD driver is bit-identical to the scalar integral fast path
    /// on randomized scenes over the full frame (borders run the exact
    /// kernel in both, near-ties re-route through the shared predicate).
    #[test]
    fn simd_driver_matches_integral_bitwise(
        seed in 0u64..100,
        dx in -1isize..=1,
        dy in -1isize..=1,
        model in prop_oneof![Just(MotionModel::Continuous), Just(MotionModel::SemiFluid)],
    ) {
        let cfg = SmaConfig::small_test(model);
        let before = textured(26, 26, seed);
        let after = translate(&before, -(dx as f32), -(dy as f32), BorderPolicy::Clamp);
        let frames =
            SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let integral = track_all_integral(&frames, &cfg, Region::Full).expect("integral");
        let simd = track_all_simd(&frames, &cfg, Region::Full).expect("simd");
        prop_assert_eq!(integral.estimates, simd.estimates);
    }
}
