//! Integration tests for the observability counters of the SMA drivers.
//!
//! These run in their own process (integration-test binary), so enabling
//! the obs level here cannot pollute the crate's unit tests. The tests
//! share global counters, so they serialize on a mutex and assert on
//! snapshot *deltas*.

use std::sync::Mutex;

use sma_core::fastpath::track_all_integral;
use sma_core::motion::SmaFrames;
use sma_core::precompute::track_all_segmented;
use sma_core::sequential::Region;
use sma_core::timing::SmaWorkload;
use sma_core::{track_all_parallel, track_all_sequential, MotionModel, SmaConfig};
use sma_grid::warp::translate;
use sma_grid::{BorderPolicy, Grid};

static SERIAL: Mutex<()> = Mutex::new(());

fn wavy(w: usize, h: usize) -> Grid<f32> {
    Grid::from_fn(w, h, |x, y| {
        let (xf, yf) = (x as f32, y as f32);
        (xf * 0.45).sin() * 2.0 + (yf * 0.35).cos() * 1.5 + (xf * 0.12 + yf * 0.21).sin() * 3.0
    })
}

fn frames(cfg: &SmaConfig, side: usize) -> SmaFrames {
    let before = wavy(side, side);
    let after = translate(&before, -1.0, 0.0, BorderPolicy::Clamp);
    SmaFrames::prepare(&before, &after, &before, &after, cfg).expect("prepare")
}

fn counter(name: &str) -> u64 {
    sma_obs::metrics::snapshot().counter(name)
}

/// The parallel driver must evaluate exactly the same hypothesis count
/// as the sequential baseline — same pixels, same search window, no
/// hidden extra work.
#[test]
fn parallel_counters_equal_sequential() {
    let _guard = SERIAL.lock().unwrap();
    sma_obs::set_level(sma_obs::ObsLevel::Summary);
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let f = frames(&cfg, 28);
    let region = Region::Interior { margin: 8 };

    let names = [
        "sma.hypotheses_evaluated",
        "sma.ge_solves",
        "sma.template_terms",
    ];
    let deltas = |f: &SmaFrames, parallel: bool| -> Vec<u64> {
        let before: Vec<u64> = names.iter().map(|n| counter(n)).collect();
        if parallel {
            track_all_parallel(f, &cfg, region).expect("parallel");
        } else {
            track_all_sequential(f, &cfg, region).expect("sequential");
        }
        names
            .iter()
            .zip(before)
            .map(|(n, b)| counter(n) - b)
            .collect()
    };
    let seq = deltas(&f, false);
    let par = deltas(&f, true);
    assert_eq!(seq, par, "parallel driver counted different work");
    assert!(seq[0] > 0, "sequential run recorded no hypotheses");
}

/// Sequential tracking over the full frame must match the analytic
/// operation counts of the timing model exactly.
#[test]
fn sequential_full_region_matches_analytic_workload() {
    let _guard = SERIAL.lock().unwrap();
    sma_obs::set_level(sma_obs::ObsLevel::Summary);
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let side = 20usize;
    let f = frames(&cfg, side);
    let workload = SmaWorkload::from_config(&cfg, side, side);

    let hyp0 = counter("sma.hypotheses_evaluated");
    let ge0 = counter("sma.ge_solves");
    let terms0 = counter("sma.template_terms");
    track_all_sequential(&f, &cfg, Region::Full).expect("sequential");
    assert_eq!(counter("sma.hypotheses_evaluated") - hyp0, workload.hyp_ges);
    assert_eq!(counter("sma.ge_solves") - ge0, workload.hyp_ges);
    assert_eq!(counter("sma.template_terms") - terms0, workload.hyp_terms);
}

/// The fast path's border/interior split must cover the tracked region
/// exactly once, and the segmented driver must build every mapping plane
/// of the search area.
#[test]
fn fastpath_and_segmented_counters_cover_region() {
    let _guard = SERIAL.lock().unwrap();
    sma_obs::set_level(sma_obs::ObsLevel::Summary);
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let f = frames(&cfg, 32);
    let region = Region::Interior { margin: 9 };
    let bounds = region.bounds(32, 32).unwrap();

    let border0 = counter("fastpath.border_fallback_pixels");
    let interior0 = counter("fastpath.interior_pixels");
    track_all_integral(&f, &cfg, region).expect("fastpath");
    let border = counter("fastpath.border_fallback_pixels") - border0;
    let interior = counter("fastpath.interior_pixels") - interior0;
    assert_eq!(
        border + interior,
        bounds.area() as u64,
        "border + interior must partition the tracked region"
    );

    let planes0 = counter("sma.precompute.planes_built");
    track_all_segmented(&f, &cfg, region, 2).expect("segmented");
    assert_eq!(
        counter("sma.precompute.planes_built") - planes0,
        cfg.hypotheses_per_pixel() as u64,
        "segmented driver must build one plane per hypothesis offset"
    );
}
