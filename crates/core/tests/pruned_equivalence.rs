//! Property equivalence for the pruned-search driver family.
//!
//! Everything here pins *bit* identity: the pruned drivers reorder the
//! hypothesis sweep and skip candidates only when an admissible lower
//! bound proves them outside the near-tie band, so against the SIMD
//! sweep — and against their own run with the screen disarmed — not one
//! output bit may move. The corpus leans on the scenes where a wrong
//! bound or a sloppy tie rule would actually surface:
//!
//! * frames whose width is not a multiple of the 8-wide SIMD lane (the
//!   pruned eval loop shares the lane kernels' remainder handling);
//! * frames so small every pixel sits in the border band (the screen
//!   never arms; the exact-fallback ring must still match);
//! * zero-variance windows (singular systems, unscreenable pixels);
//! * periodic scenes where whole families of offsets tie to the bit
//!   (the skip threshold must keep every near-tie candidate alive and
//!   the ring ordering must reproduce raster tie-breaking).

use proptest::prelude::*;
use sma_core::sequential::Region;
use sma_core::{
    track_all_pruned, track_all_pruned_parallel, track_all_simd, MotionModel, SmaConfig, SmaFrames,
};
use sma_grid::warp::translate;
use sma_grid::{BorderPolicy, Grid};
use std::sync::Mutex;

/// Serializes the tests that flip the global `SMA_PRUNE` toggle, so one
/// test's disarmed window can never leak into another's armed
/// assertion. (Identity tests that only read the ambient state don't
/// need it: they hold under either setting.)
static TOGGLE: Mutex<()> = Mutex::new(());

/// A deterministic, richly textured surface parameterized by seed.
fn textured(w: usize, h: usize, seed: u64) -> Grid<f32> {
    Grid::from_fn(w, h, |x, y| {
        let s = seed as f32 * 0.017;
        let (xf, yf) = (x as f32, y as f32);
        (xf * (0.43 + s * 0.01)).sin() * 2.0
            + (yf * 0.31 + s).cos() * 1.5
            + (xf * 0.13 + yf * 0.21 + s).sin() * 3.0
    })
}

/// Prepared frame pair with the after-view translated by `(dx, dy)`.
fn shifted(before: &Grid<f32>, dx: f32, dy: f32, cfg: &SmaConfig) -> SmaFrames {
    let after = translate(before, -dx, -dy, BorderPolicy::Clamp);
    SmaFrames::prepare(before, &after, before, &after, cfg).expect("prepare")
}

/// Asserts pruned (sequential and parallel) match the SIMD sweep on
/// every pixel of `region`, to the bit.
fn assert_matches_simd(f: &SmaFrames, cfg: &SmaConfig, region: Region, tag: &str) {
    let simd = track_all_simd(f, cfg, region).expect("simd");
    let seq = track_all_pruned(f, cfg, region).expect("pruned");
    let par = track_all_pruned_parallel(f, cfg, region).expect("pruned par");
    for (x, y) in simd.region.pixels() {
        assert_eq!(
            simd.estimates.at(x, y),
            seq.estimates.at(x, y),
            "{tag}: pruned seq diverged at ({x},{y})"
        );
        assert_eq!(
            simd.estimates.at(x, y),
            par.estimates.at(x, y),
            "{tag}: pruned par diverged at ({x},{y})"
        );
    }
}

/// Replays the same pruned run with the screen armed and disarmed and
/// asserts bit identity; restores the armed default afterwards.
fn assert_toggle_identity(f: &SmaFrames, cfg: &SmaConfig, region: Region, tag: &str) {
    let _guard = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    sma_grid::prune::set_enabled(true);
    let on = track_all_pruned(f, cfg, region).expect("pruned on");
    sma_grid::prune::set_enabled(false);
    let off = track_all_pruned(f, cfg, region).expect("pruned off");
    sma_grid::prune::set_enabled(true);
    for (x, y) in on.region.pixels() {
        assert_eq!(
            on.estimates.at(x, y),
            off.estimates.at(x, y),
            "{tag}: screen toggle moved a bit at ({x},{y})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized scenes, both motion models, frame widths straddling
    /// the 8-lane boundary (the 25..41 range covers every residue mod
    /// 8), sub-pixel shifts, full region including the border ring.
    #[test]
    fn pruned_matches_simd_on_random_scenes(
        w in 25usize..41,
        h in 24usize..34,
        seed in 0u64..1000,
        dxq in -6i32..7,
        dyq in -6i32..7,
        semi in 0u8..2,
    ) {
        let model = if semi == 1 { MotionModel::SemiFluid } else { MotionModel::Continuous };
        let cfg = SmaConfig::small_test(model);
        let f = shifted(&textured(w, h, seed), dxq as f32 * 0.5, dyq as f32 * 0.5, &cfg);
        assert_matches_simd(&f, &cfg, Region::Full, "random scene");
    }

    /// The same randomized corpus, pinned against the disarmed screen:
    /// prune-on and prune-off replay to identical bits.
    #[test]
    fn screen_toggle_is_identity_on_random_scenes(
        w in 25usize..41,
        h in 24usize..34,
        seed in 0u64..1000,
        dxq in -4i32..5,
        dyq in -4i32..5,
    ) {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let f = shifted(&textured(w, h, seed), dxq as f32 * 0.5, dyq as f32 * 0.5, &cfg);
        assert_toggle_identity(&f, &cfg, Region::Full, "random scene");
    }
}

/// A frame too small for any interior pixel: with the small-test
/// margins (nzt + nzs + nz = 7) a 13 x 13 frame is all border band, so
/// the pruned driver's exact-fallback ring carries every pixel and the
/// screen never sees a candidate.
#[test]
fn all_border_tile_matches_simd() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let f = shifted(&textured(13, 13, 7), 1.0, 0.0, &cfg);
    assert_matches_simd(&f, &cfg, Region::Full, "all-border tile");
    assert_toggle_identity(&f, &cfg, Region::Full, "all-border tile");
}

/// Zero-variance windows everywhere: every per-pixel system is
/// singular, the screen is unscreenable (no finite bound exists), and
/// every hypothesis must still be evaluated and rejected exactly as the
/// SIMD sweep rejects it.
#[test]
fn zero_variance_windows_match_simd() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let flat = Grid::filled(28, 28, 2.5f32);
    let f = SmaFrames::prepare(&flat, &flat, &flat, &flat, &cfg).expect("prepare");
    assert_matches_simd(&f, &cfg, Region::Full, "flat scene");
    assert_toggle_identity(&f, &cfg, Region::Full, "flat scene");
}

/// Adversarial near-ties: a period-2 scene aliases the search, so every
/// offset of even displacement produces a bit-identical error. The skip
/// threshold must keep all of them alive (they are exact ties with the
/// winner, well inside the near-tie band) and the ring-ordered sweep
/// must crown the same winner raster order would.
#[test]
fn periodic_near_ties_match_simd() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let before = Grid::from_fn(32, 32, |x, y| {
        (std::f32::consts::PI * x as f32).cos() * 2.0 + y as f32 * 0.05
    });
    let f = shifted(&before, 1.0, 0.0, &cfg);
    assert_matches_simd(&f, &cfg, Region::Full, "period-2 scene");
    assert_toggle_identity(&f, &cfg, Region::Full, "period-2 scene");
}

/// Diagonal periodic ties plus a flat stripe: mixes unscreenable rows
/// into a tie-heavy scene, so skip decisions, singular fallbacks and
/// ring ordering all fire within one run.
#[test]
fn mixed_ties_and_flat_stripe_match_simd() {
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let before = Grid::from_fn(33, 31, |x, y| {
        if (12..16).contains(&y) {
            1.0
        } else {
            (std::f32::consts::PI * (x as f32 + y as f32) * 0.5).sin() * 3.0
        }
    });
    let f = shifted(&before, -1.0, 1.0, &cfg);
    assert_matches_simd(&f, &cfg, Region::Full, "mixed scene");
    assert_toggle_identity(&f, &cfg, Region::Full, "mixed scene");
}
