//! Fault-harness integration tests — the armed runs live in their own
//! test binary (own process) so installing the global fault config
//! cannot perturb the disarmed unit tests. Every test that touches the
//! global config holds [`sma_fault::exclusive`] for its whole body.
//!
//! Three properties from the robustness issue:
//!
//! 1. **Zero-fault transparency** — an armed harness at rate 0 is
//!    bit-identical to a disarmed one across every driver.
//! 2. **Fault sweeps complete and balance** — with faults firing, every
//!    driver still returns, `injected == recovered + degraded`, and the
//!    same seed reproduces the same ledger and the same flow.
//! 3. **Hostile inputs never produce NaN flow** — NaN holes and
//!    constant (textureless) patches degrade to invalid/neutral
//!    estimates, never to NaN displacements.

use maspar_sim::machine::{MachineConfig, MasPar, ReadoutScheme};
use proptest::prelude::*;
use sma_core::fastpath::track_all_integral;
use sma_core::maspar_driver::track_on_maspar;
use sma_core::motion::{MotionEstimate, SmaFrames};
use sma_core::precompute::track_all_segmented;
use sma_core::sequential::{track_all_sequential, Region};
use sma_core::{MotionModel, SmaConfig};
use sma_grid::warp::translate;
use sma_grid::{BorderPolicy, Grid};

fn textured(w: usize, h: usize, seed: u64) -> Grid<f32> {
    Grid::from_fn(w, h, |x, y| {
        let s = seed as f32 * 0.017;
        let (xf, yf) = (x as f32, y as f32);
        (xf * (0.43 + s * 0.01)).sin() * 2.0
            + (yf * 0.31 + s).cos() * 1.5
            + (xf * 0.13 + yf * 0.22 + s).sin() * 3.0
    })
}

fn scene(seed: u64) -> (Grid<f32>, Grid<f32>) {
    let before = textured(28, 28, seed);
    let after = translate(&before, -1.0, 0.0, BorderPolicy::Clamp);
    (before, after)
}

/// Track a scene through all four drivers and return their estimates.
fn run_all_drivers(
    before: &Grid<f32>,
    after: &Grid<f32>,
    cfg: &SmaConfig,
) -> Vec<Vec<MotionEstimate>> {
    let frames = SmaFrames::prepare(before, after, before, after, cfg).expect("prepare");
    let region = Region::Interior {
        margin: cfg.margin(),
    };
    let seq = track_all_sequential(&frames, cfg, region).expect("sequential");
    let seg = track_all_segmented(&frames, cfg, region, 2).expect("segmented");
    let fast = track_all_integral(&frames, cfg, region).expect("fastpath");
    let mut machine = MasPar::new(MachineConfig {
        nxproc: 4,
        nyproc: 4,
        ..MachineConfig::goddard_mp2()
    });
    let mas = track_on_maspar(
        &mut machine,
        before,
        after,
        before,
        after,
        cfg,
        region,
        ReadoutScheme::Raster,
    )
    .expect("maspar run");
    [seq, seg, fast, mas.result]
        .into_iter()
        .map(|r| {
            let pixels: Vec<MotionEstimate> = r
                .region
                .pixels()
                .map(|(x, y)| r.estimates.at(x, y))
                .collect();
            pixels
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property 1: arming the harness at rate 0 changes nothing, bit
    /// for bit, in any driver.
    #[test]
    fn armed_rate_zero_is_bit_identical_to_disarmed(seed in 0u64..40) {
        let _g = sma_fault::exclusive();
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let (before, after) = scene(seed);

        sma_fault::clear();
        let disarmed = run_all_drivers(&before, &after, &cfg);

        sma_fault::install(seed, 0.0);
        let armed = run_all_drivers(&before, &after, &cfg);
        sma_fault::clear();

        prop_assert_eq!(disarmed, armed);
    }

    /// Property 2: with faults firing, every driver completes, the
    /// ledger balances, and the same seed reproduces the same ledger
    /// and the same flow.
    #[test]
    fn fault_sweep_completes_balanced_and_reproducible(seed in 0u64..40) {
        let _g = sma_fault::exclusive();
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let (clean_before, clean_after) = scene(seed);

        let sweep = || {
            sma_fault::install(seed, 0.05);
            sma_fault::reset_ledger();
            // Dropouts feed the quarantine path; the drivers then run on
            // the holed frames.
            let before = sma_satdata::dropout::apply_dropouts(&clean_before, 0);
            let after = sma_satdata::dropout::apply_dropouts(&clean_after, 1);
            let flows = run_all_drivers(&before, &after, &cfg);
            let snap = sma_fault::ledger();
            sma_fault::clear();
            (flows, snap)
        };
        let (flows_a, snap_a) = sweep();
        let (flows_b, snap_b) = sweep();

        prop_assert!(snap_a.balanced(), "injected != recovered + degraded");
        prop_assert!(snap_a.injected > 0, "rate 0.05 should fire at least once");
        prop_assert_eq!(&snap_a, &snap_b, "same seed must reproduce the ledger");
        prop_assert_eq!(flows_a, flows_b, "same seed must reproduce the flow");
        for est in flows_a.iter().flatten() {
            prop_assert!(
                est.displacement.u.is_finite() && est.displacement.v.is_finite(),
                "faulted run leaked a NaN displacement"
            );
        }
    }

    /// Property 3: NaN holes and constant patches never surface as NaN
    /// flow — quarantine repairs the holes, degenerate fits invalidate.
    #[test]
    fn hostile_inputs_never_produce_nan_flow(
        seed in 0u64..40,
        hole_stride in 3usize..9,
        constant in prop_oneof![Just(false), Just(true)],
    ) {
        let _g = sma_fault::exclusive();
        sma_fault::clear();
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let base = if constant {
            Grid::from_fn(28, 28, |_, _| 1.5)
        } else {
            textured(28, 28, seed)
        };
        let mut before = base.clone();
        // Punch a deterministic lattice of NaN/Inf holes.
        for y in (0..28).step_by(hole_stride) {
            for x in (0..28).step_by(hole_stride) {
                let v = if (x + y) % 2 == 0 { f32::NAN } else { f32::INFINITY };
                before.set(x, y, v);
            }
        }
        let after = translate(&base, -1.0, 0.0, BorderPolicy::Clamp);

        let flows = run_all_drivers(&before, &after, &cfg);
        for est in flows.iter().flatten() {
            prop_assert!(
                est.displacement.u.is_finite() && est.displacement.v.is_finite(),
                "hostile input leaked a NaN displacement"
            );
            // Invalid estimates carry the `error: INFINITY` sentinel by
            // design; NaN is never acceptable, finite is required when
            // the estimate claims validity.
            prop_assert!(!est.error.is_nan(), "hostile input leaked a NaN error");
            prop_assert!(
                !est.valid || est.error.is_finite(),
                "valid estimate with non-finite error"
            );
        }
    }
}
