//! Equivalence suite: the integral-image fast path against the exact
//! kernels, over randomized scenes and both motion models.
//!
//! The fast path assembles each hypothesis' normal equations from
//! summed-area-table lookups instead of the per-sample loop, so its
//! floating-point association order differs. The contract pinned here:
//!
//! * winning **displacements are identical** (the winner margin on real
//!   data dwarfs association-order noise);
//! * **affine parameters and errors agree to 1e-6 relative** (with a
//!   1e-9 absolute floor for values near zero);
//! * **border pixels are bit-identical** to the sequential baseline —
//!   they run the exact kernel, not an approximation.

use proptest::prelude::*;
use sma_core::fastpath::{
    track_all_integral, track_all_integral_parallel, track_all_integral_segmented,
};
use sma_core::sequential::{track_all_sequential, Region};
use sma_core::{MotionModel, SmaConfig};
use sma_grid::warp::translate;
use sma_grid::{BorderPolicy, Grid};

/// A deterministic, richly textured surface parameterized by seed.
fn textured(w: usize, h: usize, seed: u64) -> Grid<f32> {
    Grid::from_fn(w, h, |x, y| {
        let s = seed as f32 * 0.013;
        let (xf, yf) = (x as f32, y as f32);
        (xf * (0.41 + s * 0.01)).sin() * 2.0
            + (yf * 0.33 + s).cos() * 1.5
            + (xf * 0.11 + yf * 0.19 + s).sin() * 3.0
    })
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 + 1e-6 * a.abs().max(b.abs())
}

fn frames_for(
    model: MotionModel,
    dx: isize,
    dy: isize,
    seed: u64,
) -> (sma_core::SmaFrames, SmaConfig) {
    let cfg = SmaConfig::small_test(model);
    let before = textured(32, 32, seed);
    let after = translate(&before, -(dx as f32), -(dy as f32), BorderPolicy::Clamp);
    (
        sma_core::SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare"),
        cfg,
    )
}

/// Shared comparison: exact sequential vs one fast-path result over a
/// region, under the contract above.
fn assert_equivalent(
    exact: &sma_core::sequential::SmaResult,
    fast: &sma_core::sequential::SmaResult,
) -> Result<(), String> {
    if exact.region != fast.region {
        return Err("region mismatch".into());
    }
    for (x, y) in exact.region.pixels() {
        let a = exact.estimates.at(x, y);
        let b = fast.estimates.at(x, y);
        if a.valid != b.valid {
            return Err(format!("validity mismatch at ({x},{y}): {a:?} vs {b:?}"));
        }
        if !a.valid {
            continue;
        }
        if a.displacement != b.displacement {
            return Err(format!(
                "displacement mismatch at ({x},{y}): {:?} vs {:?}",
                a.displacement, b.displacement
            ));
        }
        if !close(a.error, b.error) {
            return Err(format!(
                "error mismatch at ({x},{y}): {} vs {}",
                a.error, b.error
            ));
        }
        let pa = a.affine.params();
        let pb = b.affine.params();
        for k in 0..6 {
            if !close(pa[k], pb[k]) {
                return Err(format!(
                    "param {k} mismatch at ({x},{y}): {} vs {}",
                    pa[k], pb[k]
                ));
            }
        }
        if a.affine.x0 != b.affine.x0 || a.affine.y0 != b.affine.y0 || a.affine.z0 != b.affine.z0 {
            return Err(format!("translation mismatch at ({x},{y})"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fcont: fast path == exact kernels over random shifts and scenes.
    #[test]
    fn fastpath_equivalent_continuous(
        dx in -2isize..=2, dy in -2isize..=2, seed in 0u64..60
    ) {
        let (frames, cfg) = frames_for(MotionModel::Continuous, dx, dy, seed);
        let region = Region::Interior { margin: 10 };
        let exact = track_all_sequential(&frames, &cfg, region).expect("sequential");
        let fast = track_all_integral(&frames, &cfg, region).expect("fastpath");
        prop_assert!(assert_equivalent(&exact, &fast).is_ok(),
            "{:?}", assert_equivalent(&exact, &fast));
    }

    /// Fsemi: the semi-fluid per-template-pixel refinement flows through
    /// the mapped-gradient planes identically.
    #[test]
    fn fastpath_equivalent_semifluid(
        dx in -1isize..=1, dy in -1isize..=1, seed in 0u64..40
    ) {
        let (frames, cfg) = frames_for(MotionModel::SemiFluid, dx, dy, seed);
        let region = Region::Interior { margin: 10 };
        let exact = track_all_sequential(&frames, &cfg, region).expect("sequential");
        let fast = track_all_integral(&frames, &cfg, region).expect("fastpath");
        prop_assert!(assert_equivalent(&exact, &fast).is_ok(),
            "{:?}", assert_equivalent(&exact, &fast));
    }

    /// All three fast-path drivers agree with each other exactly (they
    /// share the per-pixel assembly; scheduling and segmentation must
    /// not perturb results).
    #[test]
    fn fastpath_drivers_identical(
        seed in 0u64..40, z_rows in 1usize..=5
    ) {
        let (frames, cfg) = frames_for(MotionModel::Continuous, 1, -1, seed);
        let region = Region::Interior { margin: 10 };
        let seq = track_all_integral(&frames, &cfg, region).expect("fastpath");
        let par = track_all_integral_parallel(&frames, &cfg, region).expect("fastpath par");
        let seg = track_all_integral_segmented(&frames, &cfg, region, z_rows).expect("fastpath seg");
        for (x, y) in seq.region.pixels() {
            prop_assert_eq!(seq.estimates.at(x, y), par.estimates.at(x, y));
            prop_assert_eq!(seq.estimates.at(x, y), seg.estimates.at(x, y));
        }
    }

    /// Border fallback: on a Full region, every pixel whose template
    /// window crosses the frame edge is bit-identical to the sequential
    /// baseline, and interior pixels still satisfy the tolerance
    /// contract.
    #[test]
    fn fastpath_border_fallback_bit_identical(
        seed in 0u64..30
    ) {
        let (frames, cfg) = frames_for(MotionModel::Continuous, 1, 0, seed);
        let exact = track_all_sequential(&frames, &cfg, Region::Full).expect("sequential");
        let fast = track_all_integral(&frames, &cfg, Region::Full).expect("fastpath");
        let (w, h) = frames.dims();
        let template = cfg.template_window();
        let mut border = 0usize;
        for (x, y) in exact.region.pixels() {
            if !template.fits_at(x, y, w, h) {
                prop_assert_eq!(
                    exact.estimates.at(x, y),
                    fast.estimates.at(x, y),
                    "border pixel ({}, {}) must run the exact kernel", x, y
                );
                border += 1;
            }
        }
        prop_assert!(border > 0, "scene must exercise border pixels");
        prop_assert!(assert_equivalent(&exact, &fast).is_ok(),
            "{:?}", assert_equivalent(&exact, &fast));
    }
}
