//! Cross-check of the spatial telemetry atlas against the scalar
//! counters: on the near-tie-heavy periodic scene, every fast-path
//! re-route, border fallback and quarantined pixel deposited into the
//! atlas planes must agree with the corresponding counter deltas — the
//! atlas is the *where* of exactly the events the counters tally.
//!
//! The atlas and the counters are process-global, so this file keeps a
//! single test: siblings in one binary would race the arm/disarm.

use sma_core::fastpath::track_all_integral;
use sma_core::motion::SmaFrames;
use sma_core::sequential::Region;
use sma_core::{track_all_sequential, track_all_simd, MotionModel, SmaConfig};
use sma_grid::Grid;
use sma_obs::atlas::{self, AtlasChannel};

const SIDE: usize = 28;

fn counter(name: &str) -> u64 {
    sma_obs::metrics::snapshot().counter(name)
}

#[test]
fn atlas_planes_match_the_scalar_counters() {
    sma_obs::set_level(sma_obs::ObsLevel::Summary);
    atlas::arm(SIDE, SIDE, 8);

    // Period-2 pattern in x: the +1 / -1 shift hypotheses agree up to
    // rounding, so the fast paths re-route near-ties; non-finite pokes
    // exercise the quarantine plane during preparation.
    let cfg = SmaConfig::small_test(MotionModel::Continuous);
    let mut before = Grid::from_fn(SIDE, SIDE, |x, y| {
        (x as f32 * std::f32::consts::PI).cos() * (1.0 + 0.2 * (y as f32 * 0.37).sin())
            + 0.4 * (y as f32 * 0.23).cos()
    });
    before.set(6, 6, f32::NAN);
    before.set(20, 13, f32::INFINITY);
    let after = Grid::from_fn(SIDE, SIDE, |x, y| {
        let xs = (x as isize - 1).clamp(0, SIDE as isize - 1) as usize;
        before.at(xs, y)
    });

    let near_tie0 = counter("fastpath.near_tie_pixels") + counter("simd.near_tie_pixels");
    let border0 =
        counter("fastpath.border_fallback_pixels") + counter("simd.border_fallback_pixels");
    let interior0 = counter("fastpath.interior_pixels");
    let simd_interior0 = counter("simd.interior_pixels");
    let quarantined0 = counter("grid.validity.quarantined");

    let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
    let seq = track_all_sequential(&frames, &cfg, Region::Full).expect("sequential");
    let fast = track_all_integral(&frames, &cfg, Region::Full).expect("fastpath");
    let simd = track_all_simd(&frames, &cfg, Region::Full).expect("simd");

    let snap = atlas::snapshot().expect("armed snapshot");
    atlas::disarm();

    // The re-routed and fallback populations must be nonzero on this
    // scene (otherwise the cross-check is vacuous) and match the scalar
    // counters exactly.
    let near_tie =
        counter("fastpath.near_tie_pixels") + counter("simd.near_tie_pixels") - near_tie0;
    let border = counter("fastpath.border_fallback_pixels")
        + counter("simd.border_fallback_pixels")
        - border0;
    assert!(near_tie > 0, "tie scene produced no near-tie re-routes");
    assert!(border > 0, "Region::Full produced no border fallback");
    assert_eq!(snap.total(AtlasChannel::NearTie), near_tie);
    assert_eq!(snap.total(AtlasChannel::BorderFallback), border);

    // Dispatch planes: the integral plane counts the scalar fast path's
    // interior pixels, the SIMD plane its interior pixels, and the exact
    // plane the full sequential sweep plus every re-routed / fallback
    // pixel (dispatch events, not an exclusive partition).
    let interior = counter("fastpath.interior_pixels") - interior0;
    let simd_interior = counter("simd.interior_pixels") - simd_interior0;
    assert_eq!(snap.total(AtlasChannel::DispatchIntegral), interior);
    assert_eq!(snap.total(AtlasChannel::DispatchSimd), simd_interior);
    assert_eq!(
        snap.total(AtlasChannel::DispatchExact),
        (SIDE * SIDE) as u64 + near_tie + border
    );

    // Quarantine: the pokes repaired during preparation land in the
    // plane; each of the four input planes is quarantined separately, so
    // the atlas total matches the grid counter delta, not the poke count.
    let quarantined = counter("grid.validity.quarantined") - quarantined0;
    assert!(quarantined > 0, "non-finite pokes were not quarantined");
    assert_eq!(snap.total(AtlasChannel::Quarantine), quarantined);

    // The near-tie density concentrates where ties exist at all — the
    // plane must not be uniform noise over every tile.
    assert!(snap.tiles_nonzero(AtlasChannel::NearTie) > 0);

    // Sanity on the outputs themselves (the contract tests own the full
    // claim; this keeps the scene honest).
    for (x, y) in seq.region.pixels() {
        let s = seq.estimates.at(x, y);
        assert_eq!(s.valid, fast.estimates.at(x, y).valid);
        assert_eq!(s.displacement, fast.estimates.at(x, y).displacement);
        assert_eq!(s.valid, simd.estimates.at(x, y).valid);
        assert_eq!(s.displacement, simd.estimates.at(x, y).displacement);
    }
}
