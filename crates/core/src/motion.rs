//! Step 2 — motion-parameter estimation and the hypothesis error.
//!
//! For a tracked pixel and one hypothesis displacement, the error (eq. 3)
//!
//! ```text
//! eps(x, y; x^, y^) = sum over template pixels of eps_1^2 + eps_2^2
//! ```
//!
//! "can be evaluated by measuring the difference between the observed and
//! expected behavior of the surface normals" (eqs. 4–5). Under the
//! small-deformation local affine model (eq. 6), the surface gradient
//! `g = (z_x, z_y)` transforms to first order as
//!
//! ```text
//! g' = g + (a_k, b_k) - A^T g,     A = [[a_i, b_i], [a_j, b_j]]
//! ```
//!
//! (the graph-surface normal is `(-g, 1)/|.|`, so this *is* the expected
//! behaviour of the normals; the observed after-motion gradient comes
//! from the unit normal `[n_i', n_j', n_k']` at the mapped template pixel
//! as `g_obs = (-n_i'/n_k', -n_j'/n_k')`). The residuals are weighted by
//! the first-fundamental-form coefficients exactly as eqs. (4)–(5)
//! weight their terms:
//!
//! ```text
//! eps_1 = (g'_x - g_obs_x) / E        E = 1 + z_x^2
//! eps_2 = (g'_y - g_obs_y) / G        G = 1 + z_y^2
//! ```
//!
//! Both residuals are linear in the six parameters, so "differentiating
//! with respect to the six unknown motion parameters and setting the six
//! first partial derivatives to zero ... leads to another system of
//! linear equations that were solved using Gaussian-elimination".

use std::sync::Arc;

use sma_fault::{GridError, SmaError};
use sma_grid::{BorderPolicy, Grid, ValidityMask, Vec2};
use sma_linalg::gauss::solve6;
use sma_surface::{GeomField, GeomVars};

use crate::affine::LocalAffine;
use crate::config::{MotionModel, SmaConfig};
use crate::template_map::semifluid_correspondence;

/// One per `(pixel, hypothesis)` evaluation — `pixels * (2 Nzs + 1)^2`
/// for a full-region run, the `hyp_ges` row of the analytic workload.
pub(crate) static HYPOTHESES: sma_obs::Counter = sma_obs::Counter::new("sma.hypotheses_evaluated");
/// One per 6 x 6 Gaussian elimination; all drivers funnel through
/// [`solve_samples`], so exact, fastpath and precomputed paths agree.
pub(crate) static GE_SOLVES: sma_obs::Counter = sma_obs::Counter::new("sma.ge_solves");
/// Template error terms accumulated — `(2 NzT + 1)^2` per exact-kernel
/// hypothesis, the `hyp_terms` row of the analytic workload. The
/// moment-plane fast path pays corner lookups instead of terms, so it
/// leaves this counter alone.
static TEMPLATE_TERMS: sma_obs::Counter = sma_obs::Counter::new("sma.template_terms");

/// The derived planes of *one* frame, computed once and shareable by
/// every pair the frame participates in. On an N-frame sequence, frame
/// `t` serves both pairs `(t-1, t)` and `(t, t+1)`; preparing artifacts
/// per frame instead of per pair halves the preparation work (the
/// streaming engine in `sma-stream` caches these by frame id).
///
/// All planes are `Arc`-shared so assembling a [`SmaFrames`] pair from
/// two artifact sets copies pointers, not pixels.
#[derive(Debug, Clone)]
pub struct FrameArtifacts {
    /// Quarantined (NaN/Inf-repaired) intensity plane.
    pub intensity: Arc<Grid<f32>>,
    /// Quarantined surface plane.
    pub surface: Arc<Grid<f32>>,
    /// Validity of this frame's two input planes (intensity ∩ surface).
    pub validity: Arc<ValidityMask>,
    /// Geometric variables of the surface (window `Nz`).
    pub geo: Arc<GeomField>,
    /// Discriminant plane of the intensity surface (window
    /// `max(NsT, 1)`).
    pub disc: Arc<Grid<f32>>,
    /// Non-finite pixels repaired while quarantining this frame.
    pub quarantined: u64,
}

impl FrameArtifacts {
    /// Compute one frame's derived planes: quarantine both input planes,
    /// fit the surface geometry, and extract the intensity discriminant.
    /// This is exactly the per-frame half of [`SmaFrames::prepare`], so
    /// a pair assembled from two artifact sets is bit-identical to the
    /// pairwise preparation.
    ///
    /// # Errors
    /// [`GridError::ShapeMismatch`] if the two planes disagree in shape;
    /// [`SmaError::Config`] if `cfg` is invalid.
    pub fn prepare(
        intensity: &Grid<f32>,
        surface: &Grid<f32>,
        cfg: &SmaConfig,
    ) -> Result<Self, SmaError> {
        if surface.dims() != intensity.dims() {
            return Err(GridError::ShapeMismatch {
                expected: intensity.dims(),
                got: surface.dims(),
            }
            .into());
        }
        cfg.validate().map_err(SmaError::Config)?;
        let _span = sma_obs::span("frame_artifacts");

        let (i, mask_i, q_i) = sma_grid::quarantine(intensity);
        let (s, mask_s, q_s) = sma_grid::quarantine(surface);
        let quarantined = q_i + q_s;
        if quarantined > 0 {
            sma_fault::note_quarantined(quarantined);
        }
        let validity = mask_i.intersect(&mask_s);

        let policy = BorderPolicy::Clamp;
        let geo = GeomField::compute_par(&s, cfg.nz, policy);
        // Semi-fluid discriminants always use the *intensity* surface
        // with the semi-fluid surface-patch window ("using the intensity
        // image", §2.3; NsT doubles as the surface-patch size, §4.3).
        let disc = GeomField::compute_par(&i, cfg.nst.max(1), policy).discriminant_plane();
        Ok(Self {
            intensity: Arc::new(i),
            surface: Arc::new(s),
            validity: Arc::new(validity),
            geo: Arc::new(geo),
            disc: Arc::new(disc),
            quarantined,
        })
    }

    /// Frame dimensions.
    pub fn dims(&self) -> (usize, usize) {
        self.geo.dims()
    }

    /// Approximate heap bytes held by these artifacts (the cache-charge
    /// unit of the streaming engine): intensity + surface + discriminant
    /// f32 planes, the validity bitmap, and the geometry field's seven
    /// f64 variables per pixel.
    pub fn resident_bytes(&self) -> usize {
        Self::estimate_bytes(self.dims().0, self.dims().1)
    }

    /// [`resident_bytes`](Self::resident_bytes) as a pure function of
    /// the frame dimensions, so admission control can cost a sequence
    /// *before* preparing any of its frames.
    pub fn estimate_bytes(w: usize, h: usize) -> usize {
        // GeomVars: zx, zy, e, g, ni, nj, nk — 7 f64 per pixel, plus the
        // intensity + surface + discriminant f32 planes and the validity
        // bitmap.
        w * h * (3 * 4 + 1 + 7 * 8)
    }
}

/// Everything the per-pixel kernels need about one frame pair, computed
/// once ("Local surface patches are fit for each pixel in both the
/// intensity and surface images at both time steps" — the Table 2
/// "Surface fit" and "Compute geometric variables" phases).
///
/// All planes are `Arc`-shared: a pair assembled by the streaming
/// engine ([`SmaFrames::from_artifacts`]) references the per-frame
/// artifact planes directly, and cloning an `SmaFrames` copies pointers
/// only. Shared references deref-coerce to the plain plane types, so
/// kernels read the fields exactly as before.
#[derive(Debug, Clone)]
pub struct SmaFrames {
    /// Geometric variables of the *surface* at `t`.
    pub geo_before: Arc<GeomField>,
    /// Geometric variables of the surface at `t+1`.
    pub geo_after: Arc<GeomField>,
    /// Discriminant plane of the *intensity* surface at `t` (semi-fluid
    /// matching input).
    pub disc_before: Arc<Grid<f32>>,
    /// Discriminant plane of the intensity surface at `t+1`.
    pub disc_after: Arc<Grid<f32>>,
    /// Surface map at `t` (for `z0`).
    pub surface_before: Arc<Grid<f32>>,
    /// Surface map at `t+1`.
    pub surface_after: Arc<Grid<f32>>,
    /// Which input pixels carried finite data: pixels where *any* of the
    /// four input planes held a NaN/Inf are quarantined (repaired by
    /// neighbor interpolation before processing) and marked invalid
    /// here. All-valid for clean inputs.
    pub validity: Arc<ValidityMask>,
}

impl SmaFrames {
    /// Fit all surface patches and extract geometric variables for a
    /// frame pair. `intensity_*` drive the semi-fluid discriminants;
    /// `surface_*` drive the normals (pass the intensity images as
    /// surfaces for monocular sequences, as §2 prescribes).
    ///
    /// Non-finite (NaN/Inf) input pixels are *quarantined*: repaired by
    /// the mean of their finite 8-neighbors and recorded in
    /// [`SmaFrames::validity`] so downstream stages know which estimates
    /// rest on reconstructed data. Clean inputs pass through
    /// bit-identically.
    ///
    /// # Errors
    /// [`GridError::ShapeMismatch`] if the four grids don't share one
    /// shape; [`SmaError::Config`] if `cfg` is invalid.
    pub fn prepare(
        intensity_before: &Grid<f32>,
        intensity_after: &Grid<f32>,
        surface_before: &Grid<f32>,
        surface_after: &Grid<f32>,
        cfg: &SmaConfig,
    ) -> Result<Self, SmaError> {
        let expected = intensity_before.dims();
        for got in [intensity_after.dims(), surface_after.dims()] {
            if got != expected {
                return Err(GridError::ShapeMismatch { expected, got }.into());
            }
        }
        let _span = sma_obs::span("sma_prepare");
        // Per-frame halves (quarantine + geometry + discriminant); the
        // streaming engine computes these once per *frame* and reuses
        // them for both adjacent pairs — this pairwise entry point is
        // simply the uncached composition of the same two halves.
        let before = FrameArtifacts::prepare(intensity_before, surface_before, cfg)?;
        let after = FrameArtifacts::prepare(intensity_after, surface_after, cfg)?;
        Self::from_artifacts(&before, &after)
    }

    /// Assemble a frame pair from two per-frame artifact sets, sharing
    /// every plane (pointer copies only). Bit-identical to
    /// [`SmaFrames::prepare`] on the same inputs by construction —
    /// `prepare` is implemented on top of this.
    ///
    /// # Errors
    /// [`GridError::ShapeMismatch`] if the frames disagree in shape.
    pub fn from_artifacts(
        before: &FrameArtifacts,
        after: &FrameArtifacts,
    ) -> Result<Self, SmaError> {
        if after.dims() != before.dims() {
            return Err(GridError::ShapeMismatch {
                expected: before.dims(),
                got: after.dims(),
            }
            .into());
        }
        // A pixel is valid for the pair only if valid in all four input
        // planes (intersection is commutative and associative, so the
        // per-frame grouping matches the original four-way intersect).
        // Two all-valid frames share one all-valid mask without
        // allocating a new plane.
        let validity = if before.validity.is_all_valid() {
            if after.validity.is_all_valid() {
                Arc::clone(&before.validity)
            } else {
                Arc::clone(&after.validity)
            }
        } else if after.validity.is_all_valid() {
            Arc::clone(&before.validity)
        } else {
            Arc::new(before.validity.intersect(&after.validity))
        };
        Ok(Self {
            geo_before: Arc::clone(&before.geo),
            geo_after: Arc::clone(&after.geo),
            disc_before: Arc::clone(&before.disc),
            disc_after: Arc::clone(&after.disc),
            surface_before: Arc::clone(&before.surface),
            surface_after: Arc::clone(&after.surface),
            validity,
        })
    }

    /// Frame dimensions.
    pub fn dims(&self) -> (usize, usize) {
        self.geo_before.dims()
    }
}

/// The per-pixel output: best hypothesis displacement plus the fitted
/// affine deformation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionEstimate {
    /// Winning displacement `(x0, y0)` in pixels.
    pub displacement: Vec2,
    /// Fitted local affine transformation (includes the displacement as
    /// its translation part).
    pub affine: LocalAffine,
    /// Minimized error of the winning hypothesis (eq. 3).
    pub error: f64,
    /// False if no hypothesis produced a solvable system (degenerate,
    /// textureless surface) — the pixel is untrackable.
    pub valid: bool,
}

impl MotionEstimate {
    /// The untrackable-pixel sentinel.
    pub fn invalid() -> Self {
        Self {
            displacement: Vec2::ZERO,
            affine: LocalAffine::default(),
            error: f64::INFINITY,
            valid: false,
        }
    }
}

/// Scratch row data for one template pixel (kept so the error can be
/// re-evaluated after the solve without re-fetching geometry).
///
/// Note the paper's reduction (§4.2): of the after-motion normal, only
/// two numbers matter per mapping — here the observed gradient pair
/// `(gx_obs, gy_obs)`, mirroring the paper's "(n_i'^2 + n_j'^2) and
/// n_k'" two-float template-mapping store.
#[derive(Debug, Clone, Copy)]
pub struct TemplateSample {
    /// Surface gradient `z_x` before motion.
    pub zx: f64,
    /// Surface gradient `z_y` before motion.
    pub zy: f64,
    /// `1 / E` weight.
    pub inv_e: f64,
    /// `1 / G` weight.
    pub inv_g: f64,
    /// Observed after-motion gradient `g_x`.
    pub gx_obs: f64,
    /// Observed after-motion gradient `g_y`.
    pub gy_obs: f64,
}

impl TemplateSample {
    /// Build from the before/after geometric variables.
    pub fn from_geometry(before: GeomVars, after: GeomVars) -> Self {
        // Observed gradient after motion from the observed unit normal:
        // g = (-n_i/n_k, -n_j/n_k); n_k > 0 for graph surfaces.
        let gx_obs = -after.ni / after.nk;
        let gy_obs = -after.nj / after.nk;
        Self {
            zx: before.zx,
            zy: before.zy,
            inv_e: 1.0 / before.e,
            inv_g: 1.0 / before.g,
            gx_obs,
            gy_obs,
        }
    }

    /// The two weighted residuals at the given parameters.
    fn residuals(&self, p: &[f64; 6]) -> (f64, f64) {
        let [ai, bi, aj, bj, ak, bk] = *p;
        let pred_x = self.zx + ak - (ai * self.zx + aj * self.zy);
        let pred_y = self.zy + bk - (bi * self.zx + bj * self.zy);
        (
            (pred_x - self.gx_obs) * self.inv_e,
            (pred_y - self.gy_obs) * self.inv_g,
        )
    }
}

/// Evaluate one hypothesis: select the template mapping (Step 1), fit
/// the six motion parameters (Step 2) and return `(affine, error)`;
/// `None` if the 6 x 6 system is singular (degenerate neighborhood).
pub fn evaluate_hypothesis(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    x: usize,
    y: usize,
    ox: isize,
    oy: isize,
) -> Option<(LocalAffine, f64)> {
    let mut samples: Vec<TemplateSample> = Vec::with_capacity(cfg.template_window().area());
    evaluate_hypothesis_into(frames, cfg, x, y, ox, oy, &mut samples)
}

/// [`evaluate_hypothesis`] writing into a caller-provided scratch buffer,
/// so a hypothesis loop reuses one allocation instead of allocating a
/// template-sized `Vec` per hypothesis ((2 Nzs + 1)^2 allocations per
/// pixel in the hot loop otherwise).
pub(crate) fn evaluate_hypothesis_into(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    x: usize,
    y: usize,
    ox: isize,
    oy: isize,
    samples: &mut Vec<TemplateSample>,
) -> Option<(LocalAffine, f64)> {
    HYPOTHESES.incr();
    let nt = cfg.nzt as isize;
    samples.clear();

    // Step 1 + geometry gathering.
    for dv in -nt..=nt {
        for du in -nt..=nt {
            let px = x as isize + du;
            let py = y as isize + dv;
            let before = frames.geo_before.at_clamped(px, py);
            let (qx, qy) = match cfg.model {
                MotionModel::Continuous => (px + ox, py + oy),
                MotionModel::SemiFluid => {
                    semifluid_correspondence(
                        &frames.disc_before,
                        &frames.disc_after,
                        px,
                        py,
                        ox,
                        oy,
                        cfg.nss,
                        cfg.nst,
                    )
                    .0
                }
            };
            let after = frames.geo_after.at_clamped(qx, qy);
            samples.push(TemplateSample::from_geometry(before, after));
        }
    }

    let (solution, error) = solve_samples(samples)?;
    // The reported displacement is the *center pixel's* correspondence:
    // under the semi-fluid model the hypothesis is refined by the
    // center's own semi-fluid match (eq. 8's correspondences come from
    // the template mapping, not the raw hypothesis), so the estimate
    // resolves motion to within the semi-fluid search rather than the
    // coarser hypothesis grid.
    let (rx, ry) = refined_displacement(frames, cfg, x, y, ox, oy);
    let z0 = surface_delta(frames, x, y, rx, ry);
    Some((
        LocalAffine::from_params(&solution, rx as f64, ry as f64, z0),
        error,
    ))
}

/// The center pixel's correspondence displacement under hypothesis
/// `(ox, oy)`: the hypothesis itself for `Fcont`, the semi-fluid
/// refinement of it for `Fsemi`.
pub(crate) fn refined_displacement(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    x: usize,
    y: usize,
    ox: isize,
    oy: isize,
) -> (isize, isize) {
    match cfg.model {
        MotionModel::Continuous => (ox, oy),
        MotionModel::SemiFluid => {
            let ((qx, qy), _) = semifluid_correspondence(
                &frames.disc_before,
                &frames.disc_after,
                x as isize,
                y as isize,
                ox,
                oy,
                cfg.nss,
                cfg.nst,
            );
            (qx - x as isize, qy - y as isize)
        }
    }
}

/// Step 2 on gathered template samples: accumulate the weighted normal
/// equations, solve by 6 x 6 Gaussian elimination, and evaluate the
/// minimized error (eq. 3). Shared by the direct and precomputed paths
/// so they are bit-identical. Residual rows (coefficients in order
/// `[a_i, b_i, a_j, b_j, a_k, b_k]`):
///
/// ```text
/// eps_1: [-zx, 0, -zy, 0, 1, 0] * inv_e, target (gx_obs - zx) * inv_e
/// eps_2: [0, -zx, 0, -zy, 0, 1] * inv_g, target (gy_obs - zy) * inv_g
/// ```
pub(crate) fn solve_samples(samples: &[TemplateSample]) -> Option<([f64; 6], f64)> {
    GE_SOLVES.incr();
    TEMPLATE_TERMS.add(samples.len() as u64);
    // A^T A is symmetric and the two residual rows have complementary
    // sparsity (eps_1 touches the even parameters, eps_2 the odd ones),
    // so only 12 of the 36 entries are structurally nonzero — accumulate
    // those upper-triangle entries and mirror before the solve. Products
    // commute exactly in IEEE arithmetic, so this is bit-identical to
    // the dense accumulation at ~40% fewer multiply-adds.
    //
    // The per-sample product block (6 products, no accumulator
    // dependence) is lane-chunked when the SIMD kernels are enabled; the
    // 18 accumulator adds stay in the exact per-sample order either way,
    // so the two paths are bit-identical — this kernel feeds the
    // sequential driver, whose output is the stored conformance oracle.
    let mut ata = [0.0f64; 36];
    let mut atb = [0.0f64; 6];
    #[inline]
    fn products(s: &TemplateSample) -> [f64; 8] {
        [
            -s.zx * s.inv_e,
            -s.zy * s.inv_e,
            (s.gx_obs - s.zx) * s.inv_e,
            s.inv_e,
            -s.zx * s.inv_g,
            -s.zy * s.inv_g,
            (s.gy_obs - s.zy) * s.inv_g,
            s.inv_g,
        ]
    }
    #[inline]
    fn accumulate(ata: &mut [f64; 36], atb: &mut [f64; 6], p: &[f64; 8]) {
        let [zx_e, zy_e, b1, inv_e, zx_g, zy_g, b2, inv_g] = *p;
        // eps_1 row [zx_e, 0, zy_e, 0, inv_e, 0].
        ata[0] += zx_e * zx_e;
        ata[2] += zx_e * zy_e;
        ata[4] += zx_e * inv_e;
        ata[14] += zy_e * zy_e;
        ata[16] += zy_e * inv_e;
        ata[28] += inv_e * inv_e;
        atb[0] += zx_e * b1;
        atb[2] += zy_e * b1;
        atb[4] += inv_e * b1;
        // eps_2 row [0, zx_g, 0, zy_g, 0, inv_g].
        ata[7] += zx_g * zx_g;
        ata[9] += zx_g * zy_g;
        ata[11] += zx_g * inv_g;
        ata[21] += zy_g * zy_g;
        ata[23] += zy_g * inv_g;
        ata[35] += inv_g * inv_g;
        atb[1] += zx_g * b2;
        atb[3] += zy_g * b2;
        atb[5] += inv_g * b2;
    }
    if sma_grid::simd::enabled() {
        const L: usize = sma_grid::simd::LANES;
        sma_grid::simd::note_row(samples.len());
        let chunks = samples.len() / L;
        for c in 0..chunks {
            let blk = &samples[c * L..(c + 1) * L];
            let mut p = [[0.0f64; 8]; L];
            for (l, s) in blk.iter().enumerate() {
                p[l] = products(s);
            }
            for lane in &p {
                accumulate(&mut ata, &mut atb, lane);
            }
        }
        for s in &samples[chunks * L..] {
            accumulate(&mut ata, &mut atb, &products(s));
        }
    } else {
        for s in samples {
            accumulate(&mut ata, &mut atb, &products(s));
        }
    }
    for i in 0..6 {
        for j in (i + 1)..6 {
            ata[j * 6 + i] = ata[i * 6 + j];
        }
    }
    // Saved before solve6's in-place elimination destroys them: the
    // translation-only fallback needs the raw sums sum(ie^2), sum(ig^2).
    let (sum_ie2, sum_ig2) = (ata[28], ata[35]);
    let mut solution = atb;
    if solve6(&mut ata, &mut solution).is_err() {
        // Degradation ladder, armed runs only: a singular system
        // (textureless or fault-poisoned neighborhood) falls back to the
        // translation-only model. Its normal equations are diagonal —
        // a_k = sum(ie^2 (gx_obs - zx)) / sum(ie^2), b_k analogous —
        // which is exactly atb[4] / sum(ie^2) and atb[5] / sum(ig^2) of
        // the already-accumulated system. Disarmed runs keep reporting
        // the pixel untrackable, preserving bit-identical baseline
        // output.
        if !sma_fault::enabled() || sum_ie2 <= 0.0 || sum_ig2 <= 0.0 {
            return None;
        }
        sma_fault::note_natural_degradation();
        solution = [0.0, 0.0, 0.0, 0.0, atb[4] / sum_ie2, atb[5] / sum_ig2];
    }

    // Residual pass: the per-sample residual products are independent,
    // so the SIMD path evaluates them in 8-sample lane blocks; the final
    // `error +=` adds stay in sample order, keeping both paths
    // bit-identical.
    let mut error = 0.0f64;
    if sma_grid::simd::enabled() {
        const L: usize = sma_grid::simd::LANES;
        let chunks = samples.len() / L;
        for c in 0..chunks {
            let blk = &samples[c * L..(c + 1) * L];
            let mut t = [0.0f64; L];
            for (l, s) in blk.iter().enumerate() {
                let (e1, e2) = s.residuals(&solution);
                t[l] = e1 * e1 + e2 * e2;
            }
            for v in t {
                error += v;
            }
        }
        for s in &samples[chunks * L..] {
            let (e1, e2) = s.residuals(&solution);
            error += e1 * e1 + e2 * e2;
        }
    } else {
        for s in samples {
            let (e1, e2) = s.residuals(&solution);
            error += e1 * e1 + e2 * e2;
        }
    }
    Some((solution, error))
}

/// `z0`: surface value change between the tracked pixel and its
/// hypothesized position.
pub(crate) fn surface_delta(frames: &SmaFrames, x: usize, y: usize, ox: isize, oy: isize) -> f64 {
    let (w, h) = frames.surface_before.dims();
    let qx = (x as isize + ox).clamp(0, w as isize - 1) as usize;
    let qy = (y as isize + oy).clamp(0, h as isize - 1) as usize;
    frames.surface_after.at(qx, qy) as f64 - frames.surface_before.at(x, y) as f64
}

/// Track one pixel: evaluate every hypothesis in the z-search window and
/// return the minimizer (eq. 7's minimization). Ties break toward the
/// earlier hypothesis in row-major search order, keeping results
/// deterministic across drivers.
pub fn track_pixel(frames: &SmaFrames, cfg: &SmaConfig, x: usize, y: usize) -> MotionEstimate {
    let ns = cfg.nzs as isize;
    let mut samples: Vec<TemplateSample> = Vec::with_capacity(cfg.template_window().area());
    track_pixel_rows(
        frames,
        cfg,
        x,
        y,
        -ns,
        ns,
        MotionEstimate::invalid(),
        &mut samples,
    )
}

/// [`track_pixel`] restricted to hypothesis rows `oy in [oy0, oy1]`,
/// folding into a caller-carried running best. Processing row segments
/// in ascending `oy` order reproduces [`track_pixel`] bit-identically
/// (strict-less comparison, row-major order within a segment) — this is
/// the checkpointable unit of the §4.3 segmented MasPar schedule.
#[allow(clippy::too_many_arguments)] // segment bounds + running state
pub(crate) fn track_pixel_rows(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    x: usize,
    y: usize,
    oy0: isize,
    oy1: isize,
    mut best: MotionEstimate,
    samples: &mut Vec<TemplateSample>,
) -> MotionEstimate {
    let ns = cfg.nzs as isize;
    for oy in oy0..=oy1 {
        for ox in -ns..=ns {
            if let Some((affine, error)) =
                evaluate_hypothesis_into(frames, cfg, x, y, ox, oy, samples)
            {
                if error < best.error {
                    best = MotionEstimate {
                        displacement: Vec2::new(affine.x0 as f32, affine.y0 as f32),
                        affine,
                        error,
                        valid: true,
                    };
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_grid::warp::translate;

    /// A smooth, textured surface with rich normal variation.
    fn wavy(w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| {
            let (xf, yf) = (x as f32, y as f32);
            (xf * 0.45).sin() * 2.0 + (yf * 0.35).cos() * 1.5 + (xf * 0.12 + yf * 0.21).sin() * 3.0
        })
    }

    fn frames_for_shift(dx: f32, dy: f32, cfg: &SmaConfig) -> SmaFrames {
        let before = wavy(40, 40);
        // The scene moves by (dx, dy): frame t+1 at q holds frame t at
        // q - (dx, dy).
        let after = translate(&before, -dx, -dy, BorderPolicy::Clamp);
        SmaFrames::prepare(&before, &after, &before, &after, cfg).expect("prepare")
    }

    #[test]
    fn zero_motion_is_found_with_zero_error() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let frames = frames_for_shift(0.0, 0.0, &cfg);
        let est = track_pixel(&frames, &cfg, 20, 20);
        assert!(est.valid);
        assert_eq!(est.displacement, Vec2::ZERO);
        assert!(est.error < 1e-9, "error {}", est.error);
        assert!(est.affine.deformation_magnitude() < 1e-6);
    }

    #[test]
    fn integer_translation_recovered_continuous() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let frames = frames_for_shift(2.0, -1.0, &cfg);
        let est = track_pixel(&frames, &cfg, 20, 20);
        assert!(est.valid);
        assert_eq!(est.displacement, Vec2::new(2.0, -1.0));
    }

    #[test]
    fn integer_translation_recovered_semifluid() {
        let cfg = SmaConfig::small_test(MotionModel::SemiFluid);
        let frames = frames_for_shift(1.0, 2.0, &cfg);
        let est = track_pixel(&frames, &cfg, 20, 20);
        assert!(est.valid);
        assert_eq!(est.displacement, Vec2::new(1.0, 2.0));
    }

    #[test]
    fn flat_surface_is_untrackable() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let flat = Grid::filled(32, 32, 1.0f32);
        let frames = SmaFrames::prepare(&flat, &flat, &flat, &flat, &cfg).expect("prepare");
        let est = track_pixel(&frames, &cfg, 16, 16);
        assert!(!est.valid, "flat surfaces must report untrackable");
        assert!(est.error.is_infinite());
    }

    #[test]
    fn correct_hypothesis_beats_wrong_ones() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let frames = frames_for_shift(1.0, 0.0, &cfg);
        let (_, err_right) = evaluate_hypothesis(&frames, &cfg, 20, 20, 1, 0).unwrap();
        let (_, err_wrong) = evaluate_hypothesis(&frames, &cfg, 20, 20, -2, 2).unwrap();
        assert!(
            err_right < 0.5 * err_wrong,
            "right {err_right} should be well under wrong {err_wrong}"
        );
    }

    #[test]
    fn affine_absorbs_uniform_tilt_change() {
        // Frame t+1 adds a linear ramp (uniform gradient change): a_k and
        // b_k must absorb it with near-zero residual at zero displacement.
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = wavy(40, 40);
        let after = Grid::from_fn(40, 40, |x, y| {
            before.at(x, y) + 0.3 * x as f32 - 0.2 * y as f32
        });
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let (affine, error) = evaluate_hypothesis(&frames, &cfg, 20, 20, 0, 0).unwrap();
        assert!((affine.ak - 0.3).abs() < 0.05, "ak {}", affine.ak);
        assert!((affine.bk + 0.2).abs() < 0.05, "bk {}", affine.bk);
        let (_, error_unmodelled) = {
            // For comparison: the same pair but with a nonlinear change
            // cannot be absorbed.
            let bumpy = Grid::from_fn(40, 40, |x, y| {
                before.at(x, y) + ((x * y) as f32 * 0.05).sin()
            });
            let f2 = SmaFrames::prepare(&before, &bumpy, &before, &bumpy, &cfg).expect("prepare");
            evaluate_hypothesis(&f2, &cfg, 20, 20, 0, 0).unwrap()
        };
        assert!(
            error < 0.1 * error_unmodelled,
            "{error} vs {error_unmodelled}"
        );
    }

    #[test]
    fn estimates_are_deterministic() {
        let cfg = SmaConfig::small_test(MotionModel::SemiFluid);
        let frames = frames_for_shift(1.0, 1.0, &cfg);
        let a = track_pixel(&frames, &cfg, 18, 22);
        let b = track_pixel(&frames, &cfg, 18, 22);
        assert_eq!(a, b);
    }

    #[test]
    fn z0_tracks_surface_change() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = wavy(40, 40);
        let after = before.map(|v| v + 5.0); // whole surface rises by 5
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let (affine, _) = evaluate_hypothesis(&frames, &cfg, 20, 20, 0, 0).unwrap();
        assert!((affine.z0 - 5.0).abs() < 1e-4);
    }

    /// The lane-chunked `solve_samples` accumulation must be bit-identical
    /// to the scalar path for any sample count, including non-multiples
    /// of the lane width.
    #[test]
    fn solve_samples_simd_toggle_is_bit_identical() {
        let was = sma_grid::simd::enabled();
        for count in [1usize, 5, 7, 8, 9, 16, 23, 49, 121] {
            let samples: Vec<TemplateSample> = (0..count)
                .map(|i| {
                    let t = i as f64 * 0.37;
                    TemplateSample {
                        zx: (t * 1.3).sin() * 2.0,
                        zy: (t * 0.7).cos() * 1.5,
                        inv_e: 1.0 / (1.0 + (t.sin() * 2.0).powi(2)),
                        inv_g: 1.0 / (1.0 + (t.cos() * 1.5).powi(2)),
                        gx_obs: (t * 1.3 + 0.2).sin() * 2.0,
                        gy_obs: (t * 0.7 + 0.1).cos() * 1.5,
                    }
                })
                .collect();
            sma_grid::simd::set_enabled(false);
            let scalar = solve_samples(&samples);
            sma_grid::simd::set_enabled(true);
            let simd = solve_samples(&samples);
            sma_grid::simd::set_enabled(was);
            match (scalar, simd) {
                // Tiny sample sets are rank-deficient: both paths must
                // agree the system is singular.
                (None, None) => {}
                (Some((ps, es)), Some((pv, ev))) => {
                    for k in 0..6 {
                        assert_eq!(ps[k].to_bits(), pv[k].to_bits(), "param {k} count {count}");
                    }
                    assert_eq!(es.to_bits(), ev.to_bits(), "error count {count}");
                }
                (a, b) => panic!("solvability diverged at count {count}: {a:?} vs {b:?}"),
            }
        }
    }
}
