//! The calibrated workload/rate timing model — regenerates the paper's
//! Tables 2 and 4, Fig. 4 and the speed-up headlines.
//!
//! ## Methodology (see EXPERIMENTS.md)
//!
//! The MP-2 and the SGI Onyx are gone; wall-clock on a modern host says
//! nothing about them. What *can* be reproduced exactly is the paper's
//! workload decomposition — it spells out the operation counts:
//! per pixel, `(2Nzs+1)^2` Gaussian eliminations and error sums, each
//! over `(2NzT+1)^2` template error terms, each semi-fluid term needing
//! a `(2Nss+1)^2 x (2NsT+1)^2` mapping search; per frame pair,
//! `4 x M x N` surface-fit eliminations.
//!
//! Per-operation rates are **calibrated once against Table 2**
//! (Frederic, semi-fluid) and then used unchanged to *predict* Table 4
//! (GOES-9, continuous) and the Luis run — the predictions land within
//! ~10% and ~2x respectively, which validates that the paper's numbers
//! are internally consistent with its stated operation counts, and that
//! our model captures the machine. Sequential rates are calibrated from
//! the 397.34-day Frederic projection and the 41.357-hour GOES-9
//! measurement.

use crate::config::{MotionModel, SmaConfig};

/// Operation counts of one SMA frame-pair run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmaWorkload {
    /// Tracked pixels (`M x N`).
    pub pixels: u64,
    /// Surface-fit Gaussian eliminations: "over one million
    /// (4 x 512 x 512 = 1048576) separate Gaussian-eliminations" —
    /// intensity and surface planes at both timesteps.
    pub surface_fit_ges: u64,
    /// Per-pixel geometric-variable extractions (normals, E, G, D), same
    /// multiplicity as the fits.
    pub geom_var_extracts: u64,
    /// Semi-fluid template mappings precomputed: pixels x hypotheses
    /// (zero for the continuous model).
    pub semifluid_mappings: u64,
    /// Hypothesis-matching error terms: pixels x hypotheses x template
    /// area (the dominant count — 6.49e11 for Frederic).
    pub hyp_terms: u64,
    /// Hypothesis-matching Gaussian eliminations: pixels x hypotheses.
    pub hyp_ges: u64,
}

impl SmaWorkload {
    /// The workload of one `w x h` frame pair under `cfg`.
    pub fn from_config(cfg: &SmaConfig, w: usize, h: usize) -> Self {
        let pixels = (w * h) as u64;
        let hyps = cfg.hypotheses_per_pixel() as u64;
        let terms = cfg.terms_per_hypothesis() as u64;
        let mappings = match cfg.model {
            MotionModel::SemiFluid => pixels * hyps,
            MotionModel::Continuous => 0,
        };
        Self {
            pixels,
            surface_fit_ges: 4 * pixels,
            geom_var_extracts: 4 * pixels,
            semifluid_mappings: mappings,
            hyp_terms: pixels * hyps * terms,
            hyp_ges: pixels * hyps,
        }
    }
}

/// One named phase and its modelled seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase name (the paper's subroutine name).
    pub name: &'static str,
    /// Modelled seconds.
    pub seconds: f64,
}

/// A per-phase breakdown, the shape of the paper's Tables 2 and 4.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingBreakdown {
    /// Phases in table order.
    pub phases: Vec<PhaseTiming>,
}

impl TimingBreakdown {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// Seconds of a named phase (0 if absent).
    pub fn phase(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map_or(0.0, |p| p.seconds)
    }
}

/// MP-2 per-operation rates (aggregate machine seconds per operation),
/// calibrated against Table 2. Provenance of each constant:
///
/// * `ge6`: Table 2 "Surface fit" 2.503216 s / (4 x 512^2) eliminations;
/// * `geom_var`: Table 2 "Compute geometric variables" 0.037088 s /
///   (4 x 512^2) extractions;
/// * `semifluid_mapping`: Table 2 "Semi-fluid mapping" 66.85848 s /
///   (512^2 x 169) mappings;
/// * `hyp_term`: Table 2 "Hypothesis matching" 33403.162992 s minus the
///   169 x 512^2 eliminations at `ge6`, divided by 512^2 x 169 x 14641
///   terms.
#[derive(Debug, Clone, Copy)]
pub struct Mp2Rates {
    /// Seconds per 6 x 6 Gaussian elimination.
    pub ge6: f64,
    /// Seconds per geometric-variable extraction.
    pub geom_var: f64,
    /// Seconds per semi-fluid template mapping (9 candidates x 25
    /// discriminant parameters).
    pub semifluid_mapping: f64,
    /// Seconds per hypothesis error term (eqs. 4-5 evaluation).
    pub hyp_term: f64,
}

impl Default for Mp2Rates {
    fn default() -> Self {
        let px = 512.0f64 * 512.0;
        let hyps = 169.0;
        let terms_per_hyp = 14641.0;
        let ge6 = 2.503_216 / (4.0 * px);
        Self {
            ge6,
            geom_var: 0.037_088 / (4.0 * px),
            semifluid_mapping: 66.858_48 / (px * hyps),
            hyp_term: (33_403.162_992 - px * hyps * ge6) / (px * hyps * terms_per_hyp),
        }
    }
}

impl Mp2Rates {
    /// Per-phase breakdown of a workload — the Table 2/4 generator.
    pub fn breakdown(&self, w: &SmaWorkload) -> TimingBreakdown {
        let mut phases = vec![
            PhaseTiming {
                name: "Surface fit",
                seconds: w.surface_fit_ges as f64 * self.ge6,
            },
            PhaseTiming {
                name: "Compute geometric variables",
                seconds: w.geom_var_extracts as f64 * self.geom_var,
            },
        ];
        if w.semifluid_mappings > 0 {
            phases.push(PhaseTiming {
                name: "Semi-fluid mapping",
                seconds: w.semifluid_mappings as f64 * self.semifluid_mapping,
            });
        }
        phases.push(PhaseTiming {
            name: "Hypothesis matching",
            seconds: w.hyp_terms as f64 * self.hyp_term + w.hyp_ges as f64 * self.ge6,
        });
        TimingBreakdown { phases }
    }
}

/// Sequential (SGI Onyx R8000/90) per-operation rates. Provenance:
///
/// * `hyp_term_semifluid`: the 397.34-day (3.433e7 s) Frederic
///   projection over 512^2 x 169 x 14641 terms (the sequential code
///   recomputes each term's semi-fluid mapping inline, so the mapping
///   cost is folded into the term);
/// * `hyp_term_continuous`: the 41.357-hour GOES-9 sequential
///   measurement over 512^2 x 225 x 225 terms;
/// * `ge6`: ~150 flops at 25% of the R8000's 360 MFlops peak.
#[derive(Debug, Clone, Copy)]
pub struct SgiRates {
    /// Seconds per semi-fluid hypothesis error term (mapping folded in).
    pub hyp_term_semifluid: f64,
    /// Seconds per continuous hypothesis error term.
    pub hyp_term_continuous: f64,
    /// Seconds per 6 x 6 Gaussian elimination.
    pub ge6: f64,
}

impl Default for SgiRates {
    fn default() -> Self {
        let px = 512.0f64 * 512.0;
        Self {
            hyp_term_semifluid: 397.34 * 86_400.0 / (px * 169.0 * 14_641.0),
            hyp_term_continuous: 41.357 * 3_600.0 / (px * 225.0 * 225.0),
            ge6: 150.0 / (0.25 * 360.0e6),
        }
    }
}

impl SgiRates {
    /// Total sequential seconds for a workload.
    pub fn seconds(&self, w: &SmaWorkload, model: MotionModel) -> f64 {
        let term = match model {
            MotionModel::SemiFluid => self.hyp_term_semifluid,
            MotionModel::Continuous => self.hyp_term_continuous,
        };
        w.hyp_terms as f64 * term + (w.hyp_ges + w.surface_fit_ges) as f64 * self.ge6
    }

    /// Fig. 4's quantity: sequential seconds to compute a single pixel
    /// correspondence for a given z-template half-width (the x axis
    /// sweeps 11 x 11 .. 131 x 131), with the rest of `cfg` fixed.
    pub fn per_pixel_seconds(&self, cfg: &SmaConfig, nzt: usize) -> f64 {
        let hyps = cfg.hypotheses_per_pixel() as f64;
        let template = ((2 * nzt + 1) * (2 * nzt + 1)) as f64;
        let term = match cfg.model {
            MotionModel::SemiFluid => self.hyp_term_semifluid,
            MotionModel::Continuous => self.hyp_term_continuous,
        };
        hyps * (template * term + self.ge6)
    }
}

/// The paper's reported values, for side-by-side printing.
pub mod paper {
    /// Table 2 rows (seconds), Frederic pair.
    pub const TABLE2_SURFACE_FIT_S: f64 = 2.503_216;
    /// Table 2 geometric variables row.
    pub const TABLE2_GEOM_VARS_S: f64 = 0.037_088;
    /// Table 2 semi-fluid mapping row.
    pub const TABLE2_SEMIFLUID_S: f64 = 66.858_48;
    /// Table 2 hypothesis matching row.
    pub const TABLE2_HYPOTHESIS_S: f64 = 33_403.162_992;
    /// Table 2 total.
    pub const TABLE2_TOTAL_S: f64 = 33_472.561_776;
    /// §5.1: sequential projection for one Frederic pair.
    pub const FREDERIC_SEQUENTIAL_DAYS: f64 = 397.34;
    /// §5.1: the headline speed-up.
    pub const FREDERIC_SPEEDUP: f64 = 1025.0;
    /// Table 4: merged surface fit + geometric variables row.
    pub const TABLE4_SURFACE_GEOM_S: f64 = 2.460_9;
    /// Table 4 hypothesis matching row.
    pub const TABLE4_HYPOTHESIS_S: f64 = 768.757_8;
    /// Table 4 total.
    pub const TABLE4_TOTAL_S: f64 = 771.218_708;
    /// §5.2: GOES-9 sequential hours.
    pub const GOES9_SEQUENTIAL_HOURS: f64 = 41.357;
    /// §5.2: the GOES-9 run-time gain.
    pub const GOES9_SPEEDUP: f64 = 193.0;
    /// §5: Luis per-pair parallel minutes ("approximately 6.0 min").
    pub const LUIS_PARALLEL_MINUTES: f64 = 6.0;
    /// §5: Luis speed-up ("over 150").
    pub const LUIS_SPEEDUP_FLOOR: f64 = 150.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    const PX: usize = 512;

    fn frederic() -> (SmaConfig, SmaWorkload) {
        let cfg = SmaConfig::hurricane_frederic();
        let w = SmaWorkload::from_config(&cfg, PX, PX);
        (cfg, w)
    }

    fn goes9() -> (SmaConfig, SmaWorkload) {
        let cfg = SmaConfig::goes9_florida();
        let w = SmaWorkload::from_config(&cfg, PX, PX);
        (cfg, w)
    }

    #[test]
    fn frederic_workload_counts_match_paper() {
        let (_, w) = frederic();
        assert_eq!(w.surface_fit_ges, 1_048_576); // "over one million"
        assert_eq!(w.hyp_ges, 262_144 * 169);
        assert_eq!(w.hyp_terms, 262_144 * 169 * 14_641);
        assert_eq!(w.semifluid_mappings, 262_144 * 169);
    }

    /// Calibration closure: the model reproduces Table 2 essentially
    /// exactly (it was calibrated on it).
    #[test]
    fn table2_reproduced() {
        let (_, w) = frederic();
        let b = Mp2Rates::default().breakdown(&w);
        assert!((b.phase("Surface fit") - paper::TABLE2_SURFACE_FIT_S).abs() < 1e-6);
        assert!((b.phase("Compute geometric variables") - paper::TABLE2_GEOM_VARS_S).abs() < 1e-6);
        assert!((b.phase("Semi-fluid mapping") - paper::TABLE2_SEMIFLUID_S).abs() < 1e-6);
        assert!((b.phase("Hypothesis matching") - paper::TABLE2_HYPOTHESIS_S).abs() < 1e-3);
        assert!((b.total() - paper::TABLE2_TOTAL_S).abs() < 1e-2);
        // The paper's 9.298-hour statement.
        assert!((b.total() / 3600.0 - 9.298).abs() < 0.01);
    }

    /// Transfer validation: the Frederic-calibrated rates *predict*
    /// Table 4 (different model, different windows) within ~10%.
    #[test]
    fn table4_predicted_within_ten_percent() {
        let (_, w) = goes9();
        let b = Mp2Rates::default().breakdown(&w);
        assert!(
            w.semifluid_mappings == 0,
            "continuous model has no mapping phase"
        );
        assert_eq!(b.phases.len(), 3);
        let surface_geom = b.phase("Surface fit") + b.phase("Compute geometric variables");
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(
            rel(surface_geom, paper::TABLE4_SURFACE_GEOM_S) < 0.10,
            "surface+geom {surface_geom} vs paper {}",
            paper::TABLE4_SURFACE_GEOM_S
        );
        assert!(
            rel(b.phase("Hypothesis matching"), paper::TABLE4_HYPOTHESIS_S) < 0.10,
            "hypothesis {} vs paper {}",
            b.phase("Hypothesis matching"),
            paper::TABLE4_HYPOTHESIS_S
        );
        assert!(rel(b.total(), paper::TABLE4_TOTAL_S) < 0.10);
    }

    /// The 1025x Frederic speed-up.
    #[test]
    fn frederic_speedup_three_orders_of_magnitude() {
        let (cfg, w) = frederic();
        let par = Mp2Rates::default().breakdown(&w).total();
        let seq = SgiRates::default().seconds(&w, cfg.model);
        let speedup = seq / par;
        assert!(
            (seq / 86_400.0 - paper::FREDERIC_SEQUENTIAL_DAYS).abs() < 2.0,
            "sequential {} days",
            seq / 86_400.0
        );
        assert!(
            (speedup - paper::FREDERIC_SPEEDUP).abs() < 30.0,
            "speedup {speedup}"
        );
    }

    /// The 193x GOES-9 gain (within model tolerance).
    #[test]
    fn goes9_speedup_two_orders_of_magnitude() {
        let (cfg, w) = goes9();
        let par = Mp2Rates::default().breakdown(&w).total();
        let seq = SgiRates::default().seconds(&w, cfg.model);
        let speedup = seq / par;
        assert!(
            speedup > 150.0 && speedup < 230.0,
            "speedup {speedup} should be ~193"
        );
    }

    /// §5's Luis prediction: minutes-per-pair on the MP-2, speed-up over
    /// 100 (paper: "approximately 6.0 min", "over 150").
    #[test]
    fn luis_prediction_in_range() {
        let cfg = SmaConfig::hurricane_luis();
        let w = SmaWorkload::from_config(&cfg, PX, PX);
        let par = Mp2Rates::default().breakdown(&w).total();
        let seq = SgiRates::default().seconds(&w, cfg.model);
        let minutes = par / 60.0;
        assert!(minutes > 1.0 && minutes < 10.0, "Luis pair {minutes} min");
        let speedup = seq / par;
        assert!(speedup > 100.0, "Luis speedup {speedup}");
    }

    /// Fig. 4's shape: per-pixel time grows ~quadratically with the
    /// template edge, and the 121 x 121 point is consistent with the
    /// 397-day whole-frame projection.
    #[test]
    fn fig4_per_pixel_curve() {
        let cfg = SmaConfig::hurricane_frederic();
        let r = SgiRates::default();
        let t11 = r.per_pixel_seconds(&cfg, 5); // 11 x 11
        let t121 = r.per_pixel_seconds(&cfg, 60); // 121 x 121
        let t131 = r.per_pixel_seconds(&cfg, 65); // 131 x 131
        assert!(t11 < t121 && t121 < t131);
        // Quadratic growth in edge length: t(121)/t(11) ~ (121/11)^2.
        let ratio = t121 / t11;
        assert!((ratio - (121.0f64 / 11.0).powi(2)).abs() / ratio < 0.05);
        // Whole-frame projection from the per-pixel time: ~397 days.
        let days = t121 * 512.0 * 512.0 / 86_400.0;
        assert!((days - 397.34).abs() < 5.0, "projected {days} days");
    }

    /// Hypothesis matching dominates Table 2 (>99% of the total) — the
    /// paper's motivation for optimizing that phase hardest.
    #[test]
    fn hypothesis_matching_dominates() {
        let (_, w) = frederic();
        let b = Mp2Rates::default().breakdown(&w);
        assert!(b.phase("Hypothesis matching") / b.total() > 0.99);
    }
}
