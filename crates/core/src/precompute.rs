//! §4.1 template-mapping precomputation and §4.3 segmentation.
//!
//! Two observations drive the paper's optimization:
//!
//! 1. **Sharing across overlapping templates.** "Since we track all
//!    pixels ... the corresponding template neighborhoods overlap each
//!    other. To avoid recomputing the template mapping (9) for
//!    overlapping pixels ... it is more efficient to pre-compute the
//!    template mapping for all pixels", one mapping per pixel per
//!    hypothesis offset — the mapping of template pixel `p` under
//!    hypothesis offset `o` depends only on `(p, o)`, not on which
//!    tracked pixel's template `p` sits in.
//! 2. **Reduction to two floats.** "each template mapping could be
//!    represented by storing the three normal components ... But the
//!    minimization of (3) can be shown to be a function of only
//!    (n_i'^2 + n_j'^2) and n_k'." In our formulation the two floats are
//!    the observed after-motion gradient `(gx_obs, gy_obs)`.
//!
//! Even reduced, the full store is too big for PE memory (67.7 KB for a
//! 23 x 23 search at 16 px/PE — over the 64 KB budget), so it is
//! **segmented by hypothesis rows**: "The data chunks or segments are in
//! multiples of rows of the search or hypothesis neighborhood ... Each
//! segment can be independently computed and processed ... The segment
//! can then be discarded and the next chunk computed ... Once all the
//! segments are processed, the equivalent minimization of (7) is
//! complete." [`track_all_segmented`] implements exactly that loop and
//! is bit-identical to the sequential baseline.

use rayon::prelude::*;
use sma_fault::SmaError;
use sma_grid::{Grid, Vec2};

use crate::affine::LocalAffine;
use crate::config::{MotionModel, SmaConfig};
use crate::motion::{solve_samples, MotionEstimate, SmaFrames, TemplateSample};
use crate::sequential::{Region, SmaResult};
use crate::template_map::semifluid_correspondence;

/// Mapping planes materialized by the segmented store (one per hypothesis
/// offset per segment; the quantity §4.3's memory accounting bounds).
static SEGMENT_PLANES: sma_obs::Counter = sma_obs::Counter::new("sma.precompute.planes_built");

/// The precomputed mapping planes for one segment of hypothesis rows:
/// for each offset `o` in the segment, a plane of per-pixel
/// `(gx_obs, gy_obs)` pairs (plus the before-geometry, shared).
struct SegmentStore {
    /// Hypothesis offsets `(ox, oy)` covered, in row-major search order.
    offsets: Vec<(isize, isize)>,
    /// One plane per offset: `(gx_obs, gy_obs)` per pixel.
    planes: Vec<Grid<(f64, f64)>>,
}

impl SegmentStore {
    /// Precompute the mapping planes for hypothesis rows
    /// `oy in [row0, row1]` (inclusive), full `ox` range.
    fn compute(frames: &SmaFrames, cfg: &SmaConfig, row0: isize, row1: isize) -> Self {
        let _span = sma_obs::span("precompute_planes");
        let ns = cfg.nzs as isize;
        let (w, h) = frames.dims();
        let offsets: Vec<(isize, isize)> = (row0..=row1)
            .flat_map(|oy| (-ns..=ns).map(move |ox| (ox, oy)))
            .collect();
        SEGMENT_PLANES.add(offsets.len() as u64);
        let planes: Vec<Grid<(f64, f64)>> = offsets
            .par_iter()
            .map(|&(ox, oy)| {
                Grid::from_fn(w, h, |x, y| {
                    mapped_gradient(frames, cfg, x as isize, y as isize, ox, oy)
                })
            })
            .collect();
        Self { offsets, planes }
    }

    /// Bytes this segment's planes occupy per pixel (two f64 per offset
    /// per pixel here; the MP-2 implementation stored two f32 — see
    /// `maspar_sim::memory` for the PE-side accounting).
    #[cfg(test)]
    fn bytes_per_pixel(&self) -> usize {
        self.planes.len() * 16
    }
}

/// The observed after-motion gradient of template pixel `(px, py)` under
/// hypothesis offset `(ox, oy)` — through the semi-fluid mapping for
/// `Fsemi`, pure translation for `Fcont`. Shared with the integral-image
/// fast path so both consume identical mapping planes.
pub(crate) fn mapped_gradient(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    px: isize,
    py: isize,
    ox: isize,
    oy: isize,
) -> (f64, f64) {
    let (qx, qy) = match cfg.model {
        MotionModel::Continuous => (px + ox, py + oy),
        MotionModel::SemiFluid => {
            semifluid_correspondence(
                &frames.disc_before,
                &frames.disc_after,
                px,
                py,
                ox,
                oy,
                cfg.nss,
                cfg.nst,
            )
            .0
        }
    };
    let after = frames.geo_after.at_clamped(qx, qy);
    (-after.ni / after.nk, -after.nj / after.nk)
}

/// Track all pixels with the precomputed-and-segmented scheme:
/// hypothesis rows are processed `z_rows` at a time, each segment's
/// mapping planes are computed, consumed and discarded, and each pixel's
/// running best hypothesis survives across segments. Results are
/// bit-identical to [`crate::sequential::track_all_sequential`].
///
/// # Errors
/// [`SmaError::Config`] if `z_rows == 0`;
/// [`sma_fault::GridError::EmptyRegion`] if the region is empty.
pub fn track_all_segmented(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    region: Region,
    z_rows: usize,
) -> Result<SmaResult, SmaError> {
    if z_rows == 0 {
        return Err(SmaError::Config(
            "segment must contain at least one hypothesis row".into(),
        ));
    }
    let _span = sma_obs::span("track_segmented");
    let (w, h) = frames.dims();
    let bounds = region.bounds_checked(w, h)?;
    sma_obs::atlas::mark_rect(
        sma_obs::atlas::AtlasChannel::DispatchExact,
        bounds.x0,
        bounds.y0,
        bounds.x1,
        bounds.y1,
    );
    let ns = cfg.nzs as isize;
    let nt = cfg.nzt as isize;

    let mut best: Grid<MotionEstimate> = Grid::filled(w, h, MotionEstimate::invalid());

    // Segment loop over hypothesis rows.
    let mut row0 = -ns;
    while row0 <= ns {
        crate::cancel::checkpoint()?;
        let row1 = (row0 + z_rows as isize - 1).min(ns);
        let store = SegmentStore::compute(frames, cfg, row0, row1);

        // Hypothesis matching against this segment, all pixels.
        let updated: Vec<((usize, usize), MotionEstimate)> = bounds
            .pixels()
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&(x, y)| {
                let mut local_best = best.at(x, y);
                // Scratch buffer shared across this pixel's hypotheses.
                let mut samples = Vec::with_capacity(cfg.template_window().area());
                for (oi, &(ox, oy)) in store.offsets.iter().enumerate() {
                    let plane = &store.planes[oi];
                    samples.clear();
                    for dv in -nt..=nt {
                        for du in -nt..=nt {
                            let px = x as isize + du;
                            let py = y as isize + dv;
                            let before = frames.geo_before.at_clamped(px, py);
                            let (gx_obs, gy_obs) = plane_at_clamped(plane, px, py);
                            samples.push(TemplateSample {
                                zx: before.zx,
                                zy: before.zy,
                                inv_e: 1.0 / before.e,
                                inv_g: 1.0 / before.g,
                                gx_obs,
                                gy_obs,
                            });
                        }
                    }
                    if let Some((params, error)) = solve_samples(&samples) {
                        if error < local_best.error {
                            let (rx, ry) =
                                crate::motion::refined_displacement(frames, cfg, x, y, ox, oy);
                            let z0 = {
                                let qx = (x as isize + rx).clamp(0, w as isize - 1) as usize;
                                let qy = (y as isize + ry).clamp(0, h as isize - 1) as usize;
                                frames.surface_after.at(qx, qy) as f64
                                    - frames.surface_before.at(x, y) as f64
                            };
                            local_best = MotionEstimate {
                                displacement: Vec2::new(rx as f32, ry as f32),
                                affine: LocalAffine::from_params(&params, rx as f64, ry as f64, z0),
                                error,
                                valid: true,
                            };
                        }
                    }
                }
                ((x, y), local_best)
            })
            .collect();
        for ((x, y), est) in updated {
            best.set(x, y, est);
        }
        // Segment discarded here (dropped), exactly as on the PE.
        row0 = row1 + 1;
    }

    Ok(SmaResult {
        estimates: best,
        region: bounds,
    })
}

/// Host-side bytes one segment of `z_rows` hypothesis rows occupies, for
/// diagnostics ("the key observation is that the template mapping data
/// can be segmented by hypothesis or search area").
pub fn segment_bytes(frames: &SmaFrames, cfg: &SmaConfig, z_rows: usize) -> usize {
    let (w, h) = frames.dims();
    let store_offsets = z_rows * (2 * cfg.nzs + 1);
    store_offsets * 16 * w * h
}

#[inline]
fn plane_at_clamped(plane: &Grid<(f64, f64)>, x: isize, y: isize) -> (f64, f64) {
    let cx = x.clamp(0, plane.width() as isize - 1) as usize;
    let cy = y.clamp(0, plane.height() as isize - 1) as usize;
    plane.at(cx, cy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::track_all_sequential;
    use sma_grid::warp::translate;
    use sma_grid::BorderPolicy;

    fn wavy(w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| {
            let (xf, yf) = (x as f32, y as f32);
            (xf * 0.45).sin() * 2.0 + (yf * 0.35).cos() * 1.5 + (xf * 0.12 + yf * 0.21).sin() * 3.0
        })
    }

    fn frames(cfg: &SmaConfig) -> SmaFrames {
        let before = wavy(26, 26);
        let after = translate(&before, -1.0, -1.0, BorderPolicy::Clamp);
        SmaFrames::prepare(&before, &after, &before, &after, cfg).expect("prepare")
    }

    /// "Once all the segments are processed, the equivalent minimization
    /// of (7) is complete" — segmented must equal unsegmented must equal
    /// sequential, for every segment size.
    #[test]
    fn segmented_equals_sequential_all_chunk_sizes() {
        let cfg = SmaConfig::small_test(MotionModel::SemiFluid);
        let f = frames(&cfg);
        let region = Region::Interior { margin: 9 };
        let reference = track_all_sequential(&f, &cfg, region).expect("sequential");
        for z_rows in [1usize, 2, 3, 5, 7] {
            let seg = track_all_segmented(&f, &cfg, region, z_rows).expect("segmented");
            for (x, y) in reference.region.pixels() {
                assert_eq!(
                    reference.estimates.at(x, y),
                    seg.estimates.at(x, y),
                    "Z = {z_rows} at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn segmented_equals_sequential_continuous() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let f = frames(&cfg);
        let region = Region::Interior { margin: 8 };
        let reference = track_all_sequential(&f, &cfg, region).expect("sequential");
        let seg = track_all_segmented(&f, &cfg, region, 2).expect("segmented");
        for (x, y) in reference.region.pixels() {
            assert_eq!(reference.estimates.at(x, y), seg.estimates.at(x, y));
        }
    }

    #[test]
    fn segment_memory_scales_with_rows() {
        let cfg = SmaConfig::small_test(MotionModel::SemiFluid);
        let f = frames(&cfg);
        let one = segment_bytes(&f, &cfg, 1);
        let three = segment_bytes(&f, &cfg, 3);
        assert_eq!(three, 3 * one);
        // One row of the 5-wide search on a 26x26 frame: 5 * 16 * 676.
        assert_eq!(one, 5 * 16 * 26 * 26);
        // And the store's own accounting agrees.
        let store = SegmentStore::compute(&f, &cfg, -2, -2);
        assert_eq!(store.bytes_per_pixel() * 26 * 26, one);
        assert_eq!(store.offsets.len(), 5);
    }

    #[test]
    fn zero_segment_rejected() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let f = frames(&cfg);
        let err = track_all_segmented(&f, &cfg, Region::Interior { margin: 8 }, 0)
            .expect_err("z_rows = 0 must be rejected");
        assert!(err.to_string().contains("at least one hypothesis row"));
    }
}
