//! Meteorological wind products from SMA output.
//!
//! The paper's motivation: "Cloud motion vectors from the SMA algorithm
//! can be used to estimate the wind field that would be useful in a
//! variety of meteorological applications", and "accurate measurement of
//! cloud-top height distributions and winds are important for
//! meteorological weather forecasting, analysis, modeling and
//! assimilation". This module turns a dense [`crate::sequential::SmaResult`]
//! into those products:
//!
//! * **wind vectors** in physical units (pixel displacement × pixel size
//!   / frame interval);
//! * **divergence and vorticity planes**, read directly from the fitted
//!   local affine parameters (`a_i + b_j` and `a_j - b_i` per pixel — a
//!   unique benefit of SMA's parametric output: no finite differencing
//!   of the flow needed);
//! * **height-resolved wind layers**: mean wind per cloud-top height
//!   band, the layered wind profile forecasters assimilate.

use sma_grid::{FlowField, Grid, Vec2};

use crate::sequential::SmaResult;

/// Physical scaling of one scene.
#[derive(Debug, Clone, Copy)]
pub struct WindScaling {
    /// Ground size of one pixel in km (Frederic: ~1 km at center).
    pub pixel_km: f32,
    /// Frame interval in minutes.
    pub interval_minutes: f32,
}

impl WindScaling {
    /// Convert a pixel displacement per frame to a wind speed in m/s.
    pub fn speed_mps(&self, displacement: Vec2) -> f32 {
        let km_per_frame = displacement.magnitude() * self.pixel_km;
        km_per_frame * 1000.0 / (self.interval_minutes * 60.0)
    }

    /// Convert the whole flow field to a speed plane in m/s.
    pub fn speed_plane(&self, flow: &FlowField) -> Grid<f32> {
        flow.as_grid().map(|v| self.speed_mps(*v))
    }
}

/// Divergence plane from the fitted affine parameters (`a_i + b_j` per
/// valid pixel; 0 for invalid).
pub fn divergence_plane(result: &SmaResult) -> Grid<f32> {
    result.estimates.map(|e| {
        if e.valid {
            e.affine.divergence() as f32
        } else {
            0.0
        }
    })
}

/// Vorticity (curl) plane from the fitted affine parameters
/// (`a_j - b_i`; 0 for invalid).
pub fn vorticity_plane(result: &SmaResult) -> Grid<f32> {
    result
        .estimates
        .map(|e| if e.valid { e.affine.curl() as f32 } else { 0.0 })
}

/// One height band's aggregated wind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindLayer {
    /// Band lower bound (inclusive) in height units.
    pub h_lo: f32,
    /// Band upper bound (exclusive; `f32::INFINITY` for the top band).
    pub h_hi: f32,
    /// Number of valid pixels in the band.
    pub count: usize,
    /// Mean displacement (pixels/frame).
    pub mean_wind: Vec2,
}

/// Height-resolved winds: partition valid pixels into height bands and
/// average each band's displacement — the multi-layer wind profile.
///
/// # Panics
/// Panics if shapes differ or `bands` is not strictly increasing.
pub fn wind_layers(result: &SmaResult, heights: &Grid<f32>, bands: &[f32]) -> Vec<WindLayer> {
    assert_eq!(
        result.estimates.dims(),
        heights.dims(),
        "height shape mismatch"
    );
    assert!(
        bands.windows(2).all(|w| w[0] < w[1]),
        "bands must be strictly increasing"
    );
    let num = bands.len() + 1;
    let mut sums = vec![Vec2::ZERO; num];
    let mut counts = vec![0usize; num];
    for (x, y) in result.region.pixels() {
        let e = result.estimates.at(x, y);
        if !e.valid {
            continue;
        }
        let h = heights.at(x, y);
        let mut band = 0usize;
        for (k, &b) in bands.iter().enumerate() {
            if h >= b {
                band = k + 1;
            }
        }
        sums[band] = sums[band] + e.displacement;
        counts[band] += 1;
    }
    (0..num)
        .map(|k| {
            let h_lo = if k == 0 {
                f32::NEG_INFINITY
            } else {
                bands[k - 1]
            };
            let h_hi = if k == bands.len() {
                f32::INFINITY
            } else {
                bands[k]
            };
            WindLayer {
                h_lo,
                h_hi,
                count: counts[k],
                mean_wind: if counts[k] > 0 {
                    sums[k] * (1.0 / counts[k] as f32)
                } else {
                    Vec2::ZERO
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::LocalAffine;
    use crate::motion::MotionEstimate;
    use sma_grid::WindowBounds;

    fn result_with(f: impl Fn(usize, usize) -> MotionEstimate) -> SmaResult {
        SmaResult {
            estimates: Grid::from_fn(8, 8, f),
            region: WindowBounds {
                x0: 0,
                y0: 0,
                x1: 7,
                y1: 7,
            },
        }
    }

    fn valid_est(u: f32, v: f32, affine: LocalAffine) -> MotionEstimate {
        MotionEstimate {
            displacement: Vec2::new(u, v),
            affine,
            error: 0.1,
            valid: true,
        }
    }

    #[test]
    fn wind_speed_units() {
        // 2 px/frame at 1 km/px over 7.5 min = 2 km / 450 s = 4.44 m/s.
        let s = WindScaling {
            pixel_km: 1.0,
            interval_minutes: 7.5,
        };
        let v = s.speed_mps(Vec2::new(2.0, 0.0));
        assert!((v - 4.444).abs() < 0.01, "{v}");
    }

    #[test]
    fn divergence_and_vorticity_from_affine() {
        let rot = LocalAffine {
            aj: 0.1,
            bi: -0.1,
            ..Default::default()
        };
        let exp = LocalAffine {
            ai: 0.05,
            bj: 0.05,
            ..Default::default()
        };
        let r = result_with(|x, _| {
            if x < 4 {
                valid_est(1.0, 0.0, rot)
            } else {
                valid_est(1.0, 0.0, exp)
            }
        });
        let div = divergence_plane(&r);
        let vor = vorticity_plane(&r);
        assert!((div.at(1, 1) - 0.0).abs() < 1e-6);
        assert!((vor.at(1, 1) - 0.2).abs() < 1e-6);
        assert!((div.at(6, 6) - 0.1).abs() < 1e-6);
        assert!((vor.at(6, 6) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_pixels_report_zero_products() {
        let r = result_with(|x, _| {
            if x == 0 {
                MotionEstimate::invalid()
            } else {
                valid_est(1.0, 0.0, LocalAffine::default())
            }
        });
        assert_eq!(divergence_plane(&r).at(0, 3), 0.0);
        assert_eq!(vorticity_plane(&r).at(0, 3), 0.0);
    }

    #[test]
    fn layered_winds_separate_by_height() {
        // Low deck (h=2) drifts east, high deck (h=9) drifts west.
        let heights = Grid::from_fn(8, 8, |_, y| if y < 4 { 2.0f32 } else { 9.0 });
        let r = result_with(|_, y| {
            if y < 4 {
                valid_est(1.5, 0.0, LocalAffine::default())
            } else {
                valid_est(-2.0, 0.5, LocalAffine::default())
            }
        });
        let layers = wind_layers(&r, &heights, &[5.0]);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].count, 32);
        assert_eq!(layers[0].mean_wind, Vec2::new(1.5, 0.0));
        assert_eq!(layers[1].mean_wind, Vec2::new(-2.0, 0.5));
        assert_eq!(layers[1].h_lo, 5.0);
        assert!(layers[1].h_hi.is_infinite());
    }

    #[test]
    fn empty_band_reports_zero() {
        let heights = Grid::filled(8, 8, 1.0f32);
        let r = result_with(|_, _| valid_est(1.0, 0.0, LocalAffine::default()));
        let layers = wind_layers(&r, &heights, &[5.0, 10.0]);
        assert_eq!(layers[0].count, 64);
        assert_eq!(layers[1].count, 0);
        assert_eq!(layers[1].mean_wind, Vec2::ZERO);
        assert_eq!(layers[2].count, 0);
    }
}
