//! Relaxation labeling of the motion field (§6: "improving the accuracy
//! of the estimated motion field by using ... relaxation labeling").
//!
//! Classic probabilistic relaxation over discrete displacement labels:
//! each pixel holds a probability distribution over the `(2Nzs+1)^2`
//! hypothesis displacements, initialized from the SMA errors
//! (`p ~ exp(-err / T)`), then iteratively updated by neighborhood
//! support — a label gains probability when neighbors assign high
//! probability to *compatible* (similar) displacements. Smooth regions
//! converge to coherent labels while genuine motion boundaries survive
//! (compatibility decays with displacement difference rather than
//! forbidding it).

use sma_grid::{FlowField, Grid, Vec2};

/// Parameters of the relaxation process.
#[derive(Debug, Clone, Copy)]
pub struct RelaxationParams {
    /// Softmax temperature converting errors to initial probabilities
    /// (relative to the per-pixel minimum error).
    pub temperature: f64,
    /// Compatibility length scale in pixels: support decays as
    /// `exp(-|d_i - d_j|^2 / scale^2)`.
    pub compatibility_scale: f64,
    /// Update rounds (3–8 typical).
    pub iterations: usize,
}

impl Default for RelaxationParams {
    fn default() -> Self {
        Self {
            temperature: 1.0,
            compatibility_scale: 1.5,
            iterations: 5,
        }
    }
}

/// Per-pixel label set: the candidate displacements with their errors.
#[derive(Debug, Clone)]
pub struct LabelSet {
    /// Candidate displacements (same order at every pixel).
    pub labels: Vec<Vec2>,
    /// Per-pixel error of each label, `errors[pixel_index][label_index]`;
    /// `f64::INFINITY` marks unsolvable hypotheses.
    pub errors: Grid<Vec<f64>>,
}

impl LabelSet {
    /// Initial probabilities from errors: `exp(-(err - min) / T)`,
    /// normalized; pixels with no finite error get a uniform
    /// distribution.
    fn initial_probabilities(&self, temperature: f64) -> Grid<Vec<f64>> {
        self.errors.map(|errs| {
            let min = errs.iter().copied().fold(f64::INFINITY, f64::min);
            if !min.is_finite() {
                return vec![1.0 / errs.len() as f64; errs.len()];
            }
            let mut p: Vec<f64> = errs
                .iter()
                .map(|&e| (-(e - min) / temperature).exp())
                .collect();
            let s: f64 = p.iter().sum();
            for v in &mut p {
                *v /= s;
            }
            p
        })
    }
}

/// Run probabilistic relaxation and return the refined flow (each pixel's
/// maximum-probability label after the final round).
pub fn relax_labels(set: &LabelSet, params: RelaxationParams) -> FlowField {
    let (w, h) = set.errors.dims();
    let nl = set.labels.len();
    // Precompute pairwise label compatibilities.
    let mut compat = vec![0.0f64; nl * nl];
    for i in 0..nl {
        for j in 0..nl {
            let d = set.labels[i] - set.labels[j];
            let r2 = (d.magnitude() as f64).powi(2);
            compat[i * nl + j] =
                (-r2 / (params.compatibility_scale * params.compatibility_scale)).exp();
        }
    }

    let mut p = set.initial_probabilities(params.temperature);
    for _ in 0..params.iterations {
        let next = Grid::from_fn(w, h, |x, y| {
            // Neighborhood support for each label.
            let mut support = vec![0.0f64; nl];
            let mut neighbors = 0usize;
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let sx = x as isize + dx;
                    let sy = y as isize + dy;
                    if sx < 0 || sy < 0 || sx as usize >= w || sy as usize >= h {
                        continue;
                    }
                    neighbors += 1;
                    let q = p.get(sx as usize, sy as usize).expect("in range");
                    for (i, s) in support.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for (j, &qj) in q.iter().enumerate() {
                            acc += compat[i * nl + j] * qj;
                        }
                        *s += acc;
                    }
                }
            }
            let cur = p.get(x, y).expect("in range");
            if neighbors == 0 {
                return cur.clone();
            }
            // Standard relaxation update: p_i <- p_i * s_i / sum.
            let mut updated: Vec<f64> = cur
                .iter()
                .zip(support.iter())
                .map(|(&pi, &si)| pi * (si / neighbors as f64))
                .collect();
            let total: f64 = updated.iter().sum();
            if total > 0.0 {
                for v in &mut updated {
                    *v /= total;
                }
            }
            updated
        });
        p = next;
    }

    FlowField::from_fn(w, h, |x, y| {
        let probs = p.get(x, y).expect("in range");
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        set.labels[best]
    })
}

/// Build a [`LabelSet`] by evaluating every hypothesis at every pixel of
/// a region (the dense error volume the SMA search computes anyway).
///
/// # Errors
/// [`sma_fault::GridError::EmptyRegion`] if the region is empty for the
/// frame size.
pub fn label_set_from_frames(
    frames: &crate::motion::SmaFrames,
    cfg: &crate::config::SmaConfig,
    region: crate::sequential::Region,
) -> Result<LabelSet, sma_fault::SmaError> {
    use rayon::prelude::*;
    let (w, h) = frames.dims();
    let bounds = region.bounds_checked(w, h)?;
    let ns = cfg.nzs as isize;
    let labels: Vec<Vec2> = (-ns..=ns)
        .flat_map(|oy| (-ns..=ns).map(move |ox| Vec2::new(ox as f32, oy as f32)))
        .collect();
    let rows: Vec<Vec<Vec<f64>>> = (0..h)
        .into_par_iter()
        .map(|y| {
            (0..w)
                .map(|x| {
                    if !bounds.contains(x, y) {
                        return vec![f64::INFINITY; labels.len()];
                    }
                    labels
                        .iter()
                        .map(|l| {
                            crate::motion::evaluate_hypothesis(
                                frames,
                                cfg,
                                x,
                                y,
                                l.u as isize,
                                l.v as isize,
                            )
                            .map(|(_, e)| e)
                            .unwrap_or(f64::INFINITY)
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    Ok(LabelSet {
        labels,
        errors: Grid::from_vec(w, h, rows.into_iter().flatten().collect()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic label set: labels {(0,0), (1,0)}, with errors favoring
    /// (1, 0) everywhere except a few noisy pixels that prefer (0, 0).
    fn noisy_set(w: usize, h: usize, noisy: &[(usize, usize)]) -> LabelSet {
        let labels = vec![Vec2::ZERO, Vec2::new(1.0, 0.0)];
        let errors = Grid::from_fn(w, h, |x, y| {
            if noisy.contains(&(x, y)) {
                vec![0.1, 2.0] // prefers the wrong label, weakly
            } else {
                vec![2.0, 0.1]
            }
        });
        LabelSet { labels, errors }
    }

    #[test]
    fn relaxation_flips_isolated_outliers() {
        let set = noisy_set(9, 9, &[(4, 4)]);
        // The outlier's prior odds are exp(1.9) ~ 6.7:1 and each round
        // multiplies the odds by the ~1.4:1 neighborhood support ratio,
        // so ~8 rounds flip it.
        let params = RelaxationParams {
            iterations: 10,
            ..RelaxationParams::default()
        };
        let flow = relax_labels(&set, params);
        assert_eq!(
            flow.at(4, 4),
            Vec2::new(1.0, 0.0),
            "outlier must join its neighborhood"
        );
        assert_eq!(flow.at(1, 1), Vec2::new(1.0, 0.0));
    }

    #[test]
    fn relaxation_preserves_coherent_regions() {
        // Left half prefers (0,0), right half (1,0): a genuine motion
        // boundary, not noise — relaxation must keep both regions.
        let labels = vec![Vec2::ZERO, Vec2::new(1.0, 0.0)];
        let errors = Grid::from_fn(12, 12, |x, _| {
            if x < 6 {
                vec![0.1, 2.0]
            } else {
                vec![2.0, 0.1]
            }
        });
        let set = LabelSet { labels, errors };
        let flow = relax_labels(&set, RelaxationParams::default());
        assert_eq!(flow.at(2, 6), Vec2::ZERO);
        assert_eq!(flow.at(9, 6), Vec2::new(1.0, 0.0));
    }

    #[test]
    fn unsolvable_pixels_inherit_neighborhood() {
        let labels = vec![Vec2::ZERO, Vec2::new(1.0, 0.0)];
        let errors = Grid::from_fn(7, 7, |x, y| {
            if (x, y) == (3, 3) {
                vec![f64::INFINITY, f64::INFINITY]
            } else {
                vec![2.0, 0.1]
            }
        });
        let set = LabelSet { labels, errors };
        let flow = relax_labels(&set, RelaxationParams::default());
        assert_eq!(flow.at(3, 3), Vec2::new(1.0, 0.0));
    }

    #[test]
    fn end_to_end_on_translated_scene() {
        use crate::config::MotionModel;
        use crate::motion::SmaFrames;
        use crate::sequential::Region;
        use sma_grid::warp::translate;
        use sma_grid::BorderPolicy;

        let cfg = crate::config::SmaConfig::small_test(MotionModel::Continuous);
        let before = Grid::from_fn(26, 26, |x, y| {
            let (xf, yf) = (x as f32, y as f32);
            (xf * 0.45).sin() * 2.0 + (yf * 0.35).cos() * 1.5 + (xf * 0.12 + yf * 0.21).sin() * 3.0
        });
        let after = translate(&before, -1.0, 0.0, BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let region = Region::Interior { margin: 10 };
        let set = label_set_from_frames(&frames, &cfg, region).expect("label set");
        let flow = relax_labels(&set, RelaxationParams::default());
        // Interior pixels settle on the true label (1, 0).
        for y in 11..15 {
            for x in 11..15 {
                assert_eq!(flow.at(x, y), Vec2::new(1.0, 0.0), "at ({x},{y})");
            }
        }
    }

    #[test]
    fn probabilities_stay_normalized() {
        let set = noisy_set(6, 6, &[]);
        let p = set.initial_probabilities(1.0);
        for (_, probs) in p.enumerate() {
            let s: f64 = probs.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }
}
