//! Adaptive hierarchical motion estimation (§6: "adaptive hierarchical
//! non-square template and search windows").
//!
//! Like the ASA stereo substrate's coarse-to-fine disparity search, the
//! motion search can run on an image pyramid: estimate flow at a coarse
//! level with a small search window (where large motions shrink), double
//! and up-project, then refine with a small residual search at each finer
//! level. The effective search radius is `nzs * 2^(levels-1)` while the
//! per-level cost stays that of the small window — the "adaptive" part is
//! that fine levels only explore a residual neighborhood around the
//! coarse prediction.

use sma_fault::{GridError, SmaError};
use sma_grid::pyramid::{downsample, upsample_to};
use sma_grid::{BorderPolicy, FlowField, Grid, Vec2};

use crate::config::SmaConfig;
use crate::motion::SmaFrames;
use crate::sequential::Region;

/// Inputs at one pyramid level.
#[derive(Debug, Clone)]
struct LevelData {
    intensity_before: Grid<f32>,
    intensity_after: Grid<f32>,
    surface_before: Grid<f32>,
    surface_after: Grid<f32>,
}

impl LevelData {
    fn coarser(&self) -> LevelData {
        LevelData {
            intensity_before: downsample(&self.intensity_before),
            intensity_after: downsample(&self.intensity_after),
            surface_before: downsample(&self.surface_before),
            surface_after: downsample(&self.surface_after),
        }
    }
}

/// Coarse-to-fine SMA: `levels` pyramid levels, each tracked with `cfg`'s
/// (small) search window; coarse flow is doubled and used to pre-warp the
/// *after* frames at the next finer level, so each level only estimates
/// the residual motion. Returns the composed dense flow at full
/// resolution.
///
/// # Errors
/// [`SmaError::Config`] if `levels == 0`;
/// [`GridError::ShapeMismatch`] if the frame shapes differ;
/// [`GridError::EmptyRegion`] if the frames are too small for `cfg`'s
/// margins at the finest level.
pub fn track_hierarchical(
    intensity_before: &Grid<f32>,
    intensity_after: &Grid<f32>,
    surface_before: &Grid<f32>,
    surface_after: &Grid<f32>,
    cfg: &SmaConfig,
    levels: usize,
) -> Result<FlowField, SmaError> {
    if levels == 0 {
        return Err(SmaError::Config("need at least one pyramid level".into()));
    }
    let expected = intensity_before.dims();
    for got in [
        intensity_after.dims(),
        surface_before.dims(),
        surface_after.dims(),
    ] {
        if got != expected {
            return Err(GridError::ShapeMismatch { expected, got }.into());
        }
    }

    // Build the level stack (finest first).
    let mut stack = vec![LevelData {
        intensity_before: intensity_before.clone(),
        intensity_after: intensity_after.clone(),
        surface_before: surface_before.clone(),
        surface_after: surface_after.clone(),
    }];
    for _ in 1..levels {
        let prev = stack.last().expect("non-empty stack");
        let min_dim = prev
            .intensity_before
            .width()
            .min(prev.intensity_before.height());
        if min_dim / 2 < 2 * cfg.margin() + 4 {
            break; // adaptive depth: stop before margins eat the level
        }
        stack.push(prev.coarser());
    }

    // Coarse-to-fine.
    let coarsest = stack.len() - 1;
    let (cw, ch) = stack[coarsest].intensity_before.dims();
    let mut flow = FlowField::zeros(cw, ch);
    for k in (0..stack.len()).rev() {
        let level = &stack[k];
        let (w, h) = level.intensity_before.dims();
        if k != coarsest {
            // Up-project: resample and double the coarse flow.
            let up_u = upsample_to(&flow.u_plane(), w, h);
            let up_v = upsample_to(&flow.v_plane(), w, h);
            flow = FlowField::from_fn(w, h, |x, y| {
                Vec2::new(2.0 * up_u.at(x, y), 2.0 * up_v.at(x, y))
            });
        }
        // Adaptive search: instead of warping frames (which smears the
        // after-frame geometry at staircase boundaries), each pixel's
        // hypothesis window is re-centered on the rounded coarse
        // prediction — the "adaptive search window" of §6. The frames at
        // this level are untouched originals.
        let frames = SmaFrames::prepare(
            &level.intensity_before,
            &level.intensity_after,
            &level.surface_before,
            &level.surface_after,
            cfg,
        )?;
        let result = track_with_prior(&frames, cfg, &flow)?;
        let residual = filled_flow(&result);
        flow = residual; // track_with_prior returns absolute displacements
                         // Smooth the composed field: per-level estimates are quantized to
                         // the integer hypothesis grid, and the resulting staircase would
                         // otherwise create warp artifacts at the next finer level.
        flow = smooth_flow(&flow);
    }
    Ok(flow)
}

/// Binomial smoothing of both flow components.
fn smooth_flow(flow: &FlowField) -> FlowField {
    let u = sma_grid::filter::binomial_smooth(&flow.u_plane(), BorderPolicy::Clamp);
    let v = sma_grid::filter::binomial_smooth(&flow.v_plane(), BorderPolicy::Clamp);
    FlowField::from_fn(flow.width(), flow.height(), |x, y| {
        Vec2::new(u.at(x, y), v.at(x, y))
    })
}

/// Track every interior pixel with the hypothesis window re-centered on
/// the rounded per-pixel prior — the coarse-to-fine "adaptive search".
/// Returned displacements are absolute (prior + residual). Pixels whose
/// center was quarantined (NaN/Inf in the input) are left invalid so the
/// [`filled_flow`] median covers them instead of a repaired-data fit.
fn track_with_prior(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    prior: &FlowField,
) -> Result<crate::sequential::SmaResult, SmaError> {
    use crate::motion::{evaluate_hypothesis, MotionEstimate};
    use rayon::prelude::*;
    let (w, h) = frames.dims();
    let margin = cfg.margin();
    let bounds = Region::Interior { margin }.bounds_checked(w, h)?;
    let ns = cfg.nzs as isize;
    let rows: Vec<(usize, Vec<MotionEstimate>)> = (bounds.y0..=bounds.y1)
        .into_par_iter()
        .map(|y| {
            let row = (bounds.x0..=bounds.x1)
                .map(|x| {
                    if !frames.validity.is_valid(x, y) {
                        return MotionEstimate::invalid();
                    }
                    let p = prior.at(x, y);
                    let (cx, cy) = (p.u.round() as isize, p.v.round() as isize);
                    let mut best = MotionEstimate::invalid();
                    for oy in cy - ns..=cy + ns {
                        for ox in cx - ns..=cx + ns {
                            if let Some((affine, error)) =
                                evaluate_hypothesis(frames, cfg, x, y, ox, oy)
                            {
                                if error < best.error {
                                    best = MotionEstimate {
                                        displacement: Vec2::new(affine.x0 as f32, affine.y0 as f32),
                                        affine,
                                        error,
                                        valid: true,
                                    };
                                }
                            }
                        }
                    }
                    best
                })
                .collect();
            (y, row)
        })
        .collect();
    let mut estimates = sma_grid::Grid::filled(w, h, MotionEstimate::invalid());
    for (y, row) in rows {
        for (i, est) in row.into_iter().enumerate() {
            estimates.set(bounds.x0 + i, y, est);
        }
    }
    Ok(crate::sequential::SmaResult {
        estimates,
        region: bounds,
    })
}

/// The result's flow with untracked/invalid pixels replaced by the
/// component-wise median of the valid estimates (zero if none).
fn filled_flow(result: &crate::sequential::SmaResult) -> FlowField {
    let mut us: Vec<f32> = Vec::new();
    let mut vs: Vec<f32> = Vec::new();
    for (x, y) in result.region.pixels() {
        let e = result.estimates.at(x, y);
        if e.valid {
            us.push(e.displacement.u);
            vs.push(e.displacement.v);
        }
    }
    let median = |v: &mut Vec<f32>| -> f32 {
        if v.is_empty() {
            return 0.0;
        }
        let mid = v.len() / 2;
        v.sort_by(|a, b| a.total_cmp(b));
        v[mid]
    };
    let fallback = Vec2::new(median(&mut us), median(&mut vs));
    let (w, h) = result.estimates.dims();
    FlowField::from_fn(w, h, |x, y| {
        let e = result.estimates.at(x, y);
        if e.valid {
            e.displacement
        } else {
            fallback
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MotionModel;
    use sma_grid::warp::translate;

    fn wavy(w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| {
            let (xf, yf) = (x as f32, y as f32);
            (xf * 0.23).sin() * 2.0 + (yf * 0.17).cos() * 1.5 + (xf * 0.06 + yf * 0.09).sin() * 3.0
        })
    }

    #[test]
    fn single_level_matches_flat_tracking() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = wavy(40, 40);
        let after = translate(&before, -1.0, 0.0, BorderPolicy::Clamp);
        let flow = track_hierarchical(&before, &after, &before, &after, &cfg, 1).expect("track");
        // Interior must report (1, 0).
        let m = cfg.margin() + 2;
        for y in m..40 - m {
            for x in m..40 - m {
                let v = flow.at(x, y);
                assert!(
                    (v.u - 1.0).abs() < 0.6 && v.v.abs() < 0.6,
                    "({x},{y}): {v:?}"
                );
            }
        }
    }

    #[test]
    fn hierarchy_recovers_motion_beyond_flat_search() {
        // A 5-pixel shift with a +-2 search: impossible flat, easy with
        // 2-3 pyramid levels (5/4 = 1.25 px at the coarsest).
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = wavy(72, 72);
        let after = translate(&before, -5.0, 0.0, BorderPolicy::Clamp);

        let flat = track_hierarchical(&before, &after, &before, &after, &cfg, 1).expect("flat");
        let hier = track_hierarchical(&before, &after, &before, &after, &cfg, 3).expect("hier");

        let score = |f: &FlowField| {
            let mut err = 0.0f32;
            let mut n = 0;
            for y in 24..48 {
                for x in 24..48 {
                    err += (f.at(x, y) - Vec2::new(5.0, 0.0)).magnitude();
                    n += 1;
                }
            }
            err / n as f32
        };
        let e_flat = score(&flat);
        let e_hier = score(&hier);
        assert!(
            e_hier < 0.5 * e_flat,
            "hierarchical error {e_hier} should crush flat {e_flat}"
        );
        assert!(
            e_hier < 1.0,
            "hierarchical should land within a pixel, got {e_hier}"
        );
    }

    #[test]
    fn adaptive_depth_stops_on_small_frames() {
        // Requesting many levels on a small frame must not panic — the
        // stack depth adapts.
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = wavy(36, 36);
        let after = translate(&before, -1.0, -1.0, BorderPolicy::Clamp);
        let flow = track_hierarchical(&before, &after, &before, &after, &cfg, 6).expect("track");
        assert_eq!(flow.dims(), (36, 36));
    }
}
