//! Robust estimation of the motion parameters (§6: "improving the
//! accuracy of the estimated motion field by using robust estimation").
//!
//! The baseline Step 2 is ordinary least squares over the template's
//! residuals — a single occluded or noise-corrupted template pixel pulls
//! the six parameters arbitrarily far. Here the normal equations are
//! re-weighted iteratively with **Huber weights** (IRLS): residuals
//! below the scale `k` keep weight 1, larger ones are down-weighted by
//! `k / |r|`. The scale is set per iteration from the median absolute
//! residual (a robust sigma estimate).

use crate::affine::LocalAffine;
use crate::config::{MotionModel, SmaConfig};
use crate::motion::{solve_samples, MotionEstimate, SmaFrames, TemplateSample};
use crate::template_map::semifluid_correspondence;
use sma_grid::Vec2;
use sma_linalg::gauss::solve6;

/// Tuning constants of the robust solve.
#[derive(Debug, Clone, Copy)]
pub struct RobustParams {
    /// IRLS iterations after the initial LSQ solve (2–5 typical).
    pub iterations: usize,
    /// Huber threshold as a multiple of the robust sigma (1.345 is the
    /// classical 95%-efficiency choice).
    pub huber_k: f64,
}

impl Default for RobustParams {
    fn default() -> Self {
        Self {
            iterations: 3,
            huber_k: 1.345,
        }
    }
}

/// Weighted Step-2 solve: accumulate `w * row * row^T` and return the
/// solution plus the *unweighted* error (so errors stay comparable with
/// the plain path).
fn solve_weighted(samples: &[TemplateSample], weights: &[f64]) -> Option<([f64; 6], f64)> {
    let mut ata = [0.0f64; 36];
    let mut atb = [0.0f64; 6];
    for (s, &w) in samples.iter().zip(weights.iter()) {
        let r1 = [-s.zx * s.inv_e, 0.0, -s.zy * s.inv_e, 0.0, s.inv_e, 0.0];
        let b1 = (s.gx_obs - s.zx) * s.inv_e;
        let r2 = [0.0, -s.zx * s.inv_g, 0.0, -s.zy * s.inv_g, 0.0, s.inv_g];
        let b2 = (s.gy_obs - s.zy) * s.inv_g;
        for (row, b) in [(r1, b1), (r2, b2)] {
            for i in 0..6 {
                if row[i] == 0.0 {
                    continue;
                }
                for j in 0..6 {
                    ata[i * 6 + j] += w * row[i] * row[j];
                }
                atb[i] += w * row[i] * b;
            }
        }
    }
    let mut solution = atb;
    solve6(&mut ata, &mut solution).ok()?;
    let mut error = 0.0;
    for s in samples {
        let (e1, e2) = residuals(s, &solution);
        error += e1 * e1 + e2 * e2;
    }
    Some((solution, error))
}

fn residuals(s: &TemplateSample, p: &[f64; 6]) -> (f64, f64) {
    let [ai, bi, aj, bj, ak, bk] = *p;
    let pred_x = s.zx + ak - (ai * s.zx + aj * s.zy);
    let pred_y = s.zy + bk - (bi * s.zx + bj * s.zy);
    ((pred_x - s.gx_obs) * s.inv_e, (pred_y - s.gy_obs) * s.inv_g)
}

/// Median of a slice (sorts in place; used on small residual vectors).
fn median(v: &mut [f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mid = v.len() / 2;
    v.sort_by(|a, b| a.total_cmp(b));
    v[mid]
}

/// IRLS solve over gathered samples: plain LSQ start, then `iterations`
/// Huber re-weightings.
pub fn solve_samples_robust(
    samples: &[TemplateSample],
    params: RobustParams,
) -> Option<([f64; 6], f64)> {
    let (mut solution, mut error) = solve_samples(samples)?;
    let mut weights = vec![1.0f64; samples.len()];
    for _ in 0..params.iterations {
        // Robust scale: median absolute residual (per-sample magnitude).
        let mut mags: Vec<f64> = samples
            .iter()
            .map(|s| {
                let (e1, e2) = residuals(s, &solution);
                (e1 * e1 + e2 * e2).sqrt()
            })
            .collect();
        let sigma = (median(&mut mags) / 0.6745).max(1e-12);
        let k = params.huber_k * sigma;
        for (w, s) in weights.iter_mut().zip(samples.iter()) {
            let (e1, e2) = residuals(s, &solution);
            let r = (e1 * e1 + e2 * e2).sqrt();
            *w = if r <= k { 1.0 } else { k / r };
        }
        let (next, next_err) = solve_weighted(samples, &weights)?;
        solution = next;
        error = next_err;
    }
    Some((solution, error))
}

/// Evaluate one hypothesis with the robust Step 2 — the IRLS analog of
/// [`crate::motion::evaluate_hypothesis`].
pub fn evaluate_hypothesis_robust(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    params: RobustParams,
    x: usize,
    y: usize,
    ox: isize,
    oy: isize,
) -> Option<(LocalAffine, f64)> {
    let nt = cfg.nzt as isize;
    let mut samples = Vec::with_capacity(cfg.template_window().area());
    for dv in -nt..=nt {
        for du in -nt..=nt {
            let px = x as isize + du;
            let py = y as isize + dv;
            let before = frames.geo_before.at_clamped(px, py);
            let (qx, qy) = match cfg.model {
                MotionModel::Continuous => (px + ox, py + oy),
                MotionModel::SemiFluid => {
                    semifluid_correspondence(
                        &frames.disc_before,
                        &frames.disc_after,
                        px,
                        py,
                        ox,
                        oy,
                        cfg.nss,
                        cfg.nst,
                    )
                    .0
                }
            };
            let after = frames.geo_after.at_clamped(qx, qy);
            samples.push(TemplateSample::from_geometry(before, after));
        }
    }
    let (p, error) = solve_samples_robust(&samples, params)?;
    Some((
        LocalAffine::from_params(&p, ox as f64, oy as f64, 0.0),
        error,
    ))
}

/// Track one pixel with the robust Step 2 (hypothesis search unchanged).
pub fn track_pixel_robust(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    params: RobustParams,
    x: usize,
    y: usize,
) -> MotionEstimate {
    let ns = cfg.nzs as isize;
    let mut best = MotionEstimate::invalid();
    for oy in -ns..=ns {
        for ox in -ns..=ns {
            if let Some((affine, error)) =
                evaluate_hypothesis_robust(frames, cfg, params, x, y, ox, oy)
            {
                if error < best.error {
                    best = MotionEstimate {
                        displacement: Vec2::new(ox as f32, oy as f32),
                        affine,
                        error,
                        valid: true,
                    };
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::evaluate_hypothesis;
    use sma_grid::warp::translate;
    use sma_grid::{BorderPolicy, Grid};

    fn wavy(w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| {
            let (xf, yf) = (x as f32, y as f32);
            (xf * 0.45).sin() * 2.0 + (yf * 0.35).cos() * 1.5 + (xf * 0.12 + yf * 0.21).sin() * 3.0
        })
    }

    /// With clean data, robust and plain solutions coincide (no residual
    /// exceeds the Huber threshold).
    #[test]
    fn robust_matches_plain_on_clean_data() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = wavy(30, 30);
        let after = translate(&before, -1.0, 0.0, BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let plain = evaluate_hypothesis(&frames, &cfg, 15, 15, 1, 0).unwrap();
        let robust = track_pixel_robust(&frames, &cfg, RobustParams::default(), 15, 15);
        assert!(robust.valid);
        assert_eq!(robust.displacement, Vec2::new(1.0, 0.0));
        for (a, b) in plain.0.params().iter().zip(robust.affine.params().iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    /// With corrupted after-frame pixels, the robust tilt estimate stays
    /// near truth while plain LSQ drifts: robust error must be smaller.
    #[test]
    fn robust_resists_outliers() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = wavy(30, 30);
        // Truth: zero motion, but a block of the after-surface is slammed
        // (simulating an occluding new cloud).
        let mut after = before.clone();
        for y in 10..13 {
            for x in 10..13 {
                after.set(x, y, after.at(x, y) + 25.0);
            }
        }
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let plain = evaluate_hypothesis(&frames, &cfg, 15, 15, 0, 0).unwrap();
        let robust = track_pixel_robust(&frames, &cfg, RobustParams::default(), 15, 15);

        // Truth parameters are ~zero (no motion outside the corruption).
        let plain_mag: f64 = plain.0.params().iter().map(|p| p.abs()).sum();
        let robust_mag: f64 = robust.affine.params().iter().map(|p| p.abs()).sum();
        assert!(
            robust_mag < plain_mag,
            "robust |params| {robust_mag} should beat plain {plain_mag}"
        );
    }

    #[test]
    fn robust_handles_degenerate_like_plain() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let flat = Grid::filled(30, 30, 2.0f32);
        let frames = SmaFrames::prepare(&flat, &flat, &flat, &flat, &cfg).expect("prepare");
        let est = track_pixel_robust(&frames, &cfg, RobustParams::default(), 15, 15);
        assert!(!est.valid);
    }

    #[test]
    fn median_helper() {
        let mut v = vec![5.0, 1.0, 3.0];
        assert_eq!(median(&mut v), 3.0);
        let mut e: Vec<f64> = vec![];
        assert_eq!(median(&mut e), 0.0);
    }
}
