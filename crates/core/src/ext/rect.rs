//! Non-square (rectangular) template and search windows.
//!
//! §2.2: "Although the current implementation uses square template and
//! search areas, rectangular areas can also be used and may lead to
//! improved motion correspondence results." Cloud motion is often
//! anisotropic (shear lines, jet streaks); matching an elongated window
//! to the structure raises the information content per evaluated term.

use sma_grid::Vec2;

use crate::affine::LocalAffine;
use crate::config::{MotionModel, SmaConfig};
use crate::motion::{solve_samples, MotionEstimate, SmaFrames, TemplateSample};
use crate::template_map::semifluid_correspondence;

/// A rectangular half-width pair: the window spans `(2nx+1) x (2ny+1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RectWindow {
    /// Half-width along x.
    pub nx: usize,
    /// Half-width along y.
    pub ny: usize,
}

impl RectWindow {
    /// A square window (for equivalence with the base implementation).
    pub const fn square(n: usize) -> Self {
        Self { nx: n, ny: n }
    }

    /// Window area `(2nx+1)(2ny+1)`.
    pub const fn area(&self) -> usize {
        (2 * self.nx + 1) * (2 * self.ny + 1)
    }
}

/// Rectangular-window SMA configuration: the base `cfg` supplies the
/// model, surface-fit and semi-fluid parameters; `template` and `search`
/// override the z-template and z-search shapes.
#[derive(Debug, Clone, Copy)]
pub struct RectConfig {
    /// Base configuration (model, nz, nss, nst are used).
    pub base: SmaConfig,
    /// Rectangular z-template.
    pub template: RectWindow,
    /// Rectangular z-search.
    pub search: RectWindow,
}

impl RectConfig {
    /// Border margin needed for tracked pixels.
    pub fn margin(&self) -> usize {
        let semi = match self.base.model {
            MotionModel::Continuous => 0,
            MotionModel::SemiFluid => self.base.nss + self.base.nst,
        };
        self.template.nx.max(self.template.ny)
            + self.search.nx.max(self.search.ny)
            + semi
            + self.base.nz
    }
}

/// Evaluate one hypothesis with rectangular windows (the rectangular
/// generalization of [`crate::motion::evaluate_hypothesis`]; identical
/// when both windows are square with the base half-widths).
pub fn evaluate_hypothesis_rect(
    frames: &SmaFrames,
    cfg: &RectConfig,
    x: usize,
    y: usize,
    ox: isize,
    oy: isize,
) -> Option<(LocalAffine, f64)> {
    let ntx = cfg.template.nx as isize;
    let nty = cfg.template.ny as isize;
    let mut samples: Vec<TemplateSample> = Vec::with_capacity(cfg.template.area());
    for dv in -nty..=nty {
        for du in -ntx..=ntx {
            let px = x as isize + du;
            let py = y as isize + dv;
            let before = frames.geo_before.at_clamped(px, py);
            let (qx, qy) = match cfg.base.model {
                MotionModel::Continuous => (px + ox, py + oy),
                MotionModel::SemiFluid => {
                    semifluid_correspondence(
                        &frames.disc_before,
                        &frames.disc_after,
                        px,
                        py,
                        ox,
                        oy,
                        cfg.base.nss,
                        cfg.base.nst,
                    )
                    .0
                }
            };
            let after = frames.geo_after.at_clamped(qx, qy);
            samples.push(TemplateSample::from_geometry(before, after));
        }
    }
    let (solution, error) = solve_samples(&samples)?;
    Some((
        LocalAffine::from_params(&solution, ox as f64, oy as f64, 0.0),
        error,
    ))
}

/// Track one pixel over the rectangular search area.
pub fn track_pixel_rect(
    frames: &SmaFrames,
    cfg: &RectConfig,
    x: usize,
    y: usize,
) -> MotionEstimate {
    let nsx = cfg.search.nx as isize;
    let nsy = cfg.search.ny as isize;
    let mut best = MotionEstimate::invalid();
    for oy in -nsy..=nsy {
        for ox in -nsx..=nsx {
            if let Some((affine, error)) = evaluate_hypothesis_rect(frames, cfg, x, y, ox, oy) {
                if error < best.error {
                    best = MotionEstimate {
                        displacement: Vec2::new(ox as f32, oy as f32),
                        affine,
                        error,
                        valid: true,
                    };
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::track_pixel;
    use sma_grid::warp::translate;
    use sma_grid::{BorderPolicy, Grid};

    fn wavy(w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| {
            let (xf, yf) = (x as f32, y as f32);
            (xf * 0.45).sin() * 2.0 + (yf * 0.35).cos() * 1.5 + (xf * 0.12 + yf * 0.21).sin() * 3.0
        })
    }

    #[test]
    fn square_rect_matches_base_continuous() {
        let base = SmaConfig::small_test(MotionModel::Continuous);
        let rect = RectConfig {
            base,
            template: RectWindow::square(base.nzt),
            search: RectWindow::square(base.nzs),
        };
        let before = wavy(30, 30);
        let after = translate(&before, -1.0, 1.0, BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &base).expect("prepare");
        let a = track_pixel(&frames, &base, 15, 15);
        let b = track_pixel_rect(&frames, &rect, 15, 15);
        assert_eq!(a.displacement, b.displacement);
        assert!((a.error - b.error).abs() < 1e-12);
        assert_eq!(a.affine.params(), b.affine.params());
    }

    #[test]
    fn wide_search_finds_wide_motion() {
        // Motion of +4 px in x exceeds a square 2-search but fits a 5x1
        // rectangular search of the same area class.
        let base = SmaConfig::small_test(MotionModel::Continuous);
        let rect = RectConfig {
            base,
            template: RectWindow::square(base.nzt),
            search: RectWindow { nx: 5, ny: 1 },
        };
        let before = wavy(36, 36);
        let after = translate(&before, -4.0, 0.0, BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &base).expect("prepare");
        let est = track_pixel_rect(&frames, &rect, 18, 18);
        assert!(est.valid);
        assert_eq!(est.displacement, Vec2::new(4.0, 0.0));
        // The square search cannot reach it.
        let square = track_pixel(&frames, &base, 18, 18);
        assert_ne!(square.displacement, Vec2::new(4.0, 0.0));
    }

    #[test]
    fn rect_margin_accounts_for_both_axes() {
        let base = SmaConfig::small_test(MotionModel::SemiFluid);
        let cfg = RectConfig {
            base,
            template: RectWindow { nx: 6, ny: 2 },
            search: RectWindow { nx: 1, ny: 4 },
        };
        // max(6,2) + max(1,4) + (1+2) + 2 = 6 + 4 + 3 + 2 = 15.
        assert_eq!(cfg.margin(), 15);
    }

    #[test]
    fn elongated_template_tracks_anisotropic_texture() {
        // Texture dominated by x-variation (plus a touch of y so the
        // 6-parameter system stays full rank): a wide flat template
        // captures the structure that matters for x-motion.
        let before = Grid::from_fn(40, 40, |x, y| {
            (x as f32 * 0.5).sin() * 4.0 + (y as f32 * 0.37).cos() * 0.4
        });
        let after = translate(&before, -2.0, 0.0, BorderPolicy::Clamp);
        let base = SmaConfig::small_test(MotionModel::Continuous);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &base).expect("prepare");
        let wide = RectConfig {
            base,
            template: RectWindow { nx: 6, ny: 1 },
            search: RectWindow { nx: 2, ny: 2 },
        };
        let est = track_pixel_rect(&frames, &wide, 20, 20);
        assert!(est.valid);
        assert_eq!(est.displacement.u, 2.0);
    }

    #[test]
    fn rect_window_area() {
        assert_eq!(RectWindow::square(2).area(), 25);
        assert_eq!(RectWindow { nx: 3, ny: 1 }.area(), 21);
    }
}
