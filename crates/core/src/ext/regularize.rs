//! Motion-field regularization and post-processing (§6: "relaxation
//! labeling or regularization, and post processing the motion field").
//!
//! Two classic, shape-preserving smoothers for dense flow fields:
//!
//! * [`vector_median_filter`] — each vector is replaced by the window
//!   member minimizing the summed L2 distance to all others (the vector
//!   median), which removes impulse outliers without averaging across
//!   motion boundaries;
//! * [`weighted_smooth`] — confidence-weighted local averaging (inverse
//!   hypothesis error as confidence), a one-shot Jacobi step of
//!   membrane regularization that respects untrackable pixels;
//! * [`fill_invalid`] — propagate estimates into untrackable (invalid)
//!   pixels from their valid neighbors, the usual post-pass before
//!   visualizing a dense field.

use sma_grid::{FlowField, Grid, Vec2};

/// Vector median filter over `(2n+1)^2` windows. Border windows clip.
pub fn vector_median_filter(flow: &FlowField, n: usize) -> FlowField {
    let (w, h) = flow.dims();
    let ni = n as isize;
    FlowField::from_fn(w, h, |x, y| {
        let mut members: Vec<Vec2> = Vec::with_capacity((2 * n + 1) * (2 * n + 1));
        for dy in -ni..=ni {
            for dx in -ni..=ni {
                let sx = x as isize + dx;
                let sy = y as isize + dy;
                if sx >= 0 && sy >= 0 && (sx as usize) < w && (sy as usize) < h {
                    members.push(flow.at(sx as usize, sy as usize));
                }
            }
        }
        // The vector median: member with least total distance to others.
        let mut best = members[0];
        let mut best_cost = f32::INFINITY;
        for &cand in &members {
            let cost: f32 = members.iter().map(|m| (cand - *m).magnitude()).sum();
            if cost < best_cost {
                best_cost = cost;
                best = cand;
            }
        }
        best
    })
}

/// Confidence-weighted smoothing: one relaxation step of
/// `v <- (1 - lambda) v + lambda * weighted-mean(neighbors)`, where each
/// neighbor's weight is its confidence. Pixels with zero confidence
/// contribute nothing; a pixel with no confident neighbors keeps its
/// value.
///
/// # Panics
/// Panics if shapes differ or `lambda` is outside `[0, 1]`.
pub fn weighted_smooth(flow: &FlowField, confidence: &Grid<f32>, lambda: f32) -> FlowField {
    assert_eq!(flow.dims(), confidence.dims(), "confidence shape mismatch");
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
    let (w, h) = flow.dims();
    FlowField::from_fn(w, h, |x, y| {
        let mut sum = Vec2::ZERO;
        let mut wsum = 0.0f32;
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let sx = x as isize + dx;
                let sy = y as isize + dy;
                if sx >= 0 && sy >= 0 && (sx as usize) < w && (sy as usize) < h {
                    let c = confidence.at(sx as usize, sy as usize);
                    sum = sum + flow.at(sx as usize, sy as usize) * c;
                    wsum += c;
                }
            }
        }
        let v = flow.at(x, y);
        if wsum <= 0.0 {
            v
        } else {
            let mean = sum * (1.0 / wsum);
            v * (1.0 - lambda) + mean * lambda
        }
    })
}

/// Confidence plane from per-pixel hypothesis errors: `1 / (1 + err)`
/// for valid pixels, 0 for invalid ones.
pub fn confidence_from_errors(errors: &Grid<f64>, valid: &Grid<bool>) -> Grid<f32> {
    errors.zip_map(
        valid,
        |&e, &ok| if ok { (1.0 / (1.0 + e)) as f32 } else { 0.0 },
    )
}

/// Fill invalid pixels by iterated neighborhood averaging of valid ones
/// (`passes` rounds; each round marks filled pixels valid). Isolated
/// invalid islands fill from their rims inward.
pub fn fill_invalid(
    flow: &FlowField,
    valid: &Grid<bool>,
    passes: usize,
) -> (FlowField, Grid<bool>) {
    assert_eq!(flow.dims(), valid.dims(), "validity shape mismatch");
    let mut f = flow.clone();
    let mut ok = valid.clone();
    // Double-buffered relaxation: the back buffers are allocated once
    // and refreshed from the fronts each pass (a memcpy, no per-pass
    // clone), written only at newly-filled pixels, then swapped in.
    let mut next_f = flow.clone();
    let mut next_ok = valid.clone();
    for _ in 0..passes {
        next_f.copy_from(&f);
        next_ok.as_mut_slice().copy_from_slice(ok.as_slice());
        let changed = if sma_grid::simd::enabled() {
            fill_pass_lanes(&f, &ok, &mut next_f, &mut next_ok)
        } else {
            fill_pass_scalar(&f, &ok, &mut next_f, &mut next_ok)
        };
        std::mem::swap(&mut f, &mut next_f);
        std::mem::swap(&mut ok, &mut next_ok);
        if !changed {
            break;
        }
    }
    (f, ok)
}

/// One relaxation pass of [`fill_invalid`], scalar sweep.
fn fill_pass_scalar(
    f: &FlowField,
    ok: &Grid<bool>,
    next_f: &mut FlowField,
    next_ok: &mut Grid<bool>,
) -> bool {
    let (w, h) = f.dims();
    let mut changed = false;
    for y in 0..h {
        for x in 0..w {
            if ok.at(x, y) {
                continue;
            }
            let mut sum = Vec2::ZERO;
            let mut n = 0u32;
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let sx = x as isize + dx;
                    let sy = y as isize + dy;
                    if sx >= 0
                        && sy >= 0
                        && (sx as usize) < w
                        && (sy as usize) < h
                        && ok.at(sx as usize, sy as usize)
                    {
                        sum = sum + f.at(sx as usize, sy as usize);
                        n += 1;
                    }
                }
            }
            if n > 0 {
                next_f.set(x, y, sum * (1.0 / n as f32));
                next_ok.set(x, y, true);
                changed = true;
            }
        }
    }
    changed
}

/// One relaxation pass of [`fill_invalid`], lane-chunked: each row's
/// invalid pixels are gathered and processed eight at a time, with the
/// 3x3 neighbor visit order (`dy` outer, `dx` inner) preserved per lane
/// so every pixel accumulates its neighbors in the exact scalar order —
/// the pass is bit-identical to [`fill_pass_scalar`].
fn fill_pass_lanes(
    f: &FlowField,
    ok: &Grid<bool>,
    next_f: &mut FlowField,
    next_ok: &mut Grid<bool>,
) -> bool {
    const L: usize = sma_grid::simd::LANES;
    let (w, h) = f.dims();
    let mut changed = false;
    let mut xs: Vec<usize> = Vec::with_capacity(w);
    for y in 0..h {
        xs.clear();
        xs.extend((0..w).filter(|&x| !ok.at(x, y)));
        if xs.is_empty() {
            continue;
        }
        sma_grid::simd::note_row(xs.len());
        for chunk in xs.chunks(L) {
            let mut sum = [Vec2::ZERO; L];
            let mut n = [0u32; L];
            for dy in -1isize..=1 {
                let sy = y as isize + dy;
                if sy < 0 || sy as usize >= h {
                    continue;
                }
                let sy = sy as usize;
                for dx in -1isize..=1 {
                    for (l, &x) in chunk.iter().enumerate() {
                        let sx = x as isize + dx;
                        if sx >= 0 && (sx as usize) < w && ok.at(sx as usize, sy) {
                            sum[l] = sum[l] + f.at(sx as usize, sy);
                            n[l] += 1;
                        }
                    }
                }
            }
            for (l, &x) in chunk.iter().enumerate() {
                if n[l] > 0 {
                    next_f.set(x, y, sum[l] * (1.0 / n[l] as f32));
                    next_ok.set(x, y, true);
                    changed = true;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_removes_impulse_outlier() {
        let mut flow = FlowField::uniform(9, 9, Vec2::new(1.0, 0.0));
        flow.set(4, 4, Vec2::new(-10.0, 10.0)); // impulse
        let out = vector_median_filter(&flow, 1);
        assert_eq!(out.at(4, 4), Vec2::new(1.0, 0.0));
        // And the uniform background is untouched.
        assert_eq!(out.at(1, 1), Vec2::new(1.0, 0.0));
    }

    #[test]
    fn median_preserves_motion_boundary() {
        // Two half-planes moving oppositely: the median must not blur
        // across the boundary (unlike a mean filter).
        let flow = FlowField::from_fn(10, 10, |x, _| {
            if x < 5 {
                Vec2::new(1.0, 0.0)
            } else {
                Vec2::new(-1.0, 0.0)
            }
        });
        let out = vector_median_filter(&flow, 1);
        for y in 0..10 {
            assert_eq!(out.at(3, y), Vec2::new(1.0, 0.0));
            assert_eq!(out.at(6, y), Vec2::new(-1.0, 0.0));
        }
    }

    #[test]
    fn smoothing_is_identity_at_lambda_zero() {
        let flow = FlowField::from_fn(6, 6, |x, y| Vec2::new(x as f32, y as f32));
        let conf = Grid::filled(6, 6, 1.0f32);
        let out = weighted_smooth(&flow, &conf, 0.0);
        for ((x, y), v) in out.enumerate() {
            assert_eq!(v, flow.at(x, y));
        }
    }

    #[test]
    fn smoothing_pulls_outlier_toward_neighbors() {
        let mut flow = FlowField::uniform(7, 7, Vec2::new(2.0, 0.0));
        flow.set(3, 3, Vec2::new(8.0, 0.0));
        let conf = Grid::filled(7, 7, 1.0f32);
        let out = weighted_smooth(&flow, &conf, 0.5);
        assert!(out.at(3, 3).u < 6.0);
        assert!(out.at(3, 3).u > 2.0);
    }

    #[test]
    fn zero_confidence_neighbors_are_ignored() {
        let flow = FlowField::from_fn(5, 5, |x, _| {
            if x == 2 {
                Vec2::new(1.0, 0.0)
            } else {
                Vec2::new(100.0, 0.0)
            }
        });
        let conf = Grid::from_fn(5, 5, |x, _| if x == 2 { 1.0f32 } else { 0.0 });
        let out = weighted_smooth(&flow, &conf, 1.0);
        // Pixel (2, 2)'s confident neighbors are only (2, 1) and (2, 3).
        assert_eq!(out.at(2, 2), Vec2::new(1.0, 0.0));
    }

    #[test]
    fn confidence_plane_formula() {
        let err = Grid::from_vec(2, 1, vec![0.0f64, 3.0]);
        let ok = Grid::from_vec(2, 1, vec![true, false]);
        let c = confidence_from_errors(&err, &ok);
        assert_eq!(c.at(0, 0), 1.0);
        assert_eq!(c.at(1, 0), 0.0);
    }

    #[test]
    fn fill_invalid_propagates_inward() {
        let flow = FlowField::from_fn(7, 7, |x, y| {
            if x == 3 && y == 3 {
                Vec2::ZERO
            } else {
                Vec2::new(1.0, 1.0)
            }
        });
        let valid = Grid::from_fn(7, 7, |x, y| !(x == 3 && y == 3));
        let (filled, ok) = fill_invalid(&flow, &valid, 2);
        assert!(ok.at(3, 3));
        assert!((filled.at(3, 3) - Vec2::new(1.0, 1.0)).magnitude() < 1e-6);
    }

    /// The pre-double-buffering `fill_invalid`: fresh clones every
    /// pass. Kept as the oracle for the buffer-swap rewrite.
    fn fill_invalid_reference(
        flow: &FlowField,
        valid: &Grid<bool>,
        passes: usize,
    ) -> (FlowField, Grid<bool>) {
        let (w, h) = flow.dims();
        let mut f = flow.clone();
        let mut ok = valid.clone();
        for _ in 0..passes {
            let mut next_f = f.clone();
            let mut next_ok = ok.clone();
            let mut changed = false;
            for y in 0..h {
                for x in 0..w {
                    if ok.at(x, y) {
                        continue;
                    }
                    let mut sum = Vec2::ZERO;
                    let mut n = 0u32;
                    for dy in -1isize..=1 {
                        for dx in -1isize..=1 {
                            let sx = x as isize + dx;
                            let sy = y as isize + dy;
                            if sx >= 0
                                && sy >= 0
                                && (sx as usize) < w
                                && (sy as usize) < h
                                && ok.at(sx as usize, sy as usize)
                            {
                                sum = sum + f.at(sx as usize, sy as usize);
                                n += 1;
                            }
                        }
                    }
                    if n > 0 {
                        next_f.set(x, y, sum * (1.0 / n as f32));
                        next_ok.set(x, y, true);
                        changed = true;
                    }
                }
            }
            f = next_f;
            ok = next_ok;
            if !changed {
                break;
            }
        }
        (f, ok)
    }

    #[test]
    fn fill_invalid_double_buffer_matches_clone_per_pass_reference() {
        // Irregular validity pattern with islands, rims, and a border
        // hole; every pass count from "no-op" through "converged".
        let flow = FlowField::from_fn(13, 11, |x, y| {
            Vec2::new((x as f32 * 0.7).sin() * 3.0, (y as f32 * 1.3).cos() * 2.0)
        });
        let valid = Grid::from_fn(13, 11, |x, y| (x * 7 + y * 5 + x * y) % 4 != 0);
        for passes in 0..=8 {
            let (fa, oa) = fill_invalid(&flow, &valid, passes);
            let (fb, ob) = fill_invalid_reference(&flow, &valid, passes);
            assert_eq!(fa, fb, "flow diverged at passes={passes}");
            assert_eq!(oa, ob, "validity diverged at passes={passes}");
        }
    }

    /// The lane-chunked pass must match the scalar pass bit-for-bit,
    /// including rows that are entirely invalid (a full chunk sweep with
    /// no valid in-row neighbors) and a fully-invalid field (nothing
    /// ever fills).
    #[test]
    fn fill_invalid_simd_toggle_is_bit_identical() {
        let flow = FlowField::from_fn(19, 11, |x, y| {
            Vec2::new((x as f32 * 0.7).sin() * 3.0, (y as f32 * 1.3).cos() * 2.0)
        });
        let patterns: [Grid<bool>; 3] = [
            // Irregular islands.
            Grid::from_fn(19, 11, |x, y| (x * 7 + y * 5 + x * y) % 4 != 0),
            // Rows 3..=7 entirely invalid (refills from the rims).
            Grid::from_fn(19, 11, |_, y| !(3..=7).contains(&y)),
            // Everything invalid: no pass can ever fill anything.
            Grid::filled(19, 11, false),
        ];
        let was = sma_grid::simd::enabled();
        for valid in &patterns {
            for passes in 0..=6 {
                sma_grid::simd::set_enabled(false);
                let (fa, oa) = fill_invalid(&flow, valid, passes);
                sma_grid::simd::set_enabled(true);
                let (fb, ob) = fill_invalid(&flow, valid, passes);
                assert_eq!(fa, fb, "flow diverged at passes={passes}");
                assert_eq!(oa, ob, "validity diverged at passes={passes}");
            }
        }
        sma_grid::simd::set_enabled(was);
    }

    #[test]
    fn fill_invalid_converges_on_large_hole() {
        let flow = FlowField::from_fn(9, 9, |x, y| {
            if (2..7).contains(&x) && (2..7).contains(&y) {
                Vec2::ZERO
            } else {
                Vec2::new(2.0, 0.0)
            }
        });
        let valid = Grid::from_fn(9, 9, |x, y| !((2..7).contains(&x) && (2..7).contains(&y)));
        let (filled, ok) = fill_invalid(&flow, &valid, 10);
        for y in 0..9 {
            for x in 0..9 {
                assert!(ok.at(x, y), "unfilled at ({x},{y})");
                assert!((filled.at(x, y).u - 2.0).abs() < 1e-4);
            }
        }
    }
}
