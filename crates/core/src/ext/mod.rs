//! Extensions — the paper's §6 "Future work", implemented.
//!
//! "Future work involves using adaptive hierarchical non-square template
//! and search windows, using multispectral information, coupling stereo
//! and motion estimation, improving the accuracy of the estimated motion
//! field by using robust estimation, relaxation labeling or
//! regularization, and post processing the motion field by using cloud
//! classification."
//!
//! | §6 item | module |
//! |---|---|
//! | non-square (rectangular) template & search windows | [`rect`] |
//! | adaptive hierarchical windows (coarse-to-fine motion) | [`hierarchy`] |
//! | multispectral information | [`multispectral`] |
//! | robust estimation (Huber IRLS) | [`robust`] |
//! | relaxation labeling over displacement labels | [`relaxation`] |
//! | regularization / post-processing of the motion field | [`regularize`] |
//! | sub-pixel refinement of the hypothesis grid | [`subpixel`] |
//! | cloud-classification post-processing | [`classify`] |
//!
//! (Coupled stereo–motion estimation lives in `sma_stereo::coupled`,
//! next to the stereo substrate it extends.)

pub mod classify;
pub mod hierarchy;
pub mod multispectral;
pub mod rect;
pub mod regularize;
pub mod relaxation;
pub mod robust;
pub mod subpixel;
