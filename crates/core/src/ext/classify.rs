//! Cloud-classification post-processing (§6: "post processing the motion
//! field by using cloud classification").
//!
//! Multi-layer scenes move as a small number of coherent populations
//! (clear sky, low deck, mid deck, high deck). Classifying pixels by
//! cloud-top height (or brightness for monocular data) and then cleaning
//! each class's motion separately avoids the classic failure of global
//! smoothing: dragging one layer's vectors toward another's across a
//! deck boundary.

use sma_grid::{FlowField, Grid, Vec2};

/// A pixel's cloud class: index into the height-band table (0 = clear /
/// lowest band).
pub type CloudClass = u8;

/// Classify pixels by height thresholds: class k means
/// `bands[k-1] <= h < bands[k]` with class 0 below the first band.
///
/// # Panics
/// Panics if `bands` is not strictly increasing.
pub fn classify_by_height(height: &Grid<f32>, bands: &[f32]) -> Grid<CloudClass> {
    assert!(
        bands.windows(2).all(|w| w[0] < w[1]),
        "height bands must be strictly increasing"
    );
    height.map(|&h| {
        let mut class = 0u8;
        for (k, &b) in bands.iter().enumerate() {
            if h >= b {
                class = (k + 1) as u8;
            }
        }
        class
    })
}

/// The per-class median displacement (component-wise median — robust and
/// cheap; adequate because classes move near-rigidly). Classes with no
/// pixels report zero.
pub fn class_medians(
    flow: &FlowField,
    classes: &Grid<CloudClass>,
    num_classes: usize,
) -> Vec<Vec2> {
    assert_eq!(flow.dims(), classes.dims(), "class shape mismatch");
    let mut us: Vec<Vec<f32>> = vec![Vec::new(); num_classes];
    let mut vs: Vec<Vec<f32>> = vec![Vec::new(); num_classes];
    for ((x, y), v) in flow.enumerate() {
        let c = classes.at(x, y) as usize;
        if c < num_classes {
            us[c].push(v.u);
            vs[c].push(v.v);
        }
    }
    (0..num_classes)
        .map(|c| {
            if us[c].is_empty() {
                Vec2::ZERO
            } else {
                Vec2::new(median(&mut us[c]), median(&mut vs[c]))
            }
        })
        .collect()
}

fn median(v: &mut [f32]) -> f32 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

/// Post-process a motion field with cloud classes: vectors deviating from
/// their class median by more than `max_dev` pixels are snapped to the
/// median (classification-guided outlier rejection). Returns the cleaned
/// field and the number of snapped pixels.
pub fn classify_and_clean(
    flow: &FlowField,
    classes: &Grid<CloudClass>,
    num_classes: usize,
    max_dev: f32,
) -> (FlowField, usize) {
    let medians = class_medians(flow, classes, num_classes);
    let mut snapped = 0usize;
    let out = FlowField::from_fn(flow.width(), flow.height(), |x, y| {
        let c = classes.at(x, y) as usize;
        let v = flow.at(x, y);
        if c < num_classes && (v - medians[c]).magnitude() > max_dev {
            snapped += 1;
            medians[c]
        } else {
            v
        }
    });
    (out, snapped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn height_bands_classify() {
        let h = Grid::from_vec(4, 1, vec![0.0, 3.0, 6.0, 11.0]);
        let c = classify_by_height(&h, &[2.0, 5.0, 10.0]);
        assert_eq!(c.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bands_rejected() {
        let h = Grid::filled(2, 2, 0.0f32);
        let _ = classify_by_height(&h, &[5.0, 2.0]);
    }

    #[test]
    fn per_class_medians() {
        // Class 0 moves (+1, 0), class 1 moves (-2, 0), one outlier each.
        let classes = Grid::from_fn(10, 2, |x, _| if x < 5 { 0u8 } else { 1u8 });
        let flow = FlowField::from_fn(10, 2, |x, y| {
            if x == 0 && y == 0 {
                Vec2::new(50.0, 50.0) // outlier in class 0
            } else if x < 5 {
                Vec2::new(1.0, 0.0)
            } else {
                Vec2::new(-2.0, 0.0)
            }
        });
        let m = class_medians(&flow, &classes, 2);
        assert_eq!(m[0], Vec2::new(1.0, 0.0));
        assert_eq!(m[1], Vec2::new(-2.0, 0.0));
    }

    #[test]
    fn empty_class_reports_zero() {
        let classes = Grid::filled(4, 4, 0u8);
        let flow = FlowField::uniform(4, 4, Vec2::new(3.0, 0.0));
        let m = class_medians(&flow, &classes, 3);
        assert_eq!(m[1], Vec2::ZERO);
        assert_eq!(m[2], Vec2::ZERO);
    }

    #[test]
    fn cleaning_snaps_outliers_only() {
        let classes = Grid::from_fn(10, 10, |x, _| if x < 5 { 0u8 } else { 1u8 });
        let mut flow = FlowField::from_fn(10, 10, |x, _| {
            if x < 5 {
                Vec2::new(1.0, 0.0)
            } else {
                Vec2::new(-1.0, 0.0)
            }
        });
        flow.set(2, 2, Vec2::new(9.0, 9.0)); // class-0 outlier
        flow.set(7, 7, Vec2::new(-1.2, 0.1)); // class-1 inlier jitter
        let (clean, snapped) = classify_and_clean(&flow, &classes, 2, 1.5);
        assert_eq!(snapped, 1);
        assert_eq!(clean.at(2, 2), Vec2::new(1.0, 0.0));
        assert_eq!(clean.at(7, 7), Vec2::new(-1.2, 0.1), "inliers untouched");
    }

    #[test]
    fn cleaning_respects_layer_boundaries() {
        // Unlike global smoothing, class cleaning never mixes the two
        // decks' motions: every cleaned vector equals one of the two
        // class medians or an original inlier.
        let classes = Grid::from_fn(8, 8, |x, _| if x < 4 { 0u8 } else { 1u8 });
        let flow = FlowField::from_fn(8, 8, |x, _| {
            if x < 4 {
                Vec2::new(2.0, 0.0)
            } else {
                Vec2::new(-2.0, 0.0)
            }
        });
        let (clean, snapped) = classify_and_clean(&flow, &classes, 2, 0.5);
        assert_eq!(snapped, 0);
        for ((x, _), v) in clean.enumerate() {
            if x < 4 {
                assert_eq!(v, Vec2::new(2.0, 0.0));
            } else {
                assert_eq!(v, Vec2::new(-2.0, 0.0));
            }
        }
    }
}
