//! Sub-pixel hypothesis refinement.
//!
//! The hypothesis search is an integer grid, so every estimate carries up
//! to half a pixel of quantization — the visible error floor in the
//! fractional-drift experiments (sea ice, the 2.5 px/frame eyewall).
//! Fitting a two-dimensional quadratic to the error surface around the
//! winning hypothesis and taking its vertex recovers the fractional
//! part, exactly as the ASA substrate's 1-D parabolic disparity
//! refinement does along scan lines. This is in the spirit of §6's
//! "improving the accuracy of the estimated motion field".

use sma_grid::Vec2;

use crate::config::SmaConfig;
use crate::motion::{evaluate_hypothesis, MotionEstimate, SmaFrames};

/// The 3 x 3 error patch around a winning hypothesis.
#[derive(Debug, Clone, Copy)]
pub struct ErrorPatch {
    /// Errors `e[dy + 1][dx + 1]` for offsets `(dx, dy) in [-1, 1]^2`
    /// around the winner; `f64::INFINITY` marks unsolvable hypotheses.
    pub e: [[f64; 3]; 3],
}

impl ErrorPatch {
    /// Vertex of the least-squares quadratic fit to the patch, clamped
    /// to `[-0.5, 0.5]^2` (a vertex outside the cell means the integer
    /// winner was not a genuine local minimum — trust it no further than
    /// its cell). Returns `None` if any neighbor is unsolvable or the
    /// fit is degenerate (flat or non-convex surface).
    pub fn vertex(&self) -> Option<(f64, f64)> {
        for row in &self.e {
            for &v in row {
                if !v.is_finite() {
                    return None;
                }
            }
        }
        // Separable 1-D parabola fits through the central cross — the
        // same estimator the stereo matcher uses per axis. (A full 2-D
        // quadratic fit adds cross terms the 3 x 3 stencil can't pin
        // down reliably when the surface is anisotropic.)
        let ex = (self.e[1][0], self.e[1][1], self.e[1][2]);
        let ey = (self.e[0][1], self.e[1][1], self.e[2][1]);
        let dx = parabola_vertex(ex.0, ex.1, ex.2)?;
        let dy = parabola_vertex(ey.0, ey.1, ey.2)?;
        Some((dx.clamp(-0.5, 0.5), dy.clamp(-0.5, 0.5)))
    }
}

/// Vertex offset of the parabola through `(-1, e_m), (0, e_0), (+1, e_p)`;
/// `None` when the curvature is non-positive (no interior minimum).
fn parabola_vertex(e_m: f64, e_0: f64, e_p: f64) -> Option<f64> {
    let curvature = e_m - 2.0 * e_0 + e_p;
    if curvature <= 1e-300 {
        return None;
    }
    Some(0.5 * (e_m - e_p) / curvature)
}

/// Track one pixel and refine the winning displacement to sub-pixel
/// precision. Falls back to the integer estimate when the error surface
/// around the winner is incomplete or non-convex.
pub fn track_pixel_subpixel(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    x: usize,
    y: usize,
) -> MotionEstimate {
    let ns = cfg.nzs as isize;
    // Integer search, remembering the winning *hypothesis* offset (the
    // error surface lives on the hypothesis grid even when the reported
    // semi-fluid displacement is refined).
    let mut best = MotionEstimate::invalid();
    let mut best_hyp = (0isize, 0isize);
    for oy in -ns..=ns {
        for ox in -ns..=ns {
            if let Some((affine, error)) = evaluate_hypothesis(frames, cfg, x, y, ox, oy) {
                if error < best.error {
                    best = MotionEstimate {
                        displacement: Vec2::new(affine.x0 as f32, affine.y0 as f32),
                        affine,
                        error,
                        valid: true,
                    };
                    best_hyp = (ox, oy);
                }
            }
        }
    }
    if !best.valid {
        return best;
    }
    // Gather the 3 x 3 error patch around the winner.
    let mut patch = ErrorPatch {
        e: [[f64::INFINITY; 3]; 3],
    };
    for dy in -1isize..=1 {
        for dx in -1isize..=1 {
            let (ox, oy) = (best_hyp.0 + dx, best_hyp.1 + dy);
            patch.e[(dy + 1) as usize][(dx + 1) as usize] = if dx == 0 && dy == 0 {
                best.error
            } else {
                evaluate_hypothesis(frames, cfg, x, y, ox, oy)
                    .map(|(_, e)| e)
                    .unwrap_or(f64::INFINITY)
            };
        }
    }
    if let Some((fx, fy)) = patch.vertex() {
        best.displacement = Vec2::new(
            best.displacement.u + fx as f32,
            best.displacement.v + fy as f32,
        );
        best.affine.x0 += fx;
        best.affine.y0 += fy;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MotionModel;
    use crate::motion::track_pixel;
    use sma_grid::warp::translate;
    use sma_grid::{BorderPolicy, Grid};

    fn wavy(w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| {
            let (xf, yf) = (x as f32, y as f32);
            (xf * 0.45).sin() * 2.0 + (yf * 0.35).cos() * 1.5 + (xf * 0.12 + yf * 0.21).sin() * 3.0
        })
    }

    #[test]
    fn parabola_vertex_math() {
        // e = (x - 0.3)^2 sampled at -1, 0, 1.
        let f = |x: f64| (x - 0.3) * (x - 0.3);
        let v = parabola_vertex(f(-1.0), f(0.0), f(1.0)).unwrap();
        assert!((v - 0.3).abs() < 1e-12);
        // Flat surface: no vertex.
        assert!(parabola_vertex(1.0, 1.0, 1.0).is_none());
        // Maximum (concave): no vertex.
        assert!(parabola_vertex(0.0, 1.0, 0.0).is_none());
    }

    #[test]
    fn integer_shift_stays_integer() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = wavy(32, 32);
        let after = translate(&before, -1.0, 0.0, BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let est = track_pixel_subpixel(&frames, &cfg, 16, 16);
        assert!(est.valid);
        assert!(
            (est.displacement.u - 1.0).abs() < 0.15,
            "u {}",
            est.displacement.u
        );
        assert!(est.displacement.v.abs() < 0.15, "v {}", est.displacement.v);
    }

    #[test]
    fn fractional_shift_recovered_better_than_integer() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = wavy(36, 36);
        let after = translate(&before, -1.5, 0.0, BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");

        let mut int_err = 0.0f32;
        let mut sub_err = 0.0f32;
        let mut n = 0;
        for y in 14..22 {
            for x in 14..22 {
                let i = track_pixel(&frames, &cfg, x, y);
                let s = track_pixel_subpixel(&frames, &cfg, x, y);
                assert!(i.valid && s.valid);
                int_err += (i.displacement - Vec2::new(1.5, 0.0)).magnitude();
                sub_err += (s.displacement - Vec2::new(1.5, 0.0)).magnitude();
                n += 1;
            }
        }
        int_err /= n as f32;
        sub_err /= n as f32;
        // Integer grid is stuck at >= 0.5 px error for a x.5 shift; the
        // refinement must cut that substantially.
        assert!(int_err > 0.4, "integer error {int_err} (sanity)");
        assert!(
            sub_err < 0.6 * int_err,
            "sub-pixel {sub_err} should beat integer {int_err}"
        );
    }

    #[test]
    fn untrackable_pixel_stays_invalid() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let flat = Grid::filled(32, 32, 1.0f32);
        let frames = SmaFrames::prepare(&flat, &flat, &flat, &flat, &cfg).expect("prepare");
        let est = track_pixel_subpixel(&frames, &cfg, 16, 16);
        assert!(!est.valid);
    }

    #[test]
    fn refinement_never_leaves_the_cell() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = wavy(32, 32);
        let after = translate(&before, -0.4, -1.3, BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let i = track_pixel(&frames, &cfg, 16, 16);
        let s = track_pixel_subpixel(&frames, &cfg, 16, 16);
        assert!((s.displacement.u - i.displacement.u).abs() <= 0.5 + 1e-6);
        assert!((s.displacement.v - i.displacement.v).abs() <= 0.5 + 1e-6);
    }
}
