//! Multispectral semi-fluid matching (§6: "using multispectral
//! information").
//!
//! GOES imagers carry visible and infrared channels; clouds that are
//! ambiguous in one channel (e.g. visible texture washed out over a
//! bright deck) are often distinctive in another (IR brightness tracks
//! cloud-top temperature/height). The extension generalizes the
//! semi-fluid discriminant match of eqs. (10)–(11) to a weighted sum of
//! per-channel discriminant errors, with everything else (template
//! mapping structure, hypothesis search) unchanged.

use sma_grid::Grid;

use crate::template_map::discriminant_match_score;

/// One spectral channel's discriminant planes and its weight in the
/// combined match score.
#[derive(Debug, Clone)]
pub struct ChannelDiscriminants {
    /// Discriminant plane of this channel at `t`.
    pub before: Grid<f32>,
    /// Discriminant plane at `t+1`.
    pub after: Grid<f32>,
    /// Relative weight (>= 0) of this channel in the combined score.
    pub weight: f64,
}

/// Multi-channel discriminant-matching score: the weighted sum of the
/// per-channel eq.-(10) errors between the semi-fluid template at `p`
/// (before) and `q` (after).
///
/// # Panics
/// Panics if no channel is supplied or all weights are zero.
pub fn multispectral_match_score(
    channels: &[ChannelDiscriminants],
    px: isize,
    py: isize,
    qx: isize,
    qy: isize,
    nst: usize,
) -> f64 {
    assert!(!channels.is_empty(), "need at least one channel");
    let wsum: f64 = channels.iter().map(|c| c.weight).sum();
    assert!(wsum > 0.0, "channel weights must not all be zero");
    channels
        .iter()
        .map(|c| c.weight * discriminant_match_score(&c.before, &c.after, px, py, qx, qy, nst))
        .sum::<f64>()
        / wsum
}

/// Multi-channel semi-fluid correspondence: the `(2 nss + 1)^2` search
/// of `Fsemi` scored with the combined channels.
pub fn semifluid_correspondence_ms(
    channels: &[ChannelDiscriminants],
    px: isize,
    py: isize,
    x0: isize,
    y0: isize,
    nss: usize,
    nst: usize,
) -> ((isize, isize), f64) {
    let base = (px + x0, py + y0);
    if nss == 0 {
        let s = multispectral_match_score(channels, px, py, base.0, base.1, nst);
        return (base, s);
    }
    let n = nss as isize;
    let mut best_pos = base;
    let mut best_score = f64::INFINITY;
    for sy in -n..=n {
        for sx in -n..=n {
            let q = (base.0 + sx, base.1 + sy);
            let s = multispectral_match_score(channels, px, py, q.0, q.1, nst);
            if s < best_score {
                best_score = s;
                best_pos = q;
            }
        }
    }
    (best_pos, best_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template_map::semifluid_correspondence;

    fn bump(w: usize, h: usize, cx: usize, cy: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| {
            let dx = x as f32 - cx as f32;
            let dy = y as f32 - cy as f32;
            (-(dx * dx + dy * dy) / 4.0).exp()
        })
    }

    #[test]
    fn single_channel_reduces_to_base() {
        let before = bump(16, 16, 8, 8);
        let after = bump(16, 16, 9, 9);
        let channels = vec![ChannelDiscriminants {
            before: before.clone(),
            after: after.clone(),
            weight: 2.5, // any positive weight normalizes away
        }];
        let (pos_ms, score_ms) = semifluid_correspondence_ms(&channels, 8, 8, 0, 0, 1, 2);
        let (pos, score) = semifluid_correspondence(&before, &after, 8, 8, 0, 0, 1, 2);
        assert_eq!(pos_ms, pos);
        assert!((score_ms - score).abs() < 1e-12);
    }

    #[test]
    fn second_channel_breaks_first_channel_ambiguity() {
        // Channel 1 is flat (no information: all candidates tie at 0);
        // channel 2 sees the bump move to (+1, +1). Single-channel-1
        // matching falls back to the tie-break; adding channel 2 finds
        // the true shift.
        let flat = Grid::filled(16, 16, 0.0f32);
        let ch1 = ChannelDiscriminants {
            before: flat.clone(),
            after: flat.clone(),
            weight: 1.0,
        };
        let ch2 = ChannelDiscriminants {
            before: bump(16, 16, 8, 8),
            after: bump(16, 16, 9, 9),
            weight: 1.0,
        };
        let ((qx, qy), _) =
            semifluid_correspondence_ms(std::slice::from_ref(&ch1), 8, 8, 0, 0, 1, 2);
        assert_eq!((qx, qy), (7, 7), "flat channel alone tie-breaks row-major");
        let ((qx2, qy2), s2) = semifluid_correspondence_ms(&[ch1, ch2], 8, 8, 0, 0, 1, 2);
        assert_eq!((qx2, qy2), (9, 9), "IR channel resolves the match");
        assert!(s2 < 1e-9);
    }

    #[test]
    fn weights_bias_toward_trusted_channel() {
        // The two channels disagree: ch1's bump moved (+1, 0), ch2's
        // moved (0, +1). The heavier channel wins.
        let ch = |bx: usize, by: usize, w: f64| ChannelDiscriminants {
            before: bump(16, 16, 8, 8),
            after: bump(16, 16, bx, by),
            weight: w,
        };
        let ((qx, _), _) =
            semifluid_correspondence_ms(&[ch(9, 8, 10.0), ch(8, 9, 1.0)], 8, 8, 0, 0, 1, 2);
        assert_eq!(qx, 9, "heavy channel pulls x");
        let ((_, qy2), _) =
            semifluid_correspondence_ms(&[ch(9, 8, 1.0), ch(8, 9, 10.0)], 8, 8, 0, 0, 1, 2);
        assert_eq!(qy2, 9, "heavy channel pulls y");
    }

    #[test]
    fn nss_zero_returns_translated_position() {
        let c = ChannelDiscriminants {
            before: bump(16, 16, 8, 8),
            after: bump(16, 16, 9, 9),
            weight: 1.0,
        };
        let ((qx, qy), _) = semifluid_correspondence_ms(&[c], 8, 8, 2, 1, 0, 2);
        assert_eq!((qx, qy), (10, 9));
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_channels_rejected() {
        let _ = multispectral_match_score(&[], 0, 0, 0, 0, 1);
    }
}
