//! The host-parallel driver (Rayon).
//!
//! The paper's parallel design "was designed to track all pixels in the
//! mem-th memory layer in parallel and then repeat the process for each
//! layer" — per-pixel work is fully independent, which is exactly the
//! data parallelism Rayon expresses on a multi-core host. Results are
//! bit-identical to the sequential baseline ("The parallel algorithm
//! obtained the same result as the sequential implementation"): the
//! per-pixel kernel is shared and has no cross-pixel state.

use rayon::prelude::*;
use sma_fault::SmaError;
use sma_grid::Grid;

use crate::config::SmaConfig;
use crate::motion::{track_pixel, MotionEstimate, SmaFrames};
use crate::sequential::{Region, SmaResult};

/// Track every pixel of `region` in parallel over rows.
///
/// # Errors
/// [`sma_fault::GridError::EmptyRegion`] if the region is empty for the
/// frame size.
pub fn track_all_parallel(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    region: Region,
) -> Result<SmaResult, SmaError> {
    let _span = sma_obs::span("track_parallel");
    let (w, h) = frames.dims();
    let bounds = region.bounds_checked(w, h)?;
    sma_obs::atlas::mark_rect(
        sma_obs::atlas::AtlasChannel::DispatchExact,
        bounds.x0,
        bounds.y0,
        bounds.x1,
        bounds.y1,
    );

    crate::cancel::checkpoint()?;
    // Captured once: worker threads may not see the spawner's
    // thread-local token, and a cancelled run must stop producing rows.
    let cancel = crate::cancel::current();
    let tracked_rows: Vec<(usize, Vec<MotionEstimate>)> = (bounds.y0..=bounds.y1)
        .into_par_iter()
        .map(|y| {
            if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                return (y, Vec::new());
            }
            let row: Vec<MotionEstimate> = (bounds.x0..=bounds.x1)
                .map(|x| track_pixel(frames, cfg, x, y))
                .collect();
            (y, row)
        })
        .collect();
    if let Some(t) = cancel.filter(|t| t.is_cancelled()) {
        return Err(t.error());
    }

    let mut estimates = Grid::filled(w, h, MotionEstimate::invalid());
    for (y, row) in tracked_rows {
        for (i, est) in row.into_iter().enumerate() {
            estimates.set(bounds.x0 + i, y, est);
        }
    }
    Ok(SmaResult {
        estimates,
        region: bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MotionModel;
    use crate::sequential::track_all_sequential;
    use sma_grid::warp::translate;
    use sma_grid::BorderPolicy;

    fn wavy(w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| {
            let (xf, yf) = (x as f32, y as f32);
            (xf * 0.45).sin() * 2.0 + (yf * 0.35).cos() * 1.5 + (xf * 0.12 + yf * 0.21).sin() * 3.0
        })
    }

    /// §5.1: "The parallel algorithm obtained the same result as the
    /// sequential implementation."
    #[test]
    fn parallel_equals_sequential_continuous() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = wavy(28, 28);
        let after = translate(&before, -1.0, 1.0, BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let region = Region::Interior { margin: 8 };
        let s = track_all_sequential(&frames, &cfg, region).expect("sequential");
        let p = track_all_parallel(&frames, &cfg, region).expect("parallel");
        assert_eq!(s.region, p.region);
        for (x, y) in s.region.pixels() {
            assert_eq!(s.estimates.at(x, y), p.estimates.at(x, y), "at ({x},{y})");
        }
    }

    #[test]
    fn parallel_equals_sequential_semifluid() {
        let cfg = SmaConfig::small_test(MotionModel::SemiFluid);
        let before = wavy(26, 26);
        let after = translate(&before, 0.0, -1.0, BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let region = Region::Interior { margin: 9 };
        let s = track_all_sequential(&frames, &cfg, region).expect("sequential");
        let p = track_all_parallel(&frames, &cfg, region).expect("parallel");
        for (x, y) in s.region.pixels() {
            assert_eq!(s.estimates.at(x, y), p.estimates.at(x, y), "at ({x},{y})");
        }
    }

    #[test]
    fn parallel_runs_repeatedly_identical() {
        // Rayon scheduling must not perturb results.
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let before = wavy(24, 24);
        let after = translate(&before, -1.0, 0.0, BorderPolicy::Clamp);
        let frames = SmaFrames::prepare(&before, &after, &before, &after, &cfg).expect("prepare");
        let region = Region::Interior { margin: 8 };
        let a = track_all_parallel(&frames, &cfg, region).expect("parallel");
        let b = track_all_parallel(&frames, &cfg, region).expect("parallel");
        for (x, y) in a.region.pixels() {
            assert_eq!(a.estimates.at(x, y), b.estimates.at(x, y));
        }
    }
}
