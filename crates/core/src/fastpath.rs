//! O(1)-per-hypothesis matching via moment-plane integral images.
//!
//! Step 2's normal equations are *sums over the template window* of
//! per-template-pixel quantities. Writing the two weighted residual rows
//! of `motion::solve_samples` out (coefficients in solver order
//! `[a_i, b_i, a_j, b_j, a_k, b_k]`, with `ie = 1/E`, `ig = 1/G`):
//!
//! ```text
//! r1 = ie * [-zx, 0, -zy, 0, 1, 0]     b1 = ie * (gx_obs - zx)
//! r2 = ig * [0, -zx, 0, -zy, 0, 1]     b2 = ig * (gy_obs - zy)
//! ```
//!
//! every entry of `A^T A`, `A^T b` and `b^T b` is a window sum of a
//! product of *per-pixel planes*. Two structural facts make this an
//! integral-image problem:
//!
//! 1. **`A^T A` is hypothesis-independent.** Its 12 structurally nonzero
//!    entries involve only before-frame geometry (`zx`, `zy`, `ie`,
//!    `ig`), so twelve *static* moment planes summed over the template
//!    window give the full matrix for every hypothesis at once.
//! 2. **`A^T b` and `b^T b` are linear/quadratic in the mapped
//!    gradient.** Under one hypothesis offset the observed gradient
//!    `(gx_obs, gy_obs)` of template pixel `p` depends only on `(p, o)`
//!    (the §4.1 sharing observation), so eight *per-offset* moment
//!    planes capture everything hypothesis-dependent.
//!
//! Build summed-area tables ([`MomentIntegral`]) over those planes and
//! each tracked pixel's 6 x 6 system assembles from **four corner
//! lookups per moment** — O(1) per hypothesis instead of O(T^2). The
//! minimized error follows from the same moments via the least-squares
//! identity `eps = theta^T A^T A theta - 2 theta^T A^T b + b^T b`.
//!
//! Pixels whose template window crosses the frame border fall back to
//! the exact kernel ([`track_pixel`]): window clamping
//! breaks the rectangular-sum identity there. Interior results agree
//! with the exact kernels to floating-point association order (the
//! equivalence suite pins displacements exactly and parameters/errors to
//! 1e-6 relative).

use rayon::prelude::*;
use sma_fault::{FaultSite, SmaError};
use sma_grid::{Grid, MomentIntegral, Vec2};

use crate::affine::LocalAffine;
use crate::config::SmaConfig;
use crate::motion::{
    refined_displacement, surface_delta, track_pixel, MotionEstimate, SmaFrames, GE_SOLVES,
    HYPOTHESES,
};
use crate::precompute::mapped_gradient;
use crate::sequential::{Region, SmaResult};
use sma_linalg::gauss::solve6;

/// Pixels whose template window crossed the frame edge and silently
/// took the exact O(T^2) kernel — the previously invisible slow path.
static BORDER_FALLBACK: sma_obs::Counter = sma_obs::Counter::new("fastpath.border_fallback_pixels");
/// Pixels served by the O(1) moment-lookup path.
static INTERIOR_FAST: sma_obs::Counter = sma_obs::Counter::new("fastpath.interior_pixels");
/// Summed-area-table corner lookups (4 per window-sum, one window-sum
/// for the static moments plus one per hypothesis offset).
static CORNER_LOOKUPS: sma_obs::Counter = sma_obs::Counter::new("fastpath.corner_lookups");
/// Per-offset moment planes built (one per hypothesis offset per
/// segment).
static OFFSET_PLANES: sma_obs::Counter = sma_obs::Counter::new("fastpath.offset_planes_built");
/// Pixels whose best and runner-up hypothesis errors were closer than
/// the near-tie margin and were re-evaluated with the exact kernel.
static NEAR_TIE_REROUTE: sma_obs::Counter = sma_obs::Counter::new("fastpath.near_tie_pixels");

/// Absolute term of the near-tie margin (see [`NEAR_TIE_REL`]).
pub const NEAR_TIE_ABS: f64 = 2e-9;
/// Relative term of the near-tie margin. The moment-path error agrees
/// with the exact kernel only to the declared contract bound
/// (`1e-9 + 1e-6 * rel`, see the equivalence tests), so when the winning
/// hypothesis beats the runner-up by less than *twice* that bound the
/// reassociated arithmetic cannot be trusted to order the two the same
/// way the exact kernel would — the winner could flip. Such pixels are
/// re-evaluated with the exact kernel, which makes the fast path's
/// displacement (and entire estimate, for those pixels) identical to the
/// sequential reference *by construction* instead of by luck. The
/// conformance matrix (`sma-conform`) relies on this guard for its
/// `displacement_exact` contract.
pub const NEAR_TIE_REL: f64 = 2e-6;

/// True when `best` and `runner_up` are too close for the moment path's
/// error precision to decide the winner. This is the *single* re-route
/// predicate shared by every moment-path driver (scalar and SIMD, via
/// [`crate::simd`]): hoisting it here guarantees the two families cannot
/// drift apart on which pixels take the exact kernel.
pub fn near_tie(best: f64, runner_up: f64) -> bool {
    runner_up.is_finite()
        && (runner_up - best) <= NEAR_TIE_ABS + NEAR_TIE_REL * best.abs().max(runner_up.abs())
}

/// Number of static moment channels (the 12 nonzero `A^T A` entries).
pub const STATIC_CHANNELS: usize = 12;
/// Number of per-offset moment channels (6 for `A^T b`, 2 for `b^T b`).
pub const OFFSET_CHANNELS: usize = 8;

/// The hypothesis-independent moment store: one summed-area table over
/// the twelve static channels, plus the six raw per-pixel factors the
/// per-offset planes are products of (so offset-plane construction costs
/// two multiplies per channel, no geometry re-fetch).
pub(crate) struct StaticMoments {
    /// SAT over `S0..S11` (see [`static_channels`]).
    pub(crate) sat: MomentIntegral<STATIC_CHANNELS>,
    /// Per-pixel raw factors `[zx*ie^2, zy*ie^2, ie^2, zx*ig^2, zy*ig^2,
    /// ig^2]` feeding the offset channels.
    pub(crate) factors: Grid<[f64; 6]>,
}

/// The twelve static channels of one pixel, from before-frame geometry:
///
/// ```text
/// S0 = zx^2 ie^2   S1 = zx zy ie^2   S2 = zx ie^2
/// S3 = zy^2 ie^2   S4 = zy ie^2      S5 = ie^2
/// S6 = zx^2 ig^2   S7 = zx zy ig^2   S8 = zx ig^2
/// S9 = zy^2 ig^2   S10 = zy ig^2     S11 = ig^2
/// ```
pub(crate) fn static_channels(factors: &[f64; 6], zx: f64, zy: f64) -> [f64; STATIC_CHANNELS] {
    let [zx_e2, zy_e2, ie2, zx_g2, zy_g2, ig2] = *factors;
    [
        zx * zx_e2,
        zy * zx_e2,
        zx_e2,
        zy * zy_e2,
        zy_e2,
        ie2,
        zx * zx_g2,
        zy * zx_g2,
        zx_g2,
        zy * zy_g2,
        zy_g2,
        ig2,
    ]
}

impl StaticMoments {
    pub(crate) fn compute(frames: &SmaFrames) -> Self {
        let (w, h) = frames.dims();
        let factors = Grid::from_fn(w, h, |x, y| {
            let g = frames.geo_before.at(x, y);
            let ie2 = (1.0 / g.e) * (1.0 / g.e);
            let ig2 = (1.0 / g.g) * (1.0 / g.g);
            [g.zx * ie2, g.zy * ie2, ie2, g.zx * ig2, g.zy * ig2, ig2]
        });
        let sat = MomentIntegral::from_fn(w, h, |x, y| {
            let g = frames.geo_before.at(x, y);
            static_channels(&factors.at(x, y), g.zx, g.zy)
        });
        Self { sat, factors }
    }
}

/// Build the per-offset moment SAT for hypothesis offset `(ox, oy)`.
/// Channels, with `(gx, gy)` the mapped observed gradient:
///
/// ```text
/// T0 = zx ie^2 gx   T1 = zy ie^2 gx   T2 = ie^2 gx
/// T3 = zx ig^2 gy   T4 = zy ig^2 gy   T5 = ig^2 gy
/// T6 = ie^2 gx^2    T7 = ig^2 gy^2
/// ```
fn offset_moments(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    stat: &StaticMoments,
    ox: isize,
    oy: isize,
) -> MomentIntegral<OFFSET_CHANNELS> {
    let (w, h) = frames.dims();
    MomentIntegral::from_fn(w, h, |x, y| {
        let (gx, gy) = mapped_gradient(frames, cfg, x as isize, y as isize, ox, oy);
        let [zx_e2, zy_e2, ie2, zx_g2, zy_g2, ig2] = stat.factors.at(x, y);
        [
            zx_e2 * gx,
            zy_e2 * gx,
            ie2 * gx,
            zx_g2 * gy,
            zy_g2 * gy,
            ig2 * gy,
            ie2 * gx * gx,
            ig2 * gy * gy,
        ]
    })
}

/// Expand the twelve static window sums into the full symmetric
/// `A^T A` in solver layout (row-major 6 x 6). Shared by the scalar
/// per-hypothesis solve below and the SIMD driver's per-pixel
/// factorization ([`crate::simd`]), so both assemble the same matrix
/// bit for bit.
pub(crate) fn ata_from_static(s: &[f64; STATIC_CHANNELS]) -> [f64; 36] {
    let mut ata = [0.0f64; 36];
    ata[0] = s[0]; //   (ai, ai)
    ata[2] = s[1]; //   (ai, aj)
    ata[4] = -s[2]; //  (ai, ak)
    ata[14] = s[3]; //  (aj, aj)
    ata[16] = -s[4]; // (aj, ak)
    ata[28] = s[5]; //  (ak, ak)
    ata[7] = s[6]; //   (bi, bi)
    ata[9] = s[7]; //   (bi, bj)
    ata[11] = -s[8]; // (bi, bk)
    ata[21] = s[9]; //  (bj, bj)
    ata[23] = -s[10]; //(bj, bk)
    ata[35] = s[11]; // (bk, bk)
    for i in 0..6 {
        for j in (i + 1)..6 {
            ata[j * 6 + i] = ata[i * 6 + j];
        }
    }
    ata
}

/// The hypothesis-dependent right-hand side `A^T b` from the static and
/// offset window sums (solver layout). Shared with the SIMD driver.
pub(crate) fn atb_from_moments(s: &[f64; STATIC_CHANNELS], t: &[f64; OFFSET_CHANNELS]) -> [f64; 6] {
    [
        s[0] - t[0],
        s[7] - t[3],
        s[1] - t[1],
        s[9] - t[4],
        t[2] - s[2],
        t[5] - s[10],
    ]
}

/// The hypothesis-dependent `b^T b` scalar from the static and offset
/// window sums. Shared with the SIMD driver.
pub(crate) fn btb_from_moments(s: &[f64; STATIC_CHANNELS], t: &[f64; OFFSET_CHANNELS]) -> f64 {
    (t[6] - 2.0 * t[0] + s[0]) + (t[7] - 2.0 * t[4] + s[9])
}

/// `eps = theta^T A^T A theta - 2 theta^T A^T b + b^T b`, clamping the
/// cancellation noise floor at zero (the true minimum is >= 0). The quad
/// loop is deliberately *dense* (all 36 terms): a structured zero-skip
/// would diverge from the scalar path whenever `sol` carries a
/// non-finite value (`0.0 * inf` is NaN, skipped terms are not). Shared
/// with the SIMD driver.
pub(crate) fn moment_error(ata: &[f64; 36], atb: &[f64; 6], btb: f64, sol: &[f64; 6]) -> f64 {
    let mut quad = 0.0f64;
    for i in 0..6 {
        let mut row = 0.0f64;
        for j in 0..6 {
            row += ata[i * 6 + j] * sol[j];
        }
        quad += sol[i] * (row - 2.0 * atb[i]);
    }
    (quad + btb).max(0.0)
}

/// Assemble and solve one pixel's normal equations from its summed
/// static and offset moments; returns the parameter vector and the
/// minimized error, or `None` when the system is singular (degenerate,
/// textureless neighborhood — matching the exact kernel's outcome).
fn solve_moments(
    s: &[f64; STATIC_CHANNELS],
    t: &[f64; OFFSET_CHANNELS],
) -> Option<([f64; 6], f64)> {
    HYPOTHESES.incr();
    GE_SOLVES.incr();
    let ata = ata_from_static(s);
    let atb = atb_from_moments(s, t);
    let btb = btb_from_moments(s, t);

    let mut m = ata;
    let mut sol = atb;
    if solve6(&mut m, &mut sol).is_err() {
        // Armed-mode translation-only fallback, mirroring
        // `motion::solve_samples`: a_k = sum(ie^2 (gx - zx)) / sum(ie^2)
        // is atb[4] / s[5] in moment space (b_k analogous). Disarmed
        // runs keep the pixel untrackable.
        if !sma_fault::enabled() || s[5] <= 0.0 || s[11] <= 0.0 {
            return None;
        }
        sma_fault::note_natural_degradation();
        sol = [0.0, 0.0, 0.0, 0.0, atb[4] / s[5], atb[5] / s[11]];
    }

    Some((sol, moment_error(&ata, &atb, btb, &sol)))
}

/// Track every pixel of `region` with the integral-image fast path,
/// sequentially. Interior pixels (template window fully inside the
/// frame) use the O(1)-per-hypothesis moment lookups; border pixels fall
/// back to the exact kernel.
///
/// # Errors
/// [`sma_fault::GridError::EmptyRegion`] if the region is empty for the
/// frame size.
pub fn track_all_integral(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    region: Region,
) -> Result<SmaResult, SmaError> {
    track_integral_impl(frames, cfg, region, 2 * cfg.nzs + 1, false)
}

/// [`track_all_integral`] with host parallelism (Rayon) over offset
/// planes and pixel rows. Result-identical to the sequential fast path.
///
/// # Errors
/// [`sma_fault::GridError::EmptyRegion`] if the region is empty for the
/// frame size.
pub fn track_all_integral_parallel(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    region: Region,
) -> Result<SmaResult, SmaError> {
    track_integral_impl(frames, cfg, region, 2 * cfg.nzs + 1, true)
}

/// The segmented fast path: like [`crate::precompute::track_all_segmented`],
/// hypothesis rows are processed `z_rows` at a time so only that
/// segment's offset moment planes are resident; each segment is built,
/// consumed and discarded, and the running best survives across
/// segments. See `maspar_sim::memory` for the PE-side accounting of the
/// moment-plane store.
///
/// # Errors
/// [`SmaError::Config`] if `z_rows == 0`;
/// [`sma_fault::GridError::EmptyRegion`] if the region is empty.
pub fn track_all_integral_segmented(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    region: Region,
    z_rows: usize,
) -> Result<SmaResult, SmaError> {
    if z_rows == 0 {
        return Err(SmaError::Config(
            "segment must contain at least one hypothesis row".into(),
        ));
    }
    track_integral_impl(frames, cfg, region, z_rows, true)
}

fn track_integral_impl(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    region: Region,
    z_rows: usize,
    parallel: bool,
) -> Result<SmaResult, SmaError> {
    let _span = sma_obs::span("track_integral");
    let (w, h) = frames.dims();
    let bounds = region.bounds_checked(w, h)?;
    crate::cancel::checkpoint()?;
    let ns = cfg.nzs as isize;
    let nt = cfg.nzt;
    let template = cfg.template_window();

    let mut best: Grid<MotionEstimate> = Grid::filled(w, h, MotionEstimate::invalid());

    // Border pixels: the template window crosses the frame edge, so the
    // rectangular-sum identity does not hold — use the exact kernel.
    // Under an armed fault harness, pixels whose moment-plane window
    // sums are poisoned (FaultSite::MomentPlane) join the same exact-
    // kernel route: the re-route fully restores the exact result, so
    // each such injection is *recovered*.
    let mut border: Vec<(usize, usize)> = bounds
        .pixels()
        .filter(|&(x, y)| !template.fits_at(x, y, w, h))
        .collect();
    BORDER_FALLBACK.add(border.len() as u64);
    sma_obs::atlas::mark_batch(sma_obs::atlas::AtlasChannel::BorderFallback, &border);
    let mut poisoned: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    if sma_fault::enabled() {
        for (x, y) in bounds.pixels() {
            if template.fits_at(x, y, w, h) {
                if let Some(token) =
                    sma_fault::inject(FaultSite::MomentPlane, sma_fault::key2(x as u64, y as u64))
                {
                    token.recovered();
                    poisoned.insert((x, y));
                }
            }
        }
        // Deterministic processing order for the re-routed pixels.
        let mut rerouted: Vec<(usize, usize)> = poisoned.iter().copied().collect();
        rerouted.sort_unstable();
        border.extend(rerouted);
    }
    // Border pixels (and poisoned-plane re-routes) are served by the
    // exact kernel: both dispatch planes of the telemetry atlas.
    sma_obs::atlas::mark_batch(sma_obs::atlas::AtlasChannel::DispatchExact, &border);
    crate::cancel::checkpoint()?;
    if parallel {
        let tracked: Vec<((usize, usize), MotionEstimate)> = border
            .par_iter()
            .map(|&(x, y)| ((x, y), track_pixel(frames, cfg, x, y)))
            .collect();
        for ((x, y), est) in tracked {
            best.set(x, y, est);
        }
    } else {
        for &(x, y) in &border {
            best.set(x, y, track_pixel(frames, cfg, x, y));
        }
    }

    let interior: Vec<(usize, usize)> = bounds
        .pixels()
        .filter(|&(x, y)| template.fits_at(x, y, w, h) && !poisoned.contains(&(x, y)))
        .collect();
    INTERIOR_FAST.add(interior.len() as u64);
    sma_obs::atlas::mark_batch(sma_obs::atlas::AtlasChannel::DispatchIntegral, &interior);
    if interior.is_empty() {
        return Ok(SmaResult {
            estimates: best,
            region: bounds,
        });
    }

    let stat = {
        let _span = sma_obs::span("static_moments");
        StaticMoments::compute(frames)
    };

    // Runner-up error per interior pixel, carried across segments so the
    // near-tie decision is independent of how the hypothesis rows are
    // chunked (the offsets are visited in the same ascending order
    // regardless of `z_rows`). `-inf` marks a pixel that already holds
    // an exact-kernel result (corrupt-sum re-route).
    let mut second: Grid<f64> = Grid::filled(w, h, f64::INFINITY);

    // Segment loop over hypothesis rows (z_rows = full search height for
    // the unsegmented drivers: a single segment).
    let mut row0 = -ns;
    while row0 <= ns {
        crate::cancel::checkpoint()?;
        let row1 = (row0 + z_rows as isize - 1).min(ns);
        let offsets: Vec<(isize, isize)> = (row0..=row1)
            .flat_map(|oy| (-ns..=ns).map(move |ox| (ox, oy)))
            .collect();
        OFFSET_PLANES.add(offsets.len() as u64);
        let _plane_span = sma_obs::span("offset_planes");
        let planes: Vec<MomentIntegral<OFFSET_CHANNELS>> = if parallel {
            offsets
                .par_iter()
                .map(|&(ox, oy)| offset_moments(frames, cfg, &stat, ox, oy))
                .collect()
        } else {
            offsets
                .iter()
                .map(|&(ox, oy)| offset_moments(frames, cfg, &stat, ox, oy))
                .collect()
        };

        drop(_plane_span);

        let evaluate =
            |x: usize, y: usize, running: MotionEstimate, runner: f64| -> (MotionEstimate, f64) {
                let mut local_best = running;
                let mut local_second = runner;
                // 4 SAT corners for the static window-sum, 4 more per offset.
                CORNER_LOOKUPS.add(4 * (1 + offsets.len()) as u64);
                let s = stat.sat.window_sum(x, y, nt);
                if !s.iter().all(|v| v.is_finite()) {
                    // Corrupted moment data (hostile input that slipped past
                    // quarantine): re-route the pixel through the exact
                    // kernel, which rebuilds its sums from raw geometry.
                    sma_fault::note_natural_degradation();
                    return (track_pixel(frames, cfg, x, y), f64::NEG_INFINITY);
                }
                for (oi, &(ox, oy)) in offsets.iter().enumerate() {
                    let t = planes[oi].window_sum(x, y, nt);
                    if !t.iter().all(|v| v.is_finite()) {
                        sma_fault::note_natural_degradation();
                        return (track_pixel(frames, cfg, x, y), f64::NEG_INFINITY);
                    }
                    if let Some((params, error)) = solve_moments(&s, &t) {
                        if error < local_best.error {
                            local_second = local_best.error;
                            let (rx, ry) = refined_displacement(frames, cfg, x, y, ox, oy);
                            let z0 = surface_delta(frames, x, y, rx, ry);
                            local_best = MotionEstimate {
                                displacement: Vec2::new(rx as f32, ry as f32),
                                affine: LocalAffine::from_params(&params, rx as f64, ry as f64, z0),
                                error,
                                valid: true,
                            };
                        } else if error < local_second {
                            local_second = error;
                        }
                    }
                }
                (local_best, local_second)
            };

        if parallel {
            let updated: Vec<((usize, usize), (MotionEstimate, f64))> = interior
                .par_iter()
                .map(|&(x, y)| ((x, y), evaluate(x, y, best.at(x, y), second.at(x, y))))
                .collect();
            for ((x, y), (est, sec)) in updated {
                best.set(x, y, est);
                second.set(x, y, sec);
            }
        } else {
            for &(x, y) in &interior {
                let (est, sec) = evaluate(x, y, best.at(x, y), second.at(x, y));
                best.set(x, y, est);
                second.set(x, y, sec);
            }
        }
        // Segment's offset planes dropped here, exactly as on the PE.
        row0 = row1 + 1;
    }

    // Near-tie guard: where the moment path's winning margin is inside
    // the noise band of its own error precision, the argmin is not
    // trustworthy — re-evaluate those pixels with the exact kernel so
    // the winner (and the whole estimate) matches the sequential
    // reference by construction. The decision uses the globally best
    // and runner-up errors, so it is identical for the sequential,
    // parallel and segmented fast-path variants.
    let ties: Vec<(usize, usize)> = interior
        .iter()
        .copied()
        .filter(|&(x, y)| best.at(x, y).valid && near_tie(best.at(x, y).error, second.at(x, y)))
        .collect();
    NEAR_TIE_REROUTE.add(ties.len() as u64);
    // Re-routed ties are ultimately served by the exact kernel, so they
    // land in both the near-tie density and exact-dispatch planes.
    sma_obs::atlas::mark_batch(sma_obs::atlas::AtlasChannel::NearTie, &ties);
    sma_obs::atlas::mark_batch(sma_obs::atlas::AtlasChannel::DispatchExact, &ties);
    crate::cancel::checkpoint()?;
    if parallel {
        let rerun: Vec<((usize, usize), MotionEstimate)> = ties
            .par_iter()
            .map(|&(x, y)| ((x, y), track_pixel(frames, cfg, x, y)))
            .collect();
        for ((x, y), est) in rerun {
            best.set(x, y, est);
        }
    } else {
        for &(x, y) in &ties {
            best.set(x, y, track_pixel(frames, cfg, x, y));
        }
    }

    Ok(SmaResult {
        estimates: best,
        region: bounds,
    })
}

/// Interior pixels served by the translation-only shed level.
static TRANSLATION_PIXELS: sma_obs::Counter = sma_obs::Counter::new("fastpath.translation_pixels");

/// The bottom rung of the load-shedding ladder: translation-only
/// `Fcont` matching on the moment planes.
///
/// Instead of solving the full 6 x 6 affine system per hypothesis, the
/// parameter vector is fixed to the diagonal translation solution
/// `a_k = atb[4] / S5`, `b_k = atb[5] / S11` (the same closed form the
/// armed-mode singular fallback uses), and the hypothesis error is the
/// usual least-squares identity evaluated at that vector. One moment
/// plane is resident at a time, no 6 x 6 solves, no near-tie exact
/// re-route — this is a **documented degraded mode** for saturated
/// tenants, not a conformance driver: border pixels (whose template
/// window crosses the frame edge) are left invalid rather than routed
/// through the exact kernel, and results are comparable but not
/// bit-identical to the full ladder. Deterministic for fixed inputs,
/// like every other driver.
///
/// # Errors
/// [`sma_fault::GridError::EmptyRegion`] if the region is empty for the
/// frame size; [`SmaError::DeadlineExceeded`] at a cancellation point.
pub fn track_all_translation_only(
    frames: &SmaFrames,
    cfg: &SmaConfig,
    region: Region,
) -> Result<SmaResult, SmaError> {
    let _span = sma_obs::span("track_translation_only");
    let (w, h) = frames.dims();
    let bounds = region.bounds_checked(w, h)?;
    crate::cancel::checkpoint()?;
    let ns = cfg.nzs as isize;
    let nt = cfg.nzt;
    let template = cfg.template_window();

    let mut best: Grid<MotionEstimate> = Grid::filled(w, h, MotionEstimate::invalid());
    let interior: Vec<(usize, usize)> = bounds
        .pixels()
        .filter(|&(x, y)| template.fits_at(x, y, w, h))
        .collect();
    TRANSLATION_PIXELS.add(interior.len() as u64);
    sma_obs::atlas::mark_batch(sma_obs::atlas::AtlasChannel::DispatchIntegral, &interior);
    if interior.is_empty() {
        return Ok(SmaResult {
            estimates: best,
            region: bounds,
        });
    }

    let stat = {
        let _span = sma_obs::span("static_moments");
        StaticMoments::compute(frames)
    };

    for oy in -ns..=ns {
        crate::cancel::checkpoint()?;
        for ox in -ns..=ns {
            OFFSET_PLANES.incr();
            let plane = offset_moments(frames, cfg, &stat, ox, oy);
            for &(x, y) in &interior {
                HYPOTHESES.incr();
                CORNER_LOOKUPS.add(8);
                let s = stat.sat.window_sum(x, y, nt);
                let t = plane.window_sum(x, y, nt);
                if s[5] <= 0.0 || s[11] <= 0.0 {
                    continue;
                }
                let ata = ata_from_static(&s);
                let atb = atb_from_moments(&s, &t);
                let btb = btb_from_moments(&s, &t);
                let sol = [0.0, 0.0, 0.0, 0.0, atb[4] / s[5], atb[5] / s[11]];
                let error = moment_error(&ata, &atb, btb, &sol);
                if error.is_finite() && error < best.at(x, y).error {
                    let (rx, ry) = refined_displacement(frames, cfg, x, y, ox, oy);
                    let z0 = surface_delta(frames, x, y, rx, ry);
                    best.set(
                        x,
                        y,
                        MotionEstimate {
                            displacement: Vec2::new(rx as f32, ry as f32),
                            affine: LocalAffine::from_params(&sol, rx as f64, ry as f64, z0),
                            error,
                            valid: true,
                        },
                    );
                }
            }
        }
    }

    Ok(SmaResult {
        estimates: best,
        region: bounds,
    })
}

/// Host-side bytes of one segment of the fast path's moment-plane store
/// (`z_rows` hypothesis rows of per-offset planes, 8 f64 channels per
/// pixel) plus the resident static store (12 f64 channels + 6 factor
/// floats per pixel), for diagnostics alongside
/// [`crate::precompute::segment_bytes`].
pub fn moment_segment_bytes(frames: &SmaFrames, cfg: &SmaConfig, z_rows: usize) -> usize {
    let (w, h) = frames.dims();
    let per_offset = OFFSET_CHANNELS * 8;
    let stat = (STATIC_CHANNELS + 6) * 8;
    let offsets = z_rows * (2 * cfg.nzs + 1);
    (offsets * per_offset + stat) * w * h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MotionModel;
    use crate::motion::{evaluate_hypothesis, TemplateSample};
    use crate::sequential::track_all_sequential;
    use sma_grid::warp::translate;
    use sma_grid::BorderPolicy;

    fn wavy(w: usize, h: usize) -> Grid<f32> {
        Grid::from_fn(w, h, |x, y| {
            let (xf, yf) = (x as f32, y as f32);
            (xf * 0.45).sin() * 2.0 + (yf * 0.35).cos() * 1.5 + (xf * 0.12 + yf * 0.21).sin() * 3.0
        })
    }

    fn frames_for_shift(dx: f32, dy: f32, cfg: &SmaConfig) -> SmaFrames {
        let before = wavy(30, 30);
        let after = translate(&before, -dx, -dy, BorderPolicy::Clamp);
        SmaFrames::prepare(&before, &after, &before, &after, cfg).expect("prepare")
    }

    /// The moment assembly must reproduce the sample-loop normal
    /// equations: same solution and error (up to association order) for
    /// a single interior pixel and hypothesis.
    #[test]
    fn moments_match_sample_accumulation() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let f = frames_for_shift(1.0, 0.0, &cfg);
        let stat = StaticMoments::compute(&f);
        let (x, y) = (15usize, 14usize);
        for (ox, oy) in [(0isize, 0isize), (1, 0), (-2, 2)] {
            let t = offset_moments(&f, &cfg, &stat, ox, oy);
            let (params, error) = solve_moments(
                &stat.sat.window_sum(x, y, cfg.nzt),
                &t.window_sum(x, y, cfg.nzt),
            )
            .expect("solvable");
            let (affine, exact_error) = evaluate_hypothesis(&f, &cfg, x, y, ox, oy).unwrap();
            let exact = affine.params();
            for k in 0..6 {
                assert!(
                    (params[k] - exact[k]).abs() <= 1e-9 + 1e-6 * exact[k].abs(),
                    "param {k}: {} vs {}",
                    params[k],
                    exact[k]
                );
            }
            assert!(
                (error - exact_error).abs() <= 1e-9 + 1e-6 * exact_error.abs(),
                "error {error} vs {exact_error} at offset ({ox},{oy})"
            );
        }
    }

    /// The static channel factorization against a direct per-sample
    /// computation of the A^T A entries.
    #[test]
    fn static_channels_are_ata_entries() {
        let s = TemplateSample {
            zx: 0.7,
            zy: -0.3,
            inv_e: 0.9,
            inv_g: 0.8,
            gx_obs: 0.5,
            gy_obs: 0.1,
        };
        let factors = [
            s.zx * s.inv_e * s.inv_e,
            s.zy * s.inv_e * s.inv_e,
            s.inv_e * s.inv_e,
            s.zx * s.inv_g * s.inv_g,
            s.zy * s.inv_g * s.inv_g,
            s.inv_g * s.inv_g,
        ];
        let ch = static_channels(&factors, s.zx, s.zy);
        let r1 = [-s.zx * s.inv_e, 0.0, -s.zy * s.inv_e, 0.0, s.inv_e, 0.0];
        let r2 = [0.0, -s.zx * s.inv_g, 0.0, -s.zy * s.inv_g, 0.0, s.inv_g];
        let entry = |i: usize, j: usize| r1[i] * r1[j] + r2[i] * r2[j];
        let expected = [
            entry(0, 0),
            entry(0, 2),
            -entry(0, 4),
            entry(2, 2),
            -entry(2, 4),
            entry(4, 4),
            entry(1, 1),
            entry(1, 3),
            -entry(1, 5),
            entry(3, 3),
            -entry(3, 5),
            entry(5, 5),
        ];
        for k in 0..12 {
            assert!((ch[k] - expected[k]).abs() < 1e-12, "channel {k}");
        }
    }

    #[test]
    fn translation_only_recovers_uniform_shift() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let f = frames_for_shift(1.0, 1.0, &cfg);
        let region = Region::Interior { margin: 10 };
        let shed = track_all_translation_only(&f, &cfg, region).expect("translation-only");
        let mut right = 0usize;
        let mut total = 0usize;
        for (x, y) in shed.region.pixels() {
            let e = shed.estimates.at(x, y);
            assert!(e.valid, "interior pixel ({x},{y}) must track");
            total += 1;
            if (e.displacement.u - 1.0).abs() < 0.51 && (e.displacement.v - 1.0).abs() < 0.51 {
                right += 1;
            }
        }
        // A degraded mode, not an exact one: most pixels still land on
        // the true displacement for a pure translation.
        assert!(
            right * 10 >= total * 9,
            "translation-only found the shift at {right}/{total} pixels"
        );
    }

    #[test]
    fn cancelled_token_aborts_drivers_with_deadline_error() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let f = frames_for_shift(1.0, 0.0, &cfg);
        let region = Region::Interior { margin: 10 };
        let token = crate::cancel::CancelToken::new();
        token.cancel(7, 3);
        let _g = crate::cancel::install(token);
        let expected = Err(SmaError::DeadlineExceeded {
            elapsed_ms: 7,
            budget_ms: 3,
        });
        assert_eq!(track_all_integral(&f, &cfg, region).map(|_| ()), expected);
        assert_eq!(
            track_all_translation_only(&f, &cfg, region).map(|_| ()),
            expected
        );
        assert_eq!(track_all_sequential(&f, &cfg, region).map(|_| ()), expected);
        assert_eq!(
            crate::simd::track_all_simd(&f, &cfg, region).map(|_| ()),
            expected
        );
        assert_eq!(
            crate::parallel::track_all_parallel(&f, &cfg, region).map(|_| ()),
            expected
        );
        assert_eq!(
            crate::precompute::track_all_segmented(&f, &cfg, region, 2).map(|_| ()),
            expected
        );
    }

    #[test]
    fn integral_drivers_agree_with_each_other() {
        let cfg = SmaConfig::small_test(MotionModel::SemiFluid);
        let f = frames_for_shift(1.0, 1.0, &cfg);
        let region = Region::Interior { margin: 10 };
        let seq = track_all_integral(&f, &cfg, region).expect("fastpath");
        let par = track_all_integral_parallel(&f, &cfg, region).expect("fastpath par");
        let seg = track_all_integral_segmented(&f, &cfg, region, 2).expect("fastpath seg");
        for (x, y) in seq.region.pixels() {
            assert_eq!(
                seq.estimates.at(x, y),
                par.estimates.at(x, y),
                "par ({x},{y})"
            );
            assert_eq!(
                seq.estimates.at(x, y),
                seg.estimates.at(x, y),
                "seg ({x},{y})"
            );
        }
    }

    #[test]
    fn fastpath_tracks_known_shift() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let f = frames_for_shift(2.0, -1.0, &cfg);
        let r = track_all_integral(&f, &cfg, Region::Interior { margin: 10 }).expect("fastpath");
        for (x, y) in r.region.pixels() {
            let e = r.estimates.at(x, y);
            assert!(e.valid, "({x},{y})");
            assert_eq!(e.displacement, Vec2::new(2.0, -1.0), "({x},{y})");
        }
    }

    #[test]
    fn fastpath_matches_sequential_displacements() {
        for model in [MotionModel::Continuous, MotionModel::SemiFluid] {
            let cfg = SmaConfig::small_test(model);
            let f = frames_for_shift(1.0, 1.0, &cfg);
            let region = Region::Interior { margin: 10 };
            let exact = track_all_sequential(&f, &cfg, region).expect("sequential");
            let fast = track_all_integral(&f, &cfg, region).expect("fastpath");
            for (x, y) in exact.region.pixels() {
                let a = exact.estimates.at(x, y);
                let b = fast.estimates.at(x, y);
                assert_eq!(a.valid, b.valid, "({x},{y})");
                assert_eq!(a.displacement, b.displacement, "({x},{y})");
                assert!(
                    (a.error - b.error).abs() <= 1e-9 + 1e-6 * a.error.abs(),
                    "error at ({x},{y}): {} vs {}",
                    a.error,
                    b.error
                );
            }
        }
    }

    #[test]
    fn border_pixels_fall_back_to_exact_kernel() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let f = frames_for_shift(1.0, 0.0, &cfg);
        let exact = track_all_sequential(&f, &cfg, Region::Full).expect("sequential");
        let fast = track_all_integral(&f, &cfg, Region::Full).expect("fastpath");
        let (w, h) = f.dims();
        let template = cfg.template_window();
        let mut checked = 0usize;
        for (x, y) in exact.region.pixels() {
            if !template.fits_at(x, y, w, h) {
                assert_eq!(
                    exact.estimates.at(x, y),
                    fast.estimates.at(x, y),
                    "({x},{y})"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "test must exercise border pixels");
    }

    #[test]
    fn flat_surface_untrackable_in_fastpath() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let flat = Grid::filled(30, 30, 1.0f32);
        let f = SmaFrames::prepare(&flat, &flat, &flat, &flat, &cfg).expect("prepare");
        let r = track_all_integral(&f, &cfg, Region::Interior { margin: 10 }).expect("fastpath");
        for (x, y) in r.region.pixels() {
            assert!(!r.estimates.at(x, y).valid, "({x},{y})");
        }
    }

    #[test]
    fn moment_store_accounting() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let f = frames_for_shift(0.0, 0.0, &cfg);
        let one = moment_segment_bytes(&f, &cfg, 1);
        let all = moment_segment_bytes(&f, &cfg, 5);
        // 5-wide search: one row is 5 offsets * 64 B + 144 B static.
        assert_eq!(one, (5 * 64 + 18 * 8) * 30 * 30);
        // Static store is resident across segments: totals differ by
        // exactly the extra offset rows.
        assert_eq!(all - one, 4 * 5 * 64 * 30 * 30);
    }

    #[test]
    fn zero_segment_rejected() {
        let cfg = SmaConfig::small_test(MotionModel::Continuous);
        let f = frames_for_shift(0.0, 0.0, &cfg);
        let err = track_all_integral_segmented(&f, &cfg, Region::Interior { margin: 10 }, 0)
            .expect_err("z_rows = 0 must be rejected");
        assert!(err.to_string().contains("at least one hypothesis row"));
    }

    #[test]
    fn near_tie_predicate_margins() {
        // Comfortable margins are not ties.
        assert!(!near_tie(1.0, 1.1));
        assert!(!near_tie(0.0, 1e-8));
        // Inside the absolute band near zero.
        assert!(near_tie(0.0, 1e-9));
        // Inside the relative band at scale.
        assert!(near_tie(1.0, 1.0 + 1e-6));
        assert!(!near_tie(1.0, 1.0 + 1e-5));
        // No runner-up (infinity init) or exact-kernel sentinel
        // (neg-infinity): never a tie.
        assert!(!near_tie(0.5, f64::INFINITY));
        assert!(!near_tie(0.5, f64::NEG_INFINITY));
        assert!(!near_tie(0.5, f64::NAN));
    }
}
