//! The local affine transformation of eq. (6).
//!
//! "The local transformation models the non-rigid neighborhood
//! relationship before and after motion with (x0, y0, z0) being the
//! rigid translation component of the motion":
//!
//! ```text
//! x' = x + (a_i x + b_i y + x0)
//! y' = y + (a_j x + b_j y + y0)
//! z' = z + (a_k x + b_k y + z0)
//! ```
//!
//! with `(x, y)` measured *relative to the tracked pixel* (the paper's
//! per-pixel overlapping templates each carry their own transformation).
//! The six parameters `{a_i, b_i, a_j, b_j, a_k, b_k}` are the unknowns
//! of Step 2's least-squares problem; `(x0, y0)` is fixed by the
//! hypothesis under evaluation and `z0` by the surface maps.

/// The six first-order deformation parameters plus the rigid translation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LocalAffine {
    /// `a_i`: x-displacement gradient along x (stretch).
    pub ai: f64,
    /// `b_i`: x-displacement gradient along y (shear).
    pub bi: f64,
    /// `a_j`: y-displacement gradient along x (shear).
    pub aj: f64,
    /// `b_j`: y-displacement gradient along y (stretch).
    pub bj: f64,
    /// `a_k`: z-displacement gradient along x (surface tilt rate).
    pub ak: f64,
    /// `b_k`: z-displacement gradient along y.
    pub bk: f64,
    /// Rigid translation `(x0, y0, z0)`.
    pub x0: f64,
    /// Rigid translation y component.
    pub y0: f64,
    /// Rigid translation z component.
    pub z0: f64,
}

impl LocalAffine {
    /// Pure translation.
    pub fn translation(x0: f64, y0: f64, z0: f64) -> Self {
        Self {
            x0,
            y0,
            z0,
            ..Default::default()
        }
    }

    /// Build from the Step-2 solution vector in the solver's order
    /// `[a_i, b_i, a_j, b_j, a_k, b_k]` plus the hypothesis translation.
    pub fn from_params(p: &[f64; 6], x0: f64, y0: f64, z0: f64) -> Self {
        Self {
            ai: p[0],
            bi: p[1],
            aj: p[2],
            bj: p[3],
            ak: p[4],
            bk: p[5],
            x0,
            y0,
            z0,
        }
    }

    /// The six deformation parameters in solver order.
    pub fn params(&self) -> [f64; 6] {
        [self.ai, self.bi, self.aj, self.bj, self.ak, self.bk]
    }

    /// Apply eq. (6) to a point at template-local offset `(u, v)` with
    /// surface value `z`: returns the transformed `(u', v', z')` (still
    /// template-local plus translation).
    pub fn apply(&self, u: f64, v: f64, z: f64) -> (f64, f64, f64) {
        (
            u + self.ai * u + self.bi * v + self.x0,
            v + self.aj * u + self.bj * v + self.y0,
            z + self.ak * u + self.bk * v + self.z0,
        )
    }

    /// The in-plane deformation magnitude: Frobenius norm of the 2 x 2
    /// displacement-gradient block (zero for rigid translation).
    pub fn deformation_magnitude(&self) -> f64 {
        (self.ai * self.ai + self.bi * self.bi + self.aj * self.aj + self.bj * self.bj).sqrt()
    }

    /// In-plane divergence `a_i + b_j` (expansion rate: positive for the
    /// thunderstorm anvil outflow the GOES-9 dataset exhibits).
    pub fn divergence(&self) -> f64 {
        self.ai + self.bj
    }

    /// In-plane curl `a_j - b_i` (rotation rate: dominant in hurricane
    /// eyewall motion).
    pub fn curl(&self) -> f64 {
        self.aj - self.bi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_translation_moves_all_points_equally() {
        let t = LocalAffine::translation(3.0, -1.0, 0.5);
        assert_eq!(t.apply(0.0, 0.0, 10.0), (3.0, -1.0, 10.5));
        assert_eq!(t.apply(5.0, 2.0, 0.0), (8.0, 1.0, 0.5));
        assert_eq!(t.deformation_magnitude(), 0.0);
    }

    #[test]
    fn params_round_trip() {
        let p = [0.1, -0.2, 0.3, -0.4, 0.5, -0.6];
        let a = LocalAffine::from_params(&p, 1.0, 2.0, 3.0);
        assert_eq!(a.params(), p);
        assert_eq!((a.x0, a.y0, a.z0), (1.0, 2.0, 3.0));
    }

    #[test]
    fn apply_matches_equation_six() {
        let a = LocalAffine {
            ai: 0.1,
            bi: 0.02,
            aj: -0.03,
            bj: 0.05,
            ak: 0.2,
            bk: -0.1,
            x0: 1.0,
            y0: -2.0,
            z0: 0.5,
        };
        let (u, v, z) = (2.0, 3.0, 7.0);
        let (x1, y1, z1) = a.apply(u, v, z);
        assert!((x1 - (u + 0.1 * u + 0.02 * v + 1.0)).abs() < 1e-12);
        assert!((y1 - (v - 0.03 * u + 0.05 * v - 2.0)).abs() < 1e-12);
        assert!((z1 - (z + 0.2 * u - 0.1 * v + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn divergence_and_curl() {
        // Pure expansion.
        let exp = LocalAffine {
            ai: 0.1,
            bj: 0.1,
            ..Default::default()
        };
        assert!((exp.divergence() - 0.2).abs() < 1e-12);
        assert_eq!(exp.curl(), 0.0);
        // Pure (solid-body) rotation by small angle w: aj = w, bi = -w.
        let rot = LocalAffine {
            aj: 0.05,
            bi: -0.05,
            ..Default::default()
        };
        assert_eq!(rot.divergence(), 0.0);
        assert!((rot.curl() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn deformation_magnitude_scales() {
        let a = LocalAffine {
            ai: 0.3,
            bi: 0.4,
            ..Default::default()
        };
        assert!((a.deformation_magnitude() - 0.5).abs() < 1e-12);
    }
}
